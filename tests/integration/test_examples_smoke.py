"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py", "tiny")
        assert "Site statistics" in output
        assert "direct evaluation == compiled SQL: True" in output

    def test_course_discovery(self):
        output = run_example("course_discovery.py", "tiny")
        assert "Term-significance models" in output

    def test_flexible_recommendations(self):
        output = run_example("flexible_recommendations.py", "tiny")
        assert "rank-identical across paths: True" in output
        assert "single-statement == staged sequence: True" in output
        assert "semantics preserved: True" in output

    def test_academic_planning(self):
        output = run_example("academic_planning.py", "tiny")
        assert "Requirement Tracker" in output

    def test_corporate_site(self):
        output = run_example("corporate_site.py")
        assert "direct == compiled SQL: True" in output
