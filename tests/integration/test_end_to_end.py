"""End-to-end scenarios across every subsystem, on generated data."""

import pytest

from repro.courserank.accounts import Role
from repro.courserank.app import CourseRank
from repro.datagen import generate_university


@pytest.fixture(scope="module")
def app():
    return CourseRank(generate_university(scale="small", seed=7))


class TestSearchToRefinementJourney:
    """The Figure 3 → Figure 4 user journey on generated data."""

    def test_search_refine_narrow(self, app):
        session = app.search_session("american")
        initial = len(session.result)
        assert initial > 0
        # Pick a multi-word cloud term containing the query word, like
        # "african american" in the paper.
        candidates = [
            term.term
            for term in session.cloud.terms
            if " " in term.term and "american" in term.term
        ]
        assert candidates, "cloud should surface american-phrases"
        session.refine(candidates[0])
        refined = len(session.result)
        assert 0 < refined < initial
        # The cloud recomputes over the refined results.
        assert session.cloud.result_size == refined

    def test_cloud_terms_span_relations(self, app):
        _result, cloud = app.search_courses("american")
        names = set(cloud.term_names())
        # Comment-borne vocabulary (quality words) can only enter the
        # cloud through the Comments relation.
        comment_only = {"excellent", "outstanding", "mediocre", "decent"}
        assert names & comment_only or len(names) > 10


class TestStudentLifecycle:
    def test_full_student_journey(self, app):
        user = app.accounts.authenticate("student3")
        suid = user.person_id
        # 1. search for a course
        result, _cloud = app.search_courses("introduction")
        # 2. plan an untaken course in the plan year
        taken = set(
            app.db.query(
                f"SELECT CourseID FROM Enrollments WHERE SuID = {suid}"
            ).column("CourseID")
        )
        planned = set(
            app.db.query(
                f"SELECT CourseID FROM Plans WHERE SuID = {suid}"
            ).column("CourseID")
        )
        candidate = app.db.query(
            "SELECT CourseID FROM Offerings WHERE Year = 2009 "
            "ORDER BY CourseID LIMIT 50"
        ).column("CourseID")
        target = next(
            course
            for course in candidate
            if course not in taken and course not in planned
        )
        term = app.db.query(
            f"SELECT Term FROM Offerings WHERE CourseID = {target} "
            "AND Year = 2009 LIMIT 1"
        ).scalar()
        app.planner.plan_course(suid, target, 2009, term, allow_conflicts=True)
        # 3. comment on a taken course
        commented = app.comment_on_course(
            user, next(iter(taken)), "integration test comment", 4.0
        )
        assert commented.rating == 4.0
        # 4. requirement check against their major's department
        dep_id = app.db.query(
            "SELECT DepID FROM Departments d JOIN Students s "
            f"ON d.Name = s.Major WHERE s.SuID = {suid}"
        ).scalar()
        statuses = app.tracker.check(suid, dep_id)
        assert statuses  # every department got requirements
        # 5. personalized recommendations exclude taken courses
        recs = app.recommendations.courses_for_student(suid, top_k=5)
        for row in recs.rows:
            assert row["CourseID"] not in taken

    def test_points_accumulate_over_actions(self, app):
        user = app.accounts.authenticate("student5")
        before = app.incentives.total(user.user_id)
        app.comment_on_course(user, 1, "another data point", 3.5)
        after = app.incentives.total(user.user_id)
        assert after == before + 6


class TestFlexRecsOnGeneratedData:
    def test_dual_path_on_generated_population(self, app):
        suid = app.db.query(
            "SELECT SuID FROM Comments WHERE Rating IS NOT NULL "
            "GROUP BY SuID HAVING COUNT(*) >= 3 ORDER BY SuID LIMIT 1"
        ).scalar()
        from repro.core import strategies

        workflow = strategies.collaborative_filtering(
            suid, similar_students=5, top_k=10
        )
        direct = workflow.run(app.db)
        compiled = workflow.run_sql(app.db)
        assert direct.column("CourseID") == compiled.column("CourseID")
        for left, right in zip(direct.rows, compiled.rows):
            assert left["score"] == pytest.approx(right["score"])

    def test_popularity_vs_cf_differ(self, app):
        """CF must not reduce to global popularity (who-wins shape)."""
        suid = app.db.query(
            "SELECT SuID FROM Comments WHERE Rating IS NOT NULL "
            "GROUP BY SuID HAVING COUNT(*) >= 3 ORDER BY SuID LIMIT 1"
        ).scalar()
        popularity = app.db.query(
            "SELECT CourseID FROM Enrollments GROUP BY CourseID "
            "ORDER BY COUNT(*) DESC, CourseID LIMIT 10"
        ).column("CourseID")
        recs = app.recommendations.courses_for_student(
            suid, top_k=10, exclude_taken=False
        )
        cf_courses = [row["CourseID"] for row in recs.rows]
        assert cf_courses != popularity


class TestPrivacyOnGeneratedData:
    def test_small_courses_suppressed(self, app):
        course_id = app.db.query(
            "SELECT CourseID FROM Enrollments WHERE Grade IS NOT NULL "
            "GROUP BY CourseID HAVING COUNT(*) < 3 ORDER BY CourseID LIMIT 1"
        ).rows
        if course_id:
            assert app.privacy.distribution_or_none(course_id[0][0]) is None

    def test_engineering_official_close_to_self_reported(self, app):
        course_ids = app.gradebook.courses_with_official_grades()
        agreements = [
            app.gradebook.distribution_agreement(course_id)
            for course_id in course_ids[:20]
        ]
        agreements = [value for value in agreements if value is not None]
        assert agreements
        # The paper: official distributions "very close" to self-reported.
        assert sum(agreements) / len(agreements) > 0.8


class TestForumColdStartFix:
    def test_seed_faq_and_route(self, app):
        staff = app.accounts.authenticate("staff1")
        app.accounts.authorize(staff, "seed_faq")
        before = app.forum.stats()["questions"]
        app.forum.seed_faq(
            [("Who approves my program?", "Your department manager.")],
            dep_id=1,
        )
        assert app.forum.stats()["questions"] == before + 1
        # Routing: a course question reaches students who took it.
        course_id = app.db.query(
            "SELECT CourseID FROM Enrollments GROUP BY CourseID "
            "ORDER BY COUNT(*) DESC LIMIT 1"
        ).scalar()
        targets = app.forum.route_targets(course_id=course_id, dep_id=None)
        assert targets
        takers = set(
            app.db.query(
                f"SELECT SuID FROM Enrollments WHERE CourseID = {course_id}"
            ).column("SuID")
        )
        assert set(targets) <= takers
