"""Tests for the synthetic university generator."""

import pytest

from repro.errors import DataGenError
from repro.courserank.schema import GRADE_BUCKETS, TERMS
from repro.datagen import SCALES, ScaleConfig, generate_university, get_scale


@pytest.fixture(scope="module")
def generated():
    db, report = generate_university(scale="tiny", seed=99, return_report=True)
    return db, report


class TestScaleConfig:
    def test_presets_exist(self):
        assert set(SCALES) == {"tiny", "small", "medium", "full"}

    def test_full_matches_paper_numbers(self):
        full = SCALES["full"]
        assert full.courses == 18605
        assert full.comments == 134000
        assert full.ratings == 50300
        assert full.students == 14000
        assert full.registered_users == 9000

    def test_get_scale_passthrough(self):
        config = SCALES["tiny"]
        assert get_scale(config) is config

    def test_unknown_scale(self):
        with pytest.raises(DataGenError):
            get_scale("galactic")

    def test_invalid_config_rejected(self):
        with pytest.raises(DataGenError):
            ScaleConfig(
                name="bad", departments=2, courses=10, students=5,
                registered_users=9, faculty_users=0, staff_users=0,
                comments=10, ratings=20,
            )


class TestGeneratedCounts:
    def test_exact_counts(self, generated):
        db, report = generated
        config = report.config
        assert db.query("SELECT COUNT(*) FROM Courses").scalar() == config.courses
        assert db.query("SELECT COUNT(*) FROM Students").scalar() == config.students
        assert db.query("SELECT COUNT(*) FROM Comments").scalar() == config.comments
        assert (
            db.query(
                "SELECT COUNT(*) FROM Comments WHERE Rating IS NOT NULL"
            ).scalar()
            == config.ratings
        )
        assert (
            db.query("SELECT COUNT(*) FROM Departments").scalar()
            == config.departments
        )

    def test_user_counts(self, generated):
        db, report = generated
        config = report.config
        roles = dict(
            db.query("SELECT Role, COUNT(*) FROM Users GROUP BY Role").rows
        )
        assert roles["student"] == config.registered_users
        assert roles["staff"] == config.staff_users

    def test_summary(self, generated):
        _db, report = generated
        summary = report.summary()
        assert summary["scale"] == "tiny"
        assert summary["comments"] == report.config.comments


class TestDeterminism:
    def test_same_seed_identical(self):
        first = generate_university(scale="tiny", seed=5)
        second = generate_university(scale="tiny", seed=5)
        for table in ("Courses", "Students", "Comments", "Enrollments"):
            assert (
                list(first.table(table).rows())
                == list(second.table(table).rows())
            ), table

    def test_different_seed_differs(self):
        first = generate_university(scale="tiny", seed=5)
        second = generate_university(scale="tiny", seed=6)
        assert list(first.table("Comments").rows()) != list(
            second.table("Comments").rows()
        )


class TestIntegrity:
    def test_comments_reference_enrolled_students(self, generated):
        db, _report = generated
        dangling = db.query(
            "SELECT COUNT(*) FROM Comments c LEFT JOIN Enrollments e "
            "ON c.SuID = e.SuID AND c.CourseID = e.CourseID "
            "WHERE e.SuID IS NULL"
        ).scalar()
        assert dangling == 0

    def test_prerequisites_acyclic(self, generated):
        db, _report = generated
        rows = db.query("SELECT CourseID, PrereqID FROM Prerequisites").rows
        assert all(prereq < course for course, prereq in rows)

    def test_grades_are_valid_buckets(self, generated):
        db, _report = generated
        grades = set(
            db.query(
                "SELECT DISTINCT Grade FROM Enrollments WHERE Grade IS NOT NULL"
            ).column("Grade")
        )
        assert grades <= set(GRADE_BUCKETS)

    def test_terms_are_valid(self, generated):
        db, _report = generated
        terms = set(db.query("SELECT DISTINCT Term FROM Offerings").column("Term"))
        assert terms <= set(TERMS)

    def test_ratings_in_range(self, generated):
        db, _report = generated
        low, high = db.query(
            "SELECT MIN(Rating), MAX(Rating) FROM Comments"
        ).rows[0]
        assert 1.0 <= low and high <= 5.0

    def test_gpa_consistent_with_enrollments(self, generated):
        db, _report = generated
        from repro.courserank.planner import Planner

        planner = Planner(db)
        suids = db.query(
            "SELECT SuID FROM Students WHERE GPA IS NOT NULL LIMIT 5"
        ).column("SuID")
        for suid in suids:
            stored = db.query(
                f"SELECT GPA FROM Students WHERE SuID = {suid}"
            ).scalar()
            assert stored == pytest.approx(
                planner.cumulative_gpa(suid), abs=1e-3
            )

    def test_official_grades_engineering_only(self, generated):
        db, _report = generated
        rows = db.query(
            "SELECT COUNT(*) FROM OfficialGrades og "
            "JOIN Courses c ON og.CourseID = c.CourseID "
            "JOIN Departments d ON c.DepID = d.DepID "
            "WHERE d.School <> 'Engineering'"
        ).scalar()
        assert rows == 0

    def test_plans_target_future_year(self, generated):
        db, report = generated
        years = set(db.query("SELECT DISTINCT Year FROM Plans").column("Year"))
        assert years <= {report.config.plan_year}

    def test_most_plans_shared(self, generated):
        db, _report = generated
        total = db.query("SELECT COUNT(*) FROM Plans").scalar()
        shared = db.query(
            "SELECT COUNT(*) FROM Plans WHERE Shared"
        ).scalar()
        if total >= 20:
            assert shared / total > 0.7  # "the vast majority"

    def test_requirements_parse(self, generated):
        db, _report = generated
        from repro.courserank.requirements import parse_rule

        for rule in db.query("SELECT Rule FROM Requirements").column("Rule"):
            parse_rule(rule)  # must not raise

    def test_every_course_offered(self, generated):
        db, _report = generated
        unoffered = db.query(
            "SELECT COUNT(*) FROM Courses c LEFT JOIN Offerings o "
            "ON c.CourseID = o.CourseID WHERE o.CourseID IS NULL"
        ).scalar()
        assert unoffered == 0


class TestGuards:
    def test_refuses_non_empty_database(self):
        db = generate_university(scale="tiny", seed=1)
        with pytest.raises(DataGenError):
            generate_university(scale="tiny", seed=2, database=db)
