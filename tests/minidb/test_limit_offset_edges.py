"""LIMIT/OFFSET edge cases, pinned in both execution paths.

The audited contract (matching sqlite3):

* ``LIMIT 0`` returns no rows — and pulls nothing from the child;
* ``OFFSET`` past the end returns no rows (not an error);
* ``OFFSET`` without ``LIMIT`` skips and returns the rest;
* negative ``LIMIT``/``OFFSET`` are *syntax* errors (the grammar only
  accepts integer literals);
* the same holds for DISTINCT queries, where truncation applies to the
  deduplicated stream (``post_limit``/``post_offset``).

Every case runs under both ``planner.VECTORIZE`` settings so the row
path and the batch path stay pinned to identical behaviour.
"""

import pytest

import repro.minidb.planner as planner_module
from repro.errors import SQLSyntaxError
from repro.minidb import Database


@pytest.fixture(params=[False, True], ids=["row", "vectorized"])
def db(request, monkeypatch):
    monkeypatch.setattr(planner_module, "VECTORIZE", request.param)
    database = Database()
    database.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(5):
        database.execute("INSERT INTO t VALUES (?, ?)", [i, (i % 2) * 10])
    return database


EDGE_CASES = [
    ("SELECT id FROM t ORDER BY id LIMIT 0", []),
    ("SELECT id FROM t ORDER BY id LIMIT 0 OFFSET 2", []),
    ("SELECT id FROM t ORDER BY id LIMIT 3 OFFSET 10", []),
    ("SELECT id FROM t ORDER BY id LIMIT 3 OFFSET 5", []),
    ("SELECT id FROM t ORDER BY id LIMIT 3 OFFSET 4", [(4,)]),
    ("SELECT id FROM t ORDER BY id LIMIT 10 OFFSET 3", [(3,), (4,)]),
    ("SELECT id FROM t ORDER BY id OFFSET 2", [(2,), (3,), (4,)]),
    ("SELECT id FROM t ORDER BY id OFFSET 9", []),
    ("SELECT id FROM t ORDER BY id LIMIT 99", [(0,), (1,), (2,), (3,), (4,)]),
    ("SELECT DISTINCT v FROM t ORDER BY v LIMIT 0", []),
    ("SELECT DISTINCT v FROM t ORDER BY v LIMIT 2 OFFSET 9", []),
    ("SELECT DISTINCT v FROM t ORDER BY v LIMIT 1 OFFSET 1", [(10,)]),
    ("SELECT DISTINCT v FROM t ORDER BY v OFFSET 1", [(10,)]),
]


@pytest.mark.parametrize("sql,expected", EDGE_CASES,
                         ids=[sql for sql, _ in EDGE_CASES])
def test_edge_case_rows(db, sql, expected):
    assert db.query(sql).rows == expected


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT id FROM t LIMIT -1",
        "SELECT id FROM t LIMIT 2 OFFSET -1",
        "SELECT id FROM t LIMIT 1.5",
        "SELECT DISTINCT v FROM t LIMIT -3",
    ],
)
def test_negative_or_fractional_bounds_are_syntax_errors(db, sql):
    with pytest.raises(SQLSyntaxError):
        db.query(sql)


def test_limit_zero_never_pulls_the_child(db):
    """LIMIT 0 must not evaluate child rows in either path — a row whose

    predicate would divide by zero proves the child was never pulled.
    """
    db.execute("CREATE TABLE z (a INT)")
    db.execute("INSERT INTO z VALUES (1)")
    sql = "SELECT a FROM z WHERE 1 / 0 > 0 ORDER BY a LIMIT 0"
    assert db.query(sql).rows == []


def test_offset_past_end_agrees_across_paths():
    """Same database, both paths, fresh plans: identical truncation."""
    results = {}
    for vectorize in (False, True):
        saved = planner_module.VECTORIZE
        planner_module.VECTORIZE = vectorize
        try:
            database = Database()
            database.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            for i in range(4):
                database.execute("INSERT INTO t VALUES (?)", [i])
            results[vectorize] = [
                database.query(sql).rows
                for sql in (
                    "SELECT id FROM t ORDER BY id LIMIT 2 OFFSET 4",
                    "SELECT id FROM t ORDER BY id LIMIT 2 OFFSET 100",
                    "SELECT id FROM t ORDER BY id OFFSET 4",
                )
            ]
        finally:
            planner_module.VECTORIZE = saved
    assert results[False] == results[True] == [[], [], []]


def test_fuzzer_now_draws_offsets_past_the_table(monkeypatch):
    """The generator's OFFSET domain must exceed Capabilities.max_rows."""
    from repro.testkit.generators import CaseGenerator, Capabilities

    offsets = set()
    for seed in range(120):
        case = CaseGenerator(seed).case()
        for op in case.ops:
            query = getattr(op, "query", None)
            stack = [query] if query is not None else []
            while stack:
                node = stack.pop()
                offset = getattr(node, "offset", None)
                if offset is not None:
                    offsets.add(offset)
                for attribute in ("source", "subquery"):
                    inner = getattr(node, attribute, None)
                    if inner is not None:
                        stack.append(inner)
    assert offsets, "no OFFSET was generated at all"
    assert max(offsets) > Capabilities.max_rows
