"""Unit tests for hash and sorted secondary indexes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.minidb.indexes import HashIndex, SortedIndex, create_index


class TestHashIndex:
    def test_insert_find(self):
        index = HashIndex()
        index.insert(("CS",), 1)
        index.insert(("CS",), 2)
        index.insert(("HIST",), 3)
        assert list(index.find(("CS",))) == [1, 2]
        assert list(index.find(("MATH",))) == []

    def test_delete(self):
        index = HashIndex()
        index.insert(("CS",), 1)
        index.delete(("CS",), 1)
        assert list(index.find(("CS",))) == []

    def test_delete_missing_is_noop(self):
        index = HashIndex()
        index.delete(("CS",), 1)  # must not raise

    def test_len_and_distinct(self):
        index = HashIndex()
        index.insert(("a",), 1)
        index.insert(("a",), 2)
        index.insert(("b",), 3)
        assert len(index) == 3
        assert index.distinct_keys() == 2

    def test_null_keys_tracked(self):
        index = HashIndex()
        index.insert((None,), 1)
        assert list(index.find((None,))) == [1]


class TestSortedIndex:
    def build(self):
        index = SortedIndex()
        for rowid, value in enumerate([5, 1, 3, 3, 9]):
            index.insert((value,), rowid)
        return index

    def test_find_equal(self):
        index = self.build()
        assert sorted(index.find((3,))) == [2, 3]

    def test_range_inclusive(self):
        index = self.build()
        rowids = list(index.range(low=(3,), high=(5,)))
        values = sorted(rowids)
        assert values == [0, 2, 3]  # rows holding 3,3,5

    def test_range_exclusive_low(self):
        index = self.build()
        rowids = list(index.range(low=(3,), high=(9,), low_inclusive=False))
        assert sorted(rowids) == [0, 4]  # 5 and 9

    def test_range_exclusive_high(self):
        index = self.build()
        rowids = list(index.range(low=(1,), high=(5,), high_inclusive=False))
        assert sorted(rowids) == [1, 2, 3]  # 1, 3, 3

    def test_open_ranges(self):
        index = self.build()
        assert len(list(index.range(low=(5,)))) == 2
        assert len(list(index.range(high=(3,)))) == 3
        assert len(list(index.range())) == 5

    def test_delete(self):
        index = self.build()
        index.delete((3,), 2)
        assert sorted(index.find((3,))) == [3]

    def test_min_max(self):
        index = self.build()
        assert index.min_key() == (1,)
        assert index.max_key() == (9,)
        index.clear()
        assert index.min_key() is None

    def test_nulls_sort_low(self):
        index = SortedIndex()
        index.insert((None,), 0)
        index.insert((1,), 1)
        assert index.min_key() == (None,)

    @given(st.lists(st.integers(min_value=-50, max_value=50), max_size=60))
    def test_range_matches_filter_semantics(self, values):
        index = SortedIndex()
        for rowid, value in enumerate(values):
            index.insert((value,), rowid)
        low, high = -10, 10
        expected = sorted(
            rowid for rowid, value in enumerate(values) if low <= value <= high
        )
        assert sorted(index.range(low=(low,), high=(high,))) == expected

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=9), st.booleans()),
            max_size=40,
        )
    )
    def test_insert_delete_roundtrip(self, operations):
        """Inserting then deleting everything leaves the index empty."""
        index = SortedIndex()
        live = set()
        for rowid, (value, _flag) in enumerate(operations):
            index.insert((value,), rowid)
            live.add((value, rowid))
        for value, rowid in list(live):
            index.delete((value,), rowid)
        assert len(index) == 0


class TestFactory:
    def test_create_known_kinds(self):
        assert isinstance(create_index("hash"), HashIndex)
        assert isinstance(create_index("sorted"), SortedIndex)

    def test_create_unknown_kind(self):
        with pytest.raises(ValueError):
            create_index("btree")
