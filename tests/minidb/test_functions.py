"""Unit tests for the scalar/aggregate function registry."""

import math

import pytest

from repro.errors import ExecutionError
from repro.minidb import Database
from repro.minidb.functions import (
    AvgAccumulator,
    CountAccumulator,
    FunctionRegistry,
    GroupConcatAccumulator,
    MaxAccumulator,
    MinAccumulator,
    StdDevAccumulator,
    SumAccumulator,
)

REGISTRY = FunctionRegistry()


def call(name, *args):
    return REGISTRY.scalar(name)(*args)


class TestScalarBuiltins:
    def test_math(self):
        assert call("abs", -3) == 3
        assert call("floor", 2.7) == 2
        assert call("ceil", 2.2) == 3
        assert call("sqrt", 9.0) == 3.0
        assert call("power", 2, 10) == 1024.0
        assert call("sign", -7) == -1
        assert call("mod", 7, 3) == 1
        assert call("exp", 0) == 1.0
        assert call("ln", math.e) == pytest.approx(1.0)

    def test_round_half_away_from_zero(self):
        assert call("round", 2.5) == 3.0
        assert call("round", -2.5) == -3.0
        assert call("round", 2.345, 2) == 2.35

    def test_sqrt_negative(self):
        with pytest.raises(ExecutionError):
            call("sqrt", -1.0)

    def test_ln_nonpositive(self):
        with pytest.raises(ExecutionError):
            call("ln", 0.0)

    def test_strings(self):
        assert call("length", "abc") == 3
        assert call("lower", "ABC") == "abc"
        assert call("upper", "abc") == "ABC"
        assert call("trim", "  x  ") == "x"
        assert call("substr", "CourseRank", 1, 6) == "Course"
        assert call("substr", "CourseRank", 7) == "Rank"
        assert call("replace", "a-b", "-", "_") == "a_b"
        assert call("concat", "a", 1, "b") == "a1b"

    def test_substr_negative_length(self):
        with pytest.raises(ExecutionError):
            call("substr", "abc", 1, -1)

    def test_dates(self):
        import datetime

        assert call("year", datetime.date(2008, 9, 1)) == 2008
        assert call("month", datetime.date(2008, 9, 1)) == 9

    def test_null_propagation(self):
        assert call("upper", None) is None
        assert call("power", None, 2) is None

    def test_coalesce_and_nullif(self):
        assert call("coalesce", None, None, 3) == 3
        assert call("coalesce", None) is None
        assert call("nullif", 1, 1) is None
        assert call("nullif", 1, 2) == 1

    def test_least_greatest(self):
        assert call("least", 3, 1, 2) == 1
        assert call("greatest", 3, 1, 2) == 3

    def test_casts(self):
        assert call("cast_float", 3) == 3.0
        assert call("cast_int", 3.9) == 3
        assert call("cast_text", 42) == "42"


class TestRegistry:
    def test_register_udf(self):
        registry = FunctionRegistry()
        registry.register_scalar("double_it", lambda v: None if v is None else v * 2)
        assert registry.scalar("DOUBLE_IT")(4) == 8
        assert registry.has_scalar("double_it")

    def test_unknown_scalar(self):
        with pytest.raises(ExecutionError):
            FunctionRegistry().scalar("nope")

    def test_unknown_aggregate(self):
        with pytest.raises(ExecutionError):
            FunctionRegistry().aggregate("nope")

    def test_udf_usable_from_sql(self):
        db = Database()
        db.functions.register_scalar(
            "shout", lambda s: None if s is None else s.upper() + "!"
        )
        db.execute("CREATE TABLE t (x TEXT)")
        db.execute("INSERT INTO t VALUES ('hi')")
        assert db.query("SELECT SHOUT(x) FROM t").scalar() == "HI!"


class TestAccumulators:
    def feed(self, accumulator, values):
        for value in values:
            accumulator.add(value)
        return accumulator.result()

    def test_count_skips_nulls(self):
        assert self.feed(CountAccumulator(), [1, None, 2]) == 2

    def test_sum_empty_is_null(self):
        assert self.feed(SumAccumulator(), []) is None
        assert self.feed(SumAccumulator(), [None]) is None

    def test_sum(self):
        assert self.feed(SumAccumulator(), [1, 2, None, 3]) == 6

    def test_avg(self):
        assert self.feed(AvgAccumulator(), [1.0, 2.0, None]) == 1.5
        assert self.feed(AvgAccumulator(), []) is None

    def test_min_max(self):
        assert self.feed(MinAccumulator(), [3, 1, None, 2]) == 1
        assert self.feed(MaxAccumulator(), [3, 1, None, 2]) == 3
        assert self.feed(MinAccumulator(), []) is None

    def test_stddev_matches_population_formula(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert self.feed(StdDevAccumulator(), values) == pytest.approx(2.0)

    def test_group_concat(self):
        assert self.feed(GroupConcatAccumulator(), ["a", None, "b"]) == "a,b"
        assert self.feed(GroupConcatAccumulator(), []) is None
