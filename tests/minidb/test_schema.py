"""Unit tests for table schemas and constraint declarations."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.minidb.schema import Column, ForeignKey, TableSchema, make_schema
from repro.minidb.types import DataType


def simple_schema():
    return make_schema(
        "courses",
        [("CourseID", DataType.INTEGER), ("Title", DataType.TEXT)],
        primary_key=["CourseID"],
    )


class TestColumn:
    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Column("", DataType.TEXT)

    def test_rejects_leading_digit(self):
        with pytest.raises(SchemaError):
            Column("1abc", DataType.TEXT)

    def test_rejects_punctuation(self):
        with pytest.raises(SchemaError):
            Column("a-b", DataType.TEXT)


class TestTableSchema:
    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            TableSchema(name="t", columns=())

    def test_duplicate_columns_rejected_case_insensitively(self):
        with pytest.raises(SchemaError):
            TableSchema(
                name="t",
                columns=(Column("id", DataType.INTEGER), Column("ID", DataType.TEXT)),
            )

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            make_schema("t", [("a", DataType.INTEGER)], primary_key=["missing"])

    def test_unique_key_must_exist(self):
        with pytest.raises(SchemaError):
            make_schema("t", [("a", DataType.INTEGER)], unique_keys=[["missing"]])

    def test_column_lookup_case_insensitive(self):
        schema = simple_schema()
        assert schema.column_position("courseid") == 0
        assert schema.column_position("TITLE") == 1

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            simple_schema().column_position("nope")

    def test_pk_columns_not_nullable(self):
        schema = simple_schema()
        assert not schema.column("CourseID").nullable
        assert schema.column("Title").nullable

    def test_not_null_flag(self):
        schema = make_schema(
            "t",
            [("a", DataType.INTEGER), ("b", DataType.TEXT)],
            not_null=["b"],
        )
        assert not schema.column("b").nullable

    def test_is_pk_column(self):
        schema = simple_schema()
        assert schema.is_pk_column("courseid")
        assert not schema.is_pk_column("title")

    def test_renamed_keeps_columns(self):
        renamed = simple_schema().renamed("c2")
        assert renamed.name == "c2"
        assert renamed.column_names == ["CourseID", "Title"]


class TestForeignKey:
    def test_count_mismatch(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "t", ("x",))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey((), "t", ())

    def test_fk_columns_must_exist_in_schema(self):
        with pytest.raises(SchemaError):
            make_schema(
                "t",
                [("a", DataType.INTEGER)],
                foreign_keys=[ForeignKey(("missing",), "other", ("id",))],
            )
