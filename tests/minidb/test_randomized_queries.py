"""Randomized whole-pipeline checks: planner+executor vs brute force.

Hypothesis generates tables and predicates; the engine's answer (with
and without indexes, so pushdown and access-path selection are both
exercised) must equal a brute-force reference that evaluates the same
expression tree row by row.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.minidb import Database
from repro.minidb.expressions import AMBIGUOUS
from repro.minidb.sql.parser import parse_expression

COLUMNS = ("id", "grp", "val", "txt")

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),  # grp
        st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),  # val
        st.one_of(st.none(), st.sampled_from(["aa", "ab", "ba", "zz"])),  # txt
    ),
    max_size=25,
)

predicate_strategy = st.sampled_from(
    [
        "val > 3",
        "val <= 0",
        "grp = 5",
        "grp <> 2 AND val IS NOT NULL",
        "val IS NULL OR grp < 10",
        "txt = 'aa'",
        "txt LIKE 'a%'",
        "txt IS NULL",
        "val BETWEEN -5 AND 5",
        "grp IN (1, 2, 3)",
        "NOT (val > 0)",
        "grp = 5 AND txt LIKE '%a' OR val = 0",
        "ABS(val) > 10",
        "grp % 2 = 0 AND val IS NOT NULL",
    ]
)


def build_db(rows, with_indexes):
    db = Database()
    db.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, "
        "val INTEGER, txt TEXT)"
    )
    table = db.table("t")
    for index, (grp, val, txt) in enumerate(rows):
        table.insert([index, grp, val, txt])
    if with_indexes:
        db.execute("CREATE INDEX idx_grp ON t (grp)")
        db.execute("CREATE INDEX idx_val ON t (val) USING sorted")
    return db


def brute_force(db, predicate_text):
    expression = parse_expression(predicate_text)
    kept = []
    for row in db.table("t").rows():
        env = {"__functions__": db.functions}
        env.update(zip(COLUMNS, row))
        if expression.evaluate(env) is True:
            kept.append(row[0])
    return sorted(kept)


class TestWherePipeline:
    @given(rows_strategy, predicate_strategy, st.booleans())
    def test_where_matches_brute_force(self, rows, predicate, with_indexes):
        db = build_db(rows, with_indexes)
        engine_ids = sorted(
            db.query(f"SELECT id FROM t WHERE {predicate}").column("id")
        )
        assert engine_ids == brute_force(db, predicate)

    @given(rows_strategy, predicate_strategy)
    def test_index_never_changes_answers(self, rows, predicate):
        plain = build_db(rows, with_indexes=False)
        indexed = build_db(rows, with_indexes=True)
        sql = f"SELECT id FROM t WHERE {predicate} ORDER BY id"
        assert (
            plain.query(sql).column("id") == indexed.query(sql).column("id")
        )

    @given(rows_strategy, predicate_strategy)
    def test_pushdown_through_join_preserves_semantics(self, rows, predicate):
        """Single-table conjuncts pushed into scans don't change joins."""
        db = build_db(rows, with_indexes=True)
        db.execute("CREATE TABLE u (uid INTEGER PRIMARY KEY, grp2 INTEGER)")
        for uid in range(0, 31, 3):
            db.table("u").insert([uid, uid])
        engine_rows = sorted(
            db.query(
                "SELECT t.id FROM t JOIN u ON t.grp = u.grp2 "
                f"WHERE {predicate}"
            ).column("id")
        )
        u_groups = {row[1] for row in db.table("u").rows()}
        expected = [
            row_id
            for row_id in brute_force(db, predicate)
            if db.table("t").lookup_pk((row_id,))[1] in u_groups
        ]
        assert engine_rows == sorted(expected)


class TestOrderLimitPipeline:
    @given(
        rows_strategy,
        st.sampled_from(["val", "grp", "txt"]),
        st.booleans(),
        st.integers(min_value=0, max_value=8),
    )
    def test_order_limit_matches_reference(self, rows, column, desc, limit):
        db = build_db(rows, with_indexes=False)
        direction = "DESC" if desc else "ASC"
        result = db.query(
            f"SELECT id FROM t ORDER BY {column} {direction}, id LIMIT {limit}"
        ).column("id")
        from repro.minidb.types import sort_key

        position = COLUMNS.index(column)
        reference = sorted(
            db.table("t").rows(),
            key=lambda row: (
                tuple(
                    [sort_key(row[position])]
                ) if not desc else tuple(),
                row[0],
            ),
        )
        if desc:
            # Two-key sort with mixed directions: do it in two passes
            # (stable sort), id ascending first, then column descending.
            reference = sorted(db.table("t").rows(), key=lambda r: r[0])
            reference = sorted(
                reference,
                key=lambda row: sort_key(row[position]),
                reverse=True,
            )
        expected = [row[0] for row in reference][:limit]
        assert result == expected

    @given(rows_strategy, st.integers(min_value=0, max_value=10))
    def test_limit_never_exceeds(self, rows, limit):
        db = build_db(rows, with_indexes=False)
        result = db.query(f"SELECT id FROM t LIMIT {limit}")
        assert len(result) == min(limit, len(rows))


class TestAggregatePipeline:
    @given(rows_strategy)
    def test_group_counts_match_reference(self, rows):
        db = build_db(rows, with_indexes=False)
        result = db.query(
            "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM t GROUP BY grp"
        )
        reference = {}
        for row in db.table("t").rows():
            counts = reference.setdefault(row[1], [0, None])
            counts[0] += 1
            if row[2] is not None:
                counts[1] = (counts[1] or 0) + row[2]
        assert {
            row[0]: (row[1], row[2]) for row in result.rows
        } == {grp: tuple(values) for grp, values in reference.items()}

    @given(rows_strategy)
    def test_count_distinct_matches_reference(self, rows):
        db = build_db(rows, with_indexes=False)
        engine = db.query("SELECT COUNT(DISTINCT val) FROM t").scalar()
        expected = len(
            {row[2] for row in db.table("t").rows() if row[2] is not None}
        )
        assert engine == expected
