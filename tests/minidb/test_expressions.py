"""Unit and property tests for scalar expressions and three-valued logic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    AmbiguousColumnError,
    ExecutionError,
    UnknownColumnError,
)
from repro.minidb.expressions import (
    AMBIGUOUS,
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    conjoin,
    conjuncts,
    kleene_and,
    kleene_not,
    kleene_or,
    like_to_regex,
    order_key,
)
from repro.minidb.functions import FunctionRegistry

FUNCTIONS = FunctionRegistry()


def env(**values):
    mapping = {"__functions__": FUNCTIONS}
    mapping.update({key.lower(): value for key, value in values.items()})
    return mapping


class TestLiteralsAndColumns:
    def test_literal(self):
        assert Literal(5).evaluate(env()) == 5

    def test_column_lookup(self):
        assert ColumnRef("x").evaluate(env(x=3)) == 3

    def test_qualified_column(self):
        expr = ColumnRef("gpa", qualifier="S")
        assert expr.evaluate({"s.gpa": 3.5}) == 3.5

    def test_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            ColumnRef("missing").evaluate(env())

    def test_ambiguous_column(self):
        mapping = env()
        mapping["id"] = AMBIGUOUS
        with pytest.raises(AmbiguousColumnError):
            ColumnRef("id").evaluate(mapping)


class TestArithmetic:
    def test_basic_ops(self):
        e = env(a=7, b=2)
        assert BinaryOp("+", ColumnRef("a"), ColumnRef("b")).evaluate(e) == 9
        assert BinaryOp("-", ColumnRef("a"), ColumnRef("b")).evaluate(e) == 5
        assert BinaryOp("*", ColumnRef("a"), ColumnRef("b")).evaluate(e) == 14
        assert BinaryOp("/", ColumnRef("a"), ColumnRef("b")).evaluate(e) == 3.5
        assert BinaryOp("%", ColumnRef("a"), ColumnRef("b")).evaluate(e) == 1

    def test_null_propagates(self):
        assert BinaryOp("+", Literal(None), Literal(1)).evaluate(env()) is None

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            BinaryOp("/", Literal(1), Literal(0)).evaluate(env())

    def test_unary_minus(self):
        assert UnaryOp("-", Literal(4)).evaluate(env()) == -4
        assert UnaryOp("-", Literal(None)).evaluate(env()) is None

    def test_concat_operator(self):
        assert BinaryOp("||", Literal("a"), Literal("b")).evaluate(env()) == "ab"
        assert BinaryOp("||", Literal("a"), Literal(None)).evaluate(env()) is None


class TestComparisons:
    def test_equality(self):
        assert BinaryOp("=", Literal(1), Literal(1)).evaluate(env()) is True
        assert BinaryOp("<>", Literal(1), Literal(2)).evaluate(env()) is True

    def test_null_comparison_is_unknown(self):
        assert BinaryOp("=", Literal(None), Literal(None)).evaluate(env()) is None
        assert BinaryOp("<", Literal(None), Literal(5)).evaluate(env()) is None

    def test_incomparable_types_raise(self):
        with pytest.raises(ExecutionError):
            BinaryOp("<", Literal("a"), Literal(1)).evaluate(env())


class TestKleeneLogic:
    TRUTH = [True, False, None]

    def test_and_truth_table(self):
        assert kleene_and(True, True) is True
        assert kleene_and(True, None) is None
        assert kleene_and(False, None) is False
        assert kleene_and(None, None) is None

    def test_or_truth_table(self):
        assert kleene_or(False, False) is False
        assert kleene_or(False, None) is None
        assert kleene_or(True, None) is True

    def test_not(self):
        assert kleene_not(True) is False
        assert kleene_not(None) is None

    @given(
        st.sampled_from(TRUTH),
        st.sampled_from(TRUTH),
    )
    def test_de_morgan(self, a, b):
        assert kleene_not(kleene_and(a, b)) == kleene_or(
            kleene_not(a), kleene_not(b)
        )

    def test_and_short_circuit_skips_rhs_error(self):
        # FALSE AND (1/0) must not raise.
        expr = BinaryOp(
            "AND",
            Literal(False),
            BinaryOp("=", BinaryOp("/", Literal(1), Literal(0)), Literal(1)),
        )
        assert expr.evaluate(env()) is False

    def test_or_short_circuit(self):
        expr = BinaryOp(
            "OR",
            Literal(True),
            BinaryOp("=", BinaryOp("/", Literal(1), Literal(0)), Literal(1)),
        )
        assert expr.evaluate(env()) is True

    def test_and_requires_boolean(self):
        with pytest.raises(ExecutionError):
            BinaryOp("AND", Literal(1), Literal(True)).evaluate(env())


class TestPredicates:
    def test_is_null(self):
        assert IsNull(Literal(None)).evaluate(env()) is True
        assert IsNull(Literal(1)).evaluate(env()) is False
        assert IsNull(Literal(None), negated=True).evaluate(env()) is False

    def test_in_list(self):
        expr = InList(ColumnRef("x"), [Literal(1), Literal(2)])
        assert expr.evaluate(env(x=2)) is True
        assert expr.evaluate(env(x=3)) is False
        assert expr.evaluate(env(x=None)) is None

    def test_in_list_with_null_member(self):
        expr = InList(ColumnRef("x"), [Literal(1), Literal(None)])
        assert expr.evaluate(env(x=1)) is True
        assert expr.evaluate(env(x=9)) is None  # unknown, not false

    def test_not_in(self):
        expr = InList(ColumnRef("x"), [Literal(1)], negated=True)
        assert expr.evaluate(env(x=2)) is True
        assert expr.evaluate(env(x=1)) is False

    def test_between(self):
        expr = Between(ColumnRef("x"), Literal(1), Literal(5))
        assert expr.evaluate(env(x=3)) is True
        assert expr.evaluate(env(x=9)) is False
        assert expr.evaluate(env(x=None)) is None

    def test_not_between(self):
        expr = Between(ColumnRef("x"), Literal(1), Literal(5), negated=True)
        assert expr.evaluate(env(x=9)) is True


class TestLike:
    def test_percent_wildcard(self):
        expr = Like(ColumnRef("t"), Literal("%Java%"))
        assert expr.evaluate(env(t="Advanced Java Programming")) is True
        assert expr.evaluate(env(t="Python")) is False

    def test_underscore_wildcard(self):
        expr = Like(ColumnRef("t"), Literal("CS10_"))
        assert expr.evaluate(env(t="CS106")) is True
        assert expr.evaluate(env(t="CS1066")) is False

    def test_case_sensitivity(self):
        sensitive = Like(ColumnRef("t"), Literal("java%"))
        insensitive = Like(ColumnRef("t"), Literal("java%"), case_insensitive=True)
        assert sensitive.evaluate(env(t="Java")) is False
        assert insensitive.evaluate(env(t="Java")) is True

    def test_null_operands(self):
        assert Like(Literal(None), Literal("%")).evaluate(env()) is None

    def test_regex_special_chars_escaped(self):
        expr = Like(ColumnRef("t"), Literal("a.b%"))
        assert expr.evaluate(env(t="a.bcd")) is True
        assert expr.evaluate(env(t="aXbcd")) is False

    @given(st.text(alphabet="ab%_", max_size=8), st.text(alphabet="ab", max_size=8))
    def test_like_matches_python_reference(self, pattern, text):
        """LIKE agrees with a simple backtracking reference implementation."""

        def reference(pattern, text):
            if not pattern:
                return not text
            head, rest = pattern[0], pattern[1:]
            if head == "%":
                return any(
                    reference(rest, text[i:]) for i in range(len(text) + 1)
                )
            if not text:
                return False
            if head == "_" or head == text[0]:
                return reference(rest, text[1:])
            return False

        assert (like_to_regex(pattern).match(text) is not None) == reference(
            pattern, text
        )


class TestCase:
    def test_branches(self):
        expr = Case(
            branches=[
                (BinaryOp(">", ColumnRef("x"), Literal(10)), Literal("big")),
                (BinaryOp(">", ColumnRef("x"), Literal(0)), Literal("small")),
            ],
            default=Literal("neg"),
        )
        assert expr.evaluate(env(x=50)) == "big"
        assert expr.evaluate(env(x=5)) == "small"
        assert expr.evaluate(env(x=-1)) == "neg"

    def test_no_default_yields_null(self):
        expr = Case(branches=[(Literal(False), Literal(1))])
        assert expr.evaluate(env()) is None


class TestFunctionCalls:
    def test_scalar_function(self):
        expr = FunctionCall("upper", [ColumnRef("t")])
        assert expr.evaluate(env(t="abc")) == "ABC"

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            FunctionCall("nope", []).evaluate(env())

    def test_missing_registry(self):
        with pytest.raises(ExecutionError):
            FunctionCall("upper", [Literal("x")]).evaluate({})


class TestHelpers:
    def test_conjuncts_flattens_ands(self):
        a = BinaryOp("=", ColumnRef("a"), Literal(1))
        b = BinaryOp("=", ColumnRef("b"), Literal(2))
        c = BinaryOp("=", ColumnRef("c"), Literal(3))
        combined = BinaryOp("AND", BinaryOp("AND", a, b), c)
        assert conjuncts(combined) == [a, b, c]

    def test_conjoin_roundtrip(self):
        a = BinaryOp("=", ColumnRef("a"), Literal(1))
        b = BinaryOp("=", ColumnRef("b"), Literal(2))
        assert conjuncts(conjoin([a, b])) == [a, b]
        assert conjoin([]) is None

    def test_order_key_desc_inverts(self):
        ascending = sorted([3, 1, 2], key=lambda v: order_key([v], [False]))
        descending = sorted([3, 1, 2], key=lambda v: order_key([v], [True]))
        assert ascending == [1, 2, 3]
        assert descending == [3, 2, 1]

    def test_order_key_nulls_first_even_desc(self):
        values = [3, None, 1]
        descending = sorted(values, key=lambda v: order_key([v], [True]))
        # NULLs first ascending; with DESC the reversal puts them last.
        assert descending == [3, 1, None]

    def test_columns_referenced(self):
        expr = BinaryOp(
            "AND",
            BinaryOp("=", ColumnRef("a", "t"), Literal(1)),
            IsNull(ColumnRef("b")),
        )
        assert expr.columns_referenced() == ["t.a", "b"]


class TestToSql:
    def test_roundtrip_shapes(self):
        expr = BinaryOp(
            "AND",
            Like(ColumnRef("title"), Literal("%Java%")),
            Between(ColumnRef("units"), Literal(3), Literal(5)),
        )
        text = expr.to_sql()
        assert "LIKE" in text and "BETWEEN" in text

    def test_string_literal_escaping(self):
        assert Literal("it's").to_sql() == "'it''s'"
