"""Property suite: index-assisted vector scans and multi-key hash joins.

Extends the PR 6 equivalence net to the vector-engine v2 surface: plans
that route through :class:`IndexAccess` (hash equality and sorted
ranges, with and without residual predicates) and hash joins on
composite keys (including NULL key parts and duplicate composite keys).
Each query runs under five configs — compiled cold/warm, interpreted,
vectorized cold/warm, where *warm* replays the query on the same
database so the plan cache and column store are both hot — and results
must be identical, including physical row order (index emission order is
part of the contract) and error kind.

The tables are mutated after load (UPDATEs re-insert rows, DELETEs
punch holes) so the store's insertion order diverges from rowid order,
exercising the rowid->position map that index scans gather through.

The numpy layer is toggled via ``repro.minidb.vector.NUMPY``; on ≡ off
must be bit-identical on the same corpus (when numpy is absent both
sides run pure-python and the test degenerates to a tautology, which is
the intended behaviour of the kill switch).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.minidb.planner as planner_module
import repro.minidb.vector as vector_module
import repro.minidb.vector.batch as vector_batch
from repro.minidb import Database

row_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),             # k  (hash idx)
        st.one_of(st.none(),
                  st.integers(min_value=-3, max_value=3)),  # n  (sorted idx)
        st.sampled_from([0.25, 0.5, 1.0, 2.0]),            # v  (float col)
    ),
    max_size=30,
)

link_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=3)),   # a
        st.one_of(st.none(), st.integers(min_value=-3, max_value=3)),  # b
        st.sampled_from([0.25, 0.5, 1.0, 2.0]),                        # w
    ),
    max_size=20,
)

QUERY_POOL = [
    # hash-index equality, no residual (physical order = index order)
    "SELECT id, n, v FROM t WHERE k = 2",
    # hash-index equality + residual pushed as a selection kernel
    "SELECT id, n FROM t WHERE k = 1 AND n > 0",
    "SELECT id FROM t WHERE k = 3 AND v >= 0.5 AND n IS NOT NULL",
    # sorted-index ranges (open / closed / half-open)
    "SELECT id, n FROM t WHERE n > 0",
    "SELECT id FROM t WHERE n >= -1 AND k < 3",
    "SELECT id, v FROM t WHERE n < 2",
    # indexed scan feeding aggregation
    "SELECT COUNT(*) AS c, COUNT(n) AS cn, SUM(n) AS s, MIN(v) AS lo, "
    "MAX(v) AS hi FROM t WHERE k = 1",
    "SELECT k, SUM(v) AS sv FROM t WHERE n > -2 GROUP BY k ORDER BY k",
    # float kernels over the numpy-eligible column
    "SELECT id, v + 0.5 AS a, v * 2.0 AS m FROM t WHERE v > 0.25",
    "SELECT id FROM t WHERE v <= 1.0 ORDER BY id DESC LIMIT 5",
    # multi-key hash joins: inner, LEFT OUTER, with residual filters
    "SELECT t.id, e.w FROM t JOIN e ON t.k = e.a AND t.n = e.b "
    "ORDER BY t.id, e.w",
    "SELECT t.id, e.w FROM t LEFT JOIN e ON t.k = e.a AND t.n = e.b "
    "ORDER BY t.id, e.w",
    "SELECT t.id FROM t JOIN e ON t.k = e.a AND t.n = e.b "
    "WHERE e.w > 0.4 ORDER BY t.id",
    "SELECT t.k, COUNT(*) AS c, SUM(e.w) AS sw FROM t "
    "JOIN e ON t.k = e.a AND t.n = e.b GROUP BY t.k ORDER BY t.k",
    # index route + multi-key join in one plan
    "SELECT t.id, e.w FROM t JOIN e ON t.k = e.a AND t.n = e.b "
    "WHERE t.k = 2 ORDER BY t.id, e.w",
    # error parity: n may be zero or NULL under an indexed residual
    "SELECT v / n AS q FROM t WHERE k = 1",
]


def _build(rows, links):
    database = Database()
    database.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, k INT, n INT, v FLOAT)"
    )
    database.execute("CREATE INDEX idx_t_k ON t (k) USING hash")
    database.execute("CREATE INDEX idx_t_n ON t (n) USING sorted")
    # multi-column index: never an access path, but its maintenance
    # must survive the UPDATE/DELETE churn below.
    database.execute("CREATE INDEX idx_t_kn ON t (k, n) USING hash")
    for position, (k, n, v) in enumerate(rows):
        database.execute(
            "INSERT INTO t VALUES (?, ?, ?, ?)", [position, k, n, v]
        )
    database.execute("CREATE TABLE e (a INT, b INT, w FLOAT)")
    for a, b, w in links:
        database.execute("INSERT INTO e VALUES (?, ?, ?)", [a, b, w])
    # Scramble insertion order vs rowid order: update_rowid re-inserts
    # rows, deletes punch holes, and both force index maintenance.
    database.execute("UPDATE t SET v = v + 0.25 WHERE k = 0")
    database.execute("UPDATE t SET k = 3 WHERE n = -1")
    database.execute("DELETE FROM t WHERE n = 3")
    return database


def _run(rows, links, sql, compile_expressions, vectorize,
         warm=False, numpy=None):
    saved_compile = planner_module.COMPILE_EXPRESSIONS
    saved_vectorize = planner_module.VECTORIZE
    saved_numpy = vector_module.NUMPY
    planner_module.COMPILE_EXPRESSIONS = compile_expressions
    planner_module.VECTORIZE = vectorize
    if numpy is not None:
        vector_module.NUMPY = numpy
    try:
        database = _build(rows, links)
        try:
            if warm:
                try:
                    database.query(sql)
                except Exception:
                    pass  # the second run must error identically
            result = database.query(sql)
        except Exception as exc:  # error parity is part of the contract
            return ("error", type(exc).__name__)
        return ("rows", result.columns, result.rows)
    finally:
        planner_module.COMPILE_EXPRESSIONS = saved_compile
        planner_module.VECTORIZE = saved_vectorize
        vector_module.NUMPY = saved_numpy


CONFIGS = (
    ("compiled-cold", True, False, False),
    ("compiled-warm", True, False, True),
    ("interpreted", False, False, False),
    ("vectorized-cold", True, True, False),
    ("vectorized-warm", True, True, True),
)


@settings(max_examples=15)
@given(rows=row_strategy, links=link_strategy,
       sql=st.sampled_from(QUERY_POOL))
def test_five_config_equivalence(rows, links, sql):
    outcomes = {
        name: _run(rows, links, sql, compile_expressions, vectorize,
                   warm=warm)
        for name, compile_expressions, vectorize, warm in CONFIGS
    }
    kinds = {outcome[0] for outcome in outcomes.values()}
    assert len(kinds) == 1, f"error-parity divergence: {outcomes}"
    reference = outcomes["compiled-cold"]
    if kinds == {"rows"}:
        for name, outcome in outcomes.items():
            assert outcome == reference, (
                f"{name} diverges on {sql!r}: {outcome} != {reference}"
            )


@settings(max_examples=15)
@given(rows=row_strategy, links=link_strategy,
       sql=st.sampled_from(QUERY_POOL))
def test_numpy_toggle_bit_identity(rows, links, sql):
    """vectorized+numpy ≡ vectorized-pure-python ≡ compiled row path."""
    row_path = _run(rows, links, sql, True, False)
    numpy_off = _run(rows, links, sql, True, True, numpy=False)
    numpy_on = _run(rows, links, sql, True, True,
                    numpy=vector_module.HAS_NUMPY)
    assert numpy_off == numpy_on, f"numpy toggle diverges on {sql!r}"
    assert numpy_on[0] == row_path[0]
    if row_path[0] == "rows":
        assert numpy_on == row_path, f"numpy path diverges on {sql!r}"


@settings(max_examples=15)
@given(rows=row_strategy, links=link_strategy,
       sql=st.sampled_from(QUERY_POOL),
       batch_size=st.sampled_from([1, 2, 3, 7]))
def test_equivalence_with_tiny_batches(rows, links, sql, batch_size):
    """Index gathers and composite-key buckets straddling batch edges."""
    saved = vector_batch.BATCH_SIZE
    vector_batch.BATCH_SIZE = batch_size
    try:
        reference = _run(rows, links, sql, True, False)
        vectorized = _run(rows, links, sql, True, True)
    finally:
        vector_batch.BATCH_SIZE = saved
    assert reference[0] == vectorized[0]
    if reference[0] == "rows":
        assert reference == vectorized


@pytest.mark.parametrize("delta", [-1, 0, 1])
def test_batch_boundary_row_counts(monkeypatch, delta):
    """Exactly N-1 / N / N+1 rows around the batch edge, every query."""
    monkeypatch.setattr(vector_batch, "BATCH_SIZE", 8)
    count = 8 + delta
    rows = [
        (i % 4, [None, -2, 0, 1, 2][i % 5], [0.25, 0.5, 1.0, 2.0][i % 4])
        for i in range(count)
    ]
    links = [
        (i % 4 if i % 3 else None, [None, 0, 1][i % 3], 0.5)
        for i in range(count + 2)
    ]
    for sql in QUERY_POOL:
        reference = _run(rows, links, sql, True, False)
        vectorized = _run(rows, links, sql, True, True)
        assert reference[0] == vectorized[0], (sql, reference, vectorized)
        if reference[0] == "rows":
            assert reference == vectorized, sql


def test_duplicate_composite_keys_and_null_key_parts():
    """Pinned corpus: duplicate (k, n) pairs on both join sides, NULL in
    either key part (never matches, LEFT OUTER still emits the row)."""
    rows = [
        (1, 1, 0.5), (1, 1, 1.0), (1, 1, 2.0),   # duplicate composite key
        (2, None, 0.5), (2, 2, 0.25),            # NULL key part on build
        (3, -1, 1.0),
    ]
    links = [
        (1, 1, 0.25), (1, 1, 0.5),               # duplicate probe key
        (None, 1, 1.0), (2, None, 2.0),          # NULL key parts on probe
        (3, -1, 0.5), (0, 0, 0.25),              # unmatched probe
    ]
    pool = [
        "SELECT t.id, e.w FROM t JOIN e ON t.k = e.a AND t.n = e.b "
        "ORDER BY t.id, e.w",
        "SELECT t.id, e.w FROM t LEFT JOIN e ON t.k = e.a AND t.n = e.b "
        "ORDER BY t.id, e.w",
        "SELECT COUNT(*) AS c FROM t JOIN e ON t.k = e.a AND t.n = e.b",
    ]
    for sql in pool:
        reference = _run(rows, links, sql, True, False)
        for name, compile_expressions, vectorize, warm in CONFIGS:
            outcome = _run(rows, links, sql, compile_expressions,
                           vectorize, warm=warm)
            assert outcome == reference, (name, sql, outcome, reference)
        numpy_on = _run(rows, links, sql, True, True,
                        numpy=vector_module.HAS_NUMPY)
        assert numpy_on == reference, (sql, numpy_on, reference)


def test_index_scan_empty_and_miss():
    """Empty tables and probes that match nothing, through the index."""
    pool = [
        "SELECT id FROM t WHERE k = 2",
        "SELECT id FROM t WHERE n > 100",
        "SELECT COUNT(*) AS c FROM t WHERE k = 0",
        "SELECT t.id, e.w FROM t JOIN e ON t.k = e.a AND t.n = e.b "
        "ORDER BY t.id, e.w",
    ]
    for rows in ([], [(0, None, 0.5), (1, 5, 1.0)]):
        for sql in pool:
            reference = _run(rows, [], sql, True, False)
            vectorized = _run(rows, [], sql, True, True)
            assert reference == vectorized, (sql, rows, reference, vectorized)
