"""Tests for views and INSERT ... SELECT."""

import pytest

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.minidb import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE courses (id INTEGER PRIMARY KEY, dep TEXT, units INTEGER)"
    )
    database.execute(
        "INSERT INTO courses VALUES (1, 'CS', 5), (2, 'CS', 3), (3, 'HIST', 4)"
    )
    return database


class TestViews:
    def test_create_and_query(self, db):
        db.execute("CREATE VIEW cs AS SELECT id, units FROM courses WHERE dep = 'CS'")
        result = db.query("SELECT * FROM cs ORDER BY id")
        assert result.rows == [(1, 5), (2, 3)]
        assert result.columns == ["id", "units"]

    def test_view_reflects_base_table_changes(self, db):
        db.execute("CREATE VIEW cs AS SELECT id FROM courses WHERE dep = 'CS'")
        db.execute("INSERT INTO courses VALUES (4, 'CS', 2)")
        assert len(db.query("SELECT * FROM cs")) == 3

    def test_view_with_aggregation(self, db):
        db.execute(
            "CREATE VIEW per_dep AS SELECT dep, COUNT(*) AS n, SUM(units) AS u "
            "FROM courses GROUP BY dep"
        )
        result = db.query("SELECT * FROM per_dep ORDER BY dep")
        assert result.rows == [("CS", 2, 8), ("HIST", 1, 4)]

    def test_view_joins_with_tables(self, db):
        db.execute("CREATE VIEW cs AS SELECT id FROM courses WHERE dep = 'CS'")
        result = db.query(
            "SELECT c.units FROM cs v JOIN courses c ON v.id = c.id ORDER BY c.id"
        )
        assert result.column("units") == [5, 3]

    def test_view_on_view(self, db):
        db.execute("CREATE VIEW cs AS SELECT id, units FROM courses WHERE dep = 'CS'")
        db.execute("CREATE VIEW heavy_cs AS SELECT id FROM cs WHERE units > 4")
        assert db.query("SELECT * FROM heavy_cs").rows == [(1,)]

    def test_view_alias(self, db):
        db.execute("CREATE VIEW cs AS SELECT id FROM courses WHERE dep = 'CS'")
        result = db.query("SELECT v.id FROM cs AS v ORDER BY v.id")
        assert result.column("id") == [1, 2]

    def test_create_view_validates_immediately(self, db):
        with pytest.raises(UnknownTableError):
            db.execute("CREATE VIEW bad AS SELECT * FROM nothing")
        with pytest.raises(UnknownColumnError):
            db.execute("CREATE VIEW bad AS SELECT nope FROM courses")

    def test_duplicate_names_rejected(self, db):
        db.execute("CREATE VIEW cs AS SELECT id FROM courses")
        with pytest.raises(SchemaError):
            db.execute("CREATE VIEW cs AS SELECT id FROM courses")
        with pytest.raises(SchemaError):
            db.execute("CREATE TABLE cs (x INTEGER)")
        with pytest.raises(SchemaError):
            db.execute("CREATE VIEW courses AS SELECT id FROM courses")

    def test_drop_view(self, db):
        db.execute("CREATE VIEW cs AS SELECT id FROM courses")
        db.execute("DROP VIEW cs")
        with pytest.raises(UnknownTableError):
            db.query("SELECT * FROM cs")
        with pytest.raises(SchemaError):
            db.execute("DROP VIEW cs")
        db.execute("DROP VIEW IF EXISTS cs")  # silent

    def test_drop_table_referenced_by_view_blocked(self, db):
        db.execute("CREATE VIEW cs AS SELECT id FROM courses")
        with pytest.raises(SchemaError, match="view"):
            db.execute("DROP TABLE courses")
        db.execute("DROP VIEW cs")
        db.execute("DROP TABLE courses")

    def test_view_names_listing(self, db):
        db.execute("CREATE VIEW cs AS SELECT id FROM courses")
        assert db.view_names() == ["cs"]

    def test_dml_on_view_rejected(self, db):
        db.execute("CREATE VIEW cs AS SELECT id FROM courses")
        with pytest.raises(UnknownTableError):
            db.execute("INSERT INTO cs VALUES (9)")
        with pytest.raises(UnknownTableError):
            db.execute("DELETE FROM cs")


class TestInsertSelect:
    def test_positional(self, db):
        db.execute("CREATE TABLE archive (id INTEGER PRIMARY KEY, dep TEXT, units INTEGER)")
        count = db.execute("INSERT INTO archive SELECT * FROM courses WHERE dep = 'CS'")
        assert count == 2
        assert db.query("SELECT COUNT(*) FROM archive").scalar() == 2

    def test_named_columns_reorder(self, db):
        db.execute("CREATE TABLE small (a INTEGER PRIMARY KEY, b TEXT)")
        db.execute("INSERT INTO small (b, a) SELECT dep, id FROM courses")
        assert db.query("SELECT b FROM small WHERE a = 3").scalar() == "HIST"

    def test_expressions_in_select(self, db):
        db.execute("CREATE TABLE doubled (id INTEGER PRIMARY KEY, u INTEGER)")
        db.execute("INSERT INTO doubled SELECT id, units * 2 FROM courses")
        assert db.query("SELECT u FROM doubled WHERE id = 1").scalar() == 10

    def test_arity_mismatch(self, db):
        db.execute("CREATE TABLE narrow (a INTEGER)")
        with pytest.raises(SchemaError):
            db.execute("INSERT INTO narrow SELECT id, dep FROM courses")

    def test_named_arity_mismatch(self, db):
        db.execute("CREATE TABLE narrow (a INTEGER, b TEXT)")
        with pytest.raises(SchemaError):
            db.execute("INSERT INTO narrow (a) SELECT id, dep FROM courses")

    def test_constraints_enforced(self, db):
        db.execute("CREATE TABLE unique_ids (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO unique_ids SELECT id FROM courses")
        with pytest.raises(Exception):
            db.execute("INSERT INTO unique_ids SELECT id FROM courses")

    def test_insert_from_view(self, db):
        db.execute("CREATE VIEW cs AS SELECT id FROM courses WHERE dep = 'CS'")
        db.execute("CREATE TABLE ids (id INTEGER PRIMARY KEY)")
        assert db.execute("INSERT INTO ids SELECT id FROM cs") == 2

    def test_roundtrip_to_sql(self, db):
        from repro.minidb.sql.parser import parse_statement

        statement = parse_statement(
            "INSERT INTO t (a, b) SELECT x, y FROM s WHERE x > 1"
        )
        again = parse_statement(statement.to_sql())
        assert again.to_sql() == statement.to_sql()


class TestViewsAndTransactions:
    def test_view_created_in_rolled_back_transaction_vanishes(self, db):
        db.begin()
        db.execute("CREATE VIEW temp_v AS SELECT id FROM courses")
        db.rollback()
        assert not db.has_view("temp_v")

    def test_view_dropped_in_rolled_back_transaction_returns(self, db):
        db.execute("CREATE VIEW keeper AS SELECT id FROM courses")
        db.begin()
        db.execute("DROP VIEW keeper")
        db.rollback()
        assert db.has_view("keeper")
        assert len(db.query("SELECT * FROM keeper")) == 3

    def test_view_survives_commit(self, db):
        db.begin()
        db.execute("CREATE VIEW committed_v AS SELECT id FROM courses")
        db.commit()
        assert db.has_view("committed_v")
