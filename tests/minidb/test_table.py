"""Unit tests for row storage, keys, and incremental index maintenance."""

import pytest

from repro.errors import IntegrityError, SchemaError
from repro.minidb.indexes import HashIndex
from repro.minidb.schema import make_schema
from repro.minidb.table import Table
from repro.minidb.types import DataType


def students_table():
    schema = make_schema(
        "students",
        [
            ("SuID", DataType.INTEGER),
            ("Name", DataType.TEXT),
            ("GPA", DataType.FLOAT),
        ],
        primary_key=["SuID"],
        unique_keys=[["Name"]],
    )
    return Table(schema)


class TestInsert:
    def test_insert_returns_increasing_rowids(self):
        table = students_table()
        first = table.insert([1, "ann", 3.5])
        second = table.insert([2, "bob", 3.0])
        assert second > first

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            students_table().insert([1, "ann"])

    def test_duplicate_pk_rejected(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        with pytest.raises(IntegrityError):
            table.insert([1, "other", 2.0])

    def test_null_pk_rejected(self):
        with pytest.raises(IntegrityError):
            students_table().insert([None, "ann", 3.5])

    def test_unique_constraint(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        with pytest.raises(IntegrityError):
            table.insert([2, "ann", 2.0])

    def test_null_in_unique_key_allowed_repeatedly(self):
        table = students_table()
        table.insert([1, None, 3.5])
        table.insert([2, None, 2.0])  # two NULL names are fine
        assert len(table) == 2

    def test_insert_dict_defaults_missing_to_null(self):
        table = students_table()
        table.insert_dict({"SuID": 1, "Name": "ann"})
        assert table.lookup_pk((1,)) == (1, "ann", None)

    def test_int_promoted_to_float_column(self):
        table = students_table()
        table.insert([1, "ann", 4])
        assert table.lookup_pk((1,))[2] == 4.0


class TestLookup:
    def test_lookup_pk_found_and_missing(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        assert table.lookup_pk((1,)) == (1, "ann", 3.5)
        assert table.lookup_pk((99,)) is None

    def test_scan_equal_without_index(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        table.insert([2, "bob", 3.5])
        rows = list(table.scan_equal("GPA", 3.5))
        assert len(rows) == 2

    def test_scan_equal_with_index(self):
        table = students_table()
        table.attach_index("by_gpa", HashIndex(), ["GPA"])
        table.insert([1, "ann", 3.5])
        table.insert([2, "bob", 3.0])
        rows = list(table.scan_equal("GPA", 3.0))
        assert rows == [(2, "bob", 3.0)]


class TestDelete:
    def test_delete_where(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        table.insert([2, "bob", 2.5])
        removed = table.delete_where(lambda row: row[2] < 3.0)
        assert removed == 1
        assert table.lookup_pk((2,)) is None

    def test_delete_frees_pk_for_reuse(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        table.delete_where(lambda row: True)
        table.insert([1, "ann2", 3.0])
        assert table.lookup_pk((1,)) == (1, "ann2", 3.0)

    def test_delete_updates_index(self):
        table = students_table()
        index = HashIndex()
        table.attach_index("by_gpa", index, ["GPA"])
        table.insert([1, "ann", 3.5])
        table.delete_where(lambda row: True)
        assert list(index.find((3.5,))) == []


class TestUpdate:
    def test_update_where_transform(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        touched = table.update_where(
            lambda row: row[0] == 1,
            lambda row: (row[0], row[1], 4.0),
        )
        assert touched == 1
        assert table.lookup_pk((1,))[2] == 4.0

    def test_update_pk_collision_rejected(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        table.insert([2, "bob", 2.5])
        with pytest.raises(IntegrityError):
            table.update_where(
                lambda row: row[0] == 2,
                lambda row: (1, row[1], row[2]),
            )

    def test_update_keeps_rowid_stable(self):
        table = students_table()
        rowid = table.insert([1, "ann", 3.5])
        table.update_rowid(rowid, (1, "ann", 3.9))
        assert table.get(rowid) == (1, "ann", 3.9)

    def test_update_maintains_unique_map(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        table.update_where(lambda row: True, lambda row: (1, "anna", 3.5))
        table.insert([2, "ann", 3.0])  # old name released
        with pytest.raises(IntegrityError):
            table.insert([3, "anna", 3.0])


class TestSnapshotRestore:
    def test_restore_rebuilds_state(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        snap = table.snapshot()
        next_rowid = table.next_rowid
        table.insert([2, "bob", 2.5])
        table.restore(snap, next_rowid)
        assert len(table) == 1
        assert table.lookup_pk((2,)) is None
        table.insert([2, "bob", 2.5])  # pk map was rebuilt correctly
        with pytest.raises(IntegrityError):
            table.insert([1, "dup", 1.0])

    def test_restore_rebuilds_indexes(self):
        table = students_table()
        index = HashIndex()
        table.attach_index("by_gpa", index, ["GPA"])
        table.insert([1, "ann", 3.5])
        snap = table.snapshot()
        next_rowid = table.next_rowid
        table.insert([2, "bob", 3.5])
        table.restore(snap, next_rowid)
        assert len(list(index.find((3.5,)))) == 1


class TestClear:
    def test_clear_empties_everything(self):
        table = students_table()
        table.insert([1, "ann", 3.5])
        table.clear()
        assert len(table) == 0
        table.insert([1, "ann", 3.5])  # keys were cleared
