"""Crash consistency for :mod:`repro.minidb.persist`.

The manifest contract: ``manifest.json`` is written last with the byte
size of every file, so any torn snapshot (truncated CSV, missing file,
garbage manifest) is detected at load time instead of silently loading
half a database; version counters and the schema epoch survive a
save/load round trip so plan-cache keys can't alias across a restore.
"""

import json

import pytest

from repro.errors import MiniDBError
from repro.minidb import Database
from repro.minidb.persist import (
    MANIFEST_NAME,
    load_database,
    save_database,
)
from repro.testkit.churn import ChurnDriver


def build_db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE Students (SuID INTEGER PRIMARY KEY, Name TEXT,
          GPA FLOAT);
        CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER,
          Rating FLOAT, PRIMARY KEY (SuID, CourseID));
        CREATE INDEX idx_comments_suid ON Comments (SuID) USING hash;
        """
    )
    for suid in range(1, 5):
        db.table("Students").insert([suid, f"s{suid}", suid / 2.0])
    for suid in range(1, 5):
        db.table("Comments").insert([suid, 1, 3.5])
    return db


class TestManifest:
    def test_manifest_written_with_sizes(self, tmp_path):
        db = build_db()
        save_database(db, tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["schema_epoch"] == db.schema_epoch
        for name, size in manifest["files"].items():
            assert (tmp_path / name).stat().st_size == size
        assert manifest["tables"]["Students"]["rows"] == 4
        assert (
            manifest["tables"]["Comments"]["data_version"]
            == db.table("Comments").data_version
        )

    def test_no_tmp_files_left_behind(self, tmp_path):
        save_database(build_db(), tmp_path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_stale_csv_removed_on_resave(self, tmp_path):
        db = build_db()
        save_database(db, tmp_path)
        db.execute("DROP TABLE Comments")
        save_database(db, tmp_path)
        assert not (tmp_path / "Comments.csv").exists()
        loaded = load_database(tmp_path)
        assert loaded.table_names() == ["Students"]


class TestPartialWriteDetection:
    def test_truncated_csv_rejected(self, tmp_path):
        save_database(build_db(), tmp_path)
        csv = tmp_path / "Comments.csv"
        csv.write_text(csv.read_text()[:-10])
        with pytest.raises(MiniDBError, match="partial write"):
            load_database(tmp_path)

    def test_missing_file_rejected(self, tmp_path):
        save_database(build_db(), tmp_path)
        (tmp_path / "Comments.csv").unlink()
        with pytest.raises(MiniDBError, match="missing on disk"):
            load_database(tmp_path)

    def test_garbage_manifest_rejected(self, tmp_path):
        save_database(build_db(), tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(MiniDBError, match="corrupt"):
            load_database(tmp_path)

    def test_unknown_format_rejected(self, tmp_path):
        save_database(build_db(), tmp_path)
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"format": 99, "files": {}})
        )
        with pytest.raises(MiniDBError, match="unsupported manifest"):
            load_database(tmp_path)

    def test_legacy_directory_without_manifest_loads(self, tmp_path):
        save_database(build_db(), tmp_path)
        (tmp_path / MANIFEST_NAME).unlink()
        loaded = load_database(tmp_path)
        assert len(loaded.table("Students")) == 4


class TestVersionCounters:
    def test_versions_survive_reload(self, tmp_path):
        db = build_db()
        # Spend some version numbers before saving.
        for _ in range(3):
            db.execute("UPDATE Students SET GPA = GPA WHERE SuID = 1")
        save_database(db, tmp_path)
        loaded = load_database(tmp_path)
        assert loaded.schema_epoch >= db.schema_epoch
        for name in ("Students", "Comments"):
            assert (
                loaded.table(name).data_version
                >= db.table(name).data_version
            )
            assert (
                loaded.table(name).indexed_version
                >= db.table(name).indexed_version
            )

    def test_fast_forward_never_rewinds(self, tmp_path):
        db = build_db()
        table = db.table("Students")
        before = table.data_version
        table.fast_forward_versions(0, 0)
        assert table.data_version == before

    def test_reload_roundtrip_data_identical(self, tmp_path):
        db = build_db()
        save_database(db, tmp_path)
        loaded = load_database(tmp_path)
        original = db.query("SELECT SuID, Name, GPA FROM Students")
        replayed = loaded.query("SELECT SuID, Name, GPA FROM Students")
        assert sorted(original.rows) == sorted(replayed.rows)


class TestMidChurnSnapshot:
    def test_snapshot_during_churn_reloads_identically(self, tmp_path):
        """Save mid-churn, keep mutating, save again: both snapshots
        load, validate, and match the live data at their save points."""
        driver = ChurnDriver(seed=7, steps=10, check_every=100)
        driver._setup()
        for _ in range(5):
            driver._mutate()
        first = tmp_path / "mid"
        save_database(driver.db, first)
        mid_rows = sorted(
            driver.db.query(
                "SELECT SuID, CourseID, Rating FROM Comments"
            ).rows
        )
        for _ in range(5):
            driver._mutate()
        second = tmp_path / "end"
        save_database(driver.db, second)
        reloaded_mid = load_database(first)
        assert sorted(
            reloaded_mid.query(
                "SELECT SuID, CourseID, Rating FROM Comments"
            ).rows
        ) == mid_rows
        reloaded_end = load_database(second)
        assert sorted(
            reloaded_end.query(
                "SELECT SuID, CourseID, Rating FROM Comments"
            ).rows
        ) == sorted(
            driver.db.query(
                "SELECT SuID, CourseID, Rating FROM Comments"
            ).rows
        )
        assert reloaded_end.schema_epoch >= driver.db.schema_epoch
