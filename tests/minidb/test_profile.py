"""Tests for Database.profile (EXPLAIN ANALYZE)."""

import pytest

from repro.errors import PlannerError
from repro.minidb import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, g TEXT, x INTEGER)")
    for i in range(20):
        database.execute(f"INSERT INTO t VALUES ({i}, '{'ab'[i % 2]}', {i % 5})")
    return database


class TestProfile:
    def test_returns_result_and_report(self, db):
        result, report = db.profile("SELECT id FROM t WHERE x > 2")
        assert len(result) == len(
            db.query("SELECT id FROM t WHERE x > 2")
        )
        assert "SeqScan" in report
        assert "rows" in report

    def test_scan_count_reflects_filter(self, db):
        _result, report = db.profile("SELECT id FROM t WHERE g = 'a'")
        assert "-> 10 rows" in report

    def test_aggregate_counts(self, db):
        result, report = db.profile(
            "SELECT g, COUNT(*) FROM t GROUP BY g"
        )
        assert "Aggregate" in report
        assert "-> 2 rows" in report
        assert len(result) == 2

    def test_join_nodes_counted(self, db):
        _result, report = db.profile(
            "SELECT a.id FROM t a JOIN t b ON a.x = b.x"
        )
        assert "HashJoin" in report
        lines = [line for line in report.splitlines() if "SeqScan" in line]
        assert len(lines) == 2

    def test_limit_shows_early_termination(self, db):
        _result, report = db.profile("SELECT id FROM t LIMIT 3")
        assert "Limit(3 offset 0) -> 3 rows" in report
        # The scan under the limit produced only the rows that were pulled.
        scan_line = next(l for l in report.splitlines() if "SeqScan" in l)
        assert "-> 3 rows" in scan_line

    def test_subquery_plans_included(self, db):
        _result, report = db.profile(
            "SELECT * FROM (SELECT id FROM t WHERE x = 1) s"
        )
        assert "SubqueryScan" in report

    def test_profile_rejects_non_select(self, db):
        with pytest.raises(PlannerError):
            db.profile("DELETE FROM t")

    def test_profile_matches_query_output(self, db):
        sql = "SELECT g, SUM(x) AS s FROM t GROUP BY g ORDER BY s DESC"
        profiled, _report = db.profile(sql)
        plain = db.query(sql)
        assert profiled.rows == plain.rows
        assert profiled.columns == plain.columns
