"""Wide end-to-end coverage of the SQL surface, plus round-trip properties."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.minidb import Database
from repro.minidb.expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.minidb.functions import FunctionRegistry
from repro.minidb.sql.parser import parse_expression


@pytest.fixture()
def db():
    database = Database()
    database.execute_script(
        """
        CREATE TABLE events (
          id INTEGER PRIMARY KEY,
          label TEXT,
          amount FLOAT,
          flag BOOLEAN,
          happened DATE
        );
        INSERT INTO events VALUES
          (1, 'alpha', 10.5, TRUE, '2008-01-15'),
          (2, 'beta', -3.25, FALSE, '2008-06-30'),
          (3, 'gamma', NULL, TRUE, '2008-12-01'),
          (4, NULL, 7.0, NULL, NULL),
          (5, 'alpha beta', 0.0, FALSE, '2009-01-04');
        """
    )
    return database


class TestScalarSurface:
    def test_case_in_select(self, db):
        result = db.query(
            "SELECT id, CASE WHEN amount > 5 THEN 'big' "
            "WHEN amount >= 0 THEN 'small' ELSE 'negative' END AS size "
            "FROM events ORDER BY id"
        )
        # id=3 has NULL amount: both WHEN conditions are UNKNOWN, so the
        # ELSE branch applies (standard SQL CASE semantics).
        assert result.column("size") == [
            "big", "negative", "negative", "big", "small",
        ]

    def test_functions_in_where(self, db):
        result = db.query(
            "SELECT id FROM events WHERE UPPER(label) = 'ALPHA'"
        )
        assert result.column("id") == [1]

    def test_date_comparison(self, db):
        result = db.query(
            "SELECT id FROM events WHERE happened >= DATE '2008-06-01' "
            "ORDER BY id"
        )
        assert result.column("id") == [2, 3, 5]

    def test_year_function(self, db):
        result = db.query(
            "SELECT id FROM events WHERE YEAR(happened) = 2009"
        )
        assert result.column("id") == [5]

    def test_boolean_column_predicates(self, db):
        assert db.query(
            "SELECT COUNT(*) FROM events WHERE flag"
        ).scalar() == 2
        assert db.query(
            "SELECT COUNT(*) FROM events WHERE NOT flag"
        ).scalar() == 2
        assert db.query(
            "SELECT COUNT(*) FROM events WHERE flag IS NULL"
        ).scalar() == 1

    def test_between_and_in(self, db):
        result = db.query(
            "SELECT id FROM events WHERE amount BETWEEN 0 AND 10 ORDER BY id"
        )
        assert result.column("id") == [4, 5]
        result = db.query("SELECT id FROM events WHERE id IN (2, 4, 9)")
        assert sorted(result.column("id")) == [2, 4]

    def test_ilike(self, db):
        result = db.query("SELECT id FROM events WHERE label ILIKE 'ALPHA%'")
        assert sorted(result.column("id")) == [1, 5]

    def test_concat_operator(self, db):
        value = db.query(
            "SELECT label || '-' || id FROM events WHERE id = 1"
        ).scalar()
        assert value == "alpha-1"

    def test_coalesce_nullif(self, db):
        result = db.query(
            "SELECT COALESCE(label, '<none>') AS shown FROM events ORDER BY id"
        )
        assert result.column("shown")[3] == "<none>"
        value = db.query(
            "SELECT NULLIF(label, 'alpha') FROM events WHERE id = 1"
        ).scalar()
        assert value is None

    def test_arithmetic_precedence(self, db):
        assert db.query("SELECT 2 + 3 * 4").scalar() == 14
        assert db.query("SELECT (2 + 3) * 4").scalar() == 20
        assert db.query("SELECT -2 * 3").scalar() == -6
        assert db.query("SELECT 7 % 3").scalar() == 1

    def test_null_arithmetic_propagates(self, db):
        result = db.query("SELECT amount + 1 FROM events WHERE id = 3")
        assert result.scalar() is None

    def test_order_by_expression(self, db):
        result = db.query(
            "SELECT id FROM events WHERE amount IS NOT NULL "
            "ORDER BY ABS(amount) DESC"
        )
        assert result.column("id")[0] == 1  # |10.5| largest


class TestAggregateSurface:
    def test_aggregate_of_expression(self, db):
        value = db.query(
            "SELECT SUM(amount * 2) FROM events WHERE amount > 0"
        ).scalar()
        assert value == pytest.approx(35.0)

    def test_case_inside_aggregate(self, db):
        value = db.query(
            "SELECT SUM(CASE WHEN flag THEN 1 ELSE 0 END) FROM events "
            "WHERE flag IS NOT NULL"
        ).scalar()
        assert value == 2

    def test_having_with_expression(self, db):
        db.execute(
            "INSERT INTO events VALUES (6, 'alpha', 2.0, TRUE, '2008-02-02')"
        )
        result = db.query(
            "SELECT label, COUNT(*) AS n FROM events "
            "WHERE label IS NOT NULL GROUP BY label "
            "HAVING COUNT(*) * 2 >= 4 ORDER BY label"
        )
        assert result.rows == [("alpha", 2)]

    def test_group_by_boolean(self, db):
        result = db.query(
            "SELECT flag, COUNT(*) FROM events GROUP BY flag ORDER BY flag"
        )
        # NULL group first (NULLs sort first).
        assert result.rows == [(None, 1), (False, 2), (True, 2)]

    def test_min_max_on_dates(self, db):
        low, high = db.query(
            "SELECT MIN(happened), MAX(happened) FROM events"
        ).rows[0]
        assert low == datetime.date(2008, 1, 15)
        assert high == datetime.date(2009, 1, 4)

    def test_avg_distinct(self, db):
        db.execute(
            "INSERT INTO events VALUES (7, 'x', 7.0, TRUE, NULL)"
        )
        # amounts: 10.5, -3.25, 7.0(x2), 0.0 -> distinct avg
        value = db.query("SELECT AVG(DISTINCT amount) FROM events").scalar()
        assert value == pytest.approx((10.5 - 3.25 + 7.0 + 0.0) / 4)


# ---------------------------------------------------------------------------
# round-trip property: expression -> SQL text -> parse -> same value
# ---------------------------------------------------------------------------

_FUNCTIONS = FunctionRegistry()
_ENV = {
    "__functions__": _FUNCTIONS,
    "a": 3,
    "b": -1.5,
    "c": None,
    "s": "alpha",
}

literal_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-99, max_value=99),
    st.floats(min_value=-50, max_value=50, allow_nan=False).map(
        lambda v: round(v, 3)
    ),
    st.text(alphabet="ab c'", max_size=6),
)

column_names = st.sampled_from(["a", "b", "c", "s"])


def _leaf() -> st.SearchStrategy[Expression]:
    return st.one_of(
        literal_values.map(Literal),
        column_names.map(ColumnRef),
    )


def _numeric_leaf() -> st.SearchStrategy[Expression]:
    return st.one_of(
        st.integers(min_value=-20, max_value=20).map(Literal),
        st.sampled_from(["a", "b"]).map(ColumnRef),
    )


def _expressions(depth: int = 2) -> st.SearchStrategy[Expression]:
    if depth == 0:
        return _leaf()
    sub = _expressions(depth - 1)
    numeric = _numeric_leaf()
    return st.one_of(
        _leaf(),
        st.tuples(st.sampled_from(["+", "-", "*"]), numeric, numeric).map(
            lambda t: BinaryOp(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(["=", "<>", "<", ">="]), numeric, numeric).map(
            lambda t: BinaryOp(t[0], t[1], t[2])
        ),
        sub.map(lambda e: IsNull(e)),
        sub.map(lambda e: IsNull(e, negated=True)),
        st.tuples(numeric, st.lists(numeric, min_size=1, max_size=3)).map(
            lambda t: InList(t[0], t[1])
        ),
        st.tuples(numeric, numeric, numeric).map(
            lambda t: Between(t[0], t[1], t[2])
        ),
    )


class TestExpressionRoundTrip:
    @given(_expressions(depth=2))
    def test_to_sql_parse_evaluate_identical(self, expression):
        """expr.to_sql() parses back to an expression with the same value."""
        text = expression.to_sql()
        reparsed = parse_expression(text)
        original = _evaluate(expression)
        again = _evaluate(reparsed)
        if isinstance(original, float) and isinstance(again, float):
            assert original == pytest.approx(again)
        else:
            assert original == again

    @given(_expressions(depth=2))
    def test_to_sql_stabilizes_after_one_parse(self, expression):
        """One parse normalizes the rendering to a fixpoint.

        (A raw ``Literal(-1)`` renders as ``-1`` but parses as unary
        minus, which renders as ``(-1)`` — after that, stable.)
        """
        normalized = parse_expression(expression.to_sql()).to_sql()
        assert parse_expression(normalized).to_sql() == normalized


def _evaluate(expression):
    from repro.errors import ExecutionError

    try:
        return expression.evaluate(dict(_ENV))
    except ExecutionError as exc:
        return ("error", type(exc).__name__)
