"""Tests for uncorrelated IN/EXISTS subqueries in predicates."""

import pytest

from repro.errors import ExecutionError, PlannerError
from repro.minidb import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute_script(
        """
        CREATE TABLE courses (id INTEGER PRIMARY KEY, dep TEXT, units INTEGER);
        CREATE TABLE taken (sid INTEGER, cid INTEGER, PRIMARY KEY (sid, cid));
        INSERT INTO courses VALUES
          (1, 'CS', 5), (2, 'CS', 3), (3, 'H', 4), (4, 'H', 2);
        INSERT INTO taken VALUES (10, 1), (10, 3), (11, 2);
        """
    )
    return database


class TestInSubquery:
    def test_in(self, db):
        result = db.query(
            "SELECT id FROM courses WHERE id IN "
            "(SELECT cid FROM taken WHERE sid = 10) ORDER BY id"
        )
        assert result.column("id") == [1, 3]

    def test_not_in_is_the_anti_join(self, db):
        result = db.query(
            "SELECT id FROM courses WHERE id NOT IN "
            "(SELECT cid FROM taken WHERE sid = 10) ORDER BY id"
        )
        assert result.column("id") == [2, 4]

    def test_empty_subquery(self, db):
        assert (
            len(
                db.query(
                    "SELECT id FROM courses WHERE id IN "
                    "(SELECT cid FROM taken WHERE sid = 99)"
                )
            )
            == 0
        )
        assert (
            len(
                db.query(
                    "SELECT id FROM courses WHERE id NOT IN "
                    "(SELECT cid FROM taken WHERE sid = 99)"
                )
            )
            == 4
        )

    def test_subquery_with_expressions(self, db):
        result = db.query(
            "SELECT id FROM courses WHERE units IN "
            "(SELECT units FROM courses WHERE dep = 'CS') ORDER BY id"
        )
        assert result.column("id") == [1, 2]

    def test_one_column_required(self, db):
        with pytest.raises(PlannerError):
            db.query(
                "SELECT id FROM courses WHERE id IN (SELECT sid, cid FROM taken)"
            )

    def test_in_subquery_inside_boolean_tree(self, db):
        result = db.query(
            "SELECT id FROM courses WHERE dep = 'H' AND "
            "(id IN (SELECT cid FROM taken) OR units > 3) ORDER BY id"
        )
        assert result.column("id") == [3]

    def test_subquery_in_join_condition(self, db):
        result = db.query(
            "SELECT c.id FROM courses c JOIN taken t ON c.id = t.cid "
            "AND c.id IN (SELECT cid FROM taken WHERE sid = 10) ORDER BY c.id"
        )
        assert result.column("id") == [1, 3]

    def test_view_re_resolves_on_each_use(self, db):
        db.execute(
            "CREATE VIEW untaken AS SELECT id FROM courses "
            "WHERE id NOT IN (SELECT cid FROM taken)"
        )
        assert sorted(db.query("SELECT * FROM untaken").column("id")) == [4]
        db.execute("INSERT INTO taken VALUES (12, 4)")
        assert db.query("SELECT * FROM untaken").column("id") == []

    def test_null_semantics_preserved(self, db):
        db.execute("CREATE TABLE vals (v INTEGER)")
        db.execute("INSERT INTO vals VALUES (1), (NULL)")
        # NOT IN against a set containing NULL is UNKNOWN for non-members.
        result = db.query(
            "SELECT id FROM courses WHERE id NOT IN (SELECT v FROM vals)"
        )
        assert len(result) == 0


class TestExistsSubquery:
    def test_exists_true(self, db):
        assert (
            db.query(
                "SELECT COUNT(*) FROM courses WHERE EXISTS "
                "(SELECT cid FROM taken WHERE sid = 10)"
            ).scalar()
            == 4
        )

    def test_exists_false(self, db):
        assert (
            db.query(
                "SELECT COUNT(*) FROM courses WHERE EXISTS "
                "(SELECT cid FROM taken WHERE sid = 99)"
            ).scalar()
            == 0
        )

    def test_not_exists(self, db):
        assert (
            db.query(
                "SELECT COUNT(*) FROM courses WHERE NOT EXISTS "
                "(SELECT cid FROM taken WHERE sid = 99)"
            ).scalar()
            == 4
        )

    def test_exists_combined(self, db):
        result = db.query(
            "SELECT id FROM courses WHERE dep = 'CS' AND EXISTS "
            "(SELECT sid FROM taken) ORDER BY id"
        )
        assert result.column("id") == [1, 2]


class TestUnresolvedSubqueryErrors:
    def test_raw_evaluation_rejected(self):
        from repro.minidb.expressions import ColumnRef, InSubquery
        from repro.minidb.sql.parser import parse_statement

        query = parse_statement("SELECT 1")
        node = InSubquery(ColumnRef("x"), query)
        with pytest.raises(ExecutionError):
            node.evaluate({"x": 1})

    def test_to_sql_roundtrip(self):
        from repro.minidb.sql.parser import parse_statement

        statement = parse_statement(
            "SELECT id FROM c WHERE id IN (SELECT cid FROM t WHERE sid = 1)"
        )
        again = parse_statement(statement.to_sql())
        assert statement.to_sql() == again.to_sql()
