"""Integration tests: SELECT execution across the planner and executor."""

import pytest

from repro.errors import (
    AmbiguousColumnError,
    ExecutionError,
    MiniDBError,
    PlannerError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.minidb import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE courses (id INTEGER PRIMARY KEY, dep TEXT, "
        "title TEXT, units INTEGER)"
    )
    database.execute(
        "CREATE TABLE ratings (sid INTEGER, cid INTEGER, score FLOAT, "
        "PRIMARY KEY (sid, cid), "
        "FOREIGN KEY (cid) REFERENCES courses (id))"
    )
    database.execute(
        "INSERT INTO courses VALUES "
        "(1, 'CS', 'Intro to Programming', 5), "
        "(2, 'CS', 'Advanced Java', 3), "
        "(3, 'HIST', 'American History', 4), "
        "(4, 'HIST', 'Latin American Studies', 4), "
        "(5, 'MATH', 'Calculus', 5)"
    )
    database.execute(
        "INSERT INTO ratings VALUES "
        "(10, 1, 4.5), (10, 2, 3.0), (11, 1, 5.0), (11, 3, 2.0), (12, 4, 4.0)"
    )
    return database


class TestBasicSelect:
    def test_select_star(self, db):
        result = db.query("SELECT * FROM courses")
        assert result.columns == ["id", "dep", "title", "units"]
        assert len(result) == 5

    def test_projection_and_alias(self, db):
        result = db.query("SELECT title AS name FROM courses WHERE id = 1")
        assert result.columns == ["name"]
        assert result.scalar() == "Intro to Programming"

    def test_expression_in_select(self, db):
        result = db.query("SELECT units * 2 AS double_units FROM courses WHERE id = 5")
        assert result.scalar() == 10

    def test_where_filters(self, db):
        assert len(db.query("SELECT * FROM courses WHERE dep = 'CS'")) == 2

    def test_where_unknown_is_filtered(self, db):
        db.execute("INSERT INTO courses VALUES (6, NULL, 'Mystery', 1)")
        result = db.query("SELECT id FROM courses WHERE dep = 'CS'")
        assert {row[0] for row in result} == {1, 2}

    def test_no_from(self, db):
        assert db.query("SELECT 1 + 2 AS three").scalar() == 3

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.query("SELECT * FROM nope")

    def test_unknown_column(self, db):
        with pytest.raises(UnknownColumnError):
            db.query("SELECT nope FROM courses")

    def test_select_requires_query_for_query_api(self, db):
        with pytest.raises(MiniDBError):
            db.query("INSERT INTO courses VALUES (9, 'X', 'Y', 1)")


class TestJoins:
    def test_inner_join(self, db):
        result = db.query(
            "SELECT c.title, r.score FROM courses c "
            "JOIN ratings r ON c.id = r.cid ORDER BY c.id, r.sid"
        )
        assert len(result) == 5
        assert result.rows[0] == ("Intro to Programming", 4.5)

    def test_join_is_hash_join(self, db):
        plan = db.explain(
            "SELECT c.title FROM courses c JOIN ratings r ON c.id = r.cid"
        )
        assert "HashJoin" in plan

    def test_left_join_pads_nulls(self, db):
        result = db.query(
            "SELECT c.id, r.score FROM courses c "
            "LEFT JOIN ratings r ON c.id = r.cid WHERE r.score IS NULL"
        )
        assert {row[0] for row in result} == {5}

    def test_cross_join_cardinality(self, db):
        result = db.query("SELECT c.id FROM courses c CROSS JOIN ratings r")
        assert len(result) == 25

    def test_nonequi_join_falls_back_to_nested_loop(self, db):
        plan = db.explain(
            "SELECT c.id FROM courses c JOIN ratings r ON c.units > r.score"
        )
        assert "NestedLoopJoin" in plan

    def test_join_condition_with_residual(self, db):
        result = db.query(
            "SELECT c.id, r.sid FROM courses c "
            "JOIN ratings r ON c.id = r.cid AND r.score >= 4 ORDER BY c.id"
        )
        assert [row for row in result] == [(1, 10), (1, 11), (4, 12)]

    def test_ambiguous_bare_column_rejected(self, db):
        db.execute("CREATE TABLE other (id INTEGER, note TEXT)")
        db.execute("INSERT INTO other VALUES (1, 'x')")
        with pytest.raises(AmbiguousColumnError):
            db.query("SELECT id FROM courses CROSS JOIN other")

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(PlannerError):
            db.query("SELECT * FROM courses c JOIN ratings c ON 1 = 1")

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE students (sid INTEGER PRIMARY KEY, name TEXT)")
        db.execute("INSERT INTO students VALUES (10, 'ann'), (11, 'bob'), (12, 'eve')")
        result = db.query(
            "SELECT s.name, c.title FROM students s "
            "JOIN ratings r ON s.sid = r.sid "
            "JOIN courses c ON r.cid = c.id "
            "WHERE r.score >= 4.5 ORDER BY s.name"
        )
        assert result.rows == [("ann", "Intro to Programming"),
                               ("bob", "Intro to Programming")]


class TestAggregation:
    def test_count_star(self, db):
        assert db.query("SELECT COUNT(*) FROM courses").scalar() == 5

    def test_count_star_empty_table(self, db):
        db.execute("CREATE TABLE empty_t (x INTEGER)")
        assert db.query("SELECT COUNT(*) FROM empty_t").scalar() == 0

    def test_sum_avg_min_max(self, db):
        result = db.query(
            "SELECT SUM(units), AVG(units), MIN(units), MAX(units) FROM courses"
        )
        assert result.rows[0] == (21, 4.2, 3, 5)

    def test_aggregates_ignore_null(self, db):
        db.execute("INSERT INTO courses VALUES (7, 'X', 'NoUnits', NULL)")
        assert db.query("SELECT COUNT(units) FROM courses").scalar() == 5
        assert db.query("SELECT MIN(units) FROM courses").scalar() == 3

    def test_avg_of_empty_is_null(self, db):
        assert (
            db.query("SELECT AVG(score) FROM ratings WHERE score > 100").scalar()
            is None
        )

    def test_group_by(self, db):
        result = db.query(
            "SELECT dep, COUNT(*) AS n FROM courses GROUP BY dep ORDER BY dep"
        )
        assert result.rows == [("CS", 2), ("HIST", 2), ("MATH", 1)]

    def test_group_by_expression(self, db):
        result = db.query(
            "SELECT units > 3 AS heavy, COUNT(*) FROM courses "
            "GROUP BY units > 3 ORDER BY heavy"
        )
        assert result.rows == [(False, 1), (True, 4)]

    def test_having(self, db):
        result = db.query(
            "SELECT dep FROM courses GROUP BY dep HAVING COUNT(*) > 1 ORDER BY dep"
        )
        assert result.column("dep") == ["CS", "HIST"]

    def test_count_distinct(self, db):
        assert (
            db.query("SELECT COUNT(DISTINCT dep) FROM courses").scalar() == 3
        )

    def test_aggregate_arithmetic(self, db):
        value = db.query("SELECT MAX(units) - MIN(units) FROM courses").scalar()
        assert value == 2

    def test_stddev(self, db):
        value = db.query("SELECT STDDEV(units) FROM courses").scalar()
        assert value == pytest.approx(0.7483314, rel=1e-5)

    def test_group_concat(self, db):
        value = db.query(
            "SELECT GROUP_CONCAT(dep) FROM courses WHERE units = 5"
        ).scalar()
        assert value == "CS,MATH"


class TestOrderLimit:
    def test_order_by_column(self, db):
        result = db.query("SELECT title FROM courses ORDER BY title")
        assert result.column("title") == sorted(result.column("title"))

    def test_order_by_desc(self, db):
        result = db.query("SELECT units FROM courses ORDER BY units DESC")
        assert result.column("units") == [5, 5, 4, 4, 3]

    def test_order_by_alias(self, db):
        result = db.query(
            "SELECT units * 2 AS double_units FROM courses ORDER BY double_units"
        )
        assert result.column("double_units") == [6, 8, 8, 10, 10]

    def test_order_by_position(self, db):
        result = db.query("SELECT title, units FROM courses ORDER BY 2 DESC, 1")
        assert result.rows[0][1] == 5

    def test_order_by_position_out_of_range(self, db):
        with pytest.raises(PlannerError):
            db.query("SELECT title FROM courses ORDER BY 9")

    def test_order_by_aggregate(self, db):
        result = db.query(
            "SELECT dep, COUNT(*) FROM courses GROUP BY dep ORDER BY COUNT(*) DESC, dep"
        )
        assert result.rows[0][0] == "CS"

    def test_limit_offset(self, db):
        result = db.query("SELECT id FROM courses ORDER BY id LIMIT 2 OFFSET 1")
        assert result.column("id") == [2, 3]

    def test_multi_key_sort_with_nulls(self, db):
        db.execute("INSERT INTO courses VALUES (8, NULL, 'ZZZ', 1)")
        result = db.query("SELECT dep FROM courses ORDER BY dep")
        assert result.rows[0][0] is None


class TestDistinctUnionSubquery:
    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT dep FROM courses ORDER BY dep")
        assert result.column("dep") == ["CS", "HIST", "MATH"]

    def test_union_dedupes(self, db):
        result = db.query(
            "SELECT dep FROM courses WHERE units = 5 "
            "UNION SELECT dep FROM courses WHERE units = 3"
        )
        assert sorted(result.column("dep")) == ["CS", "MATH"]

    def test_union_all_keeps_duplicates(self, db):
        result = db.query(
            "SELECT dep FROM courses UNION ALL SELECT dep FROM courses"
        )
        assert len(result) == 10

    def test_union_arity_mismatch(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT id, dep FROM courses UNION SELECT id FROM courses")

    def test_union_order_by_output_column(self, db):
        result = db.query(
            "SELECT dep FROM courses WHERE units = 5 "
            "UNION SELECT dep FROM courses ORDER BY dep DESC LIMIT 2"
        )
        assert result.column("dep") == ["MATH", "HIST"]

    def test_subquery_in_from(self, db):
        result = db.query(
            "SELECT AVG(score) FROM "
            "(SELECT score FROM ratings WHERE score >= 3) good"
        )
        assert result.scalar() == pytest.approx(4.125)

    def test_nested_subqueries(self, db):
        result = db.query(
            "SELECT n FROM (SELECT COUNT(*) AS n FROM "
            "(SELECT * FROM courses WHERE dep = 'CS') cs) counted"
        )
        assert result.scalar() == 2

    def test_where_pushed_into_subquery_output(self, db):
        result = db.query(
            "SELECT title FROM (SELECT title, units FROM courses) t "
            "WHERE units = 3"
        )
        assert result.column("title") == ["Advanced Java"]


class TestIndexUsage:
    def test_pk_point_lookup_in_plan(self, db):
        assert "primary key" in db.explain("SELECT title FROM courses WHERE id = 3")

    def test_hash_index_used(self, db):
        db.execute("CREATE INDEX idx_dep ON courses (dep)")
        plan = db.explain("SELECT title FROM courses WHERE dep = 'CS'")
        assert "IndexScan" in plan and "idx_dep" in plan

    def test_sorted_index_range(self, db):
        db.execute("CREATE INDEX idx_units ON courses (units) USING sorted")
        plan = db.explain("SELECT title FROM courses WHERE units >= 4 AND units < 5")
        assert "range" in plan
        result = db.query(
            "SELECT id FROM courses WHERE units >= 4 AND units < 5 ORDER BY id"
        )
        assert result.column("id") == [3, 4]

    def test_index_and_seqscan_agree(self, db):
        baseline = db.query(
            "SELECT id FROM courses WHERE dep = 'HIST' ORDER BY id"
        ).rows
        db.execute("CREATE INDEX idx_dep ON courses (dep)")
        indexed = db.query(
            "SELECT id FROM courses WHERE dep = 'HIST' ORDER BY id"
        ).rows
        assert baseline == indexed

    def test_predicate_pushdown_in_plan(self, db):
        plan = db.explain(
            "SELECT c.title FROM courses c JOIN ratings r ON c.id = r.cid "
            "WHERE c.dep = 'CS' AND r.score > 4"
        )
        # Both single-table conjuncts appear as scan filters, not a top Filter.
        assert "filter=" in plan
        assert not plan.startswith("Filter")


class TestResultSet:
    def test_to_dicts(self, db):
        dicts = db.query("SELECT id, dep FROM courses WHERE id = 1").to_dicts()
        assert dicts == [{"id": 1, "dep": "CS"}]

    def test_first_empty(self, db):
        assert db.query("SELECT * FROM courses WHERE id = 99").first() is None

    def test_scalar_requires_1x1(self, db):
        with pytest.raises(MiniDBError):
            db.query("SELECT * FROM courses").scalar()

    def test_pretty_renders(self, db):
        text = db.query("SELECT id, title FROM courses ORDER BY id").pretty(max_rows=2)
        assert "Intro to Programming" in text
        assert "more rows" in text

    def test_column_unknown(self, db):
        with pytest.raises(UnknownColumnError):
            db.query("SELECT id FROM courses").column("nope")
