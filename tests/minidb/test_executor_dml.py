"""Integration tests: DML, DDL, constraints, and transactions."""

import pytest

from repro.errors import (
    IntegrityError,
    SchemaError,
    TransactionError,
    UnknownTableError,
)
from repro.minidb import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE deps (code TEXT PRIMARY KEY, name TEXT)")
    database.execute(
        "CREATE TABLE courses (id INTEGER PRIMARY KEY, dep TEXT, title TEXT, "
        "FOREIGN KEY (dep) REFERENCES deps (code))"
    )
    database.execute("INSERT INTO deps VALUES ('CS', 'Computer Science')")
    return database


class TestInsert:
    def test_insert_count(self, db):
        count = db.execute("INSERT INTO courses VALUES (1, 'CS', 'A'), (2, 'CS', 'B')")
        assert count == 2

    def test_insert_named_columns_any_order(self, db):
        db.execute("INSERT INTO courses (title, id, dep) VALUES ('X', 3, 'CS')")
        assert db.query("SELECT title FROM courses WHERE id = 3").scalar() == "X"

    def test_insert_missing_columns_default_null(self, db):
        db.execute("INSERT INTO courses (id) VALUES (4)")
        assert db.query("SELECT dep FROM courses WHERE id = 4").scalar() is None

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            db.execute("INSERT INTO courses (id, dep) VALUES (1)")

    def test_insert_expression_values(self, db):
        db.execute("INSERT INTO courses VALUES (1 + 4, UPPER('cs'), 'T' || 'itle')")
        assert db.query("SELECT title FROM courses WHERE id = 5").scalar() == "Title"

    def test_fk_enforced(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO courses VALUES (1, 'NOPE', 'X')")

    def test_null_fk_allowed(self, db):
        db.execute("INSERT INTO courses VALUES (1, NULL, 'X')")
        assert db.query("SELECT COUNT(*) FROM courses").scalar() == 1

    def test_fk_enforcement_can_be_disabled(self):
        database = Database(enforce_foreign_keys=False)
        database.execute("CREATE TABLE a (id INTEGER PRIMARY KEY)")
        database.execute(
            "CREATE TABLE b (id INTEGER PRIMARY KEY, aid INTEGER, "
            "FOREIGN KEY (aid) REFERENCES a (id))"
        )
        database.execute("INSERT INTO b VALUES (1, 42)")  # dangling, allowed


class TestUpdateDelete:
    def test_update_where(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'Old')")
        count = db.execute("UPDATE courses SET title = 'New' WHERE id = 1")
        assert count == 1
        assert db.query("SELECT title FROM courses WHERE id = 1").scalar() == "New"

    def test_update_all_rows(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A'), (2, 'CS', 'B')")
        assert db.execute("UPDATE courses SET title = 'Z'") == 2

    def test_update_self_referencing_expression(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        db.execute("UPDATE courses SET title = title || '!' WHERE id = 1")
        assert db.query("SELECT title FROM courses WHERE id = 1").scalar() == "A!"

    def test_update_fk_checked(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        with pytest.raises(IntegrityError):
            db.execute("UPDATE courses SET dep = 'NOPE' WHERE id = 1")

    def test_update_nonkey_of_referenced_row_allowed(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        db.execute("UPDATE deps SET name = 'CompSci' WHERE code = 'CS'")
        assert db.query("SELECT name FROM deps").scalar() == "CompSci"

    def test_update_pk_of_referenced_row_rejected(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        with pytest.raises(IntegrityError):
            db.execute("UPDATE deps SET code = 'EE' WHERE code = 'CS'")

    def test_delete_where(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A'), (2, 'CS', 'B')")
        assert db.execute("DELETE FROM courses WHERE id = 1") == 1
        assert db.query("SELECT COUNT(*) FROM courses").scalar() == 1

    def test_delete_restrict_on_referenced_row(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        with pytest.raises(IntegrityError):
            db.execute("DELETE FROM deps WHERE code = 'CS'")

    def test_delete_referencing_then_referenced(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        db.execute("DELETE FROM courses")
        db.execute("DELETE FROM deps")
        assert db.query("SELECT COUNT(*) FROM deps").scalar() == 0


class TestDdl:
    def test_create_duplicate_table(self, db):
        with pytest.raises(SchemaError):
            db.execute("CREATE TABLE deps (x INTEGER)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS deps (x INTEGER)")  # no error

    def test_fk_must_reference_pk(self, db):
        with pytest.raises(SchemaError):
            db.execute(
                "CREATE TABLE bad (id INTEGER, dep TEXT, "
                "FOREIGN KEY (dep) REFERENCES deps (name))"
            )

    def test_fk_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.execute(
                "CREATE TABLE bad (id INTEGER, "
                "FOREIGN KEY (id) REFERENCES nothing (id))"
            )

    def test_drop_table(self, db):
        db.execute("CREATE TABLE scratch (x INTEGER)")
        db.execute("DROP TABLE scratch")
        with pytest.raises(UnknownTableError):
            db.query("SELECT * FROM scratch")

    def test_drop_missing_table(self, db):
        with pytest.raises(UnknownTableError):
            db.execute("DROP TABLE nothing")
        db.execute("DROP TABLE IF EXISTS nothing")  # silent

    def test_drop_referenced_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.execute("DROP TABLE deps")

    def test_drop_table_removes_its_indexes(self, db):
        db.execute("CREATE TABLE scratch (x INTEGER)")
        db.execute("CREATE INDEX idx_scratch ON scratch (x)")
        db.execute("DROP TABLE scratch")
        assert db.indexes_on("scratch") == []

    def test_create_index_unknown_column(self, db):
        with pytest.raises(Exception):
            db.execute("CREATE INDEX i ON deps (nope)")

    def test_drop_index(self, db):
        db.execute("CREATE INDEX i ON deps (name)")
        db.execute("DROP INDEX i")
        with pytest.raises(SchemaError):
            db.execute("DROP INDEX i")

    def test_index_backfills_existing_rows(self, db):
        db.execute("INSERT INTO deps VALUES ('EE', 'Electrical')")
        db.execute("CREATE INDEX i ON deps (name)")
        plan = db.explain("SELECT code FROM deps WHERE name = 'Electrical'")
        assert "IndexScan" in plan
        result = db.query("SELECT code FROM deps WHERE name = 'Electrical'")
        assert result.scalar() == "EE"


class TestTransactions:
    def test_rollback_restores_rows(self, db):
        db.begin()
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        db.rollback()
        assert db.query("SELECT COUNT(*) FROM courses").scalar() == 0

    def test_commit_keeps_rows(self, db):
        db.begin()
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        db.commit()
        assert db.query("SELECT COUNT(*) FROM courses").scalar() == 1

    def test_rollback_restores_updates_and_deletes(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        db.begin()
        db.execute("UPDATE courses SET title = 'B'")
        db.execute("DELETE FROM deps WHERE code = 'NOPE'")
        db.rollback()
        assert db.query("SELECT title FROM courses").scalar() == "A"

    def test_rollback_drops_tables_created_inside(self, db):
        db.begin()
        db.execute("CREATE TABLE temp_t (x INTEGER)")
        db.rollback()
        assert not db.has_table("temp_t")

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()

    def test_commit_without_begin(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_context_manager_commits(self, db):
        with db.transaction():
            db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        assert db.query("SELECT COUNT(*) FROM courses").scalar() == 1

    def test_context_manager_rolls_back_on_error(self, db):
        with pytest.raises(IntegrityError):
            with db.transaction():
                db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
                db.execute("INSERT INTO courses VALUES (1, 'CS', 'dup')")
        assert db.query("SELECT COUNT(*) FROM courses").scalar() == 0


class TestScriptsAndStats:
    def test_execute_script(self, db):
        results = db.execute_script(
            "INSERT INTO courses VALUES (1, 'CS', 'A');"
            "SELECT COUNT(*) FROM courses;"
        )
        assert results[0] == 1
        assert results[1].scalar() == 1

    def test_stats(self, db):
        db.execute("INSERT INTO courses VALUES (1, 'CS', 'A')")
        stats = db.stats()
        assert stats["courses"] == 1
        assert stats["deps"] == 1
