"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.minidb.expressions import BinaryOp, ColumnRef, Like, Literal
from repro.minidb.sql import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UnionStatement,
    UpdateStatement,
    parse_expression,
    parse_script,
    parse_statement,
    tokenize,
)
from repro.minidb.types import DataType


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [token.value for token in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('"select"')
        assert tokens[0].type == "IDENT"
        assert tokens[0].value == "select"

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5e-2")
        assert [token.value for token in tokens[:-1]] == ["1", "2.5", "1e3", "2.5e-2"]

    def test_line_comment(self):
        tokens = tokenize("SELECT -- comment\n1")
        assert [token.type for token in tokens] == ["KEYWORD", "NUMBER", "EOF"]

    def test_block_comment(self):
        tokens = tokenize("SELECT /* hi\nthere */ 1")
        assert [token.type for token in tokens] == ["KEYWORD", "NUMBER", "EOF"]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_unterminated_block_comment(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("/* oops")

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")

    def test_two_char_operators(self):
        tokens = tokenize("<= >= <> != ||")
        assert [token.value for token in tokens[:-1]] == ["<=", ">=", "<>", "!=", "||"]

    def test_trailing_single_punct(self):
        tokens = tokenize("f(x)")
        assert tokens[-2].value == ")"

    def test_error_reports_position(self):
        with pytest.raises(SQLSyntaxError, match="line 2"):
            tokenize("SELECT\n  $")


class TestExpressionParsing:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "*"

    def test_and_or_precedence(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("NOT a = 1 AND b = 2")
        assert expr.op == "AND"

    def test_like_ilike(self):
        expr = parse_expression("title LIKE '%x%'")
        assert isinstance(expr, Like) and not expr.case_insensitive
        expr = parse_expression("title ILIKE '%x%'")
        assert expr.case_insensitive

    def test_not_like(self):
        expr = parse_expression("title NOT LIKE '%x%'")
        assert expr.negated

    def test_in_and_between(self):
        parse_expression("x IN (1, 2, 3)")
        parse_expression("x NOT IN (1)")
        parse_expression("x BETWEEN 1 AND 5")
        parse_expression("x NOT BETWEEN 1 AND 5")

    def test_is_null(self):
        parse_expression("x IS NULL")
        parse_expression("x IS NOT NULL")

    def test_case_expression(self):
        expr = parse_expression("CASE WHEN x > 1 THEN 'a' ELSE 'b' END")
        assert expr.evaluate({"x": 5, "__functions__": None}) == "a"

    def test_case_requires_when(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("CASE ELSE 1 END")

    def test_function_call(self):
        expr = parse_expression("LOWER(name)")
        assert expr.name == "lower"

    def test_date_literal(self):
        import datetime

        expr = parse_expression("DATE '2009-01-04'")
        assert expr.value == datetime.date(2009, 1, 4)

    def test_qualified_column(self):
        expr = parse_expression("c.title")
        assert isinstance(expr, ColumnRef) and expr.qualifier == "c"

    def test_aggregate_rejected_outside_select(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("COUNT(*)")

    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("1 + 2 banana oops(")


class TestSelectParsing:
    def test_minimal(self):
        statement = parse_statement("SELECT 1")
        assert isinstance(statement, SelectStatement)
        assert statement.from_item is None

    def test_star_and_qualified_star(self):
        statement = parse_statement("SELECT *, c.* FROM courses c")
        assert statement.items[0].is_star
        assert statement.items[1].star_qualifier == "c"

    def test_aliases(self):
        statement = parse_statement("SELECT title AS t, units u FROM courses")
        assert statement.items[0].alias == "t"
        assert statement.items[1].alias == "u"

    def test_joins(self):
        statement = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x "
            "LEFT JOIN c ON b.y = c.y CROSS JOIN d"
        )
        kinds = [join.join_type for join in statement.joins]
        assert kinds == ["INNER", "LEFT", "CROSS"]

    def test_group_having_order_limit(self):
        statement = parse_statement(
            "SELECT dep, COUNT(*) AS n FROM courses "
            "GROUP BY dep HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 5 OFFSET 2"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None
        assert statement.order_by[0].descending
        assert statement.limit == 5
        assert statement.offset == 2

    def test_aggregates_hoisted(self):
        statement = parse_statement(
            "SELECT COUNT(*), AVG(score), COUNT(DISTINCT sid) FROM r"
        )
        names = [call.name for call in statement.aggregates]
        assert names == ["count", "avg", "count"]
        assert statement.aggregates[2].distinct

    def test_count_star_only(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT SUM(*) FROM r")

    def test_aggregate_in_where_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1 FROM r WHERE COUNT(*) > 1")

    def test_subquery_in_from(self):
        statement = parse_statement(
            "SELECT t.x FROM (SELECT x FROM inner_table LIMIT 3) AS t"
        )
        assert statement.from_item.alias == "t"
        assert statement.from_item.query.limit == 3

    def test_union(self):
        statement = parse_statement("SELECT 1 UNION SELECT 2 UNION SELECT 3")
        assert isinstance(statement, UnionStatement)
        assert len(statement.parts) == 3
        assert not statement.all

    def test_union_all_with_order(self):
        statement = parse_statement(
            "SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x LIMIT 2"
        )
        assert statement.all
        assert statement.limit == 2

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT dep FROM courses").distinct

    def test_trailing_semicolon_ok(self):
        parse_statement("SELECT 1;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1 SELECT 2")


class TestDmlParsing:
    def test_insert_values(self):
        statement = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ["a", "b"]
        assert len(statement.rows) == 2

    def test_insert_without_columns(self):
        statement = parse_statement("INSERT INTO t VALUES (1)")
        assert statement.columns is None

    def test_update(self):
        statement = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(statement, UpdateStatement)
        assert len(statement.assignments) == 2
        assert statement.where is not None

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE x IS NULL")
        assert isinstance(statement, DeleteStatement)


class TestDdlParsing:
    def test_create_table_full(self):
        statement = parse_statement(
            "CREATE TABLE comments ("
            "  suid INTEGER, courseid INTEGER, year INTEGER, term TEXT,"
            "  text TEXT NOT NULL, rating FLOAT,"
            "  PRIMARY KEY (suid, courseid, year, term),"
            "  UNIQUE (text),"
            "  FOREIGN KEY (courseid) REFERENCES courses (courseid)"
            ")"
        )
        assert isinstance(statement, CreateTableStatement)
        assert statement.primary_key == ("suid", "courseid", "year", "term")
        assert statement.unique_keys == (("text",),)
        assert statement.foreign_keys[0].ref_table == "courses"

    def test_inline_primary_key(self):
        statement = parse_statement("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)")
        assert statement.primary_key == ("id",)

    def test_double_primary_key_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement(
                "CREATE TABLE t (id INTEGER PRIMARY KEY, PRIMARY KEY (id))"
            )

    def test_varchar_length_ignored(self):
        statement = parse_statement("CREATE TABLE t (name VARCHAR(100))")
        assert statement.columns[0].dtype is DataType.TEXT

    def test_if_not_exists(self):
        statement = parse_statement("CREATE TABLE IF NOT EXISTS t (x INTEGER)")
        assert statement.if_not_exists

    def test_create_index(self):
        statement = parse_statement("CREATE INDEX i ON t (a, b) USING sorted")
        assert isinstance(statement, CreateIndexStatement)
        assert statement.columns == ("a", "b")
        assert statement.kind == "sorted"

    def test_drop_statements(self):
        parse_statement("DROP TABLE t")
        parse_statement("DROP TABLE IF EXISTS t")
        parse_statement("DROP INDEX i")


class TestScripts:
    def test_multiple_statements(self):
        statements = parse_script(
            "CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1); SELECT * FROM t;"
        )
        assert len(statements) == 3

    def test_to_sql_roundtrip(self):
        text = (
            "SELECT c.title AS t, COUNT(*) AS n FROM courses AS c "
            "JOIN ratings AS r ON c.id = r.cid WHERE c.units > 3 "
            "GROUP BY c.title HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 10"
        )
        first = parse_statement(text)
        second = parse_statement(first.to_sql())
        assert first.to_sql() == second.to_sql()
