"""Property suite: vectorized ≡ interpreted ≡ compiled execution.

Hypothesis generates table contents (including all-NULL columns and
empty tables) and drives a query pool that covers every vectorized
operator — scan-filter, join, group/aggregate, sort+limit, DISTINCT,
CASE/IN/LIKE/BETWEEN, NULL arithmetic.  Each query runs on a fresh
database under three engine configs; results must be *identical* (same
rows, same order — the row-value domain makes float results
bit-deterministic) and errors must agree in kind.

Batch-boundary behaviour is probed separately by shrinking
``vector.batch.BATCH_SIZE`` so row counts of N-1, N, and N+1 straddle
the batch edge.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.minidb.planner as planner_module
import repro.minidb.vector.batch as vector_batch
from repro.minidb import Database

value_strategy = st.one_of(
    st.none(), st.integers(min_value=-9, max_value=9)
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),            # grp
        value_strategy,                                    # val
        st.one_of(st.none(), st.sampled_from(["aa", "ab", "ba", "zz"])),
    ),
    max_size=30,
)

link_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),            # ref -> t.id
        st.sampled_from([0.25, 0.5, 1.0, 2.0]),            # w
    ),
    max_size=20,
)

QUERY_POOL = [
    "SELECT id, grp, val FROM t WHERE val > 0",
    "SELECT id FROM t WHERE val IS NULL OR grp < 2",
    "SELECT id FROM t WHERE txt LIKE 'a%' AND val IS NOT NULL",
    "SELECT id FROM t WHERE val BETWEEN -3 AND 3",
    "SELECT id FROM t WHERE grp IN (1, 3) AND NOT (val = 0)",
    "SELECT id, val + grp AS s, val * 2 AS d FROM t WHERE id >= 0",
    "SELECT id, CASE WHEN val > 0 THEN 'p' WHEN val < 0 THEN 'n' "
    "ELSE 'z' END AS sign FROM t",
    "SELECT grp, COUNT(*) AS n, COUNT(val) AS nv, SUM(val) AS s, "
    "AVG(val) AS a, MIN(val) AS lo, MAX(val) AS hi FROM t GROUP BY grp "
    "ORDER BY grp",
    "SELECT COUNT(*) AS n, SUM(val) AS s FROM t",
    "SELECT grp, COUNT(DISTINCT val) AS dv FROM t GROUP BY grp ORDER BY grp",
    "SELECT grp, SUM(val) AS s FROM t GROUP BY grp "
    "HAVING SUM(val) > 0 ORDER BY grp",
    "SELECT DISTINCT grp FROM t ORDER BY grp",
    "SELECT DISTINCT grp, txt FROM t ORDER BY grp, txt LIMIT 3",
    "SELECT id FROM t ORDER BY val DESC, id LIMIT 4 OFFSET 2",
    "SELECT t.id, e.w FROM t JOIN e ON t.id = e.ref ORDER BY t.id, e.w",
    "SELECT t.grp, SUM(e.w) AS tw FROM t JOIN e ON t.id = e.ref "
    "GROUP BY t.grp ORDER BY t.grp",
    "SELECT t.id, e.w FROM t LEFT JOIN e ON t.id = e.ref "
    "ORDER BY t.id, e.w",
    "SELECT s.grp, s.n FROM (SELECT grp, COUNT(*) AS n FROM t "
    "GROUP BY grp) s WHERE s.n > 1 ORDER BY s.grp",
    "SELECT val FROM t WHERE val / grp > 1",        # division by zero parity
    "SELECT id FROM t WHERE val < 'x'",             # type-error parity
]


def _build(rows, links):
    database = Database()
    database.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp INT, val INT, txt TEXT, "
        "allnull INT)"
    )
    for position, (grp, val, txt) in enumerate(rows):
        database.execute(
            "INSERT INTO t VALUES (?, ?, ?, ?, ?)",
            [position, grp, val, txt, None],
        )
    database.execute("CREATE TABLE e (ref INT, w FLOAT)")
    for ref, weight in links:
        database.execute("INSERT INTO e VALUES (?, ?)", [ref, weight])
    return database


def _run(rows, links, sql, compile_expressions, vectorize):
    saved_compile = planner_module.COMPILE_EXPRESSIONS
    saved_vectorize = planner_module.VECTORIZE
    planner_module.COMPILE_EXPRESSIONS = compile_expressions
    planner_module.VECTORIZE = vectorize
    try:
        database = _build(rows, links)
        try:
            result = database.query(sql)
        except Exception as exc:  # error parity is part of the contract
            return ("error", type(exc).__name__)
        return ("rows", result.columns, result.rows)
    finally:
        planner_module.COMPILE_EXPRESSIONS = saved_compile
        planner_module.VECTORIZE = saved_vectorize


CONFIGS = (
    ("compiled", True, False),
    ("interpreted", False, False),
    ("vectorized", True, True),
)


@settings(max_examples=15)
@given(rows=rows_strategy, links=link_strategy,
       sql=st.sampled_from(QUERY_POOL))
def test_three_config_equivalence(rows, links, sql):
    outcomes = {
        name: _run(rows, links, sql, compile_expressions, vectorize)
        for name, compile_expressions, vectorize in CONFIGS
    }
    kinds = {outcome[0] for outcome in outcomes.values()}
    assert len(kinds) == 1, f"error-parity divergence: {outcomes}"
    if kinds == {"rows"}:
        assert outcomes["vectorized"] == outcomes["compiled"], (
            f"vectorized diverges on {sql!r}"
        )
        assert outcomes["vectorized"] == outcomes["interpreted"], (
            f"vectorized diverges from interpreted on {sql!r}"
        )


@settings(max_examples=15)
@given(rows=rows_strategy, links=link_strategy,
       sql=st.sampled_from(QUERY_POOL),
       batch_size=st.sampled_from([1, 2, 3, 7]))
def test_equivalence_with_tiny_batches(rows, links, sql, batch_size):
    """Shrunken BATCH_SIZE exposes per-batch state carried across chunks."""
    saved = vector_batch.BATCH_SIZE
    vector_batch.BATCH_SIZE = batch_size
    try:
        reference = _run(rows, links, sql, True, False)
        vectorized = _run(rows, links, sql, True, True)
    finally:
        vector_batch.BATCH_SIZE = saved
    assert reference[0] == vectorized[0]
    if reference[0] == "rows":
        assert reference == vectorized


@pytest.mark.parametrize("delta", [-1, 0, 1])
def test_batch_boundary_row_counts(monkeypatch, delta):
    """Exactly N-1 / N / N+1 rows around the batch edge, every operator."""
    monkeypatch.setattr(vector_batch, "BATCH_SIZE", 8)
    count = 8 + delta
    rows = [(i % 3, (i % 5) - 2, ["aa", None, "zz"][i % 3]) for i in range(count)]
    links = [(i, 0.5) for i in range(0, count, 2)]
    for sql in QUERY_POOL:
        reference = _run(rows, links, sql, True, False)
        vectorized = _run(rows, links, sql, True, True)
        assert reference[0] == vectorized[0], (sql, reference, vectorized)
        if reference[0] == "rows":
            assert reference == vectorized, sql


def test_all_null_and_empty_tables():
    """Aggregates/filters over all-NULL columns and fully empty tables."""
    pool = [
        "SELECT COUNT(*) AS n, COUNT(allnull) AS na, SUM(allnull) AS s, "
        "AVG(allnull) AS a, MIN(allnull) AS lo, MAX(allnull) AS hi FROM t",
        "SELECT grp, SUM(allnull) AS s FROM t GROUP BY grp ORDER BY grp",
        "SELECT id FROM t WHERE allnull > 0",
        "SELECT id FROM t WHERE allnull IS NULL ORDER BY id",
        "SELECT DISTINCT allnull FROM t",
    ]
    for rows in ([], [(1, None, None), (2, None, "aa")]):
        for sql in pool:
            reference = _run(rows, [], sql, True, False)
            vectorized = _run(rows, [], sql, True, True)
            assert reference == vectorized, (sql, rows, reference, vectorized)
