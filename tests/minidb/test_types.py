"""Unit tests for the minidb type system."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeMismatchError
from repro.minidb.types import (
    DataType,
    coerce,
    common_type,
    format_value,
    infer_type,
    is_numeric,
    parse_date,
    sort_key,
)


class TestCoerce:
    def test_none_passes_through_every_type(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None

    def test_integer_accepts_int(self):
        assert coerce(42, DataType.INTEGER) == 42

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce(True, DataType.INTEGER)

    def test_integer_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            coerce(1.5, DataType.INTEGER)

    def test_integer_rejects_numeric_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("42", DataType.INTEGER)

    def test_float_promotes_int(self):
        value = coerce(3, DataType.FLOAT)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce(True, DataType.FLOAT)

    def test_text_accepts_str(self):
        assert coerce("abc", DataType.TEXT) == "abc"

    def test_text_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            coerce(5, DataType.TEXT)

    def test_boolean_accepts_bool(self):
        assert coerce(False, DataType.BOOLEAN) is False

    def test_boolean_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            coerce(1, DataType.BOOLEAN)

    def test_date_accepts_date(self):
        today = datetime.date(2008, 9, 1)
        assert coerce(today, DataType.DATE) == today

    def test_date_parses_iso_string(self):
        assert coerce("2008-09-01", DataType.DATE) == datetime.date(2008, 9, 1)

    def test_date_rejects_datetime(self):
        with pytest.raises(TypeMismatchError):
            coerce(datetime.datetime(2008, 9, 1, 12, 0), DataType.DATE)

    def test_date_rejects_malformed_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("September 1", DataType.DATE)


class TestParseDate:
    def test_valid(self):
        assert parse_date("2009-01-04") == datetime.date(2009, 1, 4)

    def test_invalid_raises_type_mismatch(self):
        with pytest.raises(TypeMismatchError):
            parse_date("01/04/2009")


class TestInference:
    def test_infer_each_type(self):
        assert infer_type(1) is DataType.INTEGER
        assert infer_type(1.0) is DataType.FLOAT
        assert infer_type("x") is DataType.TEXT
        assert infer_type(True) is DataType.BOOLEAN
        assert infer_type(datetime.date(2009, 1, 1)) is DataType.DATE
        assert infer_type(None) is None

    def test_common_type_same(self):
        assert common_type(DataType.TEXT, DataType.TEXT) is DataType.TEXT

    def test_common_type_numeric_promotion(self):
        assert common_type(DataType.INTEGER, DataType.FLOAT) is DataType.FLOAT

    def test_common_type_incompatible(self):
        assert common_type(DataType.TEXT, DataType.INTEGER) is None

    def test_is_numeric(self):
        assert is_numeric(DataType.INTEGER)
        assert is_numeric(DataType.FLOAT)
        assert not is_numeric(DataType.TEXT)


class TestSortKey:
    def test_null_sorts_first(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered == [None, None, 1, 2, 3]

    @given(st.lists(st.one_of(st.none(), st.integers())))
    def test_sort_key_total_order_on_ints_with_nulls(self, values):
        ordered = sorted(values, key=sort_key)
        nulls = [value for value in ordered if value is None]
        rest = [value for value in ordered if value is not None]
        assert ordered == nulls + sorted(rest)


class TestFormatValue:
    def test_null(self):
        assert format_value(None) == "NULL"

    def test_booleans(self):
        assert format_value(True) == "TRUE"
        assert format_value(False) == "FALSE"

    def test_float_compact(self):
        assert format_value(4.75) == "4.75"

    def test_date_iso(self):
        assert format_value(datetime.date(2008, 9, 1)) == "2008-09-01"
