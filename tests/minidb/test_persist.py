"""Tests for database save/load round-trips."""

import pytest

from repro.errors import MiniDBError, SchemaError
from repro.minidb import Database
from repro.minidb.persist import (
    dependency_order,
    load_database,
    render_create_table,
    save_database,
)


@pytest.fixture()
def db():
    database = Database()
    database.execute_script(
        """
        CREATE TABLE deps (code TEXT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE courses (id INTEGER PRIMARY KEY, dep TEXT,
          title TEXT, units FLOAT, active BOOLEAN, start DATE,
          UNIQUE (title),
          FOREIGN KEY (dep) REFERENCES deps (code));
        CREATE INDEX idx_dep ON courses (dep);
        CREATE INDEX idx_units ON courses (units) USING sorted;
        CREATE VIEW active_courses AS SELECT id, title FROM courses WHERE active;
        INSERT INTO deps VALUES ('CS', 'Computer Science');
        INSERT INTO courses VALUES
          (1, 'CS', 'Intro', 4.5, TRUE, '2008-09-01'),
          (2, 'CS', 'With, comma', NULL, FALSE, NULL),
          (3, NULL, 'It''s quoted', 3.0, TRUE, '2009-01-04');
        """
    )
    return database


class TestRenderDdl:
    def test_create_table_roundtrips(self, db):
        ddl = render_create_table(db.table("courses").schema)
        fresh = Database()
        fresh.execute(render_create_table(db.table("deps").schema))
        fresh.execute(ddl)
        rebuilt = fresh.table("courses").schema
        original = db.table("courses").schema
        assert rebuilt.column_names == original.column_names
        assert rebuilt.primary_key == original.primary_key
        assert rebuilt.unique_keys == original.unique_keys
        assert [fk.ref_table for fk in rebuilt.foreign_keys] == ["deps"]

    def test_not_null_preserved(self, db):
        ddl = render_create_table(db.table("deps").schema)
        assert "NOT NULL" in ddl


class TestDependencyOrder:
    def test_referenced_tables_first(self, db):
        order = dependency_order(db)
        assert order.index("deps") < order.index("courses")

    def test_all_tables_present(self, db):
        assert set(dependency_order(db)) == {"deps", "courses"}


class TestRoundTrip:
    def test_save_load_preserves_everything(self, db, tmp_path):
        save_database(db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        for table in ("deps", "courses"):
            assert (
                sorted(loaded.table(table).rows())
                == sorted(db.table(table).rows())
            ), table
        # Indexes restored.
        assert {info.name for info in loaded.indexes_on("courses")} == {
            "idx_dep", "idx_units",
        }
        # Views restored and functional.
        assert loaded.has_view("active_courses")
        assert len(loaded.query("SELECT * FROM active_courses")) == 2

    def test_constraints_live_after_load(self, db, tmp_path):
        save_database(db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        with pytest.raises(Exception):
            loaded.execute("INSERT INTO courses VALUES (1, 'CS', 'dup', 1.0, TRUE, NULL)")
        with pytest.raises(Exception):
            loaded.execute(
                "INSERT INTO courses VALUES (9, 'NOPE', 'x', 1.0, TRUE, NULL)"
            )

    def test_types_preserved(self, db, tmp_path):
        import datetime

        save_database(db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        row = loaded.query("SELECT * FROM courses WHERE id = 1").first()
        assert row["units"] == 4.5
        assert row["active"] is True
        assert row["start"] == datetime.date(2008, 9, 1)

    def test_nulls_preserved(self, db, tmp_path):
        save_database(db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        row = loaded.query("SELECT * FROM courses WHERE id = 2").first()
        assert row["units"] is None
        assert row["start"] is None

    def test_missing_directory(self, tmp_path):
        with pytest.raises(MiniDBError):
            load_database(tmp_path / "nothing")

    def test_generated_university_roundtrip(self, tmp_path):
        from repro.datagen import generate_university

        db = generate_university(scale="tiny", seed=9)
        save_database(db, tmp_path / "uni")
        loaded = load_database(tmp_path / "uni")
        assert loaded.stats() == db.stats()
        # The application stack works on the reloaded database.
        from repro.courserank import CourseRank

        app = CourseRank(loaded)
        result, _cloud = app.search_courses("design")
        recs = app.recommendations.run("related_courses", course_id=1, top_k=3)
        assert recs is not None
