"""Plan cache: hits, invalidation, prepared statements, and EXPLAIN."""

import pytest

from repro.errors import ExecutionError, PlannerError
from repro.minidb.catalog import Database
from repro.minidb.plancache import LRUCache


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE Courses ("
        "CourseID INTEGER PRIMARY KEY, Title TEXT, DepID INTEGER, "
        "Units FLOAT)"
    )
    database.execute(
        "INSERT INTO Courses VALUES "
        "(1, 'Databases', 10, 4.0), "
        "(2, 'Networks', 10, 3.0), "
        "(3, 'Painting', 20, 2.0), "
        "(4, 'Sculpture', 20, 4.0)"
    )
    return database


SQL = "SELECT Title FROM Courses WHERE Units > 2.5 ORDER BY Title"


def run_twice(db, sql=SQL):
    first = db.query(sql).rows
    before = db._plan_cache.hits
    second = db.query(sql).rows
    assert first == second
    return db._plan_cache.hits - before


class TestPlanCacheHits:
    def test_repeat_query_hits_cache(self, db):
        assert run_twice(db) == 1

    def test_formatting_variants_share_one_plan(self, db):
        db.query(SQL)
        hits = db._plan_cache.hits
        db.query(
            "select   Title from Courses where Units > 2.5 order by Title"
        )
        assert db._plan_cache.hits == hits + 1

    def test_cached_plan_results_identical(self, db):
        cold = db.query(SQL).rows
        warm = db.query(SQL).rows
        assert cold == warm == [("Databases",), ("Networks",), ("Sculpture",)]

    def test_clear_plan_cache(self, db):
        db.query(SQL)
        db.clear_plan_cache()
        hits = db._plan_cache.hits
        db.query(SQL)
        assert db._plan_cache.hits == hits  # miss after clear


class TestInvalidation:
    def test_create_index_invalidates(self, db):
        db.query(SQL)
        db.execute("CREATE INDEX idx_units ON Courses (Units) USING SORTED")
        plan = db.query("EXPLAIN " + SQL).column("QUERY PLAN")
        assert any("IndexScan" in line for line in plan)
        assert "[cached]" not in plan[0]

    def test_drop_index_invalidates(self, db):
        db.execute("CREATE INDEX idx_units ON Courses (Units) USING SORTED")
        db.query(SQL)
        db.execute("DROP INDEX idx_units")
        plan = db.query("EXPLAIN " + SQL).column("QUERY PLAN")
        assert all("IndexScan" not in line for line in plan)
        rows = db.query(SQL).rows
        assert rows == [("Databases",), ("Networks",), ("Sculpture",)]

    def test_drop_and_recreate_table_invalidates(self, db):
        db.query(SQL)
        db.execute("DROP TABLE Courses")
        db.execute(
            "CREATE TABLE Courses ("
            "CourseID INTEGER PRIMARY KEY, Title TEXT, DepID INTEGER, "
            "Units FLOAT)"
        )
        db.execute("INSERT INTO Courses VALUES (9, 'Logic', 10, 5.0)")
        # The cached plan points at the dropped Table object; a stale hit
        # would replay the old rows.
        assert db.query(SQL).rows == [("Logic",)]

    def test_update_on_indexed_column_invalidates(self, db):
        db.execute("CREATE INDEX idx_units ON Courses (Units) USING SORTED")
        statement = db.prepare(SQL)
        assert statement.execute().rows == [
            ("Databases",),
            ("Networks",),
            ("Sculpture",),
        ]
        db.execute("UPDATE Courses SET Units = 4.5 WHERE CourseID = 3")
        assert statement.execute().rows == [
            ("Databases",),
            ("Networks",),
            ("Painting",),
            ("Sculpture",),
        ]

    def test_unindexed_dml_served_correctly(self, db):
        # No secondary indexes: plans read live table state, so DML needs
        # no invalidation — but results must still reflect the new rows.
        db.query(SQL)
        db.execute("INSERT INTO Courses VALUES (5, 'Algebra', 30, 4.0)")
        assert ("Algebra",) in db.query(SQL).rows

    def test_subquery_snapshot_plan_invalidated_by_data(self, db):
        sql = (
            "SELECT Title FROM Courses WHERE DepID IN "
            "(SELECT DepID FROM Courses WHERE Units > 3.5) ORDER BY Title"
        )
        first = db.query(sql).rows
        assert first == [
            ("Databases",),
            ("Networks",),
            ("Painting",),
            ("Sculpture",),
        ]
        # Planning baked the IN-subquery's data into the plan; DML on the
        # table must force a re-plan even without any index.
        db.execute("UPDATE Courses SET Units = 1.0 WHERE CourseID = 4")
        assert db.query(sql).rows == [("Databases",), ("Networks",)]

    def test_rollback_invalidates(self, db):
        db.query(SQL)
        db.begin()
        db.execute("CREATE INDEX idx_units ON Courses (Units) USING SORTED")
        db.rollback()
        rows = db.query(SQL).rows
        assert rows == [("Databases",), ("Networks",), ("Sculpture",)]


class TestPreparedStatements:
    def test_parameter_binding(self, db):
        statement = db.prepare("SELECT Title FROM Courses WHERE CourseID = ?")
        assert statement.execute(1).scalar() == "Databases"
        assert statement.execute(3).scalar() == "Painting"

    def test_bindings_do_not_leak_between_executions(self, db):
        statement = db.prepare(
            "SELECT Title FROM Courses WHERE DepID = ? AND Units > ? "
            "ORDER BY Title"
        )
        assert statement.execute(10, 2.5).rows == [
            ("Databases",),
            ("Networks",),
        ]
        assert statement.execute(20, 3.5).rows == [("Sculpture",)]
        # Re-run the first binding: must match the original, not the last.
        assert statement.execute(10, 2.5).rows == [
            ("Databases",),
            ("Networks",),
        ]

    def test_wrong_parameter_count_raises(self, db):
        statement = db.prepare("SELECT Title FROM Courses WHERE CourseID = ?")
        with pytest.raises(ExecutionError, match="expects 1 parameter"):
            statement.execute()
        with pytest.raises(ExecutionError, match="expects 1 parameter"):
            statement.execute(1, 2)

    def test_unbound_parameter_raises(self, db):
        with pytest.raises(ExecutionError, match="not bound"):
            db.query("SELECT Title FROM Courses WHERE CourseID = ?")

    def test_dml_parameters(self, db):
        update = db.prepare("UPDATE Courses SET Title = ? WHERE CourseID = ?")
        assert update.execute("Databases II", 1) == 1
        assert db.query(
            "SELECT Title FROM Courses WHERE CourseID = 1"
        ).scalar() == "Databases II"

    def test_insert_parameters(self, db):
        insert = db.prepare("INSERT INTO Courses VALUES (?, ?, ?, ?)")
        assert insert.execute(7, "Ethics", 20, 3.0) == 1
        assert insert.execute(8, "Drawing", 20, 2.0) == 1
        assert db.query(
            "SELECT COUNT(*) FROM Courses WHERE DepID = 20"
        ).scalar() == 4

    def test_prepare_survives_invalidation(self, db):
        statement = db.prepare(SQL)
        statement.execute()
        db.execute("CREATE INDEX idx_units ON Courses (Units) USING SORTED")
        assert statement.execute().rows == [
            ("Databases",),
            ("Networks",),
            ("Sculpture",),
        ]
        assert "IndexScan" in statement.explain()

    def test_prepare_fails_fast_on_bad_sql(self, db):
        with pytest.raises(Exception):
            db.prepare("SELECT Nope FROM Courses")

    def test_query_requires_select(self, db):
        statement = db.prepare("DELETE FROM Courses WHERE CourseID = ?")
        with pytest.raises(ExecutionError, match="requires a SELECT"):
            statement.query(1)


class TestUnionParameterNumbering:
    """Identical SELECT text at different ``?`` bases must not share plans.

    Parameters are numbered left-to-right across the whole statement, so
    a UNION arm's placeholders start where the previous arm's ended; a
    plan cached for the standalone text would bind the wrong slots.
    """

    UNION_SQL = (
        "SELECT Title FROM Courses WHERE DepID = ? "
        "UNION SELECT Title FROM Courses WHERE CourseID = ?"
    )
    ARM_SQL = "SELECT Title FROM Courses WHERE CourseID = ?"

    def test_standalone_then_union(self, db):
        standalone = db.prepare(self.ARM_SQL)
        assert standalone.execute(3).rows == [("Painting",)]
        # The union's second arm has the same text but binds params[1].
        rows = db.prepare(self.UNION_SQL).execute(10, 3).rows
        assert sorted(rows) == [("Databases",), ("Networks",), ("Painting",)]

    def test_union_then_standalone(self, db):
        rows = db.prepare(self.UNION_SQL).execute(10, 3).rows
        assert sorted(rows) == [("Databases",), ("Networks",), ("Painting",)]
        # The standalone statement binds params[0], not the arm's slot.
        standalone = db.prepare(self.ARM_SQL)
        assert standalone.execute(1).rows == [("Databases",)]

    def test_union_rebinding_between_executions(self, db):
        union = db.prepare(self.UNION_SQL)
        assert sorted(union.execute(10, 3).rows) == [
            ("Databases",),
            ("Networks",),
            ("Painting",),
        ]
        assert sorted(union.execute(20, 2).rows) == [
            ("Networks",),
            ("Painting",),
            ("Sculpture",),
        ]


class TestParameterizedSubqueries:
    def test_in_subquery_parameter_rejected(self, db):
        with pytest.raises(PlannerError, match="not supported inside IN"):
            db.query(
                "SELECT Title FROM Courses WHERE DepID IN "
                "(SELECT DepID FROM Courses WHERE Units > ?)"
            )

    def test_exists_subquery_parameter_rejected(self, db):
        with pytest.raises(PlannerError, match="not supported inside EXISTS"):
            db.query(
                "SELECT Title FROM Courses WHERE EXISTS "
                "(SELECT CourseID FROM Courses WHERE Units > ?)"
            )

    def test_prepare_fails_fast_on_subquery_parameter(self, db):
        with pytest.raises(PlannerError, match="not supported inside IN"):
            db.prepare(
                "SELECT Title FROM Courses WHERE DepID IN "
                "(SELECT DepID FROM Courses WHERE Units > ?)"
            )

    def test_parameterless_subqueries_still_work(self, db):
        rows = db.query(
            "SELECT Title FROM Courses WHERE DepID IN "
            "(SELECT DepID FROM Courses WHERE Units > 3.5) ORDER BY Title"
        ).rows
        assert rows == [
            ("Databases",),
            ("Networks",),
            ("Painting",),
            ("Sculpture",),
        ]


class TestExplainStatement:
    def test_explain_reports_cold_then_cached(self, db):
        db.clear_plan_cache()
        cold = db.query("EXPLAIN " + SQL).column("QUERY PLAN")
        assert "[cached]" not in cold[0]
        assert "[compiled-expr]" in cold[0]
        warm = db.query("EXPLAIN " + SQL).column("QUERY PLAN")
        assert "[cached]" in warm[0]

    def test_explain_shares_cache_with_execution(self, db):
        db.query(SQL)
        plan = db.query("EXPLAIN " + SQL).column("QUERY PLAN")
        assert "[cached]" in plan[0]

    def test_explain_rejects_non_select(self, db):
        with pytest.raises(Exception, match="expected SELECT"):
            db.execute("EXPLAIN DELETE FROM Courses")
        with pytest.raises(Exception, match="EXPLAIN supports only SELECT"):
            db.execute(
                "EXPLAIN SELECT Title FROM Courses "
                "UNION SELECT Title FROM Courses"
            )

    def test_python_explain_api_unchanged(self, db):
        text = db.explain(SQL)
        assert "[cached]" not in text
        assert "[compiled-expr]" not in text

    def test_compiled_marker_tracks_compile_flag(self, db):
        from repro.minidb import planner

        original = planner.COMPILE_EXPRESSIONS
        planner.COMPILE_EXPRESSIONS = False
        try:
            db.clear_plan_cache()
            cold = db.query("EXPLAIN " + SQL).column("QUERY PLAN")
            assert "[compiled-expr]" not in cold[0]
            warm = db.query("EXPLAIN " + SQL).column("QUERY PLAN")
            assert "[cached]" in warm[0]
            assert "[compiled-expr]" not in warm[0]
        finally:
            planner.COMPILE_EXPRESSIONS = original
            db.clear_plan_cache()
        fresh = db.query("EXPLAIN " + SQL).column("QUERY PLAN")
        assert "[compiled-expr]" in fresh[0]

    def test_cached_plan_keeps_marker_after_flag_flip(self, db):
        # Cached plans keep the shape they were built under; the marker
        # must report the plan's pipeline, not the current global flag.
        from repro.minidb import planner

        db.clear_plan_cache()
        db.query("EXPLAIN " + SQL)
        original = planner.COMPILE_EXPRESSIONS
        planner.COMPILE_EXPRESSIONS = False
        try:
            warm = db.query("EXPLAIN " + SQL).column("QUERY PLAN")
            assert "[cached]" in warm[0]
            assert "[compiled-expr]" in warm[0]
        finally:
            planner.COMPILE_EXPRESSIONS = original


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)

    def test_len_contains_clear(self):
        cache = LRUCache(maxsize=4)
        cache.put("x", 1)
        assert len(cache) == 1
        assert "x" in cache
        cache.clear()
        assert len(cache) == 0
        assert "x" not in cache
