"""Unit tests for CSV import/export."""

import pytest

from repro.errors import SchemaError
from repro.minidb import Database
from repro.minidb.csvio import dump_csv, load_csv


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE courses (id INTEGER PRIMARY KEY, title TEXT, "
        "units FLOAT, active BOOLEAN, start DATE)"
    )
    return database


class TestLoad:
    def test_load_with_header_any_order(self, db):
        count = load_csv(
            db,
            "courses",
            "title,id\nIntro,1\nJava,2\n",
        )
        assert count == 2
        assert db.query("SELECT title FROM courses WHERE id = 2").scalar() == "Java"

    def test_load_without_header_positional(self, db):
        load_csv(
            db,
            "courses",
            "1,Intro,4.5,true,2008-09-01\n",
            has_header=False,
        )
        row = db.query("SELECT * FROM courses").first()
        assert row["units"] == 4.5
        assert row["active"] is True
        assert str(row["start"]) == "2008-09-01"

    def test_empty_cells_become_null(self, db):
        load_csv(db, "courses", "id,title,units\n1,,\n")
        row = db.query("SELECT * FROM courses").first()
        assert row["title"] is None
        assert row["units"] is None

    def test_boolean_spellings(self, db):
        load_csv(
            db,
            "courses",
            "id,active\n1,yes\n2,0\n3,TRUE\n",
        )
        assert db.query("SELECT active FROM courses ORDER BY id").column("active") == [
            True,
            False,
            True,
        ]

    def test_bad_boolean(self, db):
        with pytest.raises(SchemaError):
            load_csv(db, "courses", "id,active\n1,maybe\n")

    def test_positional_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            load_csv(db, "courses", "1,Intro\n", has_header=False)

    def test_empty_input(self, db):
        assert load_csv(db, "courses", "") == 0


class TestRoundtrip:
    def test_dump_then_load(self, db):
        load_csv(
            db,
            "courses",
            "id,title,units,active,start\n"
            "1,Intro,4.5,true,2008-09-01\n"
            "2,\"has,comma\",,false,\n",
        )
        text = dump_csv(db, "courses")
        other = Database()
        other.execute(
            "CREATE TABLE courses (id INTEGER PRIMARY KEY, title TEXT, "
            "units FLOAT, active BOOLEAN, start DATE)"
        )
        load_csv(other, "courses", text)
        assert (
            db.query("SELECT * FROM courses ORDER BY id").rows
            == other.query("SELECT * FROM courses ORDER BY id").rows
        )

    def test_dump_without_header(self, db):
        load_csv(db, "courses", "id,title\n1,Intro\n")
        text = dump_csv(db, "courses", include_header=False)
        assert text.splitlines()[0].startswith("1,")
