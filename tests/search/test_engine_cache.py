"""The search fast path: result caching, heap top-k, and observability.

Three invariants from the hot-path overhaul:

* cached and cold searches return identical ranked results;
* heap top-k (``limit=...``) ordering equals full-sort ordering,
  including score ties broken by ``_tiebreak``;
* any index mutation moves the epoch, so the cache can never serve a
  stale generation.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.minidb import Database
from repro.search.engine import SearchEngine, _tiebreak
from repro.search.entity import EntityDefinition, FieldSpec


def make_engine(rows, **kwargs):
    database = Database()
    database.execute(
        "CREATE TABLE Docs (DocID INTEGER PRIMARY KEY, Title TEXT, Body TEXT)"
    )
    table = database.table("Docs")
    for doc_id, title, body in rows:
        table.insert([doc_id, title, body])
    entity = EntityDefinition(
        "doc",
        (
            FieldSpec("title", "SELECT DocID, Title FROM Docs", weight=3.0),
            FieldSpec("body", "SELECT DocID, Body FROM Docs", weight=1.0),
        ),
    )
    engine = SearchEngine(database, entity, **kwargs)
    engine.build()
    return engine


CORPUS = [
    (1, "American History", "the american revolution and the civil war"),
    (2, "Latin American Politics", "elections across latin american nations"),
    (3, "African American Studies", "african american culture and history"),
    (4, "American Music", "jazz blues and american composers"),
    (5, "Database Systems", "query processing transactions recovery"),
    (6, "European History", "empires wars and revolutions in europe"),
]


@pytest.fixture()
def engine():
    return make_engine(CORPUS)


class TestResultCache:
    def test_cached_equals_cold(self, engine):
        cold = engine.search("american history", mode="any")
        warm = engine.search("american history", mode="any")
        assert warm.cache_hit and not cold.cache_hit
        assert warm.hits == cold.hits
        assert warm.doc_ids() == cold.doc_ids()
        assert [hit.score for hit in warm.hits] == [
            hit.score for hit in cold.hits
        ]
        assert warm.candidate_count == cold.candidate_count
        assert warm.scored_count == cold.scored_count

    def test_use_cache_false_bypasses(self, engine):
        engine.search("american")
        uncached = engine.search("american", use_cache=False)
        assert not uncached.cache_hit
        assert uncached.hits == engine.search("american").hits

    def test_cache_counters(self, engine):
        engine.clear_caches()
        engine.search("american")
        engine.search("american")
        info = engine.cache_info()
        assert info["hits"] >= 1
        assert info["misses"] >= 1
        assert info["size"] >= 1

    def test_cached_result_is_fresh_object(self, engine):
        first = engine.search("american")
        first.hits.clear()  # caller mutation must not corrupt the cache
        second = engine.search("american")
        assert len(second) == 4

    def test_distinct_parameters_distinct_entries(self, engine):
        full = engine.search("american")
        limited = engine.search("american", limit=2)
        within = engine.search("american", within={1, 3})
        disjunct = engine.search("american history", mode="any")
        assert len(limited) == 2
        assert within.doc_id_set() == {1, 3}
        assert len(full) == 4
        assert len(disjunct) > len(full) - 1

    def test_case_and_whitespace_share_entry(self, engine):
        engine.clear_caches()
        engine.search("American  History")
        assert engine.search("american history").cache_hit

    def test_epoch_invalidation_after_refresh(self, engine):
        before = engine.search("jazz")
        assert before.doc_id_set() == {4}
        engine.database.execute(
            "UPDATE Docs SET Body = 'classical opera' WHERE DocID = 4"
        )
        engine.refresh_document(4)
        after = engine.search("jazz")
        assert not after.cache_hit
        assert after.doc_id_set() == set()
        assert engine.search("opera").doc_id_set() == {4}

    def test_epoch_invalidation_after_remove(self, engine):
        engine.search("american")
        engine.database.execute("DELETE FROM Docs WHERE DocID = 4")
        engine.refresh_document(4)
        survivors = engine.search("american")
        assert not survivors.cache_hit
        assert 4 not in survivors.doc_id_set()

    def test_build_clears_cache(self, engine):
        engine.search("american")
        engine.build()
        assert not engine.search("american").cache_hit


class TestObservability:
    def test_fields_populated(self, engine):
        result = engine.search("american history", mode="any")
        assert result.candidate_count == len(result.hits)
        assert result.scored_count == result.candidate_count
        assert result.elapsed_ms >= 0.0
        assert result.cache_hit is False

    def test_limit_keeps_full_counts(self, engine):
        result = engine.search("american", limit=1)
        assert len(result) == 1
        assert result.candidate_count == 4
        assert result.scored_count == 4

    def test_empty_query_counts(self, engine):
        result = engine.search("the of and")
        assert result.candidate_count == 0
        assert result.scored_count == 0
        assert result.elapsed_ms >= 0.0


class TestHeapTopK:
    @pytest.mark.parametrize("ranker", ["bm25", "tfidf"])
    @pytest.mark.parametrize("mode", ["all", "any"])
    def test_topk_prefix_of_full_sort(self, ranker, mode):
        engine = make_engine(CORPUS, ranker=ranker)
        full = engine.search("american history", mode=mode, use_cache=False)
        for k in range(1, len(full) + 2):
            limited = engine.search(
                "american history", mode=mode, limit=k, use_cache=False
            )
            assert limited.hits == full.hits[:k]

    def test_ties_follow_tiebreak(self):
        # Identical documents score identically; ordering must fall back
        # to the deterministic _tiebreak over doc ids.
        rows = [(i, "same title", "same body text") for i in range(1, 9)]
        engine = make_engine(rows)
        full = engine.search("title", use_cache=False)
        scores = {hit.score for hit in full.hits}
        assert len(scores) == 1  # all tied
        expected = sorted(full.doc_ids(), key=_tiebreak)
        assert full.doc_ids() == expected
        limited = engine.search("title", limit=3, use_cache=False)
        assert limited.doc_ids() == expected[:3]

    @given(
        docs=st.lists(
            st.lists(
                st.sampled_from(["alpha", "beta", "gamma", "delta"]),
                min_size=1,
                max_size=6,
            ),
            min_size=1,
            max_size=10,
        ),
        query=st.lists(
            st.sampled_from(["alpha", "beta", "gamma"]),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        k=st.integers(min_value=1, max_value=12),
    )
    def test_property_heap_equals_sort(self, docs, query, k):
        rows = [
            (i + 1, " ".join(tokens), " ".join(reversed(tokens)))
            for i, tokens in enumerate(docs)
        ]
        engine = make_engine(rows)
        text = " ".join(query)
        full = engine.search(text, mode="any", use_cache=False)
        limited = engine.search(text, mode="any", limit=k, use_cache=False)
        assert limited.hits == full.hits[:k]
