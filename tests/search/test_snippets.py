"""Tests for result snippets."""

import pytest

from repro.minidb import Database
from repro.search.engine import SearchEngine
from repro.search.entity import EntityDefinition, FieldSpec
from repro.search.snippets import annotate_hits, best_snippet


@pytest.fixture()
def engine():
    database = Database()
    database.execute_script(
        """
        CREATE TABLE Docs (DocID INTEGER PRIMARY KEY, Title TEXT, Body TEXT);
        INSERT INTO Docs VALUES
          (1, 'American History',
           'This long survey course covers the american revolution and then the civil war and finally reconstruction in exhaustive detail'),
          (2, 'Music Theory', 'harmony counterpoint and american jazz forms'),
          (3, 'Plain Algebra', 'groups rings and fields');
        """
    )
    entity = EntityDefinition(
        "doc",
        (
            FieldSpec("title", "SELECT DocID, Title FROM Docs", weight=3.0),
            FieldSpec("body", "SELECT DocID, Body FROM Docs", weight=1.0),
        ),
    )
    eng = SearchEngine(database, entity)
    eng.build()
    return eng


class TestBestSnippet:
    def test_marks_matches(self, engine):
        result = engine.search("american")
        snippet = best_snippet(engine, 1, result.terms)
        assert "**American**" in snippet or "**american**" in snippet

    def test_prefers_high_weight_field(self, engine):
        result = engine.search("american")
        # Doc 1 has "American" in the title; the snippet comes from there.
        snippet = best_snippet(engine, 1, result.terms)
        assert "History" in snippet

    def test_falls_back_to_body(self, engine):
        result = engine.search("jazz")
        snippet = best_snippet(engine, 2, result.terms)
        assert "**jazz**" in snippet

    def test_window_width_respected(self, engine):
        result = engine.search("revolution")
        snippet = best_snippet(engine, 1, result.terms, width=5)
        # 5 words plus ellipses and markers.
        bare = snippet.replace("...", "").replace("**", "")
        assert len(bare.split()) <= 5

    def test_ellipses_mark_truncation(self, engine):
        result = engine.search("reconstruction")
        snippet = best_snippet(engine, 1, result.terms, width=4)
        assert snippet.startswith("...")

    def test_none_when_no_match(self, engine):
        assert best_snippet(engine, 3, ["american"]) is None

    def test_stemmed_matching(self, engine):
        # Query "wars" stems to the same root as "war" in the text.
        result = engine.search("wars")
        snippet = best_snippet(engine, 1, result.terms)
        assert "**war**" in snippet


class TestAnnotateHits:
    def test_pairs_in_rank_order(self, engine):
        result = engine.search("american")
        annotated = annotate_hits(engine, result, limit=5)
        assert [doc_id for doc_id, _s in annotated] == result.doc_ids()[:5]
        assert all(snippet for _d, snippet in annotated)

    def test_limit(self, engine):
        result = engine.search("american")
        assert len(annotate_hits(engine, result, limit=1)) == 1
