"""Unit tests for the inverted index."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SearchError
from repro.search.inverted_index import InvertedIndex


def build_sample():
    index = InvertedIndex()
    index.add_document(1, {"title": ["american", "histori"], "comments": ["great"]})
    index.add_document(2, {"title": ["american", "polit"]})
    index.add_document(3, {"comments": ["histori", "histori", "boring"]})
    return index


class TestBuild:
    def test_document_count(self):
        assert build_sample().document_count == 3

    def test_vocabulary(self):
        index = build_sample()
        assert index.vocabulary_size == 5
        assert set(index.terms()) == {
            "american", "histori", "great", "polit", "boring",
        }

    def test_empty_fields_skipped(self):
        index = InvertedIndex()
        index.add_document(1, {"title": [], "comments": ["x"]})
        assert index.field_length(1, "title") == 0
        assert index.field_length(1, "comments") == 1

    def test_readding_replaces(self):
        index = build_sample()
        index.add_document(1, {"title": ["new"]})
        assert index.document_frequency("american") == 1
        assert index.document_frequency("new") == 1
        assert index.document_count == 3


class TestStatistics:
    def test_document_frequency(self):
        index = build_sample()
        assert index.document_frequency("american") == 2
        assert index.document_frequency("histori") == 2
        assert index.document_frequency("missing") == 0

    def test_term_frequency_across_fields(self):
        index = build_sample()
        assert index.term_frequency(3, "histori") == 2
        assert index.term_frequency(1, "histori") == 1
        assert index.term_frequency(1, "missing") == 0

    def test_collection_frequency(self):
        assert build_sample().collection_frequency("histori") == 3

    def test_idf_decreases_with_df(self):
        index = build_sample()
        assert index.idf("boring") > index.idf("american")

    def test_idf_empty_index(self):
        assert InvertedIndex().idf("x") == 0.0

    def test_field_lengths(self):
        index = build_sample()
        assert index.field_length(1, "title") == 2
        assert index.field_length(3, "comments") == 3
        assert index.document_length(1) == 3

    def test_average_field_length(self):
        index = build_sample()
        # title fields: lengths 2 and 2
        assert index.average_field_length("title") == 2.0
        assert index.average_field_length("nope") == 0.0


class TestAccess:
    def test_postings_shape(self):
        index = build_sample()
        postings = index.postings("american")
        assert postings == {1: {"title": 1}, 2: {"title": 1}}

    def test_matching_documents(self):
        index = build_sample()
        assert index.matching_documents("histori") == {1, 3}

    def test_document_terms_forward(self):
        index = build_sample()
        forward = index.document_terms(3)
        assert forward["comments"]["histori"] == 2

    def test_document_terms_missing(self):
        with pytest.raises(SearchError):
            build_sample().document_terms(99)


class TestRemove:
    def test_remove_document(self):
        index = build_sample()
        index.remove_document(1)
        assert index.document_count == 2
        assert index.document_frequency("great") == 0
        assert index.matching_documents("american") == {2}

    def test_remove_missing(self):
        with pytest.raises(SearchError):
            build_sample().remove_document(99)

    def test_remove_then_stats_consistent(self):
        index = build_sample()
        index.remove_document(3)
        assert index.term_frequency(3, "histori") == 0
        assert index.average_field_length("comments") == 1.0

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=20),
            st.lists(
                st.sampled_from(["alpha", "beta", "gamma"]),
                min_size=1,
                max_size=5,
            ),
            max_size=10,
        )
    )
    def test_add_remove_all_leaves_empty(self, docs):
        index = InvertedIndex()
        for doc_id, tokens in docs.items():
            index.add_document(doc_id, {"body": tokens})
        for doc_id in docs:
            index.remove_document(doc_id)
        assert index.document_count == 0
        assert index.vocabulary_size == 0
