"""Unit tests for the inverted index."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SearchError
from repro.search.inverted_index import InvertedIndex


def build_sample():
    index = InvertedIndex()
    index.add_document(1, {"title": ["american", "histori"], "comments": ["great"]})
    index.add_document(2, {"title": ["american", "polit"]})
    index.add_document(3, {"comments": ["histori", "histori", "boring"]})
    return index


class TestBuild:
    def test_document_count(self):
        assert build_sample().document_count == 3

    def test_vocabulary(self):
        index = build_sample()
        assert index.vocabulary_size == 5
        assert set(index.terms()) == {
            "american", "histori", "great", "polit", "boring",
        }

    def test_empty_fields_skipped(self):
        index = InvertedIndex()
        index.add_document(1, {"title": [], "comments": ["x"]})
        assert index.field_length(1, "title") == 0
        assert index.field_length(1, "comments") == 1

    def test_readding_replaces(self):
        index = build_sample()
        index.add_document(1, {"title": ["new"]})
        assert index.document_frequency("american") == 1
        assert index.document_frequency("new") == 1
        assert index.document_count == 3


class TestStatistics:
    def test_document_frequency(self):
        index = build_sample()
        assert index.document_frequency("american") == 2
        assert index.document_frequency("histori") == 2
        assert index.document_frequency("missing") == 0

    def test_term_frequency_across_fields(self):
        index = build_sample()
        assert index.term_frequency(3, "histori") == 2
        assert index.term_frequency(1, "histori") == 1
        assert index.term_frequency(1, "missing") == 0

    def test_collection_frequency(self):
        assert build_sample().collection_frequency("histori") == 3

    def test_idf_decreases_with_df(self):
        index = build_sample()
        assert index.idf("boring") > index.idf("american")

    def test_idf_empty_index(self):
        assert InvertedIndex().idf("x") == 0.0

    def test_field_lengths(self):
        index = build_sample()
        assert index.field_length(1, "title") == 2
        assert index.field_length(3, "comments") == 3
        assert index.document_length(1) == 3

    def test_average_field_length(self):
        index = build_sample()
        # title fields: lengths 2 and 2
        assert index.average_field_length("title") == 2.0
        assert index.average_field_length("nope") == 0.0


class TestAccess:
    def test_postings_shape(self):
        index = build_sample()
        postings = index.postings("american")
        assert postings == {1: {"title": 1}, 2: {"title": 1}}

    def test_matching_documents(self):
        index = build_sample()
        assert index.matching_documents("histori") == {1, 3}

    def test_document_terms_forward(self):
        index = build_sample()
        forward = index.document_terms(3)
        assert forward["comments"]["histori"] == 2

    def test_document_terms_missing(self):
        with pytest.raises(SearchError):
            build_sample().document_terms(99)


class TestRemove:
    def test_remove_document(self):
        index = build_sample()
        index.remove_document(1)
        assert index.document_count == 2
        assert index.document_frequency("great") == 0
        assert index.matching_documents("american") == {2}

    def test_remove_missing(self):
        with pytest.raises(SearchError):
            build_sample().remove_document(99)

    def test_remove_then_stats_consistent(self):
        index = build_sample()
        index.remove_document(3)
        assert index.term_frequency(3, "histori") == 0
        assert index.average_field_length("comments") == 1.0

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=20),
            st.lists(
                st.sampled_from(["alpha", "beta", "gamma"]),
                min_size=1,
                max_size=5,
            ),
            max_size=10,
        )
    )
    def test_add_remove_all_leaves_empty(self, docs):
        index = InvertedIndex()
        for doc_id, tokens in docs.items():
            index.add_document(doc_id, {"body": tokens})
        for doc_id in docs:
            index.remove_document(doc_id)
        assert index.document_count == 0
        assert index.vocabulary_size == 0

    def test_remove_leaves_no_zeroed_field_entries(self):
        """Regression: `_field_tokens` entries decremented to 0 must not
        linger, and holder counts must not go stale after churn."""
        index = InvertedIndex()
        index.add_document(1, {"title": ["a", "b"], "comments": ["c"]})
        index.remove_document(1)
        assert index._field_tokens == {}
        assert index._field_holders == {}
        assert index.average_field_length("title") == 0.0
        assert index.field_holder_count("title") == 0


def assert_statistics_match(churned, fresh, fields, doc_ids, terms):
    """Every public statistic of a churned index equals a fresh build's."""
    assert churned.document_count == fresh.document_count
    assert churned.vocabulary_size == fresh.vocabulary_size
    assert set(churned.terms()) == set(fresh.terms())
    for field in fields:
        assert churned.average_field_length(field) == fresh.average_field_length(field)
        assert churned.field_holder_count(field) == fresh.field_holder_count(field)
        assert churned.length_normalizers(field, 0.6) == fresh.length_normalizers(field, 0.6)
    for term in terms:
        assert churned.document_frequency(term) == fresh.document_frequency(term)
        assert churned.idf(term) == fresh.idf(term)
        assert churned.collection_frequency(term) == fresh.collection_frequency(term)
        assert churned.postings(term) == fresh.postings(term)
    for doc_id in doc_ids:
        assert churned.document_length(doc_id) == fresh.document_length(doc_id)
        for field in fields:
            assert churned.field_length(doc_id, field) == fresh.field_length(doc_id, field)


class TestChurnRegression:
    """Add/remove/re-add must leave statistics identical to a fresh build."""

    DOCS = {
        1: {"title": ["american", "histori"], "comments": ["great", "great"]},
        2: {"title": ["american", "polit"]},
        3: {"comments": ["histori", "histori", "boring"]},
        4: {"title": ["databas"], "comments": ["fast"]},
    }
    FIELDS = ("title", "comments", "nope")
    TERMS = ("american", "histori", "great", "polit", "boring", "databas", "fast", "zzz")

    def churn(self):
        index = InvertedIndex()
        for doc_id, fields in self.DOCS.items():
            index.add_document(doc_id, fields)
        # Churn: remove two docs, re-add one of them changed, then restore.
        index.remove_document(1)
        index.remove_document(3)
        index.add_document(1, {"title": ["temporari"]})
        index.add_document(1, self.DOCS[1])
        index.add_document(3, self.DOCS[3])
        return index

    def fresh(self):
        index = InvertedIndex()
        index.add_documents(self.DOCS)
        return index

    def test_churned_statistics_match_fresh_build(self):
        assert_statistics_match(
            self.churn(), self.fresh(), self.FIELDS, self.DOCS, self.TERMS
        )

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),
                st.booleans(),  # True = (re)add, False = remove-if-present
            ),
            max_size=12,
        )
    )
    def test_random_churn_matches_fresh_build(self, operations):
        index = InvertedIndex()
        alive = {}
        for doc_id, adding in operations:
            if adding:
                index.add_document(doc_id, self.DOCS[doc_id])
                alive[doc_id] = self.DOCS[doc_id]
            elif doc_id in alive:
                index.remove_document(doc_id)
                del alive[doc_id]
        fresh = InvertedIndex()
        fresh.add_documents(alive)
        assert_statistics_match(index, fresh, self.FIELDS, self.DOCS, self.TERMS)


class TestEpochAndBatch:
    def test_epoch_bumps_on_mutations(self):
        index = InvertedIndex()
        start = index.epoch
        index.add_document(1, {"title": ["a"]})
        after_add = index.epoch
        assert after_add > start
        index.remove_document(1)
        after_remove = index.epoch
        assert after_remove > after_add
        index.clear()
        assert index.epoch > after_remove

    def test_epoch_stable_across_reads(self):
        index = build_sample()
        epoch = index.epoch
        index.average_field_length("title")
        index.length_normalizers("title", 0.6)
        index.idf("american")
        list(index.terms())
        assert index.epoch == epoch

    def test_add_documents_batch_equals_sequential(self):
        docs = {
            1: {"title": ["a", "b"]},
            2: {"title": ["b"], "comments": ["c", "c"]},
        }
        batched = InvertedIndex()
        assert batched.add_documents(docs) == 2
        sequential = InvertedIndex()
        for doc_id, fields in docs.items():
            sequential.add_document(doc_id, fields)
        assert_statistics_match(
            batched, sequential, ("title", "comments"), docs, ("a", "b", "c")
        )

    def test_add_documents_single_epoch_bump(self):
        index = InvertedIndex()
        before = index.epoch
        index.add_documents({1: {"t": ["x"]}, 2: {"t": ["y"]}, 3: {"t": ["z"]}})
        assert index.epoch == before + 1
        assert index.add_documents({}) == 0
        assert index.epoch == before + 1  # empty batch: no bump

    def test_length_normalizers_values(self):
        index = build_sample()
        # title lengths: doc1=2, doc2=2; average 2.0.
        table = index.length_normalizers("title", 0.6)
        expected = 1.0 / (1.0 - 0.6 + (0.6 / 2.0) * 2)
        assert table == {1: expected, 2: expected}
        # Docs without the field have no entry.
        assert 3 not in table

    def test_length_normalizers_rebuilt_after_mutation(self):
        index = build_sample()
        first = index.length_normalizers("comments", 0.6)
        assert index.length_normalizers("comments", 0.6) is first  # cached
        index.add_document(9, {"comments": ["new", "new", "new"]})
        second = index.length_normalizers("comments", 0.6)
        assert second is not first
        assert 9 in second

    def test_length_normalizers_empty_field(self):
        assert InvertedIndex().length_normalizers("title", 0.6) == {}
