"""Unit tests for bigram phrase extraction."""

from repro.search.phrases import count_bigrams, display_unigrams, extract_bigrams


class TestExtractBigrams:
    def test_basic(self):
        assert extract_bigrams("History of Latin American politics") == [
            "latin american",
            "american politics",
        ]

    def test_stopwords_break_chains(self):
        # "war" and "peace" are separated by a stopword; no bigram forms.
        assert extract_bigrams("war and peace") == []

    def test_short_tokens_break_chains(self):
        assert extract_bigrams("vitamin c supplements") == []

    def test_empty(self):
        assert extract_bigrams("") == []
        assert extract_bigrams("the of and") == []

    def test_case_normalized(self):
        assert extract_bigrams("African AMERICAN studies") == [
            "african american",
            "american studies",
        ]


class TestCountBigrams:
    def test_aggregates(self):
        counts = count_bigrams(
            ["latin american politics", "latin american culture"]
        )
        assert counts["latin american"] == 2
        assert counts["american politics"] == 1

    def test_min_count_filter(self):
        counts = count_bigrams(
            ["latin american politics", "latin american culture"],
            min_count=2,
        )
        assert list(counts) == ["latin american"]


class TestDisplayUnigrams:
    def test_unstemmed(self):
        # Display forms keep full words (the cloud shows "politics",
        # not the stem "polit").
        assert display_unigrams("American politics") == ["american", "politics"]

    def test_stopwords_filtered(self):
        assert display_unigrams("the war of the worlds") == ["war", "worlds"]
