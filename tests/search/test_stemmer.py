"""Unit tests for the Porter stemmer against the classic reference cases."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.search.stemmer import porter_stem

# Representative vocabulary from Porter's 1980 article, step by step.
REFERENCE = {
    # step 1a
    "caresses": "caress",
    "ponies": "poni",
    "caress": "caress",
    "cats": "cat",
    # step 1b
    "feed": "feed",
    "agreed": "agre",
    "plastered": "plaster",
    "bled": "bled",
    "motoring": "motor",
    "sing": "sing",
    "conflated": "conflat",
    "troubled": "troubl",
    "sized": "size",
    "hopping": "hop",
    "tanned": "tan",
    "falling": "fall",
    "hissing": "hiss",
    "fizzed": "fizz",
    "failing": "fail",
    "filing": "file",
    # step 1c
    "happy": "happi",
    "sky": "sky",
    # step 2
    "relational": "relat",
    "conditional": "condit",
    "rational": "ration",
    "valenci": "valenc",
    "hesitanci": "hesit",
    "digitizer": "digit",
    "conformabli": "conform",
    "radicalli": "radic",
    "differentli": "differ",
    "vileli": "vile",
    "analogousli": "analog",
    "vietnamization": "vietnam",
    "predication": "predic",
    "operator": "oper",
    "feudalism": "feudal",
    "decisiveness": "decis",
    "hopefulness": "hope",
    "callousness": "callous",
    "formaliti": "formal",
    "sensitiviti": "sensit",
    "sensibiliti": "sensibl",
    # step 3
    "triplicate": "triplic",
    "formative": "form",
    "formalize": "formal",
    "electriciti": "electr",
    "electrical": "electr",
    "hopeful": "hope",
    "goodness": "good",
    # step 4
    "revival": "reviv",
    "allowance": "allow",
    "inference": "infer",
    "airliner": "airlin",
    "gyroscopic": "gyroscop",
    "adjustable": "adjust",
    "defensible": "defens",
    "irritant": "irrit",
    "replacement": "replac",
    "adjustment": "adjust",
    "dependent": "depend",
    "adoption": "adopt",
    "homologou": "homolog",
    "communism": "commun",
    "activate": "activ",
    "angulariti": "angular",
    "homologous": "homolog",
    "effective": "effect",
    "bowdlerize": "bowdler",
    # step 5
    "probate": "probat",
    "rate": "rate",
    "cease": "ceas",
    "controll": "control",
    "roll": "roll",
}


class TestReferenceVocabulary:
    @pytest.mark.parametrize("word,expected", sorted(REFERENCE.items()))
    def test_reference_word(self, word, expected):
        assert porter_stem(word) == expected


class TestEdgeCases:
    def test_short_words_unchanged(self):
        assert porter_stem("a") == "a"
        assert porter_stem("is") == "is"
        assert porter_stem("it") == "it"

    def test_domain_words(self):
        assert porter_stem("programming") == "program"
        assert porter_stem("databases") == "databas"
        assert porter_stem("american") == "american"
        assert porter_stem("histories") == "histori"
        assert porter_stem("history") == "histori"

    def test_related_forms_conflate(self):
        assert porter_stem("recommendation") == porter_stem("recommend")
        assert porter_stem("ratings") == porter_stem("rating")

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
    def test_never_longer_and_always_lowercase(self, word):
        stem = porter_stem(word)
        assert len(stem) <= len(word)
        assert stem == stem.lower()

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=12))
    def test_deterministic(self, word):
        assert porter_stem(word) == porter_stem(word)
