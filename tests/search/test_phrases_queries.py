"""Tests for positional phrase matching and quoted-phrase queries."""

import pytest

from repro.minidb import Database
from repro.search.engine import SearchEngine
from repro.search.entity import EntityDefinition, FieldSpec
from repro.search.inverted_index import InvertedIndex


class TestIndexPhrases:
    def build(self):
        index = InvertedIndex()
        index.add_document(1, {"title": ["african", "american", "studi"]})
        index.add_document(2, {"title": ["american", "african", "art"]})
        index.add_document(3, {"title": ["african", "art"],
                               "body": ["american", "histori"]})
        index.add_document(4, {"body": ["african", "american"]})
        return index

    def test_phrase_match_consecutive(self):
        index = self.build()
        assert index.phrase_match(1, ["african", "american"])
        assert index.phrase_match(4, ["african", "american"])

    def test_phrase_order_matters(self):
        index = self.build()
        assert not index.phrase_match(2, ["african", "american"])
        assert index.phrase_match(2, ["american", "african"])

    def test_phrase_must_be_same_field(self):
        # Doc 3 has "african" in title and "american" in body: no phrase.
        assert not self.build().phrase_match(3, ["african", "american"])

    def test_single_term_phrase(self):
        index = self.build()
        assert index.phrase_match(3, ["african"])
        assert not index.phrase_match(4, ["histori"])

    def test_empty_phrase(self):
        assert not self.build().phrase_match(1, [])

    def test_phrase_documents(self):
        index = self.build()
        assert index.phrase_documents(["african", "american"]) == {1, 4}
        assert index.phrase_documents(["american", "studi"]) == {1}
        assert index.phrase_documents(["missing", "american"]) == set()

    def test_three_word_phrase(self):
        index = self.build()
        assert index.phrase_documents(["african", "american", "studi"]) == {1}

    def test_positions_survive_removal(self):
        index = self.build()
        index.remove_document(1)
        assert index.phrase_documents(["african", "american"]) == {4}

    def test_positional_postings_shape(self):
        index = self.build()
        postings = index.positional_postings("african")
        assert postings[1] == {"title": [0]}
        assert index.postings("african")[1] == {"title": 1}


@pytest.fixture()
def engine():
    database = Database()
    database.execute_script(
        """
        CREATE TABLE Docs (DocID INTEGER PRIMARY KEY, Title TEXT, Body TEXT);
        INSERT INTO Docs VALUES
          (1, 'African American Studies', 'culture and history'),
          (2, 'American Art in Africa', 'african traditions in american art'),
          (3, 'War and Peace', 'the novel by tolstoy'),
          (4, 'American History', 'from colonies to superpower');
        """
    )
    entity = EntityDefinition(
        "doc",
        (
            FieldSpec("title", "SELECT DocID, Title FROM Docs", weight=2.0),
            FieldSpec("body", "SELECT DocID, Body FROM Docs", weight=1.0),
        ),
    )
    eng = SearchEngine(database, entity)
    eng.build()
    return eng


class TestQuotedQueries:
    def test_quoted_phrase_narrower_than_loose(self, engine):
        loose = engine.search("african american").doc_id_set()
        phrase = engine.search('"african american"').doc_id_set()
        assert phrase <= loose
        # doc 2's "african traditions in american art" has both words but
        # not adjacent — phrase search excludes it.
        assert phrase == {1}
        assert 2 in loose

    def test_exact_phrase_set(self, engine):
        assert engine.search('"african american"').doc_id_set() == {1}

    def test_phrase_plus_term(self, engine):
        result = engine.search('"american art" african')
        assert result.doc_id_set() == {2}

    def test_stopword_insensitive_phrase(self, engine):
        # "war peace" matches "War and Peace" (stopword dropped).
        assert engine.search('"war peace"').doc_id_set() == {3}

    def test_single_word_quotes_degenerate(self, engine):
        assert (
            engine.search('"american"').doc_id_set()
            == engine.search("american").doc_id_set()
        )

    def test_empty_quotes_ignored(self, engine):
        assert engine.search('"" american').doc_id_set() == engine.search(
            "american"
        ).doc_id_set()

    def test_parse_query(self, engine):
        loose, phrases = engine.parse_query('history "african american" war')
        assert loose == ["histori", "war"]
        assert phrases == [["african", "american"]]

    def test_count_respects_phrases(self, engine):
        assert engine.count('"african american"') == 1

    def test_phrases_recorded_on_result(self, engine):
        result = engine.search('"african american"')
        assert result.phrases == [["african", "american"]]


class TestPhraseRefinement:
    def test_multiword_cloud_term_refines_as_phrase(self, engine):
        from repro.clouds.cloud import CloudBuilder
        from repro.clouds.refinement import RefinementSession

        builder = CloudBuilder(engine, min_result_df=1)
        builder.prepare()
        session = RefinementSession(engine, builder, "american")
        step = session.refine("african american")
        assert '"african american"' in session.query
        assert step.result.doc_id_set() == {1}
