"""Integration tests: entity definitions + the search engine over minidb."""

import pytest

from repro.errors import SearchError
from repro.minidb import Database
from repro.search.engine import SearchEngine
from repro.search.entity import EntityDefinition, FieldSpec


@pytest.fixture()
def db():
    database = Database()
    database.execute_script(
        """
        CREATE TABLE Courses (CourseID INTEGER PRIMARY KEY, Title TEXT,
                              Description TEXT);
        CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER, Text TEXT,
                               PRIMARY KEY (SuID, CourseID));
        INSERT INTO Courses VALUES
         (1, 'American History', 'The American revolution and civil war'),
         (2, 'Java Programming', 'Programming fundamentals in Java'),
         (3, 'History of Science', 'Greek science and famous scientists'),
         (4, 'Databases', 'Relational systems and query processing');
        INSERT INTO Comments VALUES
         (10, 3, 'surprisingly american focus in the later lectures'),
         (11, 2, 'great java content'),
         (12, 1, 'war war war');
        """
    )
    return database


def entity():
    return EntityDefinition(
        name="course",
        fields=(
            FieldSpec("title", "SELECT CourseID, Title FROM Courses", weight=4.0),
            FieldSpec(
                "description",
                "SELECT CourseID, Description FROM Courses",
                weight=2.0,
            ),
            FieldSpec(
                "comments", "SELECT CourseID, Text FROM Comments", weight=1.0
            ),
        ),
    )


@pytest.fixture()
def engine(db):
    eng = SearchEngine(db, entity())
    eng.build()
    return eng


class TestEntityDefinition:
    def test_field_weights(self):
        assert entity().field_weights == {
            "title": 4.0,
            "description": 2.0,
            "comments": 1.0,
        }

    def test_duplicate_field_rejected(self):
        with pytest.raises(SearchError):
            EntityDefinition(
                "bad",
                (
                    FieldSpec("title", "SELECT 1, 'x'"),
                    FieldSpec("title", "SELECT 1, 'y'"),
                ),
            )

    def test_needs_fields(self):
        with pytest.raises(SearchError):
            EntityDefinition("bad", ())

    def test_bad_weight(self):
        with pytest.raises(SearchError):
            FieldSpec("title", "SELECT 1, 'x'", weight=0)

    def test_field_sql_must_be_two_columns(self, db):
        bad = EntityDefinition(
            "bad",
            (FieldSpec("title", "SELECT CourseID, Title, Description FROM Courses"),),
        )
        with pytest.raises(SearchError):
            bad.collect_texts(db)

    def test_collect_spans_relations(self, db):
        collected = entity().collect_texts(db)
        assert "comments" in collected[3]  # comment folded into course 3


class TestSearch:
    def test_build_counts_entities(self, engine):
        assert engine.document_count == 4

    def test_cross_relation_match(self, engine):
        # Course 3 mentions "american" only in a student comment.
        result = engine.search("american")
        assert 3 in result.doc_id_set()
        assert 1 in result.doc_id_set()

    def test_title_match_outranks_comment_match(self, engine):
        result = engine.search("american")
        assert result.hits[0].doc_id == 1

    def test_conjunctive_default(self, engine):
        # "american war": course 1 has both; course 3 has only american.
        result = engine.search("american war")
        assert result.doc_id_set() == {1}

    def test_disjunctive_mode(self, engine):
        result = engine.search("american war", mode="any")
        assert result.doc_id_set() == {1, 3}

    def test_stemming_bridges_forms(self, engine):
        # Query "programs" stems to the same root as "Programming".
        result = engine.search("programs")
        assert 2 in result.doc_id_set()

    def test_within_restriction(self, engine):
        result = engine.search("american", within={3})
        assert result.doc_id_set() == {3}

    def test_limit(self, engine):
        result = engine.search("american", limit=1)
        assert len(result) == 1

    def test_no_match(self, engine):
        assert len(engine.search("astrophysics")) == 0

    def test_empty_query(self, engine):
        assert len(engine.search("")) == 0
        assert len(engine.search("the of and")) == 0

    def test_count_matches_search(self, engine):
        assert engine.count("american") == len(engine.search("american"))

    def test_unknown_mode(self, engine):
        with pytest.raises(SearchError):
            engine.search("x", mode="fuzzy")

    def test_search_before_build(self, db):
        fresh = SearchEngine(db, entity())
        with pytest.raises(SearchError):
            fresh.search("x")

    def test_deterministic_tiebreak(self, engine):
        first = engine.search("history").doc_ids()
        second = engine.search("history").doc_ids()
        assert first == second


class TestRankers:
    def test_tfidf_ranker(self, db):
        eng = SearchEngine(db, entity(), ranker="tfidf")
        eng.build()
        result = eng.search("american")
        assert result.hits[0].doc_id == 1
        assert all(hit.score > 0 for hit in result.hits)

    def test_unknown_ranker(self, db):
        with pytest.raises(SearchError):
            SearchEngine(db, entity(), ranker="pagerank")

    def test_rankers_agree_on_match_set(self, db):
        bm25 = SearchEngine(db, entity(), ranker="bm25")
        bm25.build()
        tfidf = SearchEngine(db, entity(), ranker="tfidf")
        tfidf.build()
        assert (
            bm25.search("history").doc_id_set()
            == tfidf.search("history").doc_id_set()
        )


class TestIncrementalRefresh:
    def test_refresh_after_new_comment(self, db, engine):
        db.execute(
            "INSERT INTO Comments VALUES (13, 4, 'hidden american gem')"
        )
        assert 4 not in engine.search("american").doc_id_set()
        engine.refresh_document(4)
        assert 4 in engine.search("american").doc_id_set()

    def test_refresh_after_delete(self, db, engine):
        db.execute("DELETE FROM Comments WHERE CourseID = 3")
        engine.refresh_document(3)
        assert 3 not in engine.search("american").doc_id_set()

    def test_refresh_vanished_entity(self, db, engine):
        db.execute("DELETE FROM Comments WHERE CourseID = 3")
        db.execute("DELETE FROM Courses WHERE CourseID = 3")
        engine.refresh_document(3)
        assert 3 not in engine.search("history").doc_id_set()

    def test_document_text_access(self, engine):
        texts = engine.document_text(1)
        assert "American History" in texts["title"]
        with pytest.raises(SearchError):
            engine.document_text(99)
