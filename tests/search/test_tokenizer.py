"""Unit tests for tokenization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.search.tokenizer import STOPWORDS, Tokenizer


class TestRawTokens:
    def test_lowercases_and_splits(self):
        tokens = Tokenizer().raw_tokens("Latin-American Politics 101")
        assert tokens == ["latin", "american", "politics", "101"]

    def test_apostrophes_collapse(self):
        assert Tokenizer().raw_tokens("don't") == ["dont"]

    def test_empty(self):
        assert Tokenizer().raw_tokens("") == []
        assert Tokenizer().raw_tokens("  ...  ") == []


class TestPipeline:
    def test_stopwords_removed(self):
        tokens = Tokenizer(stem=False).tokens("the history of the war")
        assert tokens == ["history", "war"]

    def test_domain_stopwords(self):
        tokens = Tokenizer(stem=False).tokens("introduction to the course units")
        assert tokens == []

    def test_min_length(self):
        tokens = Tokenizer(stem=False).tokens("a b cd")
        assert tokens == ["cd"]

    def test_stemming_applied(self):
        tokens = Tokenizer().tokens("programming databases")
        assert tokens == ["program", "databas"]

    def test_stemming_off(self):
        tokens = Tokenizer(stem=False).tokens("programming")
        assert tokens == ["programming"]

    def test_custom_stopwords(self):
        tokens = Tokenizer(stem=False, stopwords={"banana"}).tokens(
            "banana the apple"
        )
        assert tokens == ["the", "apple"]

    def test_stopword_filter_disabled(self):
        tokens = Tokenizer(stem=False, remove_stopwords=False).tokens(
            "the war"
        )
        assert tokens == ["the", "war"]

    def test_query_matches_document_pipeline(self):
        tokenizer = Tokenizer()
        assert tokenizer.query_tokens("American History") == tokenizer.tokens(
            "American History"
        )

    def test_stem_cache_consistency(self):
        tokenizer = Tokenizer()
        first = tokenizer.stem_token("running")
        second = tokenizer.stem_token("running")
        assert first == second == "run"

    @given(st.text(max_size=60))
    def test_tokens_never_contain_uppercase_or_spaces(self, text):
        for token in Tokenizer().tokens(text):
            assert token == token.lower()
            assert " " not in token

    @given(st.text(alphabet="abc XYZ,.'", max_size=40))
    def test_pipeline_idempotent_on_own_output(self, text):
        tokenizer = Tokenizer(stem=False)
        once = tokenizer.tokens(text)
        again = tokenizer.tokens(" ".join(once))
        assert once == again


class TestStopwordList:
    def test_common_words_present(self):
        for word in ("the", "and", "of"):
            assert word in STOPWORDS

    def test_content_words_absent(self):
        for word in ("american", "history", "java"):
            assert word not in STOPWORDS
