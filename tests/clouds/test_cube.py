"""Differential battery for OLAP cloud cubes.

The contract under test: **every** navigated cell's cloud — drill-down,
slice, roll-up, in any order — is bit-identical to a cold
``build_for_docs`` over the same filtered document set, while the cube's
own counters prove the incremental (narrowed) path actually ran.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clouds.cube import (
    COURSE_DIMENSIONS,
    CloudCube,
    DimensionSpec,
    membership_for,
)
from repro.courserank import CourseRank
from repro.datagen import generate_university
from repro.errors import CloudError


def _terms(cloud):
    return [
        (term.term, term.score, term.occurrences, term.result_df, term.bucket)
        for term in cloud.terms
    ]


@pytest.fixture(scope="module")
def app():
    instance = CourseRank(generate_university(scale="tiny", seed=7))
    instance.cloudsearch.build()
    return instance


@pytest.fixture()
def cube(app):
    return app.cloudsearch.cube()


def _cold(cube, cell):
    return cube.builder.build_for_docs(
        cell.doc_ids, query=cube.query, query_terms=cube.query_terms
    )


class TestDifferentialNavigation:
    def test_every_drill_down_child_matches_a_cold_build(self, cube):
        root = cube.root()
        for dimension in ("department", "quarter", "instructor"):
            children = cube.drill_down(root, dimension)
            assert children, f"no values along {dimension!r}"
            for value, child in children.items():
                assert child.coordinate == ((dimension, value),)
                assert _terms(child.cloud) == _terms(_cold(cube, child))
        assert cube.stats["incremental_builds"] > 0

    def test_second_level_slices_match_cold_builds(self, cube):
        root = cube.root()
        department = cube.dimension_values(root, "department")[0]
        cell = cube.slice(root, "department", department)
        for quarter in cube.dimension_values(cell, "quarter"):
            deeper = cube.slice(cell, "quarter", quarter)
            assert set(deeper.doc_ids) <= set(cell.doc_ids)
            assert _terms(deeper.cloud) == _terms(_cold(cube, deeper))

    def test_roll_up_returns_the_memoized_parent(self, cube):
        root = cube.root()
        department = cube.dimension_values(root, "department")[0]
        child = cube.slice(root, "department", department)
        hits = cube.stats["memo_hits"]
        assert cube.roll_up(child) is root
        assert cube.stats["memo_hits"] == hits + 1

    def test_memberships_partition_consistently(self, app, cube):
        root = cube.root()
        spec = COURSE_DIMENSIONS[0]  # department
        membership = membership_for(app.db, spec)
        children = cube.drill_down(root, "department")
        for value, child in children.items():
            for doc_id in child.doc_ids:
                assert value in membership[doc_id]


class TestErrors:
    def test_unknown_dimension(self, cube):
        with pytest.raises(CloudError):
            cube.dimension_values(cube.root(), "semester")

    def test_dimension_fixed_twice(self, cube):
        root = cube.root()
        department = cube.dimension_values(root, "department")[0]
        cell = cube.slice(root, "department", department)
        with pytest.raises(CloudError):
            cube.slice(cell, "department", department)

    def test_duplicate_dimension_specs(self, app):
        spec = COURSE_DIMENSIONS[0]
        with pytest.raises(CloudError):
            CloudCube(
                app.db, app.cloudsearch.builder, dimensions=(spec, spec)
            )

    def test_roll_up_from_the_apex(self, cube):
        with pytest.raises(CloudError):
            cube.roll_up(cube.root())


class TestResultRootedCube:
    def test_session_cube_is_rooted_at_the_result(self, app):
        session = app.cloudsearch.session("programming")
        assert session.result.doc_ids(), "query must hit at tiny scale"
        cube = session.cube()
        root = cube.root()
        assert set(root.doc_ids) == set(session.result.doc_ids())
        children = cube.drill_down(root, "department")
        for child in children.values():
            assert _terms(child.cloud) == _terms(_cold(cube, child))

    def test_cloudsearch_cube_accepts_a_result(self, app):
        result, _cloud = app.cloudsearch.search("data")
        cube = app.cloudsearch.cube(result=result)
        assert set(cube.root().doc_ids) == set(result.doc_ids())


class TestVersionInvalidation:
    def test_dml_rotates_the_cell_memo(self, app):
        from repro.courserank.accounts import Role

        cube = app.cloudsearch.cube()
        cube.root()
        cold = cube.stats["cold_builds"]
        cube.root()
        assert cube.stats["cold_builds"] == cold  # memo hit, same version
        user = app.accounts.register("cubewriter", Role.STUDENT, person_id=2)
        app.comment_on_course(
            user, 1, "an invalidation probe comment", 4.0
        )
        cube.root()
        assert cube.stats["cold_builds"] == cold + 1  # version rotated

    def test_custom_dimension_reflects_new_rows(self, app):
        spec = DimensionSpec(
            name="unit-bucket",
            sql="SELECT CourseID, Units FROM Courses",
            tables=("Courses",),
        )
        cube = CloudCube(
            app.db, app.cloudsearch.builder, dimensions=(spec,)
        )
        root = cube.root()
        values = cube.dimension_values(root, "unit-bucket")
        assert values
        covered = set()
        for value in values:
            covered.update(cube.slice(root, "unit-bucket", value).doc_ids)
        membership = membership_for(app.db, spec)
        assert covered == {
            doc_id for doc_id in root.doc_ids if membership.get(doc_id)
        }


class TestRandomWalks:
    @given(
        choices=st.lists(
            st.tuples(
                st.sampled_from(["department", "quarter", "instructor"]),
                st.integers(min_value=0, max_value=7),
                st.booleans(),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(deadline=None)
    def test_any_walk_stays_bit_identical_to_cold_builds(
        self, app, choices
    ):
        cube = app.cloudsearch.cube()
        cell = cube.root()
        for dimension, index, go_up in choices:
            if go_up and cell.coordinate:
                cell = cube.roll_up(cell)
                continue
            if any(fixed == dimension for fixed, _ in cell.coordinate):
                continue
            values = cube.dimension_values(cell, dimension)
            if not values:
                continue
            cell = cube.slice(cell, dimension, values[index % len(values)])
            assert _terms(cell.cloud) == _terms(_cold(cube, cell))
