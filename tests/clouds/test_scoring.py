"""Unit tests for cloud term gathering strategies and significance models."""

import pytest

from repro.errors import CloudError
from repro.clouds.scoring import (
    FrequencyScoring,
    PopularityScoring,
    TermSource,
    TermStats,
    TfIdfScoring,
    get_scoring,
)
from repro.minidb import Database
from repro.search.engine import SearchEngine
from repro.search.entity import EntityDefinition, FieldSpec


@pytest.fixture()
def engine():
    database = Database()
    database.execute_script(
        """
        CREATE TABLE Docs (DocID INTEGER PRIMARY KEY, Title TEXT, Body TEXT);
        INSERT INTO Docs VALUES
         (1, 'American History', 'the american revolution and civil war'),
         (2, 'Latin American Politics', 'elections in latin american states'),
         (3, 'Databases', 'query processing and transactions'),
         (4, 'American Music', 'jazz and american composers');
        """
    )
    entity = EntityDefinition(
        "doc",
        (
            FieldSpec("title", "SELECT DocID, Title FROM Docs", weight=3.0),
            FieldSpec("body", "SELECT DocID, Body FROM Docs", weight=1.0),
        ),
    )
    eng = SearchEngine(database, entity)
    eng.build()
    return eng


class TestTermSource:
    def test_unknown_strategy(self, engine):
        with pytest.raises(CloudError):
            TermSource(engine, strategy="magic")

    def test_gather_requires_prepare(self, engine):
        source = TermSource(engine)
        with pytest.raises(CloudError):
            source.gather([1])

    def test_forward_gathers_weighted_counts(self, engine):
        source = TermSource(engine, strategy="forward")
        source.prepare()
        stats = {s.term: s for s in source.gather([1])}
        # "american" appears in title (w=3) and body (w=1) of doc 1.
        assert stats["american"].occurrences == 4.0
        assert stats["american"].result_df == 1

    def test_corpus_df_counted(self, engine):
        source = TermSource(engine, strategy="forward")
        source.prepare()
        stats = {s.term: s for s in source.gather([1, 2, 4])}
        assert stats["american"].corpus_df == 3

    def test_bigrams_included(self, engine):
        source = TermSource(engine, strategy="forward")
        source.prepare()
        stats = {s.term: s for s in source.gather([2])}
        assert "latin american" in stats

    def test_bigrams_can_be_disabled(self, engine):
        source = TermSource(engine, strategy="forward", include_bigrams=False)
        source.prepare()
        stats = {s.term: s for s in source.gather([2])}
        assert "latin american" not in stats

    def test_rescan_matches_forward_exactly(self, engine):
        forward = TermSource(engine, strategy="forward")
        forward.prepare()
        rescan = TermSource(engine, strategy="rescan")
        rescan.prepare()
        doc_ids = [1, 2, 4]
        left = {(s.term, s.occurrences, s.result_df) for s in forward.gather(doc_ids)}
        right = {(s.term, s.occurrences, s.result_df) for s in rescan.gather(doc_ids)}
        assert left == right

    def test_topk_is_subset_of_forward(self, engine):
        forward = TermSource(engine, strategy="forward")
        forward.prepare()
        topk = TermSource(engine, strategy="topk", topk_per_doc=3)
        topk.prepare()
        doc_ids = [1, 2, 4]
        full_terms = {s.term for s in forward.gather(doc_ids)}
        approx_terms = {s.term for s in topk.gather(doc_ids)}
        assert approx_terms <= full_terms
        assert approx_terms  # not empty

    def test_corpus_size(self, engine):
        source = TermSource(engine)
        source.prepare()
        assert source.corpus_size == 4

    def test_gather_result_mutation_does_not_corrupt_cache(self, engine):
        source = TermSource(engine, strategy="forward")
        source.prepare()
        first = source.gather([1, 2])
        pristine = list(first)
        first.sort(key=lambda s: s.term)
        first.pop()
        second = source.gather([1, 2])
        assert second == pristine


class TestSignificanceModels:
    def stats(self, occurrences=10.0, result_df=5, corpus_df=20):
        return TermStats(
            term="x",
            occurrences=occurrences,
            result_df=result_df,
            corpus_df=corpus_df,
        )

    def test_frequency_is_occurrences(self):
        assert FrequencyScoring().score(self.stats(), 10, 100) == 10.0

    def test_tfidf_prefers_rare_in_corpus(self):
        scoring = TfIdfScoring()
        rare = scoring.score(self.stats(corpus_df=2), 10, 100)
        common = scoring.score(self.stats(corpus_df=90), 10, 100)
        assert rare > common

    def test_popularity_prefers_coverage(self):
        scoring = PopularityScoring()
        broad = scoring.score(self.stats(result_df=9, occurrences=9), 10, 100)
        narrow = scoring.score(self.stats(result_df=1, occurrences=9), 10, 100)
        assert broad > narrow

    def test_popularity_zero_on_empty(self):
        assert PopularityScoring().score(self.stats(), 0, 100) == 0.0

    def test_get_scoring_by_name(self):
        assert isinstance(get_scoring("frequency"), FrequencyScoring)
        assert isinstance(get_scoring("tfidf"), TfIdfScoring)
        assert isinstance(get_scoring("popularity"), PopularityScoring)

    def test_get_scoring_passthrough(self):
        instance = TfIdfScoring()
        assert get_scoring(instance) is instance

    def test_get_scoring_unknown(self):
        with pytest.raises(CloudError):
            get_scoring("banana")
