"""Tests for cloud building, rendering, and refinement sessions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CloudError
from repro.clouds.cloud import CloudBuilder
from repro.clouds.refinement import RefinementSession
from repro.clouds.render import render_html, render_text
from repro.minidb import Database
from repro.search.engine import SearchEngine
from repro.search.entity import EntityDefinition, FieldSpec


def make_engine(rows):
    database = Database()
    database.execute(
        "CREATE TABLE Docs (DocID INTEGER PRIMARY KEY, Title TEXT, Body TEXT)"
    )
    table = database.table("Docs")
    for doc_id, title, body in rows:
        table.insert([doc_id, title, body])
    entity = EntityDefinition(
        "doc",
        (
            FieldSpec("title", "SELECT DocID, Title FROM Docs", weight=3.0),
            FieldSpec("body", "SELECT DocID, Body FROM Docs", weight=1.0),
        ),
    )
    engine = SearchEngine(database, entity)
    engine.build()
    return engine


CORPUS = [
    (1, "American History", "the american revolution and the civil war"),
    (2, "Latin American Politics", "elections across latin american nations"),
    (3, "African American Studies", "african american culture and history"),
    (4, "American Music", "jazz blues and american composers"),
    (5, "Database Systems", "query processing transactions recovery"),
    (6, "European History", "empires wars and revolutions in europe"),
]


@pytest.fixture()
def engine():
    return make_engine(CORPUS)


@pytest.fixture()
def builder(engine):
    built = CloudBuilder(engine, scoring="popularity", min_result_df=1)
    built.prepare()
    return built


class TestCloudBuilder:
    def test_cloud_over_search_results(self, engine, builder):
        result = engine.search("american")
        cloud = builder.build(result)
        assert cloud.result_size == 4
        assert len(cloud) > 0

    def test_query_term_suppressed(self, engine, builder):
        cloud = builder.build(engine.search("american"))
        assert cloud.find("american") is None

    def test_phrases_containing_query_term_survive(self, engine, builder):
        cloud = builder.build(engine.search("american"))
        names = cloud.term_names()
        assert any("american" in name and name != "american" for name in names)

    def test_cross_document_terms_present(self, engine, builder):
        cloud = builder.build(engine.search("american"))
        names = set(cloud.term_names())
        # "history" occurs in docs 1 and 3 of the result set.
        assert "history" in names

    def test_max_terms_cap(self, engine):
        capped = CloudBuilder(engine, max_terms=3, min_result_df=1)
        capped.prepare()
        cloud = capped.build(engine.search("american"))
        assert len(cloud) <= 3

    def test_buckets_monotone_with_rank(self, engine, builder):
        cloud = builder.build(engine.search("american"))
        buckets = [term.bucket for term in cloud.terms]
        assert buckets == sorted(buckets, reverse=True)
        assert buckets[0] == 5

    def test_empty_result_empty_cloud(self, engine, builder):
        cloud = builder.build(engine.search("astrophysics"))
        assert len(cloud) == 0
        assert cloud.result_size == 0

    def test_min_result_df_filters_singletons(self, engine):
        strict = CloudBuilder(engine, min_result_df=2)
        strict.prepare()
        cloud = strict.build(engine.search("american"))
        assert all(term.result_df >= 2 for term in cloud.terms)

    def test_invalid_parameters(self, engine):
        with pytest.raises(CloudError):
            CloudBuilder(engine, max_terms=0)
        with pytest.raises(CloudError):
            CloudBuilder(engine, buckets=0)

    def test_find_and_top(self, engine, builder):
        cloud = builder.build(engine.search("american"))
        top = cloud.top(2)
        assert len(top) == 2
        assert cloud.find(top[0].term) is not None
        assert cloud.find("no-such-term") is None

    def test_strategies_agree_on_exact_terms(self, engine):
        forward = CloudBuilder(engine, strategy="forward", min_result_df=1)
        forward.prepare()
        rescan = CloudBuilder(engine, strategy="rescan", min_result_df=1)
        rescan.prepare()
        result = engine.search("american")
        assert (
            forward.build(result).term_names()
            == rescan.build(result).term_names()
        )


class TestRefinement:
    def test_figure_3_4_walkthrough(self, engine, builder):
        """'american' → click a cloud term → narrowed results + new cloud."""
        session = RefinementSession(engine, builder, "american")
        initial_size = len(session.result)
        assert initial_size == 4
        step = session.refine("history")
        assert len(step.result) < initial_size
        assert step.result.doc_id_set() <= {1, 3}
        assert step.cloud is not session._steps[0].cloud

    def test_refinement_is_subset(self, engine, builder):
        session = RefinementSession(engine, builder, "american")
        before = session.result.doc_id_set()
        session.refine("history")
        assert session.result.doc_id_set() <= before

    def test_back_restores(self, engine, builder):
        session = RefinementSession(engine, builder, "american")
        first_query = session.query
        session.refine("history")
        session.back()
        assert session.query == first_query
        assert session.depth == 0

    def test_back_at_root_rejected(self, engine, builder):
        session = RefinementSession(engine, builder, "american")
        with pytest.raises(CloudError):
            session.back()

    def test_empty_refinement_term_rejected(self, engine, builder):
        session = RefinementSession(engine, builder, "american")
        with pytest.raises(CloudError):
            session.refine("   ")

    def test_history_and_reset(self, engine, builder):
        session = RefinementSession(engine, builder, "american")
        session.refine("history")
        assert session.history() == ["american", "american history"]
        session.reset("databases")
        assert session.depth == 0
        assert "databases" in session.query

    def test_multiword_cloud_term_refines(self, engine, builder):
        session = RefinementSession(engine, builder, "american")
        step = session.refine("african american")
        assert step.result.doc_id_set() == {3}

    @given(st.lists(st.sampled_from(["history", "culture", "jazz"]), max_size=3))
    def test_refinement_chain_monotone(self, terms):
        engine = make_engine(CORPUS)
        builder = CloudBuilder(engine, min_result_df=1)
        builder.prepare()
        session = RefinementSession(engine, builder, "american")
        previous = session.result.doc_id_set()
        for term in terms:
            session.refine(term)
            current = session.result.doc_id_set()
            assert current <= previous
            previous = current


class TestRendering:
    def test_render_text(self, engine, builder):
        cloud = builder.build(engine.search("american"))
        text = render_text(cloud)
        assert "(" in text and ")" in text

    def test_render_text_empty(self, engine, builder):
        cloud = builder.build(engine.search("astrophysics"))
        assert render_text(cloud) == "(empty cloud)"

    def test_render_html_structure(self, engine, builder):
        cloud = builder.build(engine.search("american"))
        html = render_html(cloud)
        assert html.startswith('<div class="data-cloud">')
        assert html.count("cloud-term") == len(cloud)
        assert "font-size" in html

    def test_render_html_escapes(self, engine, builder):
        cloud = builder.build(engine.search("american"))
        assert "<script" not in render_html(cloud)
