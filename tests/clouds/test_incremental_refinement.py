"""Incremental refinement clouds must equal from-scratch clouds.

``RefinementSession`` derives a refined step's cloud by subtracting the
dropped documents from the parent's cached term aggregates
(``TermSource.gather_narrowed``).  These tests pin the equivalence: for
every strategy and scoring model, the incremental cloud is term-for-term
and score-for-score identical to a cold ``forward``/``rescan`` build over
the same narrowed result set.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clouds.cloud import CloudBuilder
from repro.clouds.refinement import RefinementSession
from repro.minidb import Database
from repro.search.engine import SearchEngine
from repro.search.entity import EntityDefinition, FieldSpec


def make_engine(rows):
    database = Database()
    database.execute(
        "CREATE TABLE Docs (DocID INTEGER PRIMARY KEY, Title TEXT, Body TEXT)"
    )
    table = database.table("Docs")
    for doc_id, title, body in rows:
        table.insert([doc_id, title, body])
    entity = EntityDefinition(
        "doc",
        (
            FieldSpec("title", "SELECT DocID, Title FROM Docs", weight=3.0),
            FieldSpec("body", "SELECT DocID, Body FROM Docs", weight=1.0),
        ),
    )
    engine = SearchEngine(database, entity)
    engine.build()
    return engine


CORPUS = [
    (1, "American History", "the american revolution and the civil war"),
    (2, "Latin American Politics", "elections across latin american nations"),
    (3, "African American Studies", "african american culture and history"),
    (4, "American Music", "jazz blues and american composers and history"),
    (5, "Database Systems", "query processing transactions recovery"),
    (6, "European History", "empires wars and revolutions in europe"),
    (7, "American Revolution", "revolution war and american independence history"),
    (8, "American Cinema", "film history and american directors"),
]


@pytest.fixture()
def engine():
    return make_engine(CORPUS)


def cloud_signature(cloud):
    """Everything that matters for equality: terms, scores, df, buckets."""
    return [
        (term.term, term.score, term.occurrences, term.result_df, term.bucket)
        for term in cloud.terms
    ]


class TestGatherNarrowed:
    @pytest.mark.parametrize("strategy", ["forward", "rescan", "topk"])
    def test_narrowed_equals_from_scratch(self, engine, strategy):
        builder = CloudBuilder(engine, strategy=strategy, min_result_df=1)
        builder.prepare()
        parent = engine.search("american")
        builder.source.gather(parent.doc_ids())  # seed the parent cache
        child = engine.search("american history", within=parent.doc_id_set())
        narrowed = builder.source.gather_narrowed(
            parent.doc_ids(), child.doc_ids()
        )
        scratch = CloudBuilder(engine, strategy=strategy, min_result_df=1)
        scratch.prepare()
        direct = scratch.source.gather(child.doc_ids())
        as_tuples = lambda stats: sorted(
            (s.term, s.occurrences, s.result_df, s.corpus_df) for s in stats
        )
        assert as_tuples(narrowed) == as_tuples(direct)

    def test_fallback_without_parent_cache(self, engine):
        builder = CloudBuilder(engine, strategy="forward", min_result_df=1)
        builder.prepare()
        parent = engine.search("american")
        child = engine.search("american history", within=parent.doc_id_set())
        # Parent stats never gathered: must fall back to a correct merge.
        narrowed = builder.source.gather_narrowed(
            parent.doc_ids(), child.doc_ids()
        )
        direct_builder = CloudBuilder(engine, strategy="forward", min_result_df=1)
        direct_builder.prepare()
        direct = direct_builder.source.gather(child.doc_ids())
        assert sorted(s.term for s in narrowed) == sorted(s.term for s in direct)

    def test_narrowed_result_is_cached(self, engine):
        builder = CloudBuilder(engine, strategy="forward", min_result_df=1)
        builder.prepare()
        parent = engine.search("american")
        builder.source.gather(parent.doc_ids())
        child = engine.search("american history", within=parent.doc_id_set())
        builder.source.gather_narrowed(parent.doc_ids(), child.doc_ids())
        cache = builder.source._gather_cache
        hits_before = cache.hits
        builder.source.gather(child.doc_ids())
        assert cache.hits == hits_before + 1


class TestRefinementSessionClouds:
    @pytest.mark.parametrize("strategy", ["forward", "rescan"])
    @pytest.mark.parametrize("scoring", ["frequency", "tfidf", "popularity"])
    def test_session_cloud_equals_cold_build(self, engine, strategy, scoring):
        builder = CloudBuilder(
            engine, scoring=scoring, strategy=strategy, min_result_df=1
        )
        builder.prepare()
        session = RefinementSession(engine, builder, "american")
        step = session.refine("history")
        cold = CloudBuilder(
            engine, scoring=scoring, strategy=strategy, min_result_df=1
        )
        cold.prepare()
        expected = cold.build(step.result)
        assert cloud_signature(step.cloud) == cloud_signature(expected)

    def test_chained_refinements_stay_exact(self, engine):
        builder = CloudBuilder(engine, strategy="forward", min_result_df=1)
        builder.prepare()
        session = RefinementSession(engine, builder, "american")
        for term in ("history", "revolution"):
            step = session.refine(term)
            cold = CloudBuilder(engine, strategy="forward", min_result_df=1)
            cold.prepare()
            assert cloud_signature(step.cloud) == cloud_signature(
                cold.build(step.result)
            )

    def test_index_mutation_invalidates_gather_cache(self, engine):
        builder = CloudBuilder(engine, strategy="forward", min_result_df=1)
        builder.prepare()
        session = RefinementSession(engine, builder, "american")
        parent_ids = tuple(session.result.doc_ids())
        engine.database.execute("DELETE FROM Docs WHERE DocID = 8")
        engine.refresh_document(8)
        # The old epoch's cached aggregates are unreachable under the new
        # epoch; a narrowed gather falls back and stays correct.
        builder.prepare()  # re-extract after the index change
        child = engine.search("american history")
        narrowed = builder.source.gather_narrowed(
            parent_ids, child.doc_ids()
        )
        direct = CloudBuilder(engine, strategy="forward", min_result_df=1)
        direct.prepare()
        expected = direct.source.gather(child.doc_ids())
        assert sorted(s.term for s in narrowed) == sorted(
            s.term for s in expected
        )

    @given(
        st.lists(
            st.sampled_from(["history", "revolution", "culture", "jazz"]),
            min_size=1,
            max_size=3,
        )
    )
    def test_property_refinement_chain_equals_cold(self, terms):
        engine = make_engine(CORPUS)
        builder = CloudBuilder(engine, strategy="forward", min_result_df=1)
        builder.prepare()
        session = RefinementSession(engine, builder, "american")
        for term in terms:
            step = session.refine(term)
            cold = CloudBuilder(engine, strategy="forward", min_result_df=1)
            cold.prepare()
            assert cloud_signature(step.cloud) == cloud_signature(
                cold.build(step.result)
            )
