"""Sharded cube navigation must answer bit-identically to unsharded.

The ISSUE's second differential battery: every cube navigation on the
scatter-gather service — root, drill-down, slice, roll-up, at 1 through
5 shards — equals the same walk on an unsharded :class:`CloudCube` over
the union corpus, term for term and score for score.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.courserank import CourseRank
from repro.datagen import generate_university
from repro.errors import CloudError
from repro.service import CourseRankService

REPRO_SHARDS = int(os.environ.get("REPRO_SHARDS", "3"))

DIMENSIONS = ("department", "quarter", "instructor")


def _terms(cloud):
    return [
        (term.term, term.score, term.occurrences, term.result_df, term.bucket)
        for term in cloud.terms
    ]


def _same_cell(base_cell, svc_cell):
    assert svc_cell.coordinate == base_cell.coordinate
    assert sorted(svc_cell.doc_ids) == sorted(base_cell.doc_ids)
    assert svc_cell.result_size == base_cell.result_size
    assert _terms(svc_cell.cloud) == _terms(base_cell.cloud)


@pytest.fixture(scope="module")
def pair():
    base = CourseRank(generate_university(scale="tiny", seed=7))
    base.cloudsearch.build()
    service = CourseRankService(
        generate_university(scale="tiny", seed=7), num_shards=REPRO_SHARDS
    )
    return base, service


class TestCorpusCubeEquivalence:
    def test_root_cells_match(self, pair):
        base, service = pair
        _same_cell(base.cloudsearch.cube().root(), service.cube().root())

    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_drill_down_matches_cell_by_cell(self, pair, dimension):
        base, service = pair
        base_cube, svc_cube = base.cloudsearch.cube(), service.cube()
        base_root, svc_root = base_cube.root(), svc_cube.root()
        assert svc_cube.dimension_values(svc_root, dimension) == (
            base_cube.dimension_values(base_root, dimension)
        )
        base_children = base_cube.drill_down(base_root, dimension)
        svc_children = svc_cube.drill_down(svc_root, dimension)
        assert sorted(svc_children) == sorted(base_children)
        for value, svc_child in svc_children.items():
            _same_cell(base_children[value], svc_child)
        assert svc_cube.stats["incremental_builds"] > 0

    def test_two_level_walk_with_roll_up(self, pair):
        base, service = pair
        base_cube, svc_cube = base.cloudsearch.cube(), service.cube()
        base_cell, svc_cell = base_cube.root(), svc_cube.root()
        for dimension in ("department", "quarter"):
            value = base_cube.dimension_values(base_cell, dimension)[0]
            base_cell = base_cube.slice(base_cell, dimension, value)
            svc_cell = svc_cube.slice(svc_cell, dimension, value)
            _same_cell(base_cell, svc_cell)
        hits = svc_cube.stats["memo_hits"]
        rolled = svc_cube.roll_up(svc_cell)
        assert rolled.coordinate == svc_cell.coordinate[:-1]
        assert svc_cube.stats["memo_hits"] == hits + 1

    def test_roll_up_from_apex_raises(self, pair):
        _, service = pair
        cube = service.cube()
        with pytest.raises(CloudError):
            cube.roll_up(cube.root())

    def test_unknown_dimension_raises(self, pair):
        _, service = pair
        cube = service.cube()
        with pytest.raises(CloudError):
            cube.dimension_values(cube.root(), "semester")


class TestSessionRootedCube:
    @pytest.mark.parametrize("query", ["programming", "data"])
    def test_session_cubes_walk_identically(self, pair, query):
        base, service = pair
        base_session = base.cloudsearch.session(query)
        svc_session = service.session(query)
        assert base_session.result.doc_ids(), "query must hit at tiny scale"
        base_cube = base_session.cube()
        svc_cube = svc_session.cube()
        base_root, svc_root = base_cube.root(), svc_cube.root()
        _same_cell(base_root, svc_root)
        for dimension in DIMENSIONS:
            base_children = base_cube.drill_down(base_root, dimension)
            svc_children = svc_cube.drill_down(svc_root, dimension)
            assert sorted(svc_children) == sorted(base_children)
            for value, svc_child in svc_children.items():
                _same_cell(base_children[value], svc_child)


class TestShardCountIndependence:
    @settings(max_examples=6, deadline=None)
    @given(
        num_shards=st.integers(min_value=1, max_value=5),
        dimension=st.sampled_from(DIMENSIONS),
        seed=st.integers(min_value=1, max_value=2),
    )
    def test_any_shard_count_walks_like_unsharded(
        self, num_shards, dimension, seed
    ):
        base = CourseRank(generate_university(scale="tiny", seed=seed))
        base.cloudsearch.build()
        service = CourseRankService(
            generate_university(scale="tiny", seed=seed),
            num_shards=num_shards,
        )
        base_cube, svc_cube = base.cloudsearch.cube(), service.cube()
        base_root, svc_root = base_cube.root(), svc_cube.root()
        _same_cell(base_root, svc_root)
        values = base_cube.dimension_values(base_root, dimension)
        for value in values[:3]:
            _same_cell(
                base_cube.slice(base_root, dimension, value),
                svc_cube.slice(svc_root, dimension, value),
            )
