"""Thread-safety of the hot paths: locks, caches, and churn.

The cache hammer drives the three shared caches — the database plan
cache, the search result cache, and the extend-vector cache — from many
threads at once, first read-only (every thread must see exactly the
single-threaded answers) and then against concurrent write churn (after
quiescence, every cached answer must equal a from-scratch rebuild: a
lost invalidation would surface here as a stale row count, hit list, or
vector map).
"""

import threading
from types import SimpleNamespace

import pytest

from repro.core.extendcache import (
    build_vectors,
    clear_extend_cache,
    extend_vectors,
)
from repro.courserank import CourseRank
from repro.courserank.accounts import Role
from repro.datagen import generate_university
from repro.minidb.concurrency import RWLock

THREADS = 6

SQL_QUERIES = [
    "SELECT COUNT(*) FROM Comments",
    "SELECT CourseID, COUNT(*) FROM Comments GROUP BY CourseID "
    "ORDER BY CourseID LIMIT 5",
    "SELECT AVG(Rating) FROM Comments WHERE Rating IS NOT NULL",
    "SELECT c.Title FROM Courses c JOIN Departments d "
    "ON c.DepID = d.DepID ORDER BY c.CourseID LIMIT 4",
]

SEARCH_QUERIES = ["programming", "data", "history", "theory"]

EXTEND_INFO = SimpleNamespace(
    source_table="Comments",
    source_key="CourseID",
    value_column="Rating",
    map_column=None,
)


def _run_threads(count, target):
    errors = []
    barrier = threading.Barrier(count)

    def wrapped(index):
        try:
            barrier.wait()
            target(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(index,), daemon=True)
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def _read_once(app):
    """One deterministic pass over all three caches' read paths."""
    results = []
    for sql in SQL_QUERIES:
        results.append(tuple(map(tuple, app.db.query(sql).rows)))
    for query in SEARCH_QUERIES:
        result, cloud = app.cloudsearch.search(query)
        results.append(tuple((hit.doc_id, hit.score) for hit in result.hits))
        results.append(tuple((term.term, term.score) for term in cloud.terms))
    vectors, _ = extend_vectors(app.db, EXTEND_INFO)
    results.append(
        tuple(sorted((key, tuple(sorted(value))) for key, value in vectors.items()))
    )
    return results


@pytest.fixture()
def app():
    application = CourseRank(generate_university(scale="tiny", seed=5))
    application.cloudsearch.build()
    clear_extend_cache(application.db)
    return application


class TestCacheHammer:
    def test_concurrent_reads_equal_single_threaded_replay(self, app):
        expected = _read_once(app)
        observed = [None] * THREADS

        def reader(index):
            for _ in range(5):
                observed[index] = _read_once(app)

        _run_threads(THREADS, reader)
        for result in observed:
            assert result == expected

    def test_churn_loses_no_invalidations(self, app):
        user = app.accounts.register("hammer", Role.STUDENT, person_id=1)
        comments = [
            (1 + (step % 3), f"churn note {step} about telescopes", 3.5)
            for step in range(24)
        ]

        def worker(index):
            if index == 0:
                # Single designated writer: deterministic end state.
                for course_id, text, rating in comments:
                    app.comment_on_course(user, course_id, text, rating)
            else:
                for _ in range(8):
                    _read_once(app)

        _run_threads(THREADS, worker)

        # Quiescent state must equal a from-scratch build with the same
        # writes applied — any stale cache entry diverges here.
        fresh = CourseRank(generate_university(scale="tiny", seed=5))
        fresh.cloudsearch.build()
        fresh_user = fresh.accounts.register("hammer", Role.STUDENT, person_id=1)
        for course_id, text, rating in comments:
            fresh.comment_on_course(fresh_user, course_id, text, rating)
        clear_extend_cache(fresh.db)
        assert _read_once(app) == _read_once(fresh)

    def test_extend_cache_rebuilds_after_write(self, app):
        vectors, hit = extend_vectors(app.db, EXTEND_INFO)
        assert not hit
        _, hit = extend_vectors(app.db, EXTEND_INFO)
        assert hit
        user = app.accounts.register("inv", Role.STUDENT, person_id=2)
        app.comment_on_course(user, 1, "invalidation probe", 2.5)
        rebuilt, hit = extend_vectors(app.db, EXTEND_INFO)
        assert not hit  # data_version moved -> new key, no stale serve
        assert rebuilt == build_vectors(app.db.table("Comments"), EXTEND_INFO)


class TestRWLock:
    def test_readers_share_writers_exclude(self):
        lock = RWLock()
        in_critical = []
        results = []

        def writer():
            with lock.write_locked():
                in_critical.append("w")
                assert in_critical.count("w") == 1
                results.append(lock.write_held)
                in_critical.remove("w")

        def reader():
            with lock.read_locked():
                assert "w" not in in_critical
                results.append(lock.active_readers >= 1)

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(results)

    def test_read_reentrant_and_write_implies_read(self):
        lock = RWLock()
        with lock.read_locked():
            with lock.read_locked():
                assert lock.active_readers == 1
        with lock.write_locked():
            with lock.read_locked():
                assert lock.write_held
            with lock.write_locked():
                assert lock.write_held

    def test_upgrade_refused(self):
        lock = RWLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError):
                lock.acquire_write()

    def test_transaction_holds_the_database_write_lock(self):
        from repro.minidb import Database

        database = Database()
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        database.begin()
        assert database.rwlock.write_held
        database.execute("INSERT INTO t VALUES (1)")
        database.commit()
        assert not database.rwlock.write_held
        database.begin()
        database.rollback()
        assert not database.rwlock.write_held


class TestServiceConcurrency:
    def test_parallel_mixed_traffic_is_consistent(self):
        from repro.service import CourseRankService

        service = CourseRankService(
            generate_university(scale="tiny", seed=5), num_shards=3
        )
        expected = {
            query: [
                (hit.doc_id, hit.score)
                for hit in service.search(query)[0].hits
            ]
            for query in SEARCH_QUERIES
        }

        def worker(index):
            for step in range(6):
                query = SEARCH_QUERIES[(index + step) % len(SEARCH_QUERIES)]
                result, _ = service.search(query)
                assert [
                    (hit.doc_id, hit.score) for hit in result.hits
                ] == expected[query]
                service.count(query)

        _run_threads(THREADS, worker)
