"""Sharded scatter-gather must answer bit-identically to the unsharded build.

The property at the heart of the service layer: for any shard count and
any generated population, merged per-shard search results, data clouds,
counts, and refinement sessions equal — float-for-float, bucket-for-
bucket — the answers of one unsharded engine over the union corpus.
``REPRO_SHARDS`` (see tests/conftest.py) pins the shard count CI legs
run with; the hypothesis property additionally sweeps shard counts.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.courserank import CourseRank
from repro.courserank.accounts import Role
from repro.datagen import generate_university
from repro.service import CourseRankService

REPRO_SHARDS = int(os.environ.get("REPRO_SHARDS", "3"))


def _hits(result):
    return [(hit.doc_id, hit.score) for hit in result.hits]


def _terms(cloud):
    return [
        (term.term, term.score, term.occurrences, term.result_df, term.bucket)
        for term in cloud.terms
    ]


QUERIES = [
    "programming",
    "systems design",
    '"machine learning"',
    "history",
    "data",
    "nonexistentzzz",
    "",
]


@pytest.fixture(scope="module")
def pair():
    base = CourseRank(generate_university(scale="tiny", seed=7))
    base.cloudsearch.build()
    service = CourseRankService(
        generate_university(scale="tiny", seed=7), num_shards=REPRO_SHARDS
    )
    return base, service


class TestSearchEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    def test_hits_clouds_and_counts_match(self, pair, query):
        base, service = pair
        base_result, base_cloud = base.cloudsearch.search(query)
        svc_result, svc_cloud = service.search(query)
        assert _hits(base_result) == _hits(svc_result)
        assert _terms(base_cloud) == _terms(svc_cloud)
        if query.strip():
            assert base.cloudsearch.count(query) == service.count(query)

    def test_limit_truncates_after_the_merge(self, pair):
        base, service = pair
        base_result, base_cloud = base.cloudsearch.search("data", limit=3)
        svc_result, svc_cloud = service.search("data", limit=3)
        assert _hits(base_result) == _hits(svc_result)
        # Cloud summarizes the full result set on both sides.
        assert _terms(base_cloud) == _terms(svc_cloud)

    def test_repeat_query_hits_the_response_cache(self, pair):
        _, service = pair
        before = service.response_cache_info()
        first = service.search("programming")
        after_miss_or_hit = service.response_cache_info()
        second = service.search("programming")
        after = service.response_cache_info()
        assert after["hits"] > before["hits"] or (
            after["hits"] > after_miss_or_hit["hits"]
        )
        assert _hits(first[0]) == _hits(second[0])

    def test_every_course_routes_to_exactly_one_shard(self, pair):
        _, service = pair
        total = sum(service.sharded.course_counts())
        assert total == len(service.sharded.course_shard)


class TestSessionEquivalence:
    def test_refine_and_back_walk_identically(self, pair):
        base, service = pair
        base_session = base.cloudsearch.session("programming")
        svc_session = service.session("programming")
        assert base_session.cloud.terms, "test needs a non-empty cloud"
        for _ in range(2):
            term = base_session.cloud.terms[0].term
            base_step = base_session.refine(term)
            svc_step = svc_session.refine(term)
            assert base_session.query == svc_session.query
            assert _hits(base_step.result) == _hits(svc_step.result)
            assert _terms(base_step.cloud) == _terms(svc_step.cloud)
            if not base_session.cloud.terms:
                break
        base_session.back()
        svc_session.back()
        assert base_session.query == svc_session.query
        assert base_session.history() == svc_session.history()

    def test_back_at_depth_zero_raises_like_the_original(self, pair):
        from repro.errors import CloudError

        _, service = pair
        session = service.session("programming")
        with pytest.raises(CloudError):
            session.back()


class TestWritePathEquivalence:
    def test_comment_refreshes_and_stays_equivalent(self):
        base = CourseRank(generate_university(scale="tiny", seed=13))
        base.cloudsearch.build()
        service = CourseRankService(
            generate_university(scale="tiny", seed=13),
            num_shards=REPRO_SHARDS,
        )
        base_user = base.accounts.register("w", Role.STUDENT, person_id=1)
        course_id = 1
        shard = service.sharded.shard_of_course(course_id)
        svc_user = service.apps[shard].accounts.register(
            "w", Role.STUDENT, person_id=1
        )
        epochs_before = service._epoch_vector()
        text = "spectrograph nights were unforgettable"
        base.comment_on_course(base_user, course_id, text, 4.5)
        service.comment_on_course(svc_user, course_id, text, 4.5)
        assert service._epoch_vector() != epochs_before
        for query in ("spectrograph", "unforgettable nights"):
            base_result, base_cloud = base.cloudsearch.search(query)
            svc_result, svc_cloud = service.search(query)
            assert _hits(base_result) == _hits(svc_result)
            assert _terms(base_cloud) == _terms(svc_cloud)


class TestShardCountIndependence:
    """The property of record: answers do not depend on the shard count."""

    @settings(max_examples=8, deadline=None)
    @given(
        num_shards=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=1, max_value=3),
        query=st.sampled_from(
            ["programming", "data systems", '"machine learning"', "theory"]
        ),
    )
    def test_any_shard_count_equals_unsharded(self, num_shards, seed, query):
        base = CourseRank(generate_university(scale="tiny", seed=seed))
        base.cloudsearch.build()
        service = CourseRankService(
            generate_university(scale="tiny", seed=seed),
            num_shards=num_shards,
        )
        base_result, base_cloud = base.cloudsearch.search(query)
        svc_result, svc_cloud = service.search(query)
        assert _hits(base_result) == _hits(svc_result)
        assert _terms(base_cloud) == _terms(svc_cloud)
        assert base.cloudsearch.count(query) == service.count(query)
