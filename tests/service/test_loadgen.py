"""Smoke tests for the closed-loop Zipfian load generator."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.datagen import generate_university
from repro.service.loadgen import (
    DEFAULT_MIX,
    build_query_pool,
    build_trace,
    load_test,
    run_load,
    zipf_pick,
)


class TestTrace:
    def test_trace_is_deterministic(self):
        database = generate_university(scale="tiny", seed=3)
        assert build_trace(database, operations=60, seed=9) == build_trace(
            database, operations=60, seed=9
        )

    def test_trace_mix_and_length(self):
        database = generate_university(scale="tiny", seed=3)
        trace = build_trace(database, operations=120, seed=9)
        kinds = {op[0] for op in trace}
        assert len(trace) == 120
        assert kinds <= set(DEFAULT_MIX)

    def test_write_fraction_adds_comment_ops(self):
        database = generate_university(scale="tiny", seed=3)
        trace = build_trace(
            database, operations=120, seed=9, write_fraction=0.2
        )
        comments = [op for op in trace if op[0] == "comment"]
        assert comments
        for op in comments:
            assert 1.0 <= op[3] <= 5.0

    def test_graph_fraction_adds_graph_and_cube_ops(self):
        database = generate_university(scale="tiny", seed=3)
        trace = build_trace(
            database, operations=200, seed=9, graph_fraction=0.2
        )
        kinds = [op[0] for op in trace]
        assert kinds.count("graphrank") > 0
        assert kinds.count("cube-walk") > 0
        graph_share = (
            kinds.count("graphrank") + kinds.count("cube-walk")
        ) / len(kinds)
        assert 0.1 <= graph_share <= 0.3
        for op in trace:
            if op[0] == "cube-walk":
                assert op[1] in ("department", "quarter", "instructor")

    def test_zipf_head_dominates(self):
        import random

        rng = random.Random(1)
        draws = [zipf_pick(rng, list(range(20))) for _ in range(400)]
        assert draws.count(0) > draws.count(19)

    def test_query_pool_mined_from_titles(self):
        database = generate_university(scale="tiny", seed=3)
        import random

        pool = build_query_pool(database, random.Random(0))
        assert pool and all(isinstance(query, str) for query in pool)


class TestLoadTest:
    @pytest.fixture(scope="class")
    def report(self):
        return load_test(
            scale="tiny",
            shards=2,
            threads=3,
            operations=45,
            seed=11,
            write_fraction=0.1,
            graph_fraction=0.15,
        )

    def test_counts_and_rates(self, report):
        assert report.operations == 45
        assert report.qps > 0
        assert report.duration_s > 0
        assert sum(stats["count"] for stats in report.per_kind.values()) == 45

    def test_latency_quantiles_present(self, report):
        assert report.p50_ms is not None
        assert report.p99_ms is not None
        assert report.p50_ms <= report.p99_ms

    def test_sharded_answers_matched_unsharded(self, report):
        assert report.equivalent is True

    def test_baseline_and_speedup_reported(self, report):
        assert report.baseline_qps and report.baseline_qps > 0
        assert report.speedup == pytest.approx(
            report.qps / report.baseline_qps
        )

    def test_report_round_trips_to_json(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["shards"] == 2
        assert payload["threads"] == 3
        assert payload["response_cache"]["hits"] >= 0


class TestRunLoad:
    def test_single_thread_equals_trace_length(self):
        class CountingClient:
            def __init__(self):
                self.seen = []
                self.lock = __import__("threading").Lock()

            def run(self, op):
                with self.lock:
                    self.seen.append(op)

        client = CountingClient()
        trace = [("search", "x")] * 10 + [("recommend", 1)] * 5
        merged, duration = run_load(client, trace, threads=4)
        assert sorted(client.seen) == sorted(trace)
        assert merged.counter("loadgen.op.count") == 15
        assert merged.counter("loadgen.search.count") == 10
        assert duration > 0

    def test_worker_errors_propagate(self):
        class FailingClient:
            def run(self, op):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_load(FailingClient(), [("search", "x")] * 4, threads=2)


class TestCLI:
    def test_module_entrypoint(self, tmp_path):
        out = tmp_path / "report.json"
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--scale",
                "tiny",
                "--shards",
                "2",
                "--threads",
                "2",
                "--ops",
                "30",
                "--json",
                str(out),
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env={
                **os.environ,
                "PYTHONPATH": str(
                    pathlib.Path(__file__).resolve().parents[2] / "src"
                ),
            },
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(out.read_text())
        assert payload["operations"] == 30
        assert payload["equivalent"] is True
