"""Golden tests for per-dialect SQL rendering.

The FlexRecs compiler lowers one workflow tree to engine-appropriate SQL
through a :class:`~repro.backends.dialects.SqlDialect`.  These pins hold
the rendered text *exactly* for compact workflows (one per comparator
kind) and hold the dialect-difference invariants for the larger ones, so
any renderer drift — intentional or not — shows up as a readable diff.
"""

import datetime

import pytest

from repro.backends.dialects import (
    DIALECTS,
    MINIDB_DIALECT,
    SQLITE_DIALECT,
    Capabilities,
    SqlDialect,
    get_dialect,
)
from repro.core import (
    InverseEuclidean,
    NumericCloseness,
    PearsonCorrelation,
    SetOverlap,
    TextJaccard,
    VectorLookup,
    Workflow,
)
from repro.core.operators import Recommend, Select, Source, TopK, extend
from repro.errors import BackendCapabilityError
from repro.minidb import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute_script(
        """
        CREATE TABLE Students (SuID INTEGER PRIMARY KEY, Name TEXT,
          GPA FLOAT);
        CREATE TABLE Courses (CourseID INTEGER PRIMARY KEY, Title TEXT);
        CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER,
          Rating FLOAT, PRIMARY KEY (SuID, CourseID));
        CREATE TABLE Enrollments (SuID INTEGER, CourseID INTEGER,
          PRIMARY KEY (SuID, CourseID));
        """
    )
    return database


def students_with_ratings():
    return extend(
        Source("Students"), "ratings", "Comments", "SuID", "SuID",
        "Rating", "CourseID",
    )


def scalar_workflow():
    return Workflow(
        Recommend(
            target=Source("Students"),
            reference=Select(Source("Students"), "SuID = 444"),
            comparator=NumericCloseness("GPA", "GPA", scale=2),
            target_key="SuID",
            exclude_self=("SuID", "SuID"),
        )
    )


def lookup_workflow():
    return Workflow(
        Recommend(
            target=Source("Courses"),
            reference=Select(students_with_ratings(), "SuID = 444"),
            comparator=VectorLookup("CourseID", "ratings"),
            target_key="CourseID",
            aggregate="avg",
        )
    )


def vector_workflow(comparator_cls):
    swr = students_with_ratings()
    return Workflow(
        TopK(
            Recommend(
                target=swr,
                reference=Select(swr, "SuID = 444"),
                comparator=comparator_cls("ratings", "ratings"),
                target_key="SuID",
                exclude_self=("SuID", "SuID"),
            ),
            3,
            "score",
        )
    )


def set_workflow():
    swt = extend(
        Source("Students"), "taken", "Enrollments", "SuID", "SuID",
        "CourseID",
    )
    return Workflow(
        Recommend(
            target=swt,
            reference=Select(swt, "SuID = 444"),
            comparator=SetOverlap("taken", "taken"),
            target_key="SuID",
            exclude_self=("SuID", "SuID"),
        )
    )


def udf_workflow():
    return Workflow(
        Recommend(
            target=Source("Students"),
            reference=Select(Source("Students"), "SuID = 444"),
            comparator=TextJaccard("Name", "Name"),
            target_key="SuID",
        )
    )


SCALAR_MINIDB = (
    "SELECT t1.SuID, t1.Name, t1.GPA, "
    "MAX(1.0 / (1.0 + ABS(t1.GPA - r2.GPA) / 2.0)) AS score "
    "FROM (SELECT SuID, Name, GPA FROM Students) AS t1 "
    "JOIN (SELECT SuID, Name, GPA FROM "
    "(SELECT SuID, Name, GPA FROM Students) AS sel3 "
    "WHERE SuID = 444) AS r2 "
    "ON (t1.SuID <> r2.SuID OR t1.SuID IS NULL OR r2.SuID IS NULL) "
    "GROUP BY t1.SuID "
    "HAVING MAX(1.0 / (1.0 + ABS(t1.GPA - r2.GPA) / 2.0)) IS NOT NULL "
    "ORDER BY score DESC, t1.SuID ASC"
)

LOOKUP_MINIDB = (
    "SELECT t2.CourseID, t2.Title, AVG(CAST_FLOAT(s3.Rating)) AS score "
    "FROM (SELECT CourseID, Title FROM Courses) AS t2 "
    "JOIN Comments AS s3 "
    "ON s3.CourseID = t2.CourseID AND s3.Rating IS NOT NULL "
    "JOIN (SELECT SuID, Name, GPA FROM "
    "(SELECT SuID, Name, GPA FROM Students) AS sel1 "
    "WHERE SuID = 444) AS r4 ON s3.SuID = r4.SuID "
    "GROUP BY t2.CourseID "
    "HAVING AVG(CAST_FLOAT(s3.Rating)) IS NOT NULL "
    "ORDER BY score DESC, t2.CourseID ASC"
)

LOOKUP_SQLITE = LOOKUP_MINIDB.replace(
    "CAST_FLOAT(s3.Rating)", "CAST(s3.Rating AS REAL)"
)


class TestGoldenSql:
    def test_scalar_minidb_exact(self, db):
        assert scalar_workflow().to_sql(db, dialect="minidb") == SCALAR_MINIDB

    def test_scalar_sqlite_identical_to_minidb(self, db):
        # The scalar closeness expression is dialect-neutral (pure float
        # arithmetic, scale coerced to float), so both engines get the
        # same text.
        workflow = scalar_workflow()
        assert (
            workflow.to_sql(db, dialect="sqlite")
            == workflow.to_sql(db, dialect="minidb")
        )

    def test_lookup_minidb_exact(self, db):
        assert lookup_workflow().to_sql(db, dialect="minidb") == LOOKUP_MINIDB

    def test_lookup_sqlite_exact(self, db):
        assert lookup_workflow().to_sql(db, dialect="sqlite") == LOOKUP_SQLITE

    def test_udf_renders_same_call_on_both(self, db):
        workflow = udf_workflow()
        for dialect in ("minidb", "sqlite"):
            sql = workflow.to_sql(db, dialect=dialect)
            assert "FRX_TEXT_JACCARD(t1.Name, r2.Name)" in sql


class TestDialectDifferences:
    """The engine-specific spellings, per comparator kind."""

    def test_vector_pearson(self, db):
        workflow = vector_workflow(PearsonCorrelation)
        minidb_sql = workflow.to_sql(db, dialect="minidb")
        sqlite_sql = workflow.to_sql(db, dialect="sqlite")
        assert "CAST_FLOAT(COUNT(*))" in minidb_sql
        assert "GREATEST(" in minidb_sql
        assert "CAST(COUNT(*) AS REAL)" in sqlite_sql
        assert "MAX((CAST(COUNT(*) AS REAL)" in sqlite_sql
        # The variance guard is the only GREATEST; MAX replaces it 1:1.
        assert minidb_sql.count("GREATEST(") == sqlite_sql.count(
            "MAX((CAST(COUNT(*) AS REAL)"
        )

    def test_vector_euclidean_dialect_neutral(self, db):
        workflow = vector_workflow(InverseEuclidean)
        assert (
            workflow.to_sql(db, dialect="sqlite")
            == workflow.to_sql(db, dialect="minidb")
        )

    def test_set_overlap(self, db):
        workflow = set_workflow()
        minidb_sql = workflow.to_sql(db, dialect="minidb")
        sqlite_sql = workflow.to_sql(db, dialect="sqlite")
        assert "CAST_FLOAT(inter5.__c) / LEAST(" in minidb_sql
        assert "CAST(inter5.__c AS REAL) / MIN(" in sqlite_sql

    @pytest.mark.parametrize(
        "factory",
        [
            scalar_workflow,
            lookup_workflow,
            set_workflow,
            udf_workflow,
            lambda: vector_workflow(PearsonCorrelation),
        ],
        ids=["scalar", "lookup", "set", "udf", "vector"],
    )
    def test_sqlite_text_never_uses_minidb_spellings(self, db, factory):
        sql = factory().to_sql(db, dialect="sqlite")
        assert "CAST_FLOAT" not in sql
        assert "GREATEST(" not in sql
        assert "LEAST(" not in sql

    def test_default_dialect_is_minidb(self, db):
        workflow = lookup_workflow()
        assert workflow.to_sql(db) == workflow.to_sql(db, dialect="minidb")


class TestDialectPrimitives:
    def test_literal_rendering_per_dialect(self):
        day = datetime.date(2008, 1, 5)
        assert MINIDB_DIALECT.literal(day) == "DATE '2008-01-05'"
        assert SQLITE_DIALECT.literal(day) == "'2008-01-05'"
        assert MINIDB_DIALECT.literal(True) == "TRUE"
        assert SQLITE_DIALECT.literal(True) == "1"
        for dialect in (MINIDB_DIALECT, SQLITE_DIALECT):
            assert dialect.literal(None) == "NULL"
            assert dialect.literal(1.5) == "1.5"
            assert dialect.literal("o'clock") == "'o''clock'"

    def test_bind_per_dialect(self):
        day = datetime.date(2008, 1, 5)
        assert MINIDB_DIALECT.bind(day) == day
        assert SQLITE_DIALECT.bind(day) == "2008-01-05"
        assert MINIDB_DIALECT.bind(False) is False
        assert SQLITE_DIALECT.bind(False) == 0
        assert SQLITE_DIALECT.bind("text") == "text"

    def test_true_div(self):
        assert MINIDB_DIALECT.true_div("a", "b") == "(a / b)"
        assert SQLITE_DIALECT.true_div("a", "b") == "(a * 1.0 / b)"

    def test_func_spelling_and_missing(self):
        assert MINIDB_DIALECT.func("least", "x", "y") == "LEAST(x, y)"
        assert SQLITE_DIALECT.func("least", "x", "y") == "MIN(x, y)"
        strict = SqlDialect(
            "strict",
            Capabilities(missing_functions=frozenset({"sqrt"})),
        )
        with pytest.raises(BackendCapabilityError):
            strict.func("sqrt", "x")

    def test_get_dialect_resolution(self):
        assert get_dialect("minidb") is MINIDB_DIALECT
        assert get_dialect(SQLITE_DIALECT) is SQLITE_DIALECT
        assert set(DIALECTS) >= {"minidb", "sqlite"}
        with pytest.raises(BackendCapabilityError):
            get_dialect("oracle12c")

    def test_no_passthrough_dialect_rejects_raw_sql(self, db):
        from repro.core.compiler import compile_workflow

        sealed = SqlDialect("sealed", Capabilities(sql_passthrough=False))
        with pytest.raises(BackendCapabilityError):
            compile_workflow(scalar_workflow(), db, dialect=sealed)

    def test_no_udf_dialect_rejects_udf_comparators(self, db):
        from repro.core.compiler import compile_workflow
        from repro.errors import CompilationError

        no_udf = SqlDialect("noudf", Capabilities(supports_udfs=False))
        with pytest.raises((BackendCapabilityError, CompilationError)):
            compile_workflow(udf_workflow(), db, dialect=no_udf)
