"""Property: compiled workflows are *bit-identical* across backends.

The same workflow object is compiled per dialect and executed on the
in-process minidb engine and on stdlib sqlite3 through the backend
layer; the two relations must match exactly — same columns, same row
order, floats compared with ``==`` (no tolerance).

Why exact equality is a fair ask: both engines evaluate the identical
scalar expression tree over IEEE-754 doubles, so any per-pair score is
bit-deterministic.  The only order-sensitive operations are SUM/AVG, so
the generator keeps rating/GPA data on quarter steps (dyadic rationals
— exact in binary floating point) and restricts the sum/avg aggregates
to comparators whose pair scores stay dyadic (VectorLookup returns the
rating itself, EqualityMatch returns 0/1); max/min/count are
order-insensitive and run against every comparator.

DML churn between runs additionally proves the version-keyed snapshot
sync: a stale mirror would keep answering with pre-churn rows.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import create_backend
from repro.core import (
    CommonCount,
    CosineVector,
    EqualityMatch,
    InverseEuclidean,
    NumericCloseness,
    PearsonCorrelation,
    SetJaccard,
    SetOverlap,
    VectorLookup,
    Workflow,
)
from repro.core.operators import Recommend, Select, Source, TopK, extend
from repro.minidb import Database

# -- generator ----------------------------------------------------------------

SUIDS = list(range(1, 8))
COURSE_IDS = list(range(1, 7))
MAJORS = ["cs", "history", "math"]

quarter_ratings = st.integers(min_value=1, max_value=20).map(
    lambda quarters: quarters / 4.0
)
quarter_gpas = st.integers(min_value=8, max_value=16).map(
    lambda quarters: quarters / 4.0
)


@st.composite
def universes(draw):
    """A small Students + Comments universe on quarter-step values."""
    students = [
        (suid, f"s{suid}", draw(st.sampled_from(MAJORS)), draw(quarter_gpas))
        for suid in SUIDS
    ]
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(SUIDS), st.sampled_from(COURSE_IDS)),
            min_size=6,
            max_size=24,
            unique=True,
        )
    )
    comments = [
        (suid, course, draw(quarter_ratings)) for suid, course in pairs
    ]
    return students, comments


def build_database(students, comments):
    db = Database()
    db.execute_script(
        """
        CREATE TABLE Students (SuID INTEGER PRIMARY KEY, Name TEXT,
          Major TEXT, GPA FLOAT);
        CREATE TABLE Courses (CourseID INTEGER PRIMARY KEY, Title TEXT);
        CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER,
          Rating FLOAT, PRIMARY KEY (SuID, CourseID));
        """
    )
    for suid, name, major, gpa in students:
        db.execute(
            "INSERT INTO Students VALUES (?, ?, ?, ?)",
            (suid, name, major, gpa),
        )
    for course in COURSE_IDS:
        db.execute(
            "INSERT INTO Courses VALUES (?, ?)", (course, f"c{course}")
        )
    for suid, course, rating in comments:
        db.execute(
            "INSERT INTO Comments VALUES (?, ?, ?)", (suid, course, rating)
        )
    return db


def students_with_ratings():
    return extend(
        Source("Students"), "ratings", "Comments", "SuID", "SuID",
        "Rating", "CourseID",
    )


def students_with_rated_set():
    # Set-valued extend (no map column): the set of courses rated.
    return extend(
        Source("Students"), "rated", "Comments", "SuID", "SuID", "CourseID",
    )


#: comparator factory -> aggregates that stay order-insensitive for it.
#: sum/avg only where every pair score is a dyadic rational (exact, so
#: accumulation order cannot matter); see the module docstring.
ORDER_SAFE = ["max", "min", "count"]
DYADIC_SAFE = ORDER_SAFE + ["sum", "avg"]


def _vector_workflow(comparator_cls, aggregate, reference_suid, top_k):
    swr = students_with_ratings()
    recommend = Recommend(
        target=swr,
        reference=Select(swr, f"SuID = {reference_suid}"),
        comparator=comparator_cls("ratings", "ratings"),
        target_key="SuID",
        exclude_self=("SuID", "SuID"),
        aggregate=aggregate,
    )
    return Workflow(TopK(recommend, top_k, "score"))


def _set_workflow(comparator_cls, aggregate, reference_suid, top_k):
    sws = students_with_rated_set()
    recommend = Recommend(
        target=sws,
        reference=Select(sws, f"SuID = {reference_suid}"),
        comparator=comparator_cls("rated", "rated"),
        target_key="SuID",
        exclude_self=("SuID", "SuID"),
        aggregate=aggregate,
    )
    return Workflow(TopK(recommend, top_k, "score"))


def _scalar_workflow(comparator, aggregate, reference_suid, top_k):
    recommend = Recommend(
        target=Source("Students"),
        reference=Select(Source("Students"), f"SuID <= {reference_suid}"),
        comparator=comparator,
        target_key="SuID",
        exclude_self=("SuID", "SuID"),
        aggregate=aggregate,
    )
    return Workflow(TopK(recommend, top_k, "score"))


def _lookup_workflow(aggregate, reference_suid, top_k):
    recommend = Recommend(
        target=Source("Courses"),
        reference=Select(students_with_ratings(), f"SuID <= {reference_suid}"),
        comparator=VectorLookup("CourseID", "ratings"),
        target_key="CourseID",
        aggregate=aggregate,
    )
    return Workflow(TopK(recommend, top_k, "score"))


@st.composite
def workflow_cases(draw):
    reference_suid = draw(st.sampled_from(SUIDS))
    top_k = draw(st.integers(min_value=2, max_value=8))
    kind = draw(
        st.sampled_from(["vector", "set", "scalar", "equality", "lookup"])
    )
    if kind == "vector":
        comparator_cls = draw(
            st.sampled_from(
                [InverseEuclidean, PearsonCorrelation, CosineVector]
            )
        )
        aggregate = draw(st.sampled_from(ORDER_SAFE))
        return _vector_workflow(comparator_cls, aggregate, reference_suid, top_k)
    if kind == "set":
        comparator_cls = draw(
            st.sampled_from([SetJaccard, SetOverlap, CommonCount])
        )
        aggregate = draw(st.sampled_from(ORDER_SAFE))
        return _set_workflow(comparator_cls, aggregate, reference_suid, top_k)
    if kind == "scalar":
        scale = draw(st.sampled_from([0.5, 1.0, 2.0, 4.0]))
        aggregate = draw(st.sampled_from(ORDER_SAFE))
        return _scalar_workflow(
            NumericCloseness("GPA", "GPA", scale=scale),
            aggregate, reference_suid, top_k,
        )
    if kind == "equality":
        aggregate = draw(st.sampled_from(DYADIC_SAFE))
        return _scalar_workflow(
            EqualityMatch("Major", "Major"), aggregate, reference_suid, top_k
        )
    aggregate = draw(st.sampled_from(DYADIC_SAFE))
    return _lookup_workflow(aggregate, reference_suid, top_k)


churn_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.sampled_from(SUIDS),
        st.sampled_from(COURSE_IDS),
        quarter_ratings,
    ),
    min_size=1,
    max_size=6,
)


def apply_churn(db, ops):
    for op, suid, course, rating in ops:
        if op == "insert":
            exists = db.query(
                "SELECT COUNT(*) FROM Comments "
                f"WHERE SuID = {suid} AND CourseID = {course}"
            ).scalar()
            if not exists:
                db.execute(
                    "INSERT INTO Comments VALUES (?, ?, ?)",
                    (suid, course, rating),
                )
        elif op == "update":
            db.execute(
                f"UPDATE Comments SET Rating = {rating} "
                f"WHERE SuID = {suid} AND CourseID = {course}"
            )
        else:
            db.execute(
                f"DELETE FROM Comments WHERE SuID = {suid} "
                f"AND CourseID = {course}"
            )


# -- assertions ---------------------------------------------------------------

def assert_bit_identical(minidb_result, sqlite_result, context=""):
    assert minidb_result.columns == sqlite_result.columns, context
    assert len(minidb_result) == len(sqlite_result), (
        f"{context}: minidb={len(minidb_result)} rows, "
        f"sqlite3={len(sqlite_result)} rows"
    )
    for index, (left, right) in enumerate(
        zip(minidb_result.rows, sqlite_result.rows)
    ):
        for column in minidb_result.columns:
            a, b = left[column], right[column]
            assert a == b and type(a) is type(b), (
                f"{context} row {index} column {column}: "
                f"{a!r} ({type(a).__name__}) != {b!r} ({type(b).__name__})"
            )


# -- properties ---------------------------------------------------------------

class TestBackendEquivalence:
    @given(universe=universes(), case=workflow_cases())
    @settings(deadline=None)
    def test_minidb_and_sqlite3_bit_identical(self, universe, case):
        db = build_database(*universe)
        with create_backend("sqlite3", db) as sqlite3_backend:
            assert_bit_identical(
                case.run_sql(db),
                case.run_backend(sqlite3_backend),
                context=case.name,
            )

    @given(
        universe=universes(),
        case=workflow_cases(),
        churn=churn_ops,
    )
    @settings(deadline=None)
    def test_identical_after_dml_churn(self, universe, case, churn):
        db = build_database(*universe)
        with create_backend("sqlite3", db) as sqlite3_backend:
            # Cold run first so the mirror exists, then churn: a stale
            # (non-version-keyed) sync would keep the pre-churn rows.
            case.run_backend(sqlite3_backend)
            apply_churn(db, churn)
            assert_bit_identical(
                case.run_sql(db),
                case.run_backend(sqlite3_backend),
                context=f"{case.name} post-churn",
            )

    @given(universe=universes(), case=workflow_cases())
    @settings(deadline=None)
    def test_direct_path_agrees_within_tolerance(self, universe, case):
        # The direct executor defines reference semantics; the sqlite3
        # path must agree with it the same way the minidb SQL path does
        # (exact ranks, float scores to within 1e-9).
        db = build_database(*universe)
        direct = case.run(db)
        with create_backend("sqlite3", db) as sqlite3_backend:
            via_sqlite = case.run_backend(sqlite3_backend)
        assert direct.columns == via_sqlite.columns
        assert len(direct) == len(via_sqlite)
        for left, right in zip(direct.rows, via_sqlite.rows):
            for column in direct.columns:
                a, b = left[column], right[column]
                if isinstance(a, float) and isinstance(b, float):
                    assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
                else:
                    assert a == b

    @given(universe=universes(), case=workflow_cases())
    @settings(deadline=None)
    def test_recommend_stats_where_defined(self, universe, case):
        # RecommendStats are defined on the direct path only; both SQL
        # paths must leave them empty, and the direct path's scored
        # count must bound the rows either backend returns (TopK can
        # only shrink the scored set).
        db = build_database(*universe)
        direct = case.run(db)
        via_minidb = case.run_sql(db)
        with create_backend("sqlite3", db) as sqlite3_backend:
            via_sqlite = case.run_backend(sqlite3_backend)
        assert via_minidb.stats == []
        assert via_sqlite.stats == []
        assert direct.stats, "direct path must record RecommendStats"
        stats = direct.stats[-1]
        assert stats.candidates >= stats.scored >= 0
        assert len(via_sqlite.rows) <= max(stats.targets, stats.scored)
        assert len(via_sqlite.rows) == len(via_minidb.rows)
