"""Backend-suite fixtures.

Reuses the FlexRecs ``flexdb`` dataset (the hand-built CourseRank schema
with known similarity structure) so equivalence assertions here line up
with the dual-path tests in ``tests/core``.
"""

from tests.core.conftest import flexdb  # noqa: F401
