"""Cross-backend sweep wiring plus backend-layer unit coverage.

The sweep test is the tier-1 slice of the nightly job: a small
differential fuzz budget with the repro.backends drivers registered as
extra execution engines, asserting zero divergence.  The unit tests pin
the registry, placeholder conversion, snapshot-sync staleness rules,
service routing, and the per-backend observability counters.
"""

import sqlite3

import pytest

from repro.backends import (
    BackendRegistry,
    DbApiBackend,
    REGISTRY,
    SQLITE_DIALECT,
    convert_placeholders,
    create_backend,
    default_backend_name,
)
from repro.core import NumericCloseness, Workflow
from repro.core.operators import Recommend, Select, Source
from repro.courserank.recommendations import RecommendationService
from repro.errors import BackendCapabilityError, BackendError
from repro.minidb import Database
from repro.obs import OBS
from repro.testkit import oracle


def gpa_workflow(suid=444):
    return Workflow(
        Recommend(
            target=Source("Students"),
            reference=Select(Source("Students"), f"SuID = {suid}"),
            comparator=NumericCloseness("GPA", "GPA"),
            target_key="SuID",
            exclude_self=("SuID", "SuID"),
        )
    )


class TestCrossBackendSweep:
    def test_differential_sweep_with_backends_registered(self):
        names = oracle.register_default_backends()
        try:
            assert names and all(
                name in oracle.SCRIPT_BACKENDS for name in names
            )
            report = oracle.run_differential(min_query_ops=40, base_seed=7)
            assert report.ok, report.failures and [
                line
                for failure in report.failures
                for line in failure.report.divergences[:3]
            ]
            assert report.query_ops >= 40
        finally:
            for name in names:
                oracle.unregister_script_backend(name)
        assert all(name not in oracle.SCRIPT_BACKENDS for name in names)


class TestRegistry:
    def test_stock_backends_registered(self):
        assert REGISTRY.is_registered("minidb")
        assert REGISTRY.is_registered("sqlite3")
        assert {"minidb", "sqlite3"} <= set(REGISTRY.names())

    def test_unknown_backend_lists_names(self):
        with pytest.raises(BackendError) as excinfo:
            create_backend("postgres14")
        assert "postgres14" in str(excinfo.value)
        assert "minidb" in str(excinfo.value)

    def test_register_dbapi_any_pep249_connection(self, flexdb):
        registry = BackendRegistry()
        registry.register_dbapi(
            "sqlite3-file",
            lambda: sqlite3.connect(":memory:"),
            dialect=SQLITE_DIALECT,
        )
        backend = registry.create("sqlite3-file", flexdb)
        try:
            assert isinstance(backend, DbApiBackend)
            backend.sync()
            result = backend.execute("SELECT COUNT(*) FROM Students")
            assert result.rows == [(4,)]
        finally:
            backend.close()

    def test_default_backend_name_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "minidb"
        monkeypatch.setenv("REPRO_BACKEND", "SQLite3 ")
        assert default_backend_name() == "sqlite3"


class TestPlaceholders:
    def test_qmark_is_identity(self):
        sql = "SELECT * FROM t WHERE a = ? AND b = ?"
        assert convert_placeholders(sql, "qmark") == sql

    def test_format_and_numeric(self):
        sql = "SELECT * FROM t WHERE a = ? AND b = ?"
        assert (
            convert_placeholders(sql, "format")
            == "SELECT * FROM t WHERE a = %s AND b = %s"
        )
        assert (
            convert_placeholders(sql, "numeric")
            == "SELECT * FROM t WHERE a = :1 AND b = :2"
        )

    def test_question_marks_inside_literals_survive(self):
        sql = "SELECT 'what?' || ? FROM t WHERE note = 'it''s ?' AND a = ?"
        assert (
            convert_placeholders(sql, "numeric")
            == "SELECT 'what?' || :1 FROM t WHERE note = 'it''s ?' AND a = :2"
        )

    def test_unsupported_paramstyle(self):
        with pytest.raises(BackendCapabilityError):
            convert_placeholders("SELECT ?", "pyformat")


class TestSnapshotSync:
    def test_sync_is_version_keyed(self, flexdb):
        with create_backend("sqlite3", flexdb) as backend:
            backend.sync()
            first = dict(backend._synced)
            backend.sync()  # no DML in between: fingerprints unchanged
            assert backend._synced == first
            flexdb.execute(
                "INSERT INTO Comments VALUES "
                "(447, 6, 2008, 'Win', 'late', 3.5, '2008-12-01')"
            )
            backend.sync()
            assert backend._synced["comments"] != first["comments"]
            # untouched tables keep their fingerprint (not recopied)
            assert backend._synced["students"] == first["students"]
            count = backend.execute("SELECT COUNT(*) FROM Comments")
            assert count.rows[0][0] == flexdb.query(
                "SELECT COUNT(*) FROM Comments"
            ).scalar()

    def test_dropped_table_disappears_from_mirror(self, flexdb):
        with create_backend("sqlite3", flexdb) as backend:
            backend.sync()
            assert "offerings" in backend._synced
            flexdb.execute("DROP TABLE Offerings")
            backend.sync()
            assert "offerings" not in backend._synced
            assert "offerings" not in backend.table_names()

    def test_catalog_free_backend_refuses_sync_and_workflows(self):
        with create_backend("sqlite3") as backend:
            with pytest.raises(BackendError):
                backend.sync()
            with pytest.raises(BackendError):
                backend.execute_workflow(gpa_workflow())


class TestServiceRouting:
    def test_constructor_backend_runs_sqlite3(self, flexdb):
        service = RecommendationService(flexdb, backend="sqlite3")
        via_sqlite = service.run("collaborative_filtering", student_id=444)
        reference = RecommendationService(flexdb).run(
            "collaborative_filtering", student_id=444
        )
        assert via_sqlite.columns == reference.columns
        assert via_sqlite.rows == reference.rows

    def test_path_names_a_backend_per_call(self, flexdb):
        service = RecommendationService(flexdb, backend="minidb")
        assert service.backend_name == "minidb"
        via_path = service.run(
            "similar_grade_students", path="sqlite3", student_id=444
        )
        via_sql = service.run("similar_grade_students", student_id=444)
        assert via_path.rows == via_sql.rows
        # the driver is cached for incremental syncs across calls
        assert service.backend("sqlite3") is service.backend("sqlite3")

    def test_env_selects_service_backend(self, flexdb, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sqlite3")
        service = RecommendationService(flexdb)
        assert service.backend_name == "sqlite3"
        result = service.run("grade_based_filtering", student_id=444)
        assert result.rows


class TestObservability:
    def test_backend_metrics_recorded(self, flexdb):
        OBS.reset()
        OBS.enable()
        try:
            with create_backend("sqlite3", flexdb) as backend:
                gpa_workflow().run_backend(backend)
            snapshot = OBS.snapshot()["metrics"]
            assert snapshot["counters"]["backend.sqlite3.queries"] == 1
            for histogram in (
                "backend.render_ms",
                "backend.sync_ms",
                "backend.execute_ms",
                "backend.rows",
            ):
                assert histogram in snapshot["histograms"]
            assert snapshot["histograms"]["backend.rows"]["count"] == 1
        finally:
            OBS.disable()
            OBS.reset()

    def test_metrics_silent_when_disabled(self, flexdb):
        OBS.reset()
        assert not OBS.enabled
        with create_backend("sqlite3", flexdb) as backend:
            gpa_workflow().run_backend(backend)
        assert OBS.snapshot()["metrics"]["counters"] == {}
