"""Oracle comparison rules: normalization, sweep equality, detection."""

import datetime

from repro.testkit.dialects import RenderedCase, RenderedOp, RenderedScript
from repro.testkit.oracle import (
    SWEEP,
    Outcome,
    normalize_rows,
    normalize_value,
    run_rendered,
)


class TestNormalization:
    def test_bool_becomes_int(self):
        assert normalize_value(True) == 1
        assert normalize_value(False) == 0

    def test_date_becomes_iso_string(self):
        assert normalize_value(datetime.date(2008, 7, 3)) == "2008-07-03"

    def test_rows_compare_as_multisets(self):
        a = normalize_rows([(1, "x"), (2, "y")])
        b = normalize_rows([(2, "y"), (1, "x")])
        assert a == b

    def test_int_float_affinity_absorbed(self):
        assert normalize_rows([(2,)]) == normalize_rows([(2.0,)])

    def test_nulls_sort_stably(self):
        rows = [(None,), (1,), ("a",)]
        assert normalize_rows(rows) == normalize_rows(list(reversed(rows)))


class TestOutcomeSignatures:
    def test_errors_compare_by_parity_only(self):
        mine = Outcome("error", error="MiniDBError: boom")
        theirs = Outcome("error", error="OperationalError: different words")
        assert mine.signature() == theirs.signature()

    def test_rows_vs_count_never_equal(self):
        assert Outcome("rows").signature() != Outcome("count").signature()


def _case(minidb_ops, sqlite_ops=None, create=None):
    create = create or ["CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)"]
    queries = sum(1 for op in minidb_ops if op.kind == "query")
    return RenderedCase(
        minidb=RenderedScript(create=list(create), ops=list(minidb_ops)),
        sqlite=RenderedScript(
            create=list(create), ops=list(sqlite_ops or minidb_ops)
        ),
        query_count=queries,
    )


class TestRunRendered:
    def test_identical_case_passes_full_sweep(self):
        ops = [
            RenderedOp("insert", "INSERT INTO t VALUES (1, 10)", ()),
            RenderedOp("insert", "INSERT INTO t VALUES (2, 20)", ()),
            RenderedOp("query", "SELECT id FROM t WHERE x > ?", (5,)),
            RenderedOp("query", "SELECT COUNT(*) AS n FROM t", ()),
        ]
        report = run_rendered(_case(ops))
        assert report.ok
        assert report.query_ops == 2
        assert report.error_ops == 0

    def test_divergent_case_detected_with_config_name(self):
        inserts = [
            RenderedOp("insert", "INSERT INTO t VALUES (1, 10)", ()),
            RenderedOp("insert", "INSERT INTO t VALUES (2, 20)", ()),
        ]
        mine = inserts + [
            RenderedOp("query", "SELECT id FROM t WHERE id = 1", ())
        ]
        theirs = inserts + [RenderedOp("query", "SELECT id FROM t", ())]
        report = run_rendered(_case(mine, sqlite_ops=theirs))
        assert not report.ok
        # Every sweep config sees the same logical difference.
        assert len(report.divergences) == len(SWEEP)
        assert all("config=" in line for line in report.divergences)

    def test_dml_counts_compared(self):
        ops = [
            RenderedOp("insert", "INSERT INTO t VALUES (1, 10)", ()),
            RenderedOp("update", "UPDATE t SET x = 11 WHERE id = 1", ()),
            RenderedOp("delete", "DELETE FROM t WHERE id = 99", ()),
            RenderedOp("query", "SELECT x FROM t", ()),
        ]
        report = run_rendered(_case(ops))
        assert report.ok

    def test_error_parity_counts_but_does_not_fail(self):
        ops = [
            RenderedOp("query", "SELECT nope FROM missing_table", ()),
        ]
        report = run_rendered(_case(ops))
        assert report.ok
        assert report.error_ops == 1
