"""Shrinker convergence, the planted-bug flow, and repro artifacts."""

import subprocess
import sys

import pytest

import repro.testkit.generators as g
from repro.testkit.minimize import Shrinker, ddmin, shrink_case, write_repro
from repro.testkit.oracle import case_fails, load_seed, run_differential, run_rendered
from repro.testkit.dialects import render_case

def flip(sql):
    """Models an engine that flipped a comparison: every ``>`` becomes
    ``<`` on the minidb side only."""
    return sql.replace(" > ", " < ")


class TestDdmin:
    def test_minimizes_to_single_culprit(self):
        def fails(items):
            return 7 in items

        assert ddmin(list(range(20)), fails) == [7]

    def test_keeps_interacting_pair(self):
        def fails(items):
            return 3 in items and 11 in items

        assert sorted(ddmin(list(range(20)), fails)) == [3, 11]

    def test_rejects_passing_input(self):
        with pytest.raises(ValueError):
            ddmin([1, 2, 3], lambda items: False)


class TestPlantedBug:
    """Acceptance: a flipped comparison planted in the engine is caught
    by the fuzzer and shrunk to <= 3 tables / <= 10 rows."""

    def find_failure(self):
        report = run_differential(
            min_query_ops=400, base_seed=0, mini_transform=flip,
            stop_on_failure=True,
        )
        assert report.failures, "planted bug not caught within budget"
        return report.failures[0]

    def test_caught_and_shrunk_small(self):
        failure = self.find_failure()
        fails = case_fails(mini_transform=flip)
        shrunk = shrink_case(failure.case, fails)
        assert len(shrunk.tables) <= 3
        assert shrunk.total_rows <= 10
        assert len(shrunk.ops) <= 3
        # The shrunk case still reproduces the planted divergence...
        assert not run_rendered(
            render_case(shrunk), mini_transform=flip
        ).ok
        # ...and passes on the real (unplanted) engine.
        assert run_rendered(render_case(shrunk)).ok

    def test_shrinker_monotone_and_bounded(self):
        failure = self.find_failure()
        shrinker = Shrinker(case_fails(mini_transform=flip))
        shrunk = shrinker.shrink(failure.case)
        assert shrunk.total_rows <= failure.case.total_rows
        assert len(shrunk.ops) <= len(failure.case.ops)
        assert shrinker.evaluations < 2000


class TestWriteRepro:
    def test_seed_and_script_replay(self, tmp_path):
        case = g.CaseGenerator(2021).case()
        paths = write_repro(case, tmp_path, "sample", note="coverage pin")
        loaded = load_seed(paths["seed"])
        assert run_rendered(loaded).ok
        result = subprocess.run(
            [sys.executable, str(paths["script"])],
            capture_output=True, text=True, check=False,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_script_exits_nonzero_on_divergence(self, tmp_path):
        failure = None
        report = run_differential(
            min_query_ops=400, base_seed=0, mini_transform=flip,
            stop_on_failure=True,
        )
        failure = report.failures[0]
        # Freeze the divergent behaviour by rendering the minidb side
        # through the flip, so the saved seed itself diverges.
        rendered = render_case(failure.case)
        for op in rendered.minidb.ops:
            if op.kind == "query":
                object.__setattr__(op, "sql", flip(op.sql))
        from repro.testkit.dialects import rendered_to_dict
        import json

        seed_path = tmp_path / "bad.json"
        seed_path.write_text(json.dumps(rendered_to_dict(rendered)))
        script = tmp_path / "bad.py"
        script.write_text(
            "import pathlib\n"
            "from repro.testkit import oracle\n"
            "rendered = oracle.load_seed("
            "pathlib.Path(__file__).with_suffix('.json'))\n"
            "report = oracle.run_rendered(rendered)\n"
            "raise SystemExit(1 if report.divergences else 0)\n"
        )
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, check=False,
        )
        assert result.returncode == 1
