"""Replay every committed corpus seed against the current engine.

Seeds are the *rendered* SQL of minimized failing (now fixed) or
feature-rich cases, so they keep replaying verbatim even if the
generator drifts.  Any divergence here is a regression of a previously
fixed bug.
"""

import json
import pathlib

import pytest

from repro.testkit.oracle import load_seed, run_rendered

CORPUS = sorted(
    (pathlib.Path(__file__).parent.parent / "corpus").glob("*.json")
)


def test_corpus_is_not_empty():
    assert len(CORPUS) >= 3


@pytest.mark.parametrize(
    "seed_path", CORPUS, ids=lambda path: path.stem
)
def test_corpus_seed_replays_clean(seed_path):
    rendered = load_seed(seed_path)
    report = run_rendered(rendered)
    note = json.loads(seed_path.read_text()).get("note", "")
    assert report.ok, (
        f"corpus seed {seed_path.stem} regressed ({note}):\n"
        + "\n".join(report.divergences[:4])
    )
    assert report.error_ops == 0
