"""Replay every committed corpus seed against the current engine.

Two pin kinds live under ``tests/corpus/``:

* **oracle** pins (the default) — rendered SQL of minimized failing (now
  fixed) or feature-rich cases, replayed live-vs-reference through
  :mod:`repro.testkit.oracle`;
* **churn** pins (``"kind": "churn"``) — shrunk churn-driver runs whose
  seeds empirically exercise the graphrank/cube fast paths, replayed
  through :class:`repro.testkit.churn.ChurnDriver` with the coverage
  counters they were pinned for asserted non-zero.

Seeds keep replaying verbatim even if the generators drift.  Any
divergence here is a regression of a previously fixed bug (or a fast
path silently going stale).
"""

import json
import pathlib

import pytest

from repro.testkit.oracle import load_seed, run_rendered

_ALL = sorted(
    (pathlib.Path(__file__).parent.parent / "corpus").glob("*.json")
)


def _kind(path: pathlib.Path) -> str:
    return json.loads(path.read_text()).get("kind", "oracle")


ORACLE = [path for path in _ALL if _kind(path) == "oracle"]
CHURN = [path for path in _ALL if _kind(path) == "churn"]


def test_corpus_is_not_empty():
    assert len(ORACLE) >= 3
    assert len(CHURN) >= 2


@pytest.mark.parametrize(
    "seed_path", ORACLE, ids=lambda path: path.stem
)
def test_corpus_seed_replays_clean(seed_path):
    rendered = load_seed(seed_path)
    report = run_rendered(rendered)
    note = json.loads(seed_path.read_text()).get("note", "")
    assert report.ok, (
        f"corpus seed {seed_path.stem} regressed ({note}):\n"
        + "\n".join(report.divergences[:4])
    )
    assert report.error_ops == 0


@pytest.mark.parametrize(
    "seed_path", CHURN, ids=lambda path: path.stem
)
def test_churn_pin_replays_clean(seed_path):
    from repro.testkit.churn import ChurnDriver

    pin = json.loads(seed_path.read_text())
    report = ChurnDriver(
        seed=pin["seed"],
        steps=pin["steps"],
        check_every=pin["check_every"],
    ).run()
    assert report.ok, (
        f"churn pin {seed_path.stem} regressed ({pin.get('note', '')}):\n"
        + "\n".join(report.failures[:4])
    )
    for key in pin.get("require_coverage", []):
        assert report.coverage.get(key, 0) > 0, (
            f"churn pin {seed_path.stem} no longer exercises {key!r}; "
            f"coverage: {report.coverage}"
        )
