"""The headline acceptance test: generated queries vs the sqlite oracle.

At least 200 generated query executions must compare equal against
sqlite3 across the full minidb config sweep (compiled/interpreted,
cold/warm, prepared/literal) with zero divergences — and zero
both-engine errors, so the budget is spent on queries both engines
actually answered.  ``TESTKIT_DIFF_OPS`` scales the budget up for
thorough runs.
"""

import os

from repro.testkit.oracle import run_differential

MIN_OPS = int(os.environ.get("TESTKIT_DIFF_OPS", "200"))


def test_differential_fuzz_against_sqlite_oracle():
    report = run_differential(min_query_ops=MIN_OPS, base_seed=0)
    assert report.query_ops >= MIN_OPS
    details = "\n".join(
        line
        for failure in report.failures
        for line in failure.report.divergences[:3]
    )
    assert not report.failures, (
        f"{len(report.failures)} failing case(s) out of {report.cases}:\n"
        f"{details}"
    )
    assert report.error_ops == 0, (
        f"{report.error_ops} op(s) errored on both engines — the "
        f"generator is emitting SQL outside the shared dialect"
    )
