"""Regression: concurrent oracle runs must not corrupt planner flags.

``run_minidb`` historically saved and restored the global
``COMPILE_EXPRESSIONS``/``VECTORIZE`` planner flags with bare
assignments; two interleaved runs could restore in the wrong order and
leave a flag flipped for the rest of the process.  The fix routes every
scoped override through ``planner.flag_overrides`` (one process-wide
flag lock), so here we hammer it from many threads and assert the
globals land exactly where they started.
"""

import threading

import repro.minidb.planner as planner
from repro.testkit.dialects import RenderedOp, RenderedScript
from repro.testkit.oracle import SWEEP, run_minidb

SCRIPT = RenderedScript(
    create=("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)",),
    ops=(
        RenderedOp("insert", "INSERT INTO t VALUES (1, 10)", ()),
        RenderedOp("insert", "INSERT INTO t VALUES (2, 20)", ()),
        RenderedOp("query", "SELECT id, x FROM t ORDER BY id", ()),
        RenderedOp("query", "SELECT SUM(x) FROM t", ()),
    ),
)


class TestFlagOverrides:
    def test_nested_overrides_compose_and_restore(self):
        before = (planner.COMPILE_EXPRESSIONS, planner.VECTORIZE)
        with planner.flag_overrides(compile_expressions=False):
            assert planner.COMPILE_EXPRESSIONS is False
            with planner.flag_overrides(vectorize=not before[1]):
                assert planner.COMPILE_EXPRESSIONS is False
                assert planner.VECTORIZE is not before[1]
            assert planner.VECTORIZE is before[1]
        assert (planner.COMPILE_EXPRESSIONS, planner.VECTORIZE) == before

    def test_restores_on_exception(self):
        before = (planner.COMPILE_EXPRESSIONS, planner.VECTORIZE)
        try:
            with planner.flag_overrides(
                compile_expressions=not before[0], vectorize=not before[1]
            ):
                raise ValueError("boom")
        except ValueError:
            pass
        assert (planner.COMPILE_EXPRESSIONS, planner.VECTORIZE) == before


class TestConcurrentOracleRuns:
    def test_parallel_runs_agree_and_flags_survive(self):
        before = (planner.COMPILE_EXPRESSIONS, planner.VECTORIZE)
        expected = {
            config.name: [
                outcome.signature()
                for outcome in run_minidb(SCRIPT, config)[0]
            ]
            for config in SWEEP
        }
        errors = []
        barrier = threading.Barrier(len(SWEEP))

        def worker(config):
            try:
                barrier.wait()
                for _ in range(6):
                    outcomes, intra = run_minidb(SCRIPT, config)
                    assert not intra
                    signatures = [
                        outcome.signature() for outcome in outcomes
                    ]
                    assert signatures == expected[config.name]
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(config,), daemon=True)
            for config in SWEEP
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        assert (planner.COMPILE_EXPRESSIONS, planner.VECTORIZE) == before
