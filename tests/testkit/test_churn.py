"""Metamorphic churn driver: coherence plus proof of fast-path coverage.

The acceptance criterion is that one churn run exercises all three PR
1-3 fast paths — compiled expressions + plan cache, search/cloud epoch
caches, and the fast recommend path — while every check family stays
equal to its from-scratch replay.  The negative test plants a stale
index (mutations that never reach the engine) and requires the driver
to notice.
"""

import pytest

from repro.testkit.churn import ChurnDriver


@pytest.fixture(scope="module")
def report():
    return ChurnDriver(seed=1, steps=24, check_every=6).run()


class TestCoherence:
    def test_run_is_clean(self, report):
        assert report.ok, report.failures[:5]
        assert report.steps == 24
        assert report.checks >= 4

    def test_more_seeds_stay_clean(self):
        for seed in (2, 3):
            outcome = ChurnDriver(seed=seed, steps=18, check_every=6).run()
            assert outcome.ok, (seed, outcome.failures[:3])


class TestFastPathCoverage:
    """One run must light up every PR 1-3 fast path, or the equivalence
    checks are vacuously passing against cold code."""

    def test_compiled_expressions_and_plan_cache(self, report):
        assert report.coverage.get("compiled_plans", 0) > 0
        assert report.coverage.get("plan_cache_hits", 0) > 0

    def test_fast_recommend_extend_cache(self, report):
        assert report.coverage.get("recommend_cache_hits", 0) > 0

    def test_search_result_cache(self, report):
        assert report.coverage.get("search_cache_hits", 0) > 0

    def test_cloud_refinements_checked(self, report):
        assert report.coverage.get("cloud_refinements", 0) > 0


class TestDetection:
    def test_stale_search_index_is_caught(self):
        """If Docs mutations never reach the engine, live-vs-cold search
        must diverge — the driver's checks are not vacuous."""

        class StaleEngineDriver(ChurnDriver):
            def _doc_churn(self):
                engine = self.engine

                class NoRefresh:
                    def __getattr__(self, name):
                        return getattr(engine, name)

                    def refresh_document(self, doc_id):
                        pass

                self.engine = NoRefresh()
                try:
                    super()._doc_churn()
                finally:
                    self.engine = engine

        outcome = StaleEngineDriver(seed=1, steps=24, check_every=6).run()
        assert not outcome.ok
        assert any("search" in line for line in outcome.failures)
