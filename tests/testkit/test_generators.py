"""Generator contracts: determinism, validity, and feature coverage.

The capability mask promises that everything the generator emits is
legal in *both* dialects — validity here means a batch of seeds produces
zero both-engine errors, which is also what keeps the shrinker's
error-parity trick sound.
"""

import repro.testkit.generators as g
from repro.testkit.dialects import render_case
from repro.testkit.oracle import run_case

SEEDS = range(50, 70)


class TestDeterminism:
    def test_same_seed_same_rendered_sql(self):
        first = render_case(g.CaseGenerator(123).case())
        second = render_case(g.CaseGenerator(123).case())
        assert [op.sql for op in first.minidb.ops] == [
            op.sql for op in second.minidb.ops
        ]
        assert [op.sql for op in first.sqlite.ops] == [
            op.sql for op in second.sqlite.ops
        ]
        assert first.minidb.create == second.minidb.create

    def test_different_seeds_differ(self):
        one = render_case(g.CaseGenerator(1).case())
        two = render_case(g.CaseGenerator(2).case())
        assert [op.sql for op in one.minidb.ops] != [
            op.sql for op in two.minidb.ops
        ]


class TestValidity:
    def test_batch_produces_no_errors_on_either_engine(self):
        for seed in SEEDS:
            report = run_case(g.CaseGenerator(seed).case())
            assert report.error_ops == 0, (
                f"seed {seed} produced both-engine errors"
            )
            assert report.ok, f"seed {seed}: {report.divergences[:2]}"

    def test_min_queries_respected(self):
        caps = g.Capabilities(min_queries=5)
        for seed in SEEDS:
            case = g.CaseGenerator(seed, caps).case()
            assert case.query_count >= 5


class TestFeatureCoverage:
    def test_mask_features_all_appear_across_seeds(self):
        """One seed needn't hit everything, but a modest seed range must
        exercise every feature the capability mask enables."""
        found = set()
        for seed in range(200):
            case = g.CaseGenerator(seed).case()
            for op in case.ops:
                if isinstance(op, g.QueryOp):
                    query = op.query
                    if query.joins:
                        found.add("join")
                    if query.group_by:
                        found.add("group_by")
                    if query.distinct:
                        found.add("distinct")
                    if query.limit is not None:
                        found.add("limit")
                    if query.having is not None:
                        found.add("having")
                    if any(s.derived for s in self._sources(query)):
                        found.add("derived")
                    sql, params = self._render(query)
                    if params:
                        found.add("params")
                    if "IN (SELECT" in sql or "EXISTS (SELECT" in sql:
                        found.add("subquery")
                elif isinstance(op, (g.InsertOp, g.UpdateOp, g.DeleteOp)):
                    found.add("dml")
                elif isinstance(op, g.DropCreateOp):
                    found.add("drop_create")
            if len(found) >= 10:
                break
        assert found >= {
            "join", "group_by", "distinct", "limit", "having",
            "derived", "params", "subquery", "dml", "drop_create",
        }, f"missing: coverage only hit {sorted(found)}"

    @staticmethod
    def _sources(query):
        return [query.source] + [join.source for join in query.joins]

    @staticmethod
    def _render(query):
        from repro.testkit.dialects import MINIDB, render_query

        params = []
        sql = render_query(query, MINIDB, params)
        return sql, params


class TestIndexDdl:
    def test_index_ops_appear_across_seeds(self):
        created = dropped = multi_column = 0
        for seed in range(200):
            case = g.CaseGenerator(seed).case()
            for op in case.ops:
                if isinstance(op, g.CreateIndexOp):
                    created += 1
                    if len(op.index.columns) > 1:
                        multi_column += 1
                elif isinstance(op, g.DropIndexOp):
                    dropped += 1
        assert created > 10, f"only {created} CREATE INDEX ops in 200 seeds"
        assert dropped > 5, f"only {dropped} DROP INDEX ops in 200 seeds"
        assert multi_column > 0, "no multi-column index generated"

    def test_capability_gate_suppresses_index_ddl(self):
        caps = g.Capabilities(allow_index_ddl=False)
        for seed in range(40):
            case = g.CaseGenerator(seed, caps).case()
            for op in case.ops:
                assert not isinstance(op, (g.CreateIndexOp, g.DropIndexOp))

    def test_rendering_is_dialect_aware(self):
        """minidb gets USING <kind>; sqlite gets plain CREATE INDEX;
        DROP INDEX renders identically in both dialects."""
        for seed in range(200):
            case = g.CaseGenerator(seed).case()
            rendered = render_case(case)
            for mini_op, lite_op in zip(rendered.minidb.ops,
                                        rendered.sqlite.ops):
                if mini_op.sql.startswith("CREATE INDEX"):
                    assert " USING " in mini_op.sql
                    assert " USING " not in lite_op.sql
                    assert lite_op.sql.startswith("CREATE INDEX")
                if mini_op.sql.startswith("DROP INDEX"):
                    assert mini_op.sql == lite_op.sql

    def test_index_ddl_cases_stay_divergence_free(self):
        """Seeds known to emit index DDL must keep the oracle green."""
        checked = 0
        for seed in range(120):
            case = g.CaseGenerator(seed).case()
            if not any(
                isinstance(op, (g.CreateIndexOp, g.DropIndexOp))
                for op in case.ops
            ):
                continue
            report = run_case(case)
            assert report.ok, f"seed {seed}: {report.divergences[:2]}"
            checked += 1
            if checked >= 8:
                break
        assert checked, "no index-DDL seeds found in range"


class TestReferencedTables:
    def test_walker_sees_subquery_tables(self):
        case = None
        for seed in range(400):
            candidate = g.CaseGenerator(seed).case()
            for op in candidate.ops:
                if isinstance(op, g.QueryOp):
                    sql, _ = TestFeatureCoverage._render(op.query)
                    if "IN (SELECT" in sql or "EXISTS (SELECT" in sql:
                        case, target = candidate, op
                        break
            if case:
                break
        assert case is not None, "no subquery produced in 400 seeds"
        tables = g.referenced_tables(target)
        assert tables, "subquery op references no tables?"
        rendered, _ = TestFeatureCoverage._render(target.query)
        for name in tables:
            assert name in rendered
