"""Dialect rendering: literals, round trips, and parameter alignment."""

import datetime
import json

import repro.testkit.generators as g
from repro.minidb.plancache import parsed_statement
from repro.testkit.dialects import (
    MINIDB,
    SQLITE,
    bind_value,
    literal_sql,
    render_case,
    rendered_from_dict,
    rendered_to_dict,
)


class TestLiterals:
    def test_null(self):
        assert literal_sql(None, MINIDB) == "NULL"
        assert literal_sql(None, SQLITE) == "NULL"

    def test_bool_dialect_split(self):
        assert literal_sql(True, MINIDB) == "TRUE"
        assert literal_sql(True, SQLITE) == "1"
        assert literal_sql(False, SQLITE) == "0"

    def test_date_dialect_split(self):
        day = datetime.date(2008, 7, 3)
        assert literal_sql(day, MINIDB) == "DATE '2008-07-03'"
        assert literal_sql(day, SQLITE) == "'2008-07-03'"

    def test_string_quote_doubling(self):
        assert literal_sql("it's", MINIDB) == "'it''s'"

    def test_bind_value_coercions(self):
        day = datetime.date(2008, 7, 3)
        assert bind_value(day, SQLITE) == "2008-07-03"
        assert bind_value(True, SQLITE) == 1
        assert bind_value(day, MINIDB) == day


class TestMinidbRoundTrip:
    def test_every_rendered_query_parses_in_minidb(self):
        for seed in range(30):
            rendered = render_case(g.CaseGenerator(seed).case())
            for op in rendered.minidb.ops:
                if op.kind != "query":
                    continue
                statement, canonical, param_count = parsed_statement(op.sql)
                assert statement is not None
                assert param_count == len(op.params), op.sql
                if canonical is not None:
                    # The canonical rendering must itself re-parse to the
                    # same canonical text (a fixpoint).
                    again = parsed_statement(canonical)[1]
                    assert again == canonical


class TestParamAlignment:
    def test_both_dialects_bind_identical_param_streams(self):
        """`?` placeholders are numbered by text order; both renderings
        must collect the same values in the same order."""
        seen_params = False
        for seed in range(60):
            rendered = render_case(g.CaseGenerator(seed).case())
            for mine, theirs in zip(rendered.minidb.ops, rendered.sqlite.ops):
                assert mine.kind == theirs.kind
                assert len(mine.params) == len(theirs.params)
                assert mine.sql.count("?") == len(mine.params)
                assert theirs.sql.count("?") == len(theirs.params)
                # Same logical values on both sides (binding differs).
                assert [bind_value(v, SQLITE) for v in mine.params] == [
                    bind_value(v, SQLITE) for v in theirs.params
                ]
                if mine.params:
                    seen_params = True
        assert seen_params, "no parameterized query in 60 seeds"


class TestCorpusSerialization:
    def test_rendered_round_trips_through_json(self):
        rendered = render_case(g.CaseGenerator(77).case())
        payload = rendered_to_dict(rendered, name="x", note="y")
        # Must actually be JSON-serializable (dates become tagged dicts).
        data = json.loads(json.dumps(payload))
        loaded = rendered_from_dict(data)
        assert loaded.query_count == rendered.query_count
        assert loaded.minidb.create == rendered.minidb.create
        assert [op.sql for op in loaded.sqlite.ops] == [
            op.sql for op in rendered.sqlite.ops
        ]
        for before, after in zip(rendered.minidb.ops, loaded.minidb.ops):
            assert before.params == after.params
