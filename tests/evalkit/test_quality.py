"""Tests for the comment-quality metrics."""

import dataclasses

import pytest

from repro.courserank.schema import new_database
from repro.datagen import SCALES, generate_university
from repro.evalkit.quality import comment_quality_report


@pytest.fixture()
def db():
    database = new_database()
    database.execute(
        "INSERT INTO Departments VALUES (1, 'CS', 'Engineering', TRUE)"
    )
    database.execute(
        "INSERT INTO Courses VALUES "
        "(1, 1, 'Java Programming', 'programming in java', 5, ''), "
        "(2, 1, 'Databases', 'relational systems', 4, '')"
    )
    database.execute(
        "INSERT INTO Students VALUES "
        "(10, 'A', 2010, 'CS', NULL), (11, 'B', 2010, 'CS', NULL), "
        "(12, 'C', 2010, 'CS', NULL)"
    )
    database.execute(
        "INSERT INTO Enrollments VALUES "
        "(10, 1, 2008, 'Aut', 'A'), (11, 1, 2008, 'Aut', 'B'), "
        "(10, 2, 2008, 'Win', 'C'), (11, 2, 2008, 'Win', 'D')"
    )
    return database


class TestMetrics:
    def test_topical_comment_detected(self, db):
        db.execute(
            "INSERT INTO Comments VALUES "
            "(10, 1, 2008, 'Aut', 'great java content throughout', 4.0, NULL)"
        )
        report = comment_quality_report(db)
        assert report.topical_fraction == 1.0

    def test_offtopic_comment_detected(self, db):
        db.execute(
            "INSERT INTO Comments VALUES "
            "(10, 1, 2008, 'Aut', 'lol', 5.0, NULL)"
        )
        report = comment_quality_report(db)
        assert report.topical_fraction == 0.0

    def test_extremity(self, db):
        db.execute(
            "INSERT INTO Comments VALUES "
            "(10, 1, 2008, 'Aut', 'fine java class', 5.0, NULL), "
            "(11, 1, 2008, 'Aut', 'decent java class', 3.0, NULL)"
        )
        report = comment_quality_report(db)
        assert report.rating_extremity == 0.5

    def test_empty_database(self):
        report = comment_quality_report(new_database())
        assert report.comments == 0
        assert report.mean_words == 0.0
        assert report.rating_extremity is None

    def test_rating_signal_positive_when_ratings_track_grades(self, db):
        # Course 1 (good grades) rated high, course 2 (bad grades) low —
        # but Pearson needs variance over >= 2 courses, which we have.
        db.execute(
            "INSERT INTO Comments VALUES "
            "(10, 1, 2008, 'Aut', 'java good', 4.5, NULL), "
            "(11, 1, 2008, 'Aut', 'java fine', 4.0, NULL), "
            "(10, 2, 2008, 'Win', 'db rough', 2.0, NULL), "
            "(11, 2, 2008, 'Win', 'db hard', 1.5, NULL)"
        )
        report = comment_quality_report(db)
        assert report.rating_signal == pytest.approx(1.0)

    def test_as_dict_rounding(self, db):
        db.execute(
            "INSERT INTO Comments VALUES "
            "(10, 1, 2008, 'Aut', 'java', 3.3333, NULL)"
        )
        as_dict = comment_quality_report(db).as_dict()
        assert set(as_dict) == {
            "comments", "mean_words", "lexical_diversity",
            "topical_fraction", "rating_extremity", "rating_signal",
        }


class TestClosedVsOpenGeneration:
    def test_open_community_lowers_quality(self):
        base = SCALES["tiny"]
        closed = comment_quality_report(generate_university(base, seed=3))
        open_config = dataclasses.replace(
            base, name="tiny-open", community="open"
        )
        opened = comment_quality_report(
            generate_university(open_config, seed=3)
        )
        assert closed.topical_fraction > opened.topical_fraction
        assert closed.rating_extremity < opened.rating_extremity

    def test_invalid_community_rejected(self):
        import pytest as _pytest

        from repro.errors import DataGenError

        with _pytest.raises(DataGenError):
            dataclasses.replace(SCALES["tiny"], community="anarchic")
