"""Tests for the hold-out recommender evaluation harness."""

import pytest

from repro.datagen import generate_university
from repro.evalkit.receval import (
    HoldoutEvaluation,
    evaluate_predictors,
    holdout_split,
)


@pytest.fixture(scope="module")
def db():
    return generate_university(scale="tiny", seed=42)


class TestHoldoutSplit:
    def test_pairs_are_rated_comments(self, db):
        held = holdout_split(db, fraction=0.2, seed=1)
        assert held
        for suid, course_id, rating in held:
            stored = db.query(
                f"SELECT Rating FROM Comments WHERE SuID = {suid} "
                f"AND CourseID = {course_id}"
            ).scalar()
            assert stored == rating

    def test_every_user_keeps_visible_ratings(self, db):
        held = holdout_split(db, fraction=0.5, seed=1)
        hidden_by_user = {}
        for suid, _course, _rating in held:
            hidden_by_user[suid] = hidden_by_user.get(suid, 0) + 1
        for suid, hidden in hidden_by_user.items():
            total = db.query(
                f"SELECT COUNT(Rating) FROM Comments WHERE SuID = {suid}"
            ).scalar()
            assert total - hidden >= 2

    def test_max_pairs_cap(self, db):
        held = holdout_split(db, fraction=0.5, seed=1, max_pairs=5)
        assert len(held) == 5

    def test_deterministic(self, db):
        assert holdout_split(db, seed=7) == holdout_split(db, seed=7)
        assert holdout_split(db, seed=7) != holdout_split(db, seed=8)


class TestHiddenStateAndRestore:
    def test_ratings_hidden_inside_context(self, db):
        held = holdout_split(db, fraction=0.2, seed=2, max_pairs=4)
        suid, course_id, _rating = held[0]
        with HoldoutEvaluation(db, held):
            hidden = db.query(
                f"SELECT Rating FROM Comments WHERE SuID = {suid} "
                f"AND CourseID = {course_id}"
            ).scalar()
            assert hidden is None
        restored = db.query(
            f"SELECT Rating FROM Comments WHERE SuID = {suid} "
            f"AND CourseID = {course_id}"
        ).scalar()
        assert restored == held[0][2]

    def test_restore_on_exception(self, db):
        held = holdout_split(db, fraction=0.2, seed=3, max_pairs=3)
        total_before = db.query(
            "SELECT COUNT(Rating) FROM Comments"
        ).scalar()
        with pytest.raises(RuntimeError):
            with HoldoutEvaluation(db, held):
                raise RuntimeError("boom")
        assert (
            db.query("SELECT COUNT(Rating) FROM Comments").scalar()
            == total_before
        )


class TestPredictors:
    def test_global_mean_covers_everything(self, db):
        held = holdout_split(db, fraction=0.2, seed=4, max_pairs=10)
        with HoldoutEvaluation(db, held) as evaluation:
            score = evaluation.score(
                "global", evaluation.predict_global_mean()
            )
        assert score.coverage == 1.0
        assert 1.0 <= score.mae <= 4.0 or score.mae < 1.0

    def test_cf_predictions_in_rating_range(self, db):
        held = holdout_split(db, fraction=0.2, seed=5, max_pairs=10)
        with HoldoutEvaluation(db, held) as evaluation:
            predictions = evaluation.predict_cf(similar_students=5)
        for value in predictions.values():
            assert 1.0 <= value <= 5.0

    def test_score_with_no_predictions(self, db):
        held = holdout_split(db, fraction=0.2, seed=6, max_pairs=3)
        with HoldoutEvaluation(db, held) as evaluation:
            score = evaluation.score("empty", {})
        assert score.mae is None
        assert score.coverage == 0.0


class TestFullProtocol:
    def test_evaluate_predictors_shapes(self, db):
        scores = evaluate_predictors(db, fraction=0.2, seed=1, max_pairs=30)
        names = [score.name for score in scores]
        assert names == ["global_mean", "course_mean", "cf"]
        by_name = {score.name: score for score in scores}
        assert by_name["global_mean"].coverage == 1.0
        # Personalization helps where it applies: CF (when it can
        # predict) is at least as accurate as the global floor.
        if by_name["cf"].predictions >= 5:
            assert by_name["cf"].mae <= by_name["global_mean"].mae + 0.15

    def test_database_untouched_after_protocol(self, db):
        before = db.query("SELECT COUNT(Rating) FROM Comments").scalar()
        evaluate_predictors(db, fraction=0.2, seed=2, max_pairs=10)
        assert (
            db.query("SELECT COUNT(Rating) FROM Comments").scalar() == before
        )

    def test_empty_database_yields_no_scores(self):
        from repro.courserank.schema import new_database

        assert evaluate_predictors(new_database()) == []
