"""Tests for evaluation metrics and report generation."""

import pytest

from repro.courserank.app import CourseRank
from repro.datagen import generate_university
from repro.evalkit.metrics import (
    coverage,
    jaccard_overlap,
    kendall_tau,
    narrowing_factor,
    overlap_at_k,
)
from repro.evalkit.reports import (
    PAPER_STATISTICS,
    render_table1,
    site_scale_report,
    table1_report,
)


class TestMetrics:
    def test_overlap_at_k(self):
        assert overlap_at_k([1, 2, 3], [3, 2, 9], 2) == 0.5
        assert overlap_at_k([1, 2], [1, 2], 2) == 1.0
        with pytest.raises(ValueError):
            overlap_at_k([1], [1], 0)

    def test_jaccard_overlap(self):
        assert jaccard_overlap({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard_overlap(set(), set()) == 1.0

    def test_kendall_tau_perfect(self):
        assert kendall_tau([1, 2, 3], [1, 2, 3]) == 1.0

    def test_kendall_tau_reversed(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == -1.0

    def test_kendall_tau_partial_overlap(self):
        value = kendall_tau([1, 2, 9], [2, 1])
        assert value == -1.0  # only 1,2 common, inverted

    def test_kendall_tau_degenerate(self):
        assert kendall_tau([1], [1]) is None
        assert kendall_tau([1, 2], [3, 4]) is None

    def test_coverage(self):
        assert coverage({1, 2, 3}, 10) == 0.3
        with pytest.raises(ValueError):
            coverage(set(), 0)

    def test_narrowing_factor(self):
        assert narrowing_factor(1160, 123) == pytest.approx(9.43, abs=0.01)
        assert narrowing_factor(10, 0) is None


class TestReports:
    @pytest.fixture(scope="class")
    def app(self):
        return CourseRank(generate_university(scale="tiny", seed=42))

    def test_table1_has_four_columns(self, app):
        report = table1_report(app)
        assert set(report) == {"DB", "Web", "Social Sites", "CourseRank"}

    def test_courserank_column_derived_from_system(self, app):
        report = table1_report(app)
        column = report["CourseRank"]
        # Hybrid provenance: both official and user data present.
        assert "official" in column["data_provenance"]
        assert "user contributed" in column["data_provenance"]
        assert column["identities"] == "authorized, real ids"
        assert column["access"] == "closed community"
        assert column["data_structure"] == "both types"

    def test_all_columns_share_rows(self, app):
        report = table1_report(app)
        row_sets = [set(column) for column in report.values()]
        assert all(rows == row_sets[0] for rows in row_sets)

    def test_render_table1(self, app):
        text = render_table1(table1_report(app))
        assert "CourseRank" in text
        assert "closed community" in text

    def test_site_scale_report(self, app):
        rows = site_scale_report(app)
        names = {row["statistic"] for row in rows}
        assert names == set(PAPER_STATISTICS)
        for row in rows:
            assert row["measured"] >= 0
            assert row["ratio"] is not None
