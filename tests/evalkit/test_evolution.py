"""Tests for the evolution-over-time metrics."""

import pytest

from repro.courserank.schema import new_database
from repro.datagen import generate_university
from repro.evalkit.evolution import (
    activity_timeline,
    adoption_curve,
    growth_summary,
    render_timeline,
)


@pytest.fixture()
def db():
    database = new_database()
    database.execute(
        "INSERT INTO Departments VALUES (1, 'CS', 'Engineering', TRUE)"
    )
    database.execute(
        "INSERT INTO Courses VALUES (1, 1, 'A', '', 4, ''), (2, 1, 'B', '', 4, '')"
    )
    database.execute(
        "INSERT INTO Students VALUES "
        "(10, 'a', 2010, 'CS', NULL), (11, 'b', 2010, 'CS', NULL), "
        "(12, 'c', 2010, 'CS', NULL)"
    )
    database.execute(
        "INSERT INTO Comments VALUES "
        "(10, 1, 2008, 'Aut', 'x', 4.0, '2008-01-10'), "
        "(11, 1, 2008, 'Aut', 'y', 3.0, '2008-01-20'), "
        "(10, 2, 2008, 'Win', 'z', 5.0, '2008-02-05'), "
        "(12, 2, 2008, 'Win', 'w', 2.0, '2008-03-15')"
    )
    return database


class TestTimeline:
    def test_months_in_order(self, db):
        timeline = activity_timeline(db)
        assert [point.month for point in timeline] == [
            "2008-01", "2008-02", "2008-03",
        ]

    def test_counts_per_month(self, db):
        timeline = activity_timeline(db)
        assert [point.comments for point in timeline] == [2, 1, 1]

    def test_new_vs_cumulative_contributors(self, db):
        timeline = activity_timeline(db)
        assert [point.new_contributors for point in timeline] == [2, 0, 1]
        assert [point.cumulative_contributors for point in timeline] == [2, 2, 3]

    def test_coverage_grows(self, db):
        timeline = activity_timeline(db)
        assert [point.cumulative_courses_covered for point in timeline] == [
            1, 2, 2,
        ]

    def test_adoption_curve_monotone(self, db):
        curve = [count for _month, count in adoption_curve(db)]
        assert curve == sorted(curve)

    def test_empty_database(self):
        assert activity_timeline(new_database()) == []
        summary = growth_summary(new_database())
        assert summary["months"] == 0

    def test_render(self, db):
        text = render_timeline(activity_timeline(db))
        assert "2008-01" in text and "#" in text
        assert render_timeline([]) == "(no activity)"


class TestGrowthOnGeneratedData:
    def test_generated_site_accelerates(self):
        db = generate_university(scale="tiny", seed=4)
        summary = growth_summary(db)
        assert summary["total_comments"] == 150
        # Activity density grows over the site's first year.
        assert summary["second_half_share"] > 0.5
        # Everyone registered eventually contributes (closed community).
        assert summary["final_contributors"] == 24

    def test_adoption_monotone_on_generated_data(self):
        db = generate_university(scale="tiny", seed=4)
        curve = [count for _m, count in adoption_curve(db)]
        assert curve == sorted(curve)
