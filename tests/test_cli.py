"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--scale", "tiny", "--query", "design"]) == 0
        output = capsys.readouterr().out
        assert "48 courses" in output
        assert "collaborative filtering" in output

    def test_stats(self, capsys):
        assert main(["stats", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "18605" in output  # paper column
        assert "48" in output  # measured column

    def test_search_with_refinement(self, capsys):
        assert (
            main(
                [
                    "search", "programming", "--scale", "tiny",
                    "--refine", "java", "--top", "3",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "matching courses" in output
        assert "refined with 'java'" in output

    def test_recommend_strategy(self, capsys):
        assert (
            main(
                [
                    "recommend", "--strategy", "related_courses",
                    "--course", "1", "--top", "3", "--scale", "tiny",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert output.count("[") == 3

    def test_recommend_execution_paths_agree(self, capsys):
        outputs = []
        for path in ("direct", "sql", "staged"):
            main(
                [
                    "recommend", "--strategy", "related_courses",
                    "--course", "1", "--top", "3", "--scale", "tiny",
                    "--path", path,
                ]
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_sql_query(self, capsys):
        assert (
            main(["sql", "SELECT COUNT(*) AS n FROM Students", "--scale", "tiny"])
            == 0
        )
        assert "30" in capsys.readouterr().out

    def test_sql_explain(self, capsys):
        assert (
            main(
                [
                    "sql", "SELECT Title FROM Courses WHERE CourseID = 1",
                    "--scale", "tiny", "--explain",
                ]
            )
            == 0
        )
        assert "primary key" in capsys.readouterr().out

    def test_sql_profile(self, capsys):
        assert (
            main(
                [
                    "sql", "SELECT COUNT(*) FROM Comments",
                    "--scale", "tiny", "--profile",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "rows" in output and "Aggregate" in output

    def test_sql_dml_reports_count(self, capsys):
        assert (
            main(
                [
                    "sql",
                    "DELETE FROM PointsLedger",
                    "--scale", "tiny",
                ]
            )
            == 0
        )
        assert "rows affected" in capsys.readouterr().out

    def test_generate_and_load_roundtrip(self, tmp_path, capsys):
        out_dir = str(tmp_path / "saved")
        assert (
            main(["generate", "--scale", "tiny", "--seed", "3", "--out", out_dir])
            == 0
        )
        capsys.readouterr()
        assert main(["stats", "--load", out_dir]) == 0
        assert "48" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
