"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_substrate_bases(self):
        assert issubclass(errors.SQLSyntaxError, errors.MiniDBError)
        assert issubclass(errors.IntegrityError, errors.MiniDBError)
        assert issubclass(errors.WorkflowValidationError, errors.FlexRecsError)
        assert issubclass(errors.CompilationError, errors.FlexRecsError)
        assert issubclass(errors.AuthorizationError, errors.CourseRankError)
        assert issubclass(errors.PrivacyError, errors.CourseRankError)
        assert issubclass(errors.PlannerConflictError, errors.CourseRankError)

    def test_facade_boundary_catch(self):
        """Application code can catch one base class at the boundary."""
        from repro.minidb import Database

        db = Database()
        with pytest.raises(errors.ReproError):
            db.execute("SELEC broken")
        with pytest.raises(errors.MiniDBError):
            db.execute("SELECT * FROM missing_table")

    def test_distinct_failure_modes_distinguishable(self):
        from repro.minidb import Database

        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(errors.IntegrityError):
            db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(errors.UnknownColumnError):
            db.query("SELECT nope FROM t")
