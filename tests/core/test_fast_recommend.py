"""Naive ≡ fast recommend: the fast path's correctness contract.

``executor.FAST_RECOMMEND = False`` restores the pre-fast-path pipeline
(no extend-vector cache, no candidate pruning, no bounded-heap top-k).
These tests assert the fast path is tuple-for-tuple identical to that
reference — including float bit patterns, so ``==`` and not ``isclose``
— under random data, random churn, and every prunable comparator family.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.core.executor as executor
from repro.core import strategies as flexrecs
from repro.core.extendcache import (
    cache_info,
    clear_extend_cache,
    extend_vectors,
    stats_of,
)
from repro.core.library import NumericCloseness
from repro.core.operators import Recommend, Select, Source, extend
from repro.core.similarity import vector_stats
from repro.core.workflow import Workflow
from repro.courserank.recommendations import RecommendationService
from repro.minidb import Database


@pytest.fixture(autouse=True)
def _fast_and_cold():
    """Every test starts with the fast path on and an empty cache."""
    executor.FAST_RECOMMEND = True
    clear_extend_cache()
    yield
    executor.FAST_RECOMMEND = True


def run_naive(workflow, db):
    executor.FAST_RECOMMEND = False
    try:
        return workflow.run(db)
    finally:
        executor.FAST_RECOMMEND = True


def exact_rows(recommendation):
    """Rows as comparable tuples; float comparison is exact on purpose."""
    return [
        tuple(sorted(row.items(), key=lambda item: item[0]))
        for row in recommendation.rows
    ]


def students_with_ratings():
    return extend(
        Source("Students"), "ratings", "Comments", "SuID", "SuID",
        "Rating", "CourseID",
    )


# ---------------------------------------------------------------------------
# randomized equivalence (with churn) across the prunable families
# ---------------------------------------------------------------------------


def build_db(students, ratings):
    db = Database()
    db.execute_script(
        """
        CREATE TABLE Students (SuID INTEGER PRIMARY KEY, Name TEXT,
          Class INTEGER, Major TEXT, GPA FLOAT);
        CREATE TABLE Courses (CourseID INTEGER PRIMARY KEY, DepID INTEGER,
          Title TEXT, Description TEXT, Units INTEGER, Url TEXT);
        CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER, Year INTEGER,
          Term TEXT, Text TEXT, Rating FLOAT, CommentDate DATE,
          PRIMARY KEY (SuID, CourseID));
        CREATE TABLE Enrollments (SuID INTEGER, CourseID INTEGER,
          Year INTEGER, Term TEXT, Grade TEXT,
          PRIMARY KEY (SuID, CourseID));
        """
    )
    for suid, gpa in students:
        db.table("Students").insert([suid, f"s{suid}", 2010, "M", gpa])
    for course_id in range(1, 7):
        db.table("Courses").insert([course_id, 1, f"Course {course_id}", "", 3, ""])
    seen = set()
    for suid, course_id, rating in ratings:
        if (suid, course_id) in seen:
            continue
        seen.add((suid, course_id))
        db.table("Comments").insert(
            [suid, course_id, 2008, "Aut", "t", rating, "2008-01-01"]
        )
        db.table("Enrollments").insert([suid, course_id, 2008, "Aut", "A"])
    return db


def apply_churn(db, operations):
    """Insert/update/delete ratings (and matching enrollments)."""
    existing = {(row[0], row[1]) for row in db.table("Comments").rows()}
    for kind, suid, course_id, rating in operations:
        if kind == "insert":
            if (suid, course_id) in existing:
                continue
            db.execute(
                f"INSERT INTO Comments VALUES ({suid}, {course_id}, 2008, "
                f"'Aut', 't', {rating!r}, '2008-01-01')"
            )
            db.execute(
                f"INSERT INTO Enrollments VALUES ({suid}, {course_id}, "
                f"2008, 'Aut', 'A')"
            )
            existing.add((suid, course_id))
        elif kind == "delete":
            db.execute(
                f"DELETE FROM Comments "
                f"WHERE SuID = {suid} AND CourseID = {course_id}"
            )
            db.execute(
                f"DELETE FROM Enrollments "
                f"WHERE SuID = {suid} AND CourseID = {course_id}"
            )
            existing.discard((suid, course_id))
        else:
            db.execute(
                f"UPDATE Comments SET Rating = {rating!r} "
                f"WHERE SuID = {suid} AND CourseID = {course_id}"
            )


students_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    ),
    min_size=2,
    max_size=8,
    unique_by=lambda pair: pair[0],
)

ratings_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),  # SuID
        st.integers(min_value=1, max_value=6),  # CourseID
        st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
    ),
    max_size=30,
)

churn_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "update"]),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
    ),
    max_size=6,
)

#: one strategy per prunable comparator family: SetJaccard, Pearson, and
#: InverseEuclidean + VectorLookup (the stacked Figure 5(b) workflow)
FAMILIES = {
    "jaccard": lambda sid: flexrecs.similar_audience_courses(1, top_k=4),
    "pearson": lambda sid: flexrecs.similar_students_pearson(sid),
    "inverse_euclidean": lambda sid: flexrecs.collaborative_filtering(
        sid, top_k=5
    ),
}


class TestFastMatchesNaive:
    @given(
        students_strategy,
        ratings_strategy,
        churn_strategy,
        st.sampled_from(sorted(FAMILIES)),
    )
    def test_random_equivalence_with_churn(
        self, students, ratings, operations, family
    ):
        db = build_db(students, ratings)
        workflow = FAMILIES[family](students[0][0])
        naive = run_naive(workflow, db)
        clear_extend_cache(db)
        cold = workflow.run(db)  # fast path, empty cache
        warm = workflow.run(db)  # fast path, cache hits
        assert naive.columns == cold.columns == warm.columns
        assert exact_rows(naive) == exact_rows(cold) == exact_rows(warm)
        # Mutate the contributing tables while the cache is warm: the
        # stale entries' keys become unreachable, so the fast path must
        # agree with a from-scratch naive run.
        apply_churn(db, operations)
        after_fast = workflow.run(db)
        after_naive = run_naive(workflow, db)
        assert exact_rows(after_fast) == exact_rows(after_naive)


class TestHeapTopK:
    def test_ties_break_identically(self):
        """Dense score ties: the bounded heap must return the same slice
        (score desc, then target key asc) as the naive full sort."""
        db = Database()
        db.execute_script(
            "CREATE TABLE Students (SuID INTEGER PRIMARY KEY, Name TEXT, "
            "Class INTEGER, Major TEXT, GPA FLOAT);"
        )
        for suid in range(1, 31):
            db.table("Students").insert(
                [suid, f"s{suid}", 2010, "M", float(suid % 3)]
            )
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Select(Source("Students"), "SuID = 1"),
                comparator=NumericCloseness("GPA", "GPA"),
                target_key="SuID",
                top_k=5,
                exclude_self=("SuID", "SuID"),
            )
        )
        fast = workflow.run(db)
        naive = run_naive(workflow, db)
        assert exact_rows(fast) == exact_rows(naive)
        assert len(fast.rows) == 5


# ---------------------------------------------------------------------------
# stale-cache regression: every write to a contributing table invalidates
# ---------------------------------------------------------------------------


class TestStaleCacheImpossible:
    @pytest.mark.parametrize(
        "mutation",
        [
            "INSERT INTO Comments VALUES "
            "(447, 1, 2008, 'Win', 'new', 2.5, '2008-11-01')",
            "UPDATE Comments SET Rating = 1.5 WHERE SuID = 444",
            "DELETE FROM Comments WHERE SuID = 445 AND CourseID = 1",
        ],
    )
    def test_write_then_rerun_matches_naive(self, flexdb, mutation):
        workflow = flexrecs.similar_students_pearson(444)
        workflow.run(flexdb)  # warm the extend-vector cache
        flexdb.execute(mutation)
        after_fast = workflow.run(flexdb)
        after_naive = run_naive(workflow, flexdb)
        assert exact_rows(after_fast) == exact_rows(after_naive)

    def test_extend_vectors_versioned(self, flexdb):
        info = students_with_ratings().info
        vectors, hit = extend_vectors(flexdb, info)
        assert not hit
        cached, hit = extend_vectors(flexdb, info)
        assert hit and cached is vectors
        assert vectors[444] == {1: 5.0, 2: 4.0}
        assert stats_of(vectors[444]) == vector_stats(vectors[444])
        flexdb.execute(
            "UPDATE Comments SET Rating = 3.0 WHERE SuID = 444 AND CourseID = 1"
        )
        fresh, hit = extend_vectors(flexdb, info)
        assert not hit
        assert fresh[444] == {1: 3.0, 2: 4.0}
        assert stats_of(fresh[444]) == vector_stats(fresh[444])
        info_stats = cache_info(flexdb)
        assert info_stats["hits"] >= 1 and info_stats["misses"] >= 2

    def test_drop_recreate_cannot_alias(self, flexdb):
        """A recreated table restarts its version counter; the schema
        epoch in the cache key keeps the old entry unreachable."""
        info = students_with_ratings().info
        extend_vectors(flexdb, info)  # populate
        flexdb.execute("DROP TABLE Comments")
        flexdb.execute(
            "CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER, "
            "Year INTEGER, Term TEXT, Text TEXT, Rating FLOAT, "
            "CommentDate DATE, PRIMARY KEY (SuID, CourseID))"
        )
        flexdb.execute(
            "INSERT INTO Comments VALUES "
            "(444, 6, 2008, 'Aut', 'only', 2.0, '2008-12-01')"
        )
        fresh, hit = extend_vectors(flexdb, info)
        assert not hit
        assert fresh == {444: {6: 2.0}}


# ---------------------------------------------------------------------------
# observability: RecommendStats and the facade
# ---------------------------------------------------------------------------


class TestRecommendStats:
    def test_cold_and_warm_counters(self, flexdb):
        workflow = flexrecs.collaborative_filtering(444, top_k=3)
        cold = workflow.run(flexdb)
        assert len(cold.stats) == 2  # stacked recommends, lower first
        for record in cold.stats:
            assert record.candidates + record.pruned == (
                record.targets * record.references
            )
            assert record.scored <= record.candidates
            assert record.elapsed_ms >= 0.0
        assert sum(record.cache_misses for record in cold.stats) > 0
        lower = cold.stats[0]
        # student 447 shares no rated course with 444: prunable
        assert lower.pruned >= 1
        warm = workflow.run(flexdb)
        assert sum(record.cache_hits for record in warm.stats) > 0
        assert sum(record.cache_misses for record in warm.stats) == 0
        assert exact_rows(cold) == exact_rows(warm)

    def test_naive_path_still_records(self, flexdb):
        workflow = flexrecs.similar_students_pearson(444)
        executor.FAST_RECOMMEND = False
        try:
            result = workflow.run(flexdb)
        finally:
            executor.FAST_RECOMMEND = True
        (record,) = result.stats
        assert record.pruned == 0
        assert record.candidates == record.targets * record.references

    def test_service_surfaces_stats(self, flexdb):
        flexdb.execute(
            "CREATE TABLE Prerequisites (CourseID INTEGER, PrereqID INTEGER)"
        )
        service = RecommendationService(flexdb, use_compiled_sql=False)
        result = service.courses_for_student(
            444, strategy="collaborative_filtering", top_k=2
        )
        assert result.stats
        assert service.last_stats is result.stats
        assert result.columns[-1] == "missing_prerequisites"
