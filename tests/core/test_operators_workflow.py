"""Unit tests for workflow operators: schemas, validation, rendering."""

import pytest

from repro.errors import FlexRecsError, WorkflowValidationError
from repro.core import (
    EqualityMatch,
    InverseEuclidean,
    NumericCloseness,
    SetJaccard,
    TextJaccard,
    VectorLookup,
    Workflow,
    make_comparator,
)
from repro.core.operators import (
    Join,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
    extend,
)


class TestOutputColumns:
    def test_source(self, flexdb):
        columns = Source("Students").output_columns(flexdb)
        assert columns == ["SuID", "Name", "Class", "Major", "GPA"]

    def test_sql_source(self, flexdb):
        node = SqlSource("SELECT SuID, GPA FROM Students")
        assert node.output_columns(flexdb) == ["SuID", "GPA"]

    def test_sql_source_rejects_non_select(self, flexdb):
        node = SqlSource("DELETE FROM Students")
        with pytest.raises(WorkflowValidationError):
            node.output_columns(flexdb)

    def test_select_passthrough(self, flexdb):
        node = Select(Source("Students"), "GPA > 3.0")
        assert node.output_columns(flexdb) == Source("Students").output_columns(flexdb)

    def test_project(self, flexdb):
        node = Project(Source("Students"), ("suid", "gpa"))
        assert node.output_columns(flexdb) == ["SuID", "GPA"]

    def test_project_unknown_column(self, flexdb):
        node = Project(Source("Students"), ("Nope",))
        with pytest.raises(WorkflowValidationError):
            node.output_columns(flexdb)

    def test_join_concatenates(self, flexdb):
        node = Join(
            Project(Source("Students"), ("SuID", "Name")),
            Project(Source("Enrollments"), ("CourseID", "Grade")),
            left_on="SuID",
            right_on="CourseID",
        )
        assert node.output_columns(flexdb) == ["SuID", "Name", "CourseID", "Grade"]

    def test_join_collision_rejected(self, flexdb):
        node = Join(
            Source("Students"), Source("Enrollments"), "SuID", "SuID"
        )
        with pytest.raises(WorkflowValidationError):
            node.output_columns(flexdb)

    def test_extend_keeps_columns(self, flexdb):
        node = extend(
            Source("Students"),
            attribute="ratings",
            source_table="Comments",
            source_key="SuID",
            key_column="SuID",
            value_column="Rating",
            map_column="CourseID",
        )
        assert node.output_columns(flexdb) == Source("Students").output_columns(flexdb)
        assert node.extend_infos(flexdb)[0].attribute == "ratings"

    def test_extend_attribute_collision(self, flexdb):
        node = extend(
            Source("Students"),
            attribute="GPA",
            source_table="Comments",
            source_key="SuID",
            key_column="SuID",
            value_column="Rating",
        )
        with pytest.raises(WorkflowValidationError):
            node.output_columns(flexdb)

    def test_project_drops_extend_when_key_projected_away(self, flexdb):
        extended = extend(
            Source("Students"),
            attribute="ratings",
            source_table="Comments",
            source_key="SuID",
            key_column="SuID",
            value_column="Rating",
            map_column="CourseID",
        )
        kept = Project(extended, ("SuID", "GPA"))
        dropped = Project(extended, ("GPA",))
        assert len(kept.extend_infos(flexdb)) == 1
        assert dropped.extend_infos(flexdb) == []

    def test_recommend_appends_score(self, flexdb):
        node = Recommend(
            target=Source("Students"),
            reference=Select(Source("Students"), "SuID = 444"),
            comparator=NumericCloseness("GPA", "GPA"),
            target_key="SuID",
        )
        assert node.output_columns(flexdb)[-1] == "score"

    def test_recommend_score_collision(self, flexdb):
        node = Recommend(
            target=Source("Students"),
            reference=Source("Students"),
            comparator=NumericCloseness("GPA", "GPA"),
            target_key="SuID",
            score_column="GPA",
        )
        with pytest.raises(WorkflowValidationError):
            node.output_columns(flexdb)

    def test_recommend_bad_aggregate(self, flexdb):
        node = Recommend(
            target=Source("Students"),
            reference=Source("Students"),
            comparator=NumericCloseness("GPA", "GPA"),
            target_key="SuID",
            aggregate="median",
        )
        with pytest.raises(WorkflowValidationError):
            node.output_columns(flexdb)

    def test_recommend_bad_target_key(self, flexdb):
        node = Recommend(
            target=Source("Students"),
            reference=Source("Students"),
            comparator=NumericCloseness("GPA", "GPA"),
            target_key="Nope",
        )
        with pytest.raises(WorkflowValidationError):
            node.output_columns(flexdb)

    def test_topk_validates_column(self, flexdb):
        good = TopK(Source("Students"), 3, "GPA")
        assert good.output_columns(flexdb) == Source("Students").output_columns(flexdb)
        with pytest.raises(WorkflowValidationError):
            TopK(Source("Students"), 3, "Nope").output_columns(flexdb)
        with pytest.raises(WorkflowValidationError):
            TopK(Source("Students"), 0, "GPA").output_columns(flexdb)


class TestWorkflowValidation:
    def test_vector_comparator_needs_extend(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Source("Students"),
                comparator=InverseEuclidean("ratings", "ratings"),
                target_key="SuID",
            )
        )
        with pytest.raises(WorkflowValidationError, match="Extend"):
            workflow.validate(flexdb)

    def test_lookup_needs_reference_vector(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Courses"),
                reference=Source("Students"),
                comparator=VectorLookup("CourseID", "ratings"),
                target_key="CourseID",
            )
        )
        with pytest.raises(WorkflowValidationError):
            workflow.validate(flexdb)

    def test_scalar_comparator_needs_columns(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Source("Students"),
                comparator=NumericCloseness("Nope", "GPA"),
                target_key="SuID",
            )
        )
        with pytest.raises(WorkflowValidationError):
            workflow.validate(flexdb)

    def test_exclude_self_columns_checked(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Source("Students"),
                comparator=NumericCloseness("GPA", "GPA"),
                target_key="SuID",
                exclude_self=("Nope", "SuID"),
            )
        )
        with pytest.raises(WorkflowValidationError):
            workflow.validate(flexdb)

    def test_valid_workflow_returns_columns(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Select(Source("Students"), "SuID = 444"),
                comparator=NumericCloseness("GPA", "GPA"),
                target_key="SuID",
            )
        )
        columns = workflow.validate(flexdb)
        assert columns[-1] == "score"

    def test_explain_renders_tree(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Courses"),
                reference=Select(Source("Courses"), "CourseID = 1"),
                comparator=TextJaccard("Title", "Title"),
                target_key="CourseID",
            )
        )
        text = workflow.explain()
        assert "Recommend" in text
        assert "Source(Courses)" in text
        assert "Select(CourseID = 1)" in text


class TestComparatorFactory:
    def test_make_by_name(self):
        comparator = make_comparator("text_jaccard", "Title", "Title")
        assert isinstance(comparator, TextJaccard)

    def test_unknown_name(self):
        with pytest.raises(FlexRecsError):
            make_comparator("nope", "a", "b")

    def test_numeric_closeness_scale_validation(self):
        with pytest.raises(FlexRecsError):
            NumericCloseness("a", "b", scale=0)

    def test_set_comparator_rejects_vectors(self):
        comparator = SetJaccard("taken", "taken")
        with pytest.raises(FlexRecsError):
            comparator.score({"taken": {1: 2.0}}, {"taken": {1}})

    def test_vector_comparator_rejects_sets(self):
        comparator = InverseEuclidean("ratings", "ratings")
        with pytest.raises(FlexRecsError):
            comparator.score({"ratings": {1}}, {"ratings": {1}})

    def test_case_insensitive_attribute_access(self):
        comparator = EqualityMatch("term", "TERM")
        assert comparator.score({"Term": "Aut"}, {"Term": "Aut"}) == 1.0

    def test_missing_attribute_message(self):
        comparator = EqualityMatch("Nope", "Term")
        with pytest.raises(FlexRecsError, match="Nope"):
            comparator.score({"Term": "Aut"}, {"Term": "Aut"})
