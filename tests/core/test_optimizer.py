"""Tests for the workflow optimizer: each rule, and semantics preservation."""

import pytest

from repro.core import (
    InverseEuclidean,
    NumericCloseness,
    TextJaccard,
    Workflow,
    strategies,
)
from repro.core.operators import (
    Extend,
    Project,
    Recommend,
    Select,
    Source,
    TopK,
    extend,
)
from repro.core.optimizer import describe_rewrites, optimize


def students_with_ratings():
    return extend(
        Source("Students"), "ratings", "Comments", "SuID", "SuID",
        "Rating", "CourseID",
    )


def assert_same_output(flexdb, before: Workflow, after: Workflow):
    left = before.run(flexdb)
    right = after.run(flexdb)
    assert left.columns == right.columns
    assert len(left) == len(right)
    for a, b in zip(left.rows, right.rows):
        for column in left.columns:
            if isinstance(a[column], float):
                assert a[column] == pytest.approx(b[column])
            else:
                assert a[column] == b[column]
    # The compiled path agrees too.
    sql_right = after.run_sql(flexdb)
    assert [r[left.columns[0]] for r in right.rows] == [
        r[left.columns[0]] for r in sql_right.rows
    ]


class TestRule1SelectMerge:
    def test_adjacent_selects_merge(self, flexdb):
        workflow = Workflow(
            Select(Select(Source("Students"), "GPA > 3.0"), "Class = 2010")
        )
        optimized = optimize(workflow, flexdb)
        root = optimized.root
        assert isinstance(root, Select)
        assert isinstance(root.child, Source)
        assert "AND" in root.condition
        assert_same_output(flexdb, workflow, optimized)


class TestRule2SelectBelowExtend:
    def test_select_pushes_below_extend(self, flexdb):
        workflow = Workflow(
            Select(students_with_ratings(), "SuID = 444")
        )
        optimized = optimize(workflow, flexdb)
        assert isinstance(optimized.root, Extend)
        assert isinstance(optimized.root.child, Select)
        assert_same_output(flexdb, workflow, optimized)

    def test_extend_metadata_preserved(self, flexdb):
        workflow = Workflow(Select(students_with_ratings(), "SuID = 444"))
        optimized = optimize(workflow, flexdb)
        infos = optimized.root.extend_infos(flexdb)
        assert [info.attribute for info in infos] == ["ratings"]


class TestRule3SelectBelowProject:
    def test_pushes_when_columns_survive(self, flexdb):
        workflow = Workflow(
            Select(Project(Source("Students"), ("SuID", "GPA")), "GPA > 3.0")
        )
        optimized = optimize(workflow, flexdb)
        assert isinstance(optimized.root, Project)
        assert isinstance(optimized.root.child, Select)
        assert_same_output(flexdb, workflow, optimized)

    def test_blocked_when_column_projected_away(self, flexdb):
        workflow = Workflow(
            Select(Project(Source("Students"), ("SuID", "GPA")), "SuID > 0")
        )
        # "SuID" survives, push ok; but "Name" would not:
        blocked = Workflow(
            Select(Project(Source("Students"), ("SuID",)), "SuID > 0")
        )
        optimized = optimize(blocked, flexdb)
        assert isinstance(optimized.root, Project)

    def test_blocked_on_distinct(self, flexdb):
        # Pushing a filter below DISTINCT is safe for equality-preserving
        # predicates but we stay conservative: no rewrite.
        workflow = Workflow(
            Select(
                Project(Source("Students"), ("Major",), distinct=True),
                "Major = 'Computer Science'",
            )
        )
        optimized = optimize(workflow, flexdb)
        assert isinstance(optimized.root, Select)
        assert_same_output(flexdb, workflow, optimized)


class TestRule4SelectIntoRecommendTarget:
    def recommend(self, top_k=None):
        return Recommend(
            target=Source("Courses"),
            reference=Select(Source("Courses"), "CourseID = 1"),
            comparator=TextJaccard("Title", "Title"),
            target_key="CourseID",
            top_k=top_k,
            exclude_self=("CourseID", "CourseID"),
        )

    def test_pushes_target_only_predicate(self, flexdb):
        workflow = Workflow(Select(self.recommend(), "Units >= 4"))
        optimized = optimize(workflow, flexdb)
        assert isinstance(optimized.root, Recommend)
        assert isinstance(optimized.root.target, Select)
        assert_same_output(flexdb, workflow, optimized)

    def test_blocked_when_score_referenced(self, flexdb):
        workflow = Workflow(Select(self.recommend(), "score > 0.2"))
        optimized = optimize(workflow, flexdb)
        assert isinstance(optimized.root, Select)
        assert_same_output(flexdb, workflow, optimized)

    def test_blocked_when_top_k_set(self, flexdb):
        # Filtering before a top-k cut changes which rows survive the cut.
        workflow = Workflow(Select(self.recommend(top_k=2), "Units >= 4"))
        optimized = optimize(workflow, flexdb)
        assert isinstance(optimized.root, Select)
        assert_same_output(flexdb, workflow, optimized)


class TestRule5TopKFusion:
    def test_topk_by_score_fuses(self, flexdb):
        workflow = Workflow(
            TopK(
                Recommend(
                    target=Source("Students"),
                    reference=Source("Students"),
                    comparator=NumericCloseness("GPA", "GPA"),
                    target_key="SuID",
                ),
                3,
                "score",
            )
        )
        optimized = optimize(workflow, flexdb)
        assert isinstance(optimized.root, Recommend)
        assert optimized.root.top_k == 3
        assert_same_output(flexdb, workflow, optimized)

    def test_fusion_takes_minimum(self, flexdb):
        workflow = Workflow(
            TopK(
                Recommend(
                    target=Source("Students"),
                    reference=Source("Students"),
                    comparator=NumericCloseness("GPA", "GPA"),
                    target_key="SuID",
                    top_k=2,
                ),
                5,
                "score",
            )
        )
        optimized = optimize(workflow, flexdb)
        assert optimized.root.top_k == 2

    def test_ascending_topk_not_fused(self, flexdb):
        workflow = Workflow(
            TopK(
                Recommend(
                    target=Source("Students"),
                    reference=Source("Students"),
                    comparator=NumericCloseness("GPA", "GPA"),
                    target_key="SuID",
                ),
                3,
                "score",
                descending=False,
            )
        )
        optimized = optimize(workflow, flexdb)
        assert isinstance(optimized.root, TopK)
        assert_same_output(flexdb, workflow, optimized)

    def test_topk_by_other_column_not_fused(self, flexdb):
        workflow = Workflow(
            TopK(
                Recommend(
                    target=Source("Students"),
                    reference=Source("Students"),
                    comparator=NumericCloseness("GPA", "GPA"),
                    target_key="SuID",
                ),
                3,
                "GPA",
            )
        )
        optimized = optimize(workflow, flexdb)
        assert isinstance(optimized.root, TopK)


class TestEndToEnd:
    def test_combined_rules_on_stacked_workflow(self, flexdb):
        inner = strategies.collaborative_filtering(
            444, similar_students=2, top_k=None
        )
        workflow = Workflow(TopK(Select(inner.root, "Units >= 4"), 2, "score"))
        optimized = optimize(workflow, flexdb)
        # TopK fused, Select pushed into the target.
        assert isinstance(optimized.root, Recommend)
        assert optimized.root.top_k == 2
        assert isinstance(optimized.root.target, Select)
        assert_same_output(flexdb, workflow, optimized)

    def test_prebuilt_strategies_are_fixpoints_or_improve(self, flexdb):
        for workflow in (
            strategies.related_courses(1, top_k=5),
            strategies.collaborative_filtering(444, similar_students=2),
            strategies.recommended_majors(444),
        ):
            optimized = optimize(workflow, flexdb)
            key = workflow.run(flexdb).columns[0]
            assert (
                optimized.run(flexdb).column(key)
                == workflow.run(flexdb).column(key)
            )

    def test_describe_rewrites(self, flexdb):
        workflow = Workflow(
            Select(Select(Source("Students"), "GPA > 3.0"), "Class = 2010")
        )
        lines = describe_rewrites(workflow, flexdb)
        text = "\n".join(lines)
        assert "before:" in text and "after:" in text

    def test_optimize_is_idempotent(self, flexdb):
        workflow = Workflow(
            TopK(
                Select(students_with_ratings(), "GPA > 3.0"),
                3,
                "GPA",
            )
        )
        once = optimize(workflow, flexdb)
        twice = optimize(once, flexdb)
        assert once.explain() == twice.explain()


class TestRandomizedPreservation:
    """Hypothesis: the rewrite rules never change a workflow's output."""

    import pytest as _pytest

    from hypothesis import HealthCheck as _HealthCheck
    from hypothesis import given as _given, settings as _settings
    from hypothesis import strategies as _st

    PREDICATES = [
        "Units >= 4",
        "Units = 3",
        "DepID = 1",
        "Title LIKE '%Programming%'",
        "Units > 2 AND DepID = 1",
        "score > 0.1",
        "Units >= 4 OR DepID = 2",
    ]

    # The workflow only reads flexdb, so fixture reuse across generated
    # inputs is safe.
    @_settings(
        suppress_health_check=[_HealthCheck.function_scoped_fixture],
    )
    @_given(
        predicate=_st.sampled_from(PREDICATES),
        k=_st.integers(min_value=1, max_value=6),
        wrap_topk=_st.booleans(),
    )
    def test_random_wrappers_preserved(self, flexdb, predicate, k, wrap_topk):
        inner = Recommend(
            target=Source("Courses"),
            reference=Select(Source("Courses"), "CourseID = 1"),
            comparator=TextJaccard("Title", "Title"),
            target_key="CourseID",
            exclude_self=("CourseID", "CourseID"),
        )
        root = Select(inner, predicate)
        if wrap_topk:
            root = TopK(root, k, "score")
        workflow = Workflow(root)
        optimized = optimize(workflow, flexdb)
        left = workflow.run(flexdb)
        right = optimized.run(flexdb)
        assert left.column("CourseID") == right.column("CourseID")
        for a, b in zip(left.rows, right.rows):
            assert a["score"] == pytest.approx(b["score"])
        # The compiled path of the optimized tree agrees too.
        compiled = optimized.run_sql(flexdb)
        assert left.column("CourseID") == compiled.column("CourseID")
