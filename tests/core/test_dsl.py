"""Tests for the textual workflow language."""

import pytest

from repro.errors import FlexRecsError
from repro.core.dsl import parse_workflow
from repro.core.operators import (
    Extend,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
)

CF_TEXT = """
source Courses
| recommend against (
    source Students
    | extend ratings from Comments key SuID = SuID map CourseID value Rating
    | filter [SuID = 444]
  ) using vector_lookup(CourseID, ratings) key CourseID agg avg top 10
"""


class TestStageParsing:
    def test_source(self):
        workflow = parse_workflow("source Students")
        assert isinstance(workflow.root, Source)
        assert workflow.root.table == "Students"

    def test_sql_source(self):
        workflow = parse_workflow("sql [SELECT SuID FROM Students]")
        assert isinstance(workflow.root, SqlSource)
        assert workflow.root.sql == "SELECT SuID FROM Students"

    def test_filter(self):
        workflow = parse_workflow("source Students | filter [GPA > 3.0]")
        assert isinstance(workflow.root, Select)
        assert workflow.root.condition == "GPA > 3.0"

    def test_project(self):
        workflow = parse_workflow("source Students | project SuID, GPA")
        assert isinstance(workflow.root, Project)
        assert workflow.root.columns == ("SuID", "GPA")
        assert not workflow.root.distinct

    def test_project_distinct(self):
        workflow = parse_workflow("source Students | project distinct Major")
        assert workflow.root.distinct

    def test_extend_vector(self):
        workflow = parse_workflow(
            "source Students | extend ratings from Comments "
            "key SuID = SuID map CourseID value Rating"
        )
        info = workflow.root.info
        assert info.attribute == "ratings"
        assert info.map_column == "CourseID"
        assert info.is_vector

    def test_extend_set(self):
        workflow = parse_workflow(
            "source Students | extend taken from Enrollments "
            "key SuID = SuID value CourseID"
        )
        assert not workflow.root.info.is_vector

    def test_topk(self):
        workflow = parse_workflow("source Students | topk 5 by GPA")
        assert isinstance(workflow.root, TopK)
        assert workflow.root.k == 5
        assert workflow.root.descending

    def test_topk_ascending(self):
        workflow = parse_workflow("source Students | topk 5 by GPA asc")
        assert not workflow.root.descending

    def test_parenthesized_pipeline_head(self):
        workflow = parse_workflow("( source Students | filter [GPA > 3] )")
        assert isinstance(workflow.root, Select)


class TestRecommendParsing:
    def test_full_recommend(self):
        workflow = parse_workflow(CF_TEXT)
        root = workflow.root
        assert isinstance(root, Recommend)
        assert root.comparator.name == "vector_lookup"
        assert root.aggregate == "avg"
        assert root.top_k == 10
        assert root.target_key == "CourseID"
        assert isinstance(root.reference, Select)

    def test_comparator_parameters(self):
        workflow = parse_workflow(
            "source Students | recommend against (source Students) "
            "using numeric_closeness(GPA, GPA, scale=0.5) key SuID"
        )
        assert workflow.root.comparator.scale == 0.5

    def test_exclude_clause(self):
        workflow = parse_workflow(
            "source Students | recommend against (source Students) "
            "using numeric_closeness(GPA, GPA) key SuID exclude SuID = SuID"
        )
        assert workflow.root.exclude_self == ("SuID", "SuID")

    def test_score_column_option(self):
        workflow = parse_workflow(
            "source Students | recommend against (source Students) "
            "using numeric_closeness(GPA, GPA) key SuID score sim"
        )
        assert workflow.root.score_column == "sim"

    def test_stacked_recommends(self):
        text = """
        source Courses
        | recommend against (
            source Students
            | extend ratings from Comments key SuID = SuID map CourseID value Rating
            | recommend against (
                source Students
                | extend ratings from Comments key SuID = SuID map CourseID value Rating
                | filter [SuID = 444]
              ) using inverse_euclidean(ratings, ratings) key SuID score sim top 5
          ) using vector_lookup(CourseID, ratings) key CourseID agg avg top 10
        """
        workflow = parse_workflow(text)
        assert isinstance(workflow.root, Recommend)
        assert isinstance(workflow.root.reference, Recommend)


class TestExecution:
    def test_dsl_workflow_runs_both_paths(self, flexdb):
        workflow = parse_workflow(CF_TEXT)
        direct = workflow.run(flexdb)
        compiled = workflow.run_sql(flexdb)
        assert direct.column("CourseID") == compiled.column("CourseID")
        assert len(direct) > 0

    def test_equivalent_to_python_strategy(self, flexdb):
        from repro.core import strategies

        text = """
        source Students
        | recommend against ( source Students | filter [SuID = 444] )
          using numeric_closeness(GPA, GPA, scale=0.5) key SuID
          top 20 exclude SuID = SuID
        """
        dsl_result = parse_workflow(text).run(flexdb)
        python_result = strategies.similar_grade_students(444, top_k=20).run(flexdb)
        assert dsl_result.column("SuID") == python_result.column("SuID")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "filter [x = 1]",  # no upstream
            "source Students | source Courses",  # source mid-pipeline
            "source Students | filter",  # missing predicate
            "source Students | filter []",  # empty predicate
            "source Students | project",  # missing columns
            "source Students | topk x by GPA",  # non-numeric k
            "source Students | nonsense",
            "source Students | recommend using x(a, b) key SuID",  # no against
            "source Students | recommend against (source S) "
            "using nope(a, b) key SuID",  # unknown comparator
            "source Students extra",  # trailing garbage
            "source Students | recommend against (source S) "
            "using numeric_closeness(GPA, GPA, scale=abc) key SuID",
        ],
    )
    def test_bad_workflows_rejected(self, bad):
        with pytest.raises(FlexRecsError):
            parse_workflow(bad)


class TestServiceRegistration:
    def test_register_dsl_with_placeholders(self, flexdb):
        from repro.courserank.recommendations import RecommendationService

        service = RecommendationService(flexdb)
        service.register_dsl(
            "buddies",
            "source Students | recommend against "
            "( source Students | filter [SuID = {student_id}] ) "
            "using numeric_closeness(GPA, GPA) key SuID top {top_k} "
            "exclude SuID = SuID",
        )
        result = service.run("buddies", student_id=444, top_k=2)
        assert len(result) == 2
        assert result.rows[0]["SuID"] == 445

    def test_register_dsl_validates_syntax_eagerly(self, flexdb):
        from repro.courserank.recommendations import RecommendationService

        service = RecommendationService(flexdb)
        with pytest.raises(FlexRecsError):
            service.register_dsl("broken", "source Students | nonsense")

    def test_staged_and_optimized_paths_via_service(self, flexdb):
        from repro.courserank.recommendations import RecommendationService

        service = RecommendationService(flexdb)
        base = service.run(
            "collaborative_filtering", student_id=444,
            similar_students=2, top_k=5, path="direct",
        )
        staged = service.run(
            "collaborative_filtering", student_id=444,
            similar_students=2, top_k=5, path="staged",
        )
        optimized = service.run(
            "collaborative_filtering", student_id=444,
            similar_students=2, top_k=5, path="sql", optimize=True,
        )
        assert base.column("CourseID") == staged.column("CourseID")
        assert base.column("CourseID") == optimized.column("CourseID")
