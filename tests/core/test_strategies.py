"""Tests for the prebuilt strategies against the hand-built dataset."""

import pytest

from repro.core import strategies


class TestRelatedCourses:
    def test_title_similarity_ranking(self, flexdb):
        workflow = strategies.related_courses(1, top_k=10)
        result = workflow.run(flexdb)
        ids = result.column("CourseID")
        assert 1 not in ids
        # "Introduction to American Studies" and the Programming courses
        # share title words with "Introduction to Programming".
        assert set(ids[:3]) == {2, 3, 5}

    def test_offered_year_filter(self, flexdb):
        # Only courses 1 and 6 are offered in 2009.
        workflow = strategies.related_courses(2, offered_year=2009)
        result = workflow.run(flexdb)
        assert set(result.column("CourseID")) <= {1, 6}

    def test_both_paths(self, flexdb):
        workflow = strategies.related_courses(1, top_k=5)
        assert (
            workflow.run(flexdb).as_tuples("CourseID")
            == workflow.run_sql(flexdb).as_tuples("CourseID")
        )


class TestCollaborativeFiltering:
    def test_neighbour_ratings_drive_scores(self, flexdb):
        workflow = strategies.collaborative_filtering(
            444, similar_students=1, top_k=10
        )
        result = workflow.run(flexdb)
        scores = {row["CourseID"]: row["score"] for row in result.rows}
        # 445 is the only neighbour; scores are 445's ratings.
        assert scores[6] == pytest.approx(5.0)
        assert scores[3] == pytest.approx(4.5)

    def test_paths_agree(self, flexdb):
        workflow = strategies.collaborative_filtering(444, similar_students=2)
        direct = workflow.run(flexdb).as_tuples("CourseID")
        compiled = workflow.run_sql(flexdb).as_tuples("CourseID")
        assert direct == compiled


class TestOtherStrategies:
    def test_similar_grade_students(self, flexdb):
        result = strategies.similar_grade_students(444, top_k=2).run(flexdb)
        assert result.rows[0]["SuID"] == 445

    def test_grade_based_filtering_runs(self, flexdb):
        result = strategies.grade_based_filtering(
            444, similar_students=2, top_k=5
        ).run(flexdb)
        assert len(result) > 0

    def test_pearson_neighbours(self, flexdb):
        result = strategies.similar_students_pearson(445, top_k=3).run(flexdb)
        suids = result.column("SuID")
        assert 445 not in suids
        # 444 agrees with 445 on courses 1,2; 446 disagrees (negative r).
        scores = {row["SuID"]: row["score"] for row in result.rows}
        if 444 in scores and 446 in scores:
            assert scores[444] > scores[446]

    def test_recommended_majors(self, flexdb):
        result = strategies.recommended_majors(444, top_k=2).run(flexdb)
        # 444 took only CS courses: CS department must rank first.
        assert result.rows[0]["DepID"] == 1

    def test_recommended_quarters(self, flexdb):
        result = strategies.recommended_quarters(1).run(flexdb)
        scores = {row["Term"]: row["score"] for row in result.rows}
        # Course 1 enrollments all happened in Autumn.
        assert scores["Aut"] == max(scores.values())

    def test_courses_taken_together(self, flexdb):
        result = strategies.courses_taken_together(1, top_k=5).run(flexdb)
        ids = result.column("CourseID")
        assert 1 not in ids
        assert 2 in ids  # 444 and 445 took 1 and 2 together

    @pytest.mark.parametrize(
        "factory,kwargs",
        [
            (strategies.related_courses, {"course_id": 1}),
            (strategies.collaborative_filtering, {"student_id": 444}),
            (strategies.similar_grade_students, {"student_id": 444}),
            (strategies.grade_based_filtering, {"student_id": 444}),
            (strategies.similar_students_pearson, {"student_id": 445}),
            (strategies.recommended_majors, {"student_id": 444}),
            (strategies.recommended_quarters, {"course_id": 1}),
            (strategies.courses_taken_together, {"course_id": 1}),
        ],
    )
    def test_every_strategy_dual_path(self, flexdb, factory, kwargs):
        workflow = factory(**kwargs)
        direct = workflow.run(flexdb)
        compiled = workflow.run_sql(flexdb)
        assert direct.columns == compiled.columns
        assert len(direct) == len(compiled)
        key = direct.columns[0]
        assert direct.column(key) == compiled.column(key)


class TestFreshCoursesStrategy:
    def test_taken_courses_excluded_in_engine(self, flexdb):
        workflow = strategies.collaborative_filtering_fresh(
            444, similar_students=2, top_k=10
        )
        result = workflow.run(flexdb)
        taken = {1, 2}  # 444's enrollments in the fixture
        assert not taken & set(result.column("CourseID"))

    def test_matches_plain_cf_minus_taken(self, flexdb):
        fresh = strategies.collaborative_filtering_fresh(
            444, similar_students=2, top_k=50
        ).run(flexdb)
        plain = strategies.collaborative_filtering(
            444, similar_students=2, top_k=50
        ).run(flexdb)
        taken = {1, 2}
        expected = [c for c in plain.column("CourseID") if c not in taken]
        assert fresh.column("CourseID") == expected

    def test_dual_path(self, flexdb):
        workflow = strategies.collaborative_filtering_fresh(
            444, similar_students=2, top_k=10
        )
        assert (
            workflow.run(flexdb).column("CourseID")
            == workflow.run_sql(flexdb).column("CourseID")
        )

    def test_staged_path(self, flexdb):
        from repro.core.staged import run_staged

        workflow = strategies.collaborative_filtering_fresh(
            444, similar_students=2, top_k=10
        )
        assert (
            run_staged(workflow, flexdb).column("CourseID")
            == workflow.run(flexdb).column("CourseID")
        )
