"""Tests for the direct (in-memory) workflow executor."""

import pytest

from repro.core import (
    CommonCount,
    EqualityMatch,
    InverseEuclidean,
    NumericCloseness,
    PearsonCorrelation,
    SetJaccard,
    TextJaccard,
    VectorLookup,
    Workflow,
)
from repro.core.operators import (
    Join,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
    extend,
)


def run(flexdb, root):
    return Workflow(root).run(flexdb)


class TestRelationalOperators:
    def test_source(self, flexdb):
        result = run(flexdb, Source("Students"))
        assert len(result) == 4
        assert result.columns == ["SuID", "Name", "Class", "Major", "GPA"]

    def test_sql_source(self, flexdb):
        result = run(flexdb, SqlSource("SELECT SuID FROM Students WHERE GPA > 3.5"))
        assert sorted(result.column("SuID")) == [444, 445]

    def test_select(self, flexdb):
        result = run(flexdb, Select(Source("Students"), "Major = 'History'"))
        assert result.column("SuID") == [446]

    def test_select_with_function(self, flexdb):
        result = run(
            flexdb, Select(Source("Students"), "LOWER(Name) LIKE 's%'")
        )
        assert result.column("Name") == ["Sally"]

    def test_project(self, flexdb):
        result = run(flexdb, Project(Source("Students"), ("Name",)))
        assert result.columns == ["Name"]

    def test_project_distinct(self, flexdb):
        result = run(
            flexdb, Project(Source("Students"), ("Major",), distinct=True)
        )
        assert sorted(result.column("Major")) == ["Computer Science", "History"]

    def test_join(self, flexdb):
        root = Join(
            Project(Source("Students"), ("SuID", "Name")),
            Project(Source("Enrollments"), ("CourseID", "Grade")),
            left_on="SuID",
            right_on="CourseID",
        )
        # No enrollment has CourseID in the 444-447 range: empty join.
        assert len(run(flexdb, root)) == 0

    def test_join_matches(self, flexdb):
        root = Join(
            Project(Source("Courses"), ("CourseID", "Title")),
            Project(
                Select(Source("Enrollments"), "SuID = 444"),
                ("SuID", "Grade", "CourseID"),
            ),
            left_on="CourseID",
            right_on="CourseID",
        )
        with pytest.raises(Exception):
            # CourseID collides across sides -> validation error.
            run(flexdb, root)

    def test_topk(self, flexdb):
        result = run(flexdb, TopK(Source("Students"), 2, "GPA"))
        assert result.column("SuID") == [444, 445]

    def test_topk_ascending(self, flexdb):
        result = run(
            flexdb, TopK(Source("Students"), 1, "GPA", descending=False)
        )
        assert result.column("SuID") == [447]


class TestRecommendDirect:
    def test_figure_5a_related_courses(self, flexdb):
        root = Recommend(
            target=Source("Courses"),
            reference=Select(Source("Courses"), "CourseID = 1"),
            comparator=TextJaccard("Title", "Title"),
            target_key="CourseID",
            exclude_self=("CourseID", "CourseID"),
        )
        result = run(flexdb, root)
        ids = result.column("CourseID")
        assert 1 not in ids  # excluded itself
        # Courses sharing "Programming" or "Introduction" rank first.
        assert set(ids[:3]) == {2, 3, 5}

    def test_inverse_euclidean_neighbours(self, flexdb):
        everyone = extend(
            Source("Students"), "ratings", "Comments", "SuID", "SuID",
            "Rating", "CourseID",
        )
        me = Select(
            extend(
                Source("Students"), "ratings", "Comments", "SuID", "SuID",
                "Rating", "CourseID",
            ),
            "SuID = 444",
        )
        root = Recommend(
            target=everyone,
            reference=me,
            comparator=InverseEuclidean("ratings", "ratings"),
            target_key="SuID",
            exclude_self=("SuID", "SuID"),
        )
        result = run(flexdb, root)
        # 445 rated courses 1,2 identically to 444 -> similarity 1.0 tops.
        assert result.rows[0]["SuID"] == 445
        assert result.rows[0]["score"] == pytest.approx(1.0)
        # 447 shares no rated course with 444 -> dropped.
        assert 447 not in result.column("SuID")

    def test_lookup_average_rating(self, flexdb):
        reference = Select(
            extend(
                Source("Students"), "ratings", "Comments", "SuID", "SuID",
                "Rating", "CourseID",
            ),
            "SuID IN (444, 445)",
        )
        root = Recommend(
            target=Source("Courses"),
            reference=reference,
            comparator=VectorLookup("CourseID", "ratings"),
            target_key="CourseID",
            aggregate="avg",
        )
        result = run(flexdb, root)
        scores = {row["CourseID"]: row["score"] for row in result.rows}
        assert scores[1] == pytest.approx(5.0)  # both rated 5.0
        assert scores[2] == pytest.approx(4.0)
        assert scores[3] == pytest.approx(4.5)  # only 445 rated it
        assert 4 not in scores  # nobody in the reference rated course 4

    def test_set_comparator(self, flexdb):
        courses_with_takers = extend(
            Source("Courses"), "takers", "Enrollments", "CourseID",
            "CourseID", "SuID",
        )
        course_one = Select(
            extend(
                Source("Courses"), "takers", "Enrollments", "CourseID",
                "CourseID", "SuID",
            ),
            "CourseID = 1",
        )
        root = Recommend(
            target=courses_with_takers,
            reference=course_one,
            comparator=CommonCount("takers", "takers"),
            target_key="CourseID",
            exclude_self=("CourseID", "CourseID"),
        )
        result = run(flexdb, root)
        scores = {row["CourseID"]: row["score"] for row in result.rows}
        # Course 2 taken by 444 and 445, both of whom took course 1.
        assert scores[2] == 2.0
        # Course 4 taken only by 446 who took course 1 too.
        assert scores[4] == 1.0

    def test_aggregates(self, flexdb):
        reference = Select(Source("Students"), "Major = 'Computer Science'")
        base = dict(
            target=Source("Students"),
            reference=reference,
            comparator=NumericCloseness("GPA", "GPA"),
            target_key="SuID",
        )
        max_result = run(flexdb, Recommend(aggregate="max", **base))
        avg_result = run(flexdb, Recommend(aggregate="avg", **base))
        count_result = run(flexdb, Recommend(aggregate="count", **base))
        suid = 446
        max_score = {r["SuID"]: r["score"] for r in max_result.rows}[suid]
        avg_score = {r["SuID"]: r["score"] for r in avg_result.rows}[suid]
        count_score = {r["SuID"]: r["score"] for r in count_result.rows}[suid]
        assert max_score >= avg_score
        assert count_score == 3

    def test_top_k_applied(self, flexdb):
        root = Recommend(
            target=Source("Students"),
            reference=Select(Source("Students"), "SuID = 444"),
            comparator=NumericCloseness("GPA", "GPA"),
            target_key="SuID",
            top_k=2,
            exclude_self=("SuID", "SuID"),
        )
        result = run(flexdb, root)
        assert len(result) == 2
        assert result.rows[0]["SuID"] == 445  # GPA 3.65 closest to 3.7

    def test_empty_reference_drops_all(self, flexdb):
        root = Recommend(
            target=Source("Students"),
            reference=Select(Source("Students"), "SuID = 99999"),
            comparator=NumericCloseness("GPA", "GPA"),
            target_key="SuID",
        )
        assert len(run(flexdb, root)) == 0

    def test_deterministic_tie_order(self, flexdb):
        root = Recommend(
            target=Source("Courses"),
            reference=Select(Source("Courses"), "CourseID = 6"),
            comparator=EqualityMatch("Units", "Units"),
            target_key="CourseID",
        )
        first = run(flexdb, root).column("CourseID")
        second = run(flexdb, root).column("CourseID")
        assert first == second
        # Ties (score 1.0 for all 4-unit courses) break by ascending key.
        tied = [cid for cid, row in zip(first, run(flexdb, root).rows)
                if row["score"] == 1.0]
        assert tied == sorted(tied)


class TestRecommendationResult:
    def test_column_accessor(self, flexdb):
        result = run(flexdb, Source("Students"))
        assert result.column("suid") == result.column("SuID")
        with pytest.raises(Exception):
            result.column("nope")

    def test_as_tuples(self, flexdb):
        result = run(flexdb, Project(Source("Students"), ("SuID", "GPA")))
        tuples = result.as_tuples("SuID", "GPA")
        assert tuples[0] == (444, 3.7)

    def test_stripped_extend_attrs(self, flexdb):
        extended = extend(
            Source("Students"), "ratings", "Comments", "SuID", "SuID",
            "Rating", "CourseID",
        )
        result = run(flexdb, extended)
        assert "ratings" not in result.rows[0]
