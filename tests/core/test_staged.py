"""Tests for staged compilation (the sequence-of-SQL-calls form)."""

import pytest

from repro.core import (
    InverseEuclidean,
    NumericCloseness,
    VectorLookup,
    Workflow,
    strategies,
)
from repro.core.operators import (
    Join,
    MaterializedSource,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
    extend,
)
from repro.core.staged import (
    compile_workflow_staged,
    operator_schema,
    run_staged,
)
from repro.minidb.types import DataType


class TestOperatorSchema:
    def test_source_schema(self, flexdb):
        schema = operator_schema(Source("Students"), flexdb)
        assert schema[0] == ("SuID", DataType.INTEGER)
        assert ("GPA", DataType.FLOAT) in schema

    def test_select_topk_extend_passthrough(self, flexdb):
        base = operator_schema(Source("Students"), flexdb)
        assert operator_schema(
            Select(Source("Students"), "GPA > 3"), flexdb
        ) == base
        assert operator_schema(TopK(Source("Students"), 2, "GPA"), flexdb) == base
        extended = extend(
            Source("Students"), "ratings", "Comments", "SuID", "SuID",
            "Rating", "CourseID",
        )
        assert operator_schema(extended, flexdb) == base

    def test_project_subsets(self, flexdb):
        schema = operator_schema(
            Project(Source("Students"), ("SuID", "GPA")), flexdb
        )
        assert schema == [("SuID", DataType.INTEGER), ("GPA", DataType.FLOAT)]

    def test_join_concatenates(self, flexdb):
        node = Join(
            Project(Source("Students"), ("SuID",)),
            Project(Source("Courses"), ("CourseID", "Units")),
            "SuID",
            "CourseID",
        )
        schema = operator_schema(node, flexdb)
        assert [name for name, _t in schema] == ["SuID", "CourseID", "Units"]

    def test_recommend_appends_score_type(self, flexdb):
        node = Recommend(
            target=Source("Students"),
            reference=Source("Students"),
            comparator=NumericCloseness("GPA", "GPA"),
            target_key="SuID",
        )
        assert operator_schema(node, flexdb)[-1] == ("score", DataType.FLOAT)
        counted = Recommend(
            target=Source("Students"),
            reference=Source("Students"),
            comparator=NumericCloseness("GPA", "GPA"),
            target_key="SuID",
            aggregate="count",
        )
        assert operator_schema(counted, flexdb)[-1] == ("score", DataType.INTEGER)

    def test_sql_source_probed(self, flexdb):
        node = SqlSource("SELECT SuID, GPA * 2 AS double_gpa FROM Students")
        schema = operator_schema(node, flexdb)
        assert schema == [
            ("SuID", DataType.INTEGER),
            ("double_gpa", DataType.FLOAT),
        ]

    def test_sql_source_all_null_falls_back_to_text(self, flexdb):
        node = SqlSource("SELECT NULL AS nothing FROM Students")
        schema = operator_schema(node, flexdb)
        assert schema == [("nothing", DataType.TEXT)]

    def test_materialized_source_schema(self, flexdb):
        node = MaterializedSource(
            "tmp", (("a", DataType.INTEGER), ("b", DataType.TEXT))
        )
        assert operator_schema(node, flexdb) == [
            ("a", DataType.INTEGER),
            ("b", DataType.TEXT),
        ]


class TestStagedCompilation:
    def test_single_recommend_two_stages(self, flexdb):
        workflow = strategies.similar_grade_students(444, top_k=3)
        staged = compile_workflow_staged(workflow, flexdb)
        # One CREATE + one INSERT + final SELECT.
        assert staged.statement_count == 3
        assert staged.stages[0].startswith("CREATE TABLE __frx_stage_")
        assert staged.stages[1].startswith("INSERT INTO __frx_stage_")

    def test_stacked_recommends_four_stages(self, flexdb):
        workflow = strategies.collaborative_filtering(444, similar_students=2)
        staged = compile_workflow_staged(workflow, flexdb)
        assert len(staged.temp_tables) == 2
        assert staged.statement_count == 5

    def test_staged_matches_direct(self, flexdb):
        workflow = strategies.collaborative_filtering(
            444, similar_students=2, top_k=5
        )
        staged_result = run_staged(workflow, flexdb)
        direct = workflow.run(flexdb)
        assert staged_result.columns == direct.columns
        assert len(staged_result) == len(direct)
        for left, right in zip(staged_result.rows, direct.rows):
            assert left["CourseID"] == right["CourseID"]
            assert left["score"] == pytest.approx(right["score"])

    def test_temp_tables_cleaned_up(self, flexdb):
        workflow = strategies.collaborative_filtering(444, similar_students=2)
        staged = compile_workflow_staged(workflow, flexdb)
        staged.run(flexdb)
        for table_name in staged.temp_tables:
            assert not flexdb.has_table(table_name)

    def test_temp_tables_cleaned_up_on_error(self, flexdb):
        workflow = strategies.similar_grade_students(444)
        staged = compile_workflow_staged(workflow, flexdb)
        # Sabotage the final select.
        staged.final_select = "SELECT * FROM no_such_table"
        with pytest.raises(Exception):
            staged.run(flexdb)
        for table_name in staged.temp_tables:
            assert not flexdb.has_table(table_name)

    def test_script_rendering(self, flexdb):
        workflow = strategies.similar_grade_students(444)
        staged = compile_workflow_staged(workflow, flexdb)
        script = staged.script()
        assert script.count(";") == staged.statement_count
        assert "CREATE TABLE" in script

    def test_every_strategy_staged_equals_direct(self, flexdb):
        cases = [
            strategies.related_courses(1, top_k=5),
            strategies.collaborative_filtering(444, similar_students=2, top_k=5),
            strategies.recommended_majors(444),
            strategies.courses_taken_together(1, top_k=5),
        ]
        for workflow in cases:
            direct = workflow.run(flexdb)
            staged_result = run_staged(workflow, flexdb)
            key = direct.columns[0]
            assert staged_result.column(key) == direct.column(key), workflow.name
