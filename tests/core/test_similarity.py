"""Unit + property tests for the similarity library."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import similarity as sim

vectors = st.dictionaries(
    st.integers(min_value=0, max_value=12),
    st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
    max_size=8,
)
sets = st.frozensets(st.integers(min_value=0, max_value=20), max_size=10)


class TestJaccard:
    def test_basic(self):
        assert sim.jaccard({1, 2, 3}, {2, 3, 4}) == 0.5

    def test_identical(self):
        assert sim.jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert sim.jaccard({1}, {2}) == 0.0

    def test_both_empty_undefined(self):
        assert sim.jaccard(set(), set()) is None

    @given(sets, sets)
    def test_symmetry_and_range(self, left, right):
        value = sim.jaccard(left, right)
        assert value == sim.jaccard(right, left)
        if value is not None:
            assert 0.0 <= value <= 1.0


class TestOverlapAndCommon:
    def test_overlap_coefficient(self):
        assert sim.overlap_coefficient({1, 2}, {1, 2, 3, 4}) == 1.0

    def test_overlap_empty_side(self):
        assert sim.overlap_coefficient(set(), {1}) is None

    def test_common_count(self):
        assert sim.common_count({1, 2, 3}, {2, 3}) == 2.0
        assert sim.common_count({1}, {2}) is None


class TestInverseEuclidean:
    def test_identical_vectors(self):
        assert sim.inverse_euclidean({1: 5.0, 2: 3.0}, {1: 5.0, 2: 3.0}) == 1.0

    def test_known_distance(self):
        value = sim.inverse_euclidean({1: 1.0}, {1: 4.0})
        assert value == pytest.approx(1.0 / 4.0)

    def test_no_corated_undefined(self):
        assert sim.inverse_euclidean({1: 1.0}, {2: 1.0}) is None

    def test_uses_corated_only(self):
        value = sim.inverse_euclidean({1: 2.0, 9: 5.0}, {1: 2.0, 8: 1.0})
        assert value == 1.0

    @given(vectors, vectors)
    def test_symmetric_and_bounded(self, left, right):
        value = sim.inverse_euclidean(left, right)
        mirrored = sim.inverse_euclidean(right, left)
        if value is None:
            assert mirrored is None
        else:
            assert value == pytest.approx(mirrored)
            assert 0.0 < value <= 1.0


class TestPearson:
    def test_perfect_positive(self):
        left = {1: 1.0, 2: 2.0, 3: 3.0}
        right = {1: 2.0, 2: 4.0, 3: 6.0}
        assert sim.pearson(left, right) == pytest.approx(1.0)

    def test_perfect_negative(self):
        left = {1: 1.0, 2: 2.0, 3: 3.0}
        right = {1: 3.0, 2: 2.0, 3: 1.0}
        assert sim.pearson(left, right) == pytest.approx(-1.0)

    def test_single_corated_undefined(self):
        assert sim.pearson({1: 2.0}, {1: 2.0}) is None

    def test_zero_variance_undefined(self):
        assert sim.pearson({1: 3.0, 2: 3.0}, {1: 1.0, 2: 5.0}) is None

    @given(vectors, vectors)
    def test_bounded(self, left, right):
        value = sim.pearson(left, right)
        if value is not None:
            assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestCosine:
    def test_identical_direction(self):
        assert sim.cosine({1: 2.0, 2: 4.0}, {1: 1.0, 2: 2.0}) == pytest.approx(1.0)

    def test_no_overlap(self):
        assert sim.cosine({1: 1.0}, {2: 1.0}) is None

    @given(vectors, vectors)
    def test_bounded_positive_ratings(self, left, right):
        value = sim.cosine(left, right)
        if value is not None:
            assert 0.0 <= value <= 1.0 + 1e-9


class TestScalarMeasures:
    def test_numeric_closeness(self):
        assert sim.numeric_closeness(3.0, 3.0) == 1.0
        assert sim.numeric_closeness(3.0, 4.0) == 0.5
        assert sim.numeric_closeness(3.0, 4.0, scale=2.0) == pytest.approx(2 / 3)
        assert sim.numeric_closeness(None, 4.0) is None

    def test_equality_match(self):
        assert sim.equality_match("Aut", "Aut") == 1.0
        assert sim.equality_match("Aut", "Win") == 0.0
        assert sim.equality_match(None, "Aut") is None


class TestTextMeasures:
    def test_token_set(self):
        assert sim.token_set("Introduction to Programming!") == frozenset(
            {"introduction", "to", "programming"}
        )

    def test_text_jaccard(self):
        value = sim.text_jaccard(
            "Introduction to Programming", "Advanced Programming"
        )
        assert value == pytest.approx(1 / 4)

    def test_text_jaccard_null_inputs(self):
        assert sim.text_jaccard(None, "x y") is None
        assert sim.text_jaccard("", "x y") is None

    def test_levenshtein_distance(self):
        assert sim.levenshtein("kitten", "sitting") == 3
        assert sim.levenshtein("", "abc") == 3
        assert sim.levenshtein("same", "same") == 0

    def test_levenshtein_similarity(self):
        assert sim.levenshtein_similarity("abc", "abc") == 1.0
        assert sim.levenshtein_similarity("ABC", "abc") == 1.0
        assert sim.levenshtein_similarity(None, "x") is None

    @given(
        st.text(alphabet="abcd", max_size=8), st.text(alphabet="abcd", max_size=8)
    )
    def test_levenshtein_triangle_inequality(self, a, b):
        c = "abab"
        assert sim.levenshtein(a, b) <= sim.levenshtein(a, c) + sim.levenshtein(c, b)

    @given(st.text(alphabet="abcd", max_size=8), st.text(alphabet="abcd", max_size=8))
    def test_levenshtein_symmetric(self, a, b):
        assert sim.levenshtein(a, b) == sim.levenshtein(b, a)
