"""Shared fixtures: a compact CourseRank-schema database for FlexRecs tests."""

import pytest

from repro.minidb import Database


@pytest.fixture()
def flexdb():
    """A hand-built dataset with known similarity structure.

    Students 444 and 445 rate alike (CF neighbours); 446 rates opposite;
    447 overlaps nothing with 444.
    """
    db = Database()
    db.execute_script(
        """
        CREATE TABLE Departments (DepID INTEGER PRIMARY KEY, Name TEXT);
        CREATE TABLE Courses (CourseID INTEGER PRIMARY KEY, DepID INTEGER,
          Title TEXT, Description TEXT, Units INTEGER, Url TEXT,
          FOREIGN KEY (DepID) REFERENCES Departments (DepID));
        CREATE TABLE Students (SuID INTEGER PRIMARY KEY, Name TEXT,
          Class INTEGER, Major TEXT, GPA FLOAT);
        CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER, Year INTEGER,
          Term TEXT, Text TEXT, Rating FLOAT, CommentDate DATE,
          PRIMARY KEY (SuID, CourseID));
        CREATE TABLE Enrollments (SuID INTEGER, CourseID INTEGER,
          Year INTEGER, Term TEXT, Grade TEXT,
          PRIMARY KEY (SuID, CourseID));
        CREATE TABLE Offerings (CourseID INTEGER, Year INTEGER, Term TEXT,
          PRIMARY KEY (CourseID, Year, Term));
        """
    )
    db.execute(
        "INSERT INTO Departments VALUES (1, 'Computer Science'), (2, 'History')"
    )
    db.execute(
        "INSERT INTO Courses VALUES "
        "(1, 1, 'Introduction to Programming', 'java basics', 5, ''),"
        "(2, 1, 'Advanced Programming', 'more java', 3, ''),"
        "(3, 1, 'Programming Languages', 'semantics', 4, ''),"
        "(4, 2, 'American History', 'revolution', 4, ''),"
        "(5, 2, 'Introduction to American Studies', 'culture', 4, ''),"
        "(6, 1, 'Databases', 'relational systems', 4, '')"
    )
    db.execute(
        "INSERT INTO Students VALUES "
        "(444, 'Sally', 2010, 'Computer Science', 3.7),"
        "(445, 'Bob', 2010, 'Computer Science', 3.65),"
        "(446, 'Eve', 2011, 'History', 3.1),"
        "(447, 'Joe', 2009, 'Computer Science', 2.9)"
    )
    db.execute(
        "INSERT INTO Comments VALUES "
        "(444, 1, 2008, 'Aut', 'great', 5.0, '2008-10-01'),"
        "(444, 2, 2008, 'Win', 'good', 4.0, '2008-10-02'),"
        "(445, 1, 2008, 'Aut', 'nice', 5.0, '2008-10-03'),"
        "(445, 2, 2008, 'Win', 'ok', 4.0, '2008-10-04'),"
        "(445, 3, 2008, 'Spr', 'deep', 4.5, '2008-10-05'),"
        "(445, 6, 2008, 'Aut', 'useful', 5.0, '2008-10-06'),"
        "(446, 1, 2008, 'Aut', 'hard', 1.0, '2008-10-07'),"
        "(446, 2, 2008, 'Win', 'dull', 2.0, '2008-10-08'),"
        "(446, 4, 2008, 'Aut', 'long', 4.0, '2008-10-09'),"
        "(447, 3, 2008, 'Spr', 'fun', 5.0, '2008-10-10'),"
        "(447, 5, 2008, 'Aut', 'broad', 3.0, '2008-10-11')"
    )
    db.execute(
        "INSERT INTO Enrollments VALUES "
        "(444, 1, 2008, 'Aut', 'A'), (444, 2, 2008, 'Win', 'B'),"
        "(445, 1, 2008, 'Aut', 'A'), (445, 2, 2008, 'Win', 'B'),"
        "(445, 3, 2008, 'Spr', 'A'), (445, 6, 2008, 'Aut', 'A'),"
        "(446, 1, 2008, 'Aut', 'C'), (446, 4, 2008, 'Aut', 'B'),"
        "(447, 3, 2008, 'Spr', 'A'), (447, 5, 2008, 'Aut', 'B')"
    )
    db.execute(
        "INSERT INTO Offerings VALUES "
        "(1, 2008, 'Aut'), (2, 2008, 'Win'), (3, 2008, 'Spr'),"
        "(4, 2008, 'Aut'), (5, 2008, 'Aut'), (6, 2008, 'Aut'),"
        "(1, 2009, 'Aut'), (6, 2009, 'Win')"
    )
    return db
