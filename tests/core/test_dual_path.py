"""The repo's central invariant: direct evaluation ≡ compiled SQL.

The paper deploys FlexRecs by compiling workflows to SQL run on a
conventional DBMS; the direct executor defines the reference semantics.
These tests — including hypothesis-generated random workflows — assert
the two paths return identical relations (same rows, same order, scores
equal to within float tolerance).
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    CommonCount,
    CosineVector,
    EqualityMatch,
    InverseEuclidean,
    NumericCloseness,
    PearsonCorrelation,
    SetJaccard,
    SetOverlap,
    TextJaccard,
    VectorLookup,
    Workflow,
)
from repro.core.operators import Recommend, Select, Source, TopK, extend
from repro.minidb import Database


def assert_paths_agree(db, workflow, tolerance=1e-9):
    direct = workflow.run(db)
    compiled = workflow.run_sql(db)
    assert direct.columns == compiled.columns
    assert len(direct) == len(compiled), (
        f"direct={len(direct)} rows, sql={len(compiled)} rows"
    )
    for left, right in zip(direct.rows, compiled.rows):
        for column in direct.columns:
            a, b = left[column], right[column]
            if isinstance(a, float) and isinstance(b, float):
                assert math.isclose(a, b, rel_tol=tolerance, abs_tol=tolerance), (
                    f"{column}: {a} != {b}"
                )
            else:
                assert a == b, f"{column}: {a!r} != {b!r}"
    # A second compiled run reuses the memoized compilation and the
    # database's cached plan; it must be rank-identical to the cold run.
    warm = workflow.run_sql(db)
    assert warm.columns == compiled.columns
    assert warm.rows == compiled.rows
    return direct


def students_with_ratings():
    return extend(
        Source("Students"), "ratings", "Comments", "SuID", "SuID",
        "Rating", "CourseID",
    )


def students_with_taken():
    return extend(
        Source("Students"), "taken", "Enrollments", "SuID", "SuID",
        "CourseID",
    )


class TestFixedWorkflows:
    def test_scalar_max(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Select(Source("Students"), "SuID = 444"),
                comparator=NumericCloseness("GPA", "GPA"),
                target_key="SuID",
                exclude_self=("SuID", "SuID"),
            )
        )
        result = assert_paths_agree(flexdb, workflow)
        assert result.rows[0]["SuID"] == 445

    @pytest.mark.parametrize("aggregate", ["max", "min", "avg", "sum", "count"])
    def test_every_aggregate(self, flexdb, aggregate):
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Select(Source("Students"), "GPA > 3.0"),
                comparator=NumericCloseness("GPA", "GPA"),
                target_key="SuID",
                aggregate=aggregate,
            )
        )
        assert_paths_agree(flexdb, workflow)

    def test_udf_text_jaccard(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Courses"),
                reference=Select(Source("Courses"), "CourseID = 1"),
                comparator=TextJaccard("Title", "Title"),
                target_key="CourseID",
                exclude_self=("CourseID", "CourseID"),
            )
        )
        assert_paths_agree(flexdb, workflow)

    @pytest.mark.parametrize(
        "comparator_cls", [InverseEuclidean, PearsonCorrelation, CosineVector]
    )
    def test_vector_comparators(self, flexdb, comparator_cls):
        workflow = Workflow(
            Recommend(
                target=students_with_ratings(),
                reference=Select(students_with_ratings(), "SuID = 444"),
                comparator=comparator_cls("ratings", "ratings"),
                target_key="SuID",
                exclude_self=("SuID", "SuID"),
            )
        )
        assert_paths_agree(flexdb, workflow)

    @pytest.mark.parametrize(
        "comparator_cls", [SetJaccard, SetOverlap, CommonCount]
    )
    def test_set_comparators(self, flexdb, comparator_cls):
        workflow = Workflow(
            Recommend(
                target=students_with_taken(),
                reference=Select(students_with_taken(), "SuID = 445"),
                comparator=comparator_cls("taken", "taken"),
                target_key="SuID",
                exclude_self=("SuID", "SuID"),
            )
        )
        assert_paths_agree(flexdb, workflow)

    def test_lookup_avg(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Courses"),
                reference=Select(students_with_ratings(), "SuID IN (444, 445)"),
                comparator=VectorLookup("CourseID", "ratings"),
                target_key="CourseID",
                aggregate="avg",
            )
        )
        assert_paths_agree(flexdb, workflow)

    def test_stacked_recommends_figure_5b(self, flexdb):
        similar = Recommend(
            target=students_with_ratings(),
            reference=Select(students_with_ratings(), "SuID = 444"),
            comparator=InverseEuclidean("ratings", "ratings"),
            target_key="SuID",
            score_column="sim",
            top_k=2,
            exclude_self=("SuID", "SuID"),
        )
        workflow = Workflow(
            Recommend(
                target=Source("Courses"),
                reference=similar,
                comparator=VectorLookup("CourseID", "ratings"),
                target_key="CourseID",
                aggregate="avg",
                top_k=5,
            )
        )
        assert_paths_agree(flexdb, workflow)

    def test_topk_over_recommend(self, flexdb):
        workflow = Workflow(
            TopK(
                Recommend(
                    target=Source("Students"),
                    reference=Source("Students"),
                    comparator=NumericCloseness("GPA", "GPA"),
                    target_key="SuID",
                ),
                2,
                "score",
            )
        )
        assert_paths_agree(flexdb, workflow)

    def test_equality_match_with_nulls(self, flexdb):
        flexdb.execute(
            "INSERT INTO Students VALUES (448, 'NullGPA', 2012, NULL, NULL)"
        )
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Source("Students"),
                comparator=EqualityMatch("Major", "Major"),
                target_key="SuID",
                aggregate="avg",
                exclude_self=("SuID", "SuID"),
            )
        )
        assert_paths_agree(flexdb, workflow)


class TestWarmCompiledPath:
    """Repeated run_sql must hit the statement/plan caches, not re-plan."""

    def workflow(self):
        return Workflow(
            Recommend(
                target=students_with_ratings(),
                reference=Select(students_with_ratings(), "SuID = 444"),
                comparator=InverseEuclidean("ratings", "ratings"),
                target_key="SuID",
                exclude_self=("SuID", "SuID"),
            )
        )

    def test_warm_run_hits_plan_cache(self, flexdb):
        workflow = self.workflow()
        cold = workflow.run_sql(flexdb)
        hits = flexdb._plan_cache.hits
        warm = workflow.run_sql(flexdb)
        assert flexdb._plan_cache.hits > hits
        assert warm.rows == cold.rows

    def test_compile_memo_reused_and_invalidated(self, flexdb):
        workflow = self.workflow()
        workflow.run_sql(flexdb)
        memo = workflow._compiled["minidb"]
        workflow.run_sql(flexdb)
        assert workflow._compiled["minidb"] is memo  # no recompilation
        flexdb.execute("CREATE TABLE Scratch (X INTEGER PRIMARY KEY)")
        workflow.run_sql(flexdb)  # schema epoch moved: recompiles
        assert workflow._compiled["minidb"] is not memo

    def test_warm_run_sees_new_data(self, flexdb):
        workflow = self.workflow()
        workflow.run_sql(flexdb)
        flexdb.execute(
            "INSERT INTO Comments VALUES "
            "(447, 6, 2008, 'Aut', 'late', 5.0, '2008-06-01')"
        )
        warm = workflow.run_sql(flexdb)
        fresh = self.workflow().run(flexdb)
        assert warm.rows and len(warm.rows) == len(fresh.rows)
        for left, right in zip(warm.rows, fresh.rows):
            assert left["SuID"] == right["SuID"]


# ---------------------------------------------------------------------------
# randomized equivalence
# ---------------------------------------------------------------------------


def build_random_db(students, ratings):
    db = Database()
    db.execute_script(
        """
        CREATE TABLE Students (SuID INTEGER PRIMARY KEY, Name TEXT,
          Class INTEGER, Major TEXT, GPA FLOAT);
        CREATE TABLE Courses (CourseID INTEGER PRIMARY KEY, DepID INTEGER,
          Title TEXT, Description TEXT, Units INTEGER, Url TEXT);
        CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER, Year INTEGER,
          Term TEXT, Text TEXT, Rating FLOAT, CommentDate DATE,
          PRIMARY KEY (SuID, CourseID));
        """
    )
    course_ids = set()
    for suid, gpa in students:
        db.table("Students").insert(
            [suid, f"s{suid}", 2010, "M", gpa]
        )
    for course_id in {course for _suid, course, _r in ratings}:
        db.table("Courses").insert(
            [course_id, 1, f"Course {course_id}", "", 3, ""]
        )
        course_ids.add(course_id)
    student_ids = {suid for suid, _g in students}
    seen = set()
    for suid, course_id, rating in ratings:
        if suid not in student_ids or (suid, course_id) in seen:
            continue
        seen.add((suid, course_id))
        db.table("Comments").insert(
            [suid, course_id, 2008, "Aut", "t", rating, "2008-01-01"]
        )
    return db


students_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    ),
    min_size=2,
    max_size=8,
    unique_by=lambda pair: pair[0],
)

ratings_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),  # SuID
        st.integers(min_value=1, max_value=6),  # CourseID
        st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
    ),
    max_size=30,
)


class TestRandomizedEquivalence:
    @given(students_strategy, ratings_strategy)
    def test_scalar_closeness_random(self, students, ratings):
        db = build_random_db(students, ratings)
        reference_id = students[0][0]
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Select(Source("Students"), f"SuID = {reference_id}"),
                comparator=NumericCloseness("GPA", "GPA", scale=0.7),
                target_key="SuID",
                exclude_self=("SuID", "SuID"),
            )
        )
        assert_paths_agree(db, workflow, tolerance=1e-7)

    @given(students_strategy, ratings_strategy)
    def test_inverse_euclidean_random(self, students, ratings):
        db = build_random_db(students, ratings)
        reference_id = students[0][0]
        workflow = Workflow(
            Recommend(
                target=students_with_ratings(),
                reference=Select(
                    students_with_ratings(), f"SuID = {reference_id}"
                ),
                comparator=InverseEuclidean("ratings", "ratings"),
                target_key="SuID",
                exclude_self=("SuID", "SuID"),
            )
        )
        assert_paths_agree(db, workflow, tolerance=1e-7)

    @given(students_strategy, ratings_strategy, st.sampled_from(["avg", "max", "count"]))
    def test_lookup_random(self, students, ratings, aggregate):
        db = build_random_db(students, ratings)
        workflow = Workflow(
            Recommend(
                target=Source("Courses"),
                reference=students_with_ratings(),
                comparator=VectorLookup("CourseID", "ratings"),
                target_key="CourseID",
                aggregate=aggregate,
            )
        )
        assert_paths_agree(db, workflow, tolerance=1e-7)

    @given(students_strategy, ratings_strategy)
    def test_pearson_random(self, students, ratings):
        db = build_random_db(students, ratings)
        reference_id = students[0][0]
        workflow = Workflow(
            Recommend(
                target=students_with_ratings(),
                reference=Select(
                    students_with_ratings(), f"SuID = {reference_id}"
                ),
                comparator=PearsonCorrelation("ratings", "ratings"),
                target_key="SuID",
                exclude_self=("SuID", "SuID"),
            )
        )
        # Pearson near-zero-variance cases can diverge between the exact
        # Python formula and SQL float accumulation; compare score sets
        # rather than exact rank for robustness.
        direct = workflow.run(db)
        compiled = workflow.run_sql(db)
        left = {row["SuID"]: row["score"] for row in direct.rows}
        right = {row["SuID"]: row["score"] for row in compiled.rows}
        assert set(left) == set(right)
        for suid, value in left.items():
            assert math.isclose(value, right[suid], rel_tol=1e-6, abs_tol=1e-6)
