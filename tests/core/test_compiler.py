"""Tests for workflow → SQL compilation."""

import pytest

from repro.errors import CompilationError
from repro.core import (
    InverseEuclidean,
    NumericCloseness,
    SetJaccard,
    TextJaccard,
    VectorLookup,
    Workflow,
    compile_workflow,
)
from repro.core.operators import (
    Project,
    Recommend,
    Select,
    Source,
    TopK,
    extend,
)


def students_with_ratings():
    return extend(
        Source("Students"), "ratings", "Comments", "SuID", "SuID",
        "Rating", "CourseID",
    )


class TestCompilationArtifacts:
    def test_source_compiles_to_select(self, flexdb):
        workflow = Workflow(Source("Students"))
        compiled = compile_workflow(workflow, flexdb)
        assert compiled.sql.startswith("SELECT")
        assert "FROM Students" in compiled.sql
        assert compiled.columns == ["SuID", "Name", "Class", "Major", "GPA"]

    def test_compiled_sql_is_parseable_and_runs(self, flexdb):
        workflow = Workflow(
            TopK(Select(Source("Students"), "GPA > 3.0"), 2, "GPA")
        )
        compiled = compile_workflow(workflow, flexdb)
        result = flexdb.query(compiled.sql)
        assert len(result) == 2

    def test_scalar_comparator_inlines_no_udf(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Select(Source("Students"), "SuID = 444"),
                comparator=NumericCloseness("GPA", "GPA"),
                target_key="SuID",
            )
        )
        compiled = compile_workflow(workflow, flexdb)
        assert compiled.udfs == ()
        assert "ABS(" in compiled.sql
        assert "GROUP BY" in compiled.sql

    def test_udf_comparator_registers_function(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Courses"),
                reference=Select(Source("Courses"), "CourseID = 1"),
                comparator=TextJaccard("Title", "Title"),
                target_key="CourseID",
            )
        )
        compiled = compile_workflow(workflow, flexdb)
        assert "frx_text_jaccard" in compiled.udfs
        assert flexdb.functions.has_scalar("frx_text_jaccard")
        assert "FRX_TEXT_JACCARD(" in compiled.sql

    def test_vector_comparator_compiles_corated_join(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=students_with_ratings(),
                reference=Select(students_with_ratings(), "SuID = 444"),
                comparator=InverseEuclidean("ratings", "ratings"),
                target_key="SuID",
            )
        )
        compiled = compile_workflow(workflow, flexdb)
        # The extend never materializes; the math is in SQL aggregates.
        assert "SQRT(SUM(" in compiled.sql
        assert "Comments" in compiled.sql
        assert compiled.udfs == ()

    def test_vector_without_extend_fails(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Source("Students"),
                comparator=InverseEuclidean("ratings", "ratings"),
                target_key="SuID",
            )
        )
        # validate() catches it first; compile directly to test the
        # compiler's own guard.
        with pytest.raises(CompilationError):
            compile_workflow(workflow, flexdb)

    def test_vector_exclude_self_requires_key_columns(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=students_with_ratings(),
                reference=students_with_ratings(),
                comparator=InverseEuclidean("ratings", "ratings"),
                target_key="SuID",
                exclude_self=("Name", "Name"),
            )
        )
        with pytest.raises(CompilationError):
            compile_workflow(workflow, flexdb)

    def test_lookup_requires_vector(self, flexdb):
        taken_set = extend(
            Source("Students"), "taken", "Enrollments", "SuID", "SuID",
            "CourseID",
        )
        workflow = Workflow(
            Recommend(
                target=Source("Courses"),
                reference=taken_set,
                comparator=VectorLookup("CourseID", "taken"),
                target_key="CourseID",
            )
        )
        with pytest.raises(CompilationError):
            compile_workflow(workflow, flexdb)

    def test_having_guards_generated(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Source("Students"),
                comparator=NumericCloseness("GPA", "GPA"),
                target_key="SuID",
                aggregate="count",
            )
        )
        compiled = compile_workflow(workflow, flexdb)
        assert "HAVING COUNT(" in compiled.sql
        assert "> 0" in compiled.sql

    def test_order_and_limit_generated(self, flexdb):
        workflow = Workflow(
            Recommend(
                target=Source("Students"),
                reference=Source("Students"),
                comparator=NumericCloseness("GPA", "GPA"),
                target_key="SuID",
                top_k=3,
            )
        )
        compiled = compile_workflow(workflow, flexdb)
        assert "ORDER BY score DESC" in compiled.sql
        assert compiled.sql.rstrip().endswith("LIMIT 3")

    def test_to_sql_convenience(self, flexdb):
        workflow = Workflow(Source("Courses"))
        assert workflow.to_sql(flexdb) == compile_workflow(workflow, flexdb).sql

    def test_set_comparator_compiles_distinct_values(self, flexdb):
        taken = extend(
            Source("Students"), "taken", "Enrollments", "SuID", "SuID",
            "CourseID",
        )
        workflow = Workflow(
            Recommend(
                target=taken,
                reference=Select(
                    extend(
                        Source("Students"), "taken", "Enrollments", "SuID",
                        "SuID", "CourseID",
                    ),
                    "SuID = 444",
                ),
                comparator=SetJaccard("taken", "taken"),
                target_key="SuID",
                exclude_self=("SuID", "SuID"),
            )
        )
        compiled = compile_workflow(workflow, flexdb)
        assert "SELECT DISTINCT" in compiled.sql
        result = flexdb.query(compiled.sql)
        assert len(result) > 0
