"""Standalone replay for testkit corpus seed 'xbackend_int_float_affinity'.

cross-backend pin: SUM/AVG over INTEGER vs FLOAT columns and integer division promotion

Run with ``PYTHONPATH=src python xbackend_int_float_affinity.py``; exits nonzero if the two
engines still diverge.
"""

import pathlib

from repro.testkit import oracle

rendered = oracle.load_seed(pathlib.Path(__file__).with_suffix(".json"))
report = oracle.run_rendered(rendered)
for line in report.divergences:
    print(line)
print(f"query ops: {report.query_ops}, errors: {report.error_ops}")
raise SystemExit(1 if report.divergences else 0)
