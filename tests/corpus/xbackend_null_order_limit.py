"""Standalone replay for testkit corpus seed 'xbackend_null_order_limit'.

cross-backend pin: NULLs sort low under totalized ORDER BY ASC/DESC with LIMIT, before and after DML

Run with ``PYTHONPATH=src python xbackend_null_order_limit.py``; exits nonzero if the two
engines still diverge.
"""

import pathlib

from repro.testkit import oracle

rendered = oracle.load_seed(pathlib.Path(__file__).with_suffix(".json"))
report = oracle.run_rendered(rendered)
for line in report.divergences:
    print(line)
print(f"query ops: {report.query_ops}, errors: {report.error_ops}")
raise SystemExit(1 if report.divergences else 0)
