"""Standalone replay for testkit corpus seed 'notin_empty_subquery_null'.

op[7] config=compiled-cold: minidb 0 row(s): [] != sqlite 2 row(s): [(None, None, 56.5, None), (None, None, 56.5, None)] :: SELECT a1.c2_dat AS c0, a1.c1_int AS c1, 56.5 AS c2, a1.c2_dat AS c3 FROM t1

Run with ``PYTHONPATH=src python notin_empty_subquery_null.py``; exits nonzero if the two
engines still diverge.
"""

import pathlib

from repro.testkit import oracle

rendered = oracle.load_seed(pathlib.Path(__file__).with_suffix(".json"))
report = oracle.run_rendered(rendered)
for line in report.divergences:
    print(line)
print(f"query ops: {report.query_ops}, errors: {report.error_ops}")
raise SystemExit(1 if report.divergences else 0)
