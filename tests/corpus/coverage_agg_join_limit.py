"""Standalone replay for testkit corpus seed 'coverage_agg_join_limit'.

feature-coverage pin: aggregates over joins with DISTINCT and totalized LIMIT plus DML churn (generator seed 2023)

Run with ``PYTHONPATH=src python coverage_agg_join_limit.py``; exits nonzero if the two
engines still diverge.
"""

import pathlib

from repro.testkit import oracle

rendered = oracle.load_seed(pathlib.Path(__file__).with_suffix(".json"))
report = oracle.run_rendered(rendered)
for line in report.divergences:
    print(line)
print(f"query ops: {report.query_ops}, errors: {report.error_ops}")
raise SystemExit(1 if report.divergences else 0)
