"""Standalone replay for testkit corpus seed 'distinct_limit_post_dedup'.

op[5] config=compiled-cold: minidb 1 row(s): [(1,)] != sqlite 2 row(s): [(0,), (1,)] :: SELECT DISTINCT c3_boo AS c0 FROM t0 AS a0 WHERE (c1_tex LIKE '%') ORDER BY c0 DESC LIMIT 2

Run with ``PYTHONPATH=src python distinct_limit_post_dedup.py``; exits nonzero if the two
engines still diverge.
"""

import pathlib

from repro.testkit import oracle

rendered = oracle.load_seed(pathlib.Path(__file__).with_suffix(".json"))
report = oracle.run_rendered(rendered)
for line in report.divergences:
    print(line)
print(f"query ops: {report.query_ops}, errors: {report.error_ops}")
raise SystemExit(1 if report.divergences else 0)
