"""Standalone replay for churn corpus pin 'churn_graphrank_incremental'.

churn pin: incremental graphrank layer reuse stays bit-identical to a cold
rebuild across rating/comment/doc DML (driver seed 1)

Run with ``PYTHONPATH=src python churn_graphrank_incremental.py``; exits
nonzero if the live (incremental) engine diverges from cold replicas or the
fast path stops being exercised.
"""

import json
import pathlib

from repro.testkit.churn import ChurnDriver

pin = json.loads(pathlib.Path(__file__).with_suffix(".json").read_text())
report = ChurnDriver(
    seed=pin["seed"], steps=pin["steps"], check_every=pin["check_every"]
).run()
for line in report.failures:
    print(line)
print(f"coverage: {report.coverage}")
missing = [
    key for key in pin["require_coverage"] if report.coverage.get(key, 0) == 0
]
if missing:
    print(f"fast paths no longer exercised: {missing}")
raise SystemExit(1 if (not report.ok or missing) else 0)
