"""Standalone replay for testkit corpus seed 'coverage_join_groupby_dropcreate'.

feature-coverage pin: joins, GROUP BY/HAVING, DISTINCT, LIMIT, DML, and DROP+CREATE churn in one case (generator seed 2021)

Run with ``PYTHONPATH=src python coverage_join_groupby_dropcreate.py``; exits nonzero if the two
engines still diverge.
"""

import pathlib

from repro.testkit import oracle

rendered = oracle.load_seed(pathlib.Path(__file__).with_suffix(".json"))
report = oracle.run_rendered(rendered)
for line in report.divergences:
    print(line)
print(f"query ops: {report.query_ops}, errors: {report.error_ops}")
raise SystemExit(1 if report.divergences else 0)
