"""Standalone replay for churn corpus pin 'churn_cube_lattice'.

churn pin: cube lattice drill-down/slice/roll-up matches cold per-cell
builds while DocDims churns underneath (driver seed 3)

Run with ``PYTHONPATH=src python churn_cube_lattice.py``; exits nonzero if
any navigated cell diverges from a cold build or the lattice walk stops
being exercised.
"""

import json
import pathlib

from repro.testkit.churn import ChurnDriver

pin = json.loads(pathlib.Path(__file__).with_suffix(".json").read_text())
report = ChurnDriver(
    seed=pin["seed"], steps=pin["steps"], check_every=pin["check_every"]
).run()
for line in report.failures:
    print(line)
print(f"coverage: {report.coverage}")
missing = [
    key for key in pin["require_coverage"] if report.coverage.get(key, 0) == 0
]
if missing:
    print(f"fast paths no longer exercised: {missing}")
raise SystemExit(1 if (not report.ok or missing) else 0)
