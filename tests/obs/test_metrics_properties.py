"""Hypothesis properties for the metrics algebra.

The registry's merge is the foundation for parallel/benchmark
aggregation, so its algebra is pinned property-style: associative,
commutative, count-conserving, and increment-preserving; histogram
quantile estimates stay bounded by the edges of the bucket that holds
the target rank.

All float inputs are exact quarters (multiples of 0.25), the repo's
convention for float properties: quarter sums are exact in binary
floating point, so totals are order-independent and equality is exact.
"""

import random

from hypothesis import given, strategies as st

from repro.obs.metrics import (
    COUNT_EDGES,
    DEFAULT_MS_EDGES,
    Histogram,
    MetricsRegistry,
)

NAMES = st.sampled_from(["alpha", "beta", "gamma"])
QUARTERS = st.integers(min_value=0, max_value=12_000).map(lambda n: n / 4.0)

COUNTER_OP = st.tuples(st.just("inc"), NAMES, st.integers(0, 5))
GAUGE_OP = st.tuples(st.just("gauge"), NAMES, QUARTERS)
HIST_OP = st.tuples(st.just("observe"), NAMES, QUARTERS)
OPS = st.lists(st.one_of(COUNTER_OP, GAUGE_OP, HIST_OP), max_size=30)


def _apply(ops):
    registry = MetricsRegistry()
    for kind, name, value in ops:
        if kind == "inc":
            registry.inc(name, value)
        elif kind == "gauge":
            # Merge sums gauges, so build them additively too.
            registry.add_gauge(name, value)
        else:
            registry.observe(name, value)
    return registry


def _merged(*registries):
    result = MetricsRegistry()
    for registry in registries:
        result.merge(registry)
    return result


@given(OPS, OPS, OPS)
def test_merge_is_associative(ops_a, ops_b, ops_c):
    a, b, c = _apply(ops_a), _apply(ops_b), _apply(ops_c)
    left = _merged(_merged(a, b), c)
    right = _merged(a, _merged(b, c))
    assert left.snapshot() == right.snapshot()


@given(OPS, OPS)
def test_merge_is_commutative(ops_a, ops_b):
    a, b = _apply(ops_a), _apply(ops_b)
    assert _merged(a, b).snapshot() == _merged(b, a).snapshot()


@given(OPS, OPS)
def test_merge_leaves_operands_untouched(ops_a, ops_b):
    a, b = _apply(ops_a), _apply(ops_b)
    before_a, before_b = a.snapshot(), b.snapshot()
    _merged(a, b)
    assert a.snapshot() == before_a
    assert b.snapshot() == before_b


@given(st.lists(QUARTERS, max_size=60), st.lists(QUARTERS, max_size=60))
def test_histogram_counts_conserved_across_merge(values_a, values_b):
    a, b = Histogram(), Histogram()
    for value in values_a:
        a.observe(value)
    for value in values_b:
        b.observe(value)
    a.merge(b)
    assert a.count == len(values_a) + len(values_b)
    assert sum(a.counts) == a.count  # every observation in exactly one bucket
    assert a.total == sum(values_a) + sum(values_b)  # exact for quarters
    if values_a or values_b:
        assert a.min == min(values_a + values_b)
        assert a.max == max(values_a + values_b)


@given(
    st.lists(st.tuples(NAMES, st.integers(1, 10)), min_size=1, max_size=40),
    st.integers(2, 5),
    st.randoms(use_true_random=False),
)
def test_counter_increments_never_lost(increments, shards, rng):
    """Increments scattered over N registries survive any merge order."""
    registries = [MetricsRegistry() for _ in range(shards)]
    expected = {}
    for position, (name, amount) in enumerate(increments):
        registries[position % shards].inc(name, amount)
        expected[name] = expected.get(name, 0) + amount
    rng.shuffle(registries)
    merged = _merged(*registries)
    assert merged.counters() == expected


@given(
    st.lists(QUARTERS, min_size=1, max_size=80),
    st.sampled_from([0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]),
)
def test_quantile_bounded_by_bucket_edges(values, q):
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    estimate = histogram.quantile(q)
    assert estimate is not None
    assert histogram.min <= estimate <= histogram.max
    # Independently locate the bucket that holds the target rank and
    # assert the estimate never escapes that bucket's edges.
    rank = q * histogram.count
    cumulative = 0
    for index, bucket_count in enumerate(histogram.counts):
        if bucket_count == 0:
            continue
        cumulative += bucket_count
        if cumulative >= rank:
            lower = (
                histogram.min if index == 0 else histogram.edges[index - 1]
            )
            upper = (
                histogram.max
                if index == len(histogram.edges)
                else histogram.edges[index]
            )
            assert max(lower, histogram.min) - 1e-12 <= estimate
            assert estimate <= min(upper, histogram.max) + 1e-12
            break


@given(st.lists(QUARTERS, min_size=1, max_size=50))
def test_quantile_extremes(values):
    histogram = Histogram(COUNT_EDGES)
    for value in values:
        histogram.observe(value)
    assert histogram.quantile(0.0) == histogram.min
    assert histogram.quantile(1.0) == histogram.max


def test_merge_rejects_mismatched_edges():
    import pytest

    a = Histogram(DEFAULT_MS_EDGES)
    b = Histogram(COUNT_EDGES)
    with pytest.raises(ValueError):
        a.merge(b)


def test_registry_merged_classmethod_matches_sequential():
    registries = []
    for seed in range(4):
        rng = random.Random(seed)
        registry = MetricsRegistry()
        for _ in range(20):
            registry.inc("ops", rng.randrange(3))
            registry.observe("ms", rng.randrange(0, 4000) / 4.0)
        registries.append(registry)
    combined = MetricsRegistry.merged(registries)
    sequential = MetricsRegistry()
    for registry in registries:
        sequential.merge(registry)
    assert combined.snapshot() == sequential.snapshot()
