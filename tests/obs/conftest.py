"""Shared fixtures for the observability suite.

Every test starts and ends with the global :data:`repro.obs.OBS`
disabled and empty, so suites never observe each other's residue and
the rest of tier-1 runs with observability off (the production default).
"""

import pytest

from repro.obs import OBS


@pytest.fixture(autouse=True)
def clean_obs():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()
