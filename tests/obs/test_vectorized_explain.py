"""EXPLAIN/EXPLAIN ANALYZE surface of the vectorized executor.

Pins the routing contract: ``[vectorized]`` renders exactly when the
plan carries a vector twin (never for row-path-only shapes like
primary-key point lookups or UDF projections), EXPLAIN ANALYZE reports
per-node batch
counts for genuinely vectorized operators while the PR 5 row-accounting
invariants keep holding, and the ``repro.obs`` counters see batches and
fallbacks.
"""

import pytest

import repro.minidb.planner as planner_module
from repro.minidb import Database
from repro.obs import OBS


@pytest.fixture()
def db(monkeypatch):
    monkeypatch.setattr(planner_module, "VECTORIZE", True)
    database = Database()
    database.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, dep INT, units INT)"
    )
    for i in range(30):
        database.execute(
            "INSERT INTO t VALUES (?, ?, ?)", [i, i % 3, 1 + i % 4]
        )
    return database


VECTORIZED_SQL = "SELECT dep, COUNT(*) AS n FROM t GROUP BY dep ORDER BY dep"
# The pk-equality shape routes through PrimaryKeyAccess -> row path only.
ROW_ONLY_SQL = "SELECT id FROM t WHERE id = 3"
# UDF in the projection: no kernel, no pure-key projection.
UDF_SQL = "SELECT ABS(dep) AS a FROM t"


def test_explain_marks_routed_plans_only(db):
    vectorized = db.execute("EXPLAIN " + VECTORIZED_SQL)
    assert "[vectorized]" in vectorized.rows[0][0]
    for sql in (ROW_ONLY_SQL, UDF_SQL):
        plain = db.execute("EXPLAIN " + sql)
        assert "[vectorized]" not in plain.rows[0][0], sql


def test_explain_never_marks_when_disabled(db):
    planner_module.VECTORIZE = False
    db.clear_plan_cache()
    result = db.execute("EXPLAIN " + VECTORIZED_SQL)
    assert "[vectorized]" not in result.rows[0][0]


def test_analyze_reports_batches_and_balances(db):
    report = db.analyze(VECTORIZED_SQL)
    assert report.vectorized
    assert "[vectorized]" in report.lines[0]
    assert any("batches=" in line for line in report.lines[1:])

    def check(node):
        assert node.rows_in == sum(child.rows_out for child in node.children)
        for child in node.children:
            check(child)

    check(report.root)
    assert report.root.rows_out == len(report.result)
    assert report.to_dict()["vectorized"] is True
    assert report.to_dict()["plan"]["batches"] >= 1


def test_analyze_row_path_reports_no_batches(db):
    report = db.analyze(ROW_ONLY_SQL)
    assert not report.vectorized
    assert "[vectorized]" not in report.lines[0]
    assert all("batches=" not in line for line in report.lines)


def test_instrumentation_leaves_cached_plans_pristine(db):
    """Repeated ANALYZE and plain queries must agree (no leaked wrappers)."""
    expected = db.query(VECTORIZED_SQL).rows
    for _ in range(3):
        report = db.analyze(VECTORIZED_SQL)
        assert report.result.rows == expected
        assert db.query(VECTORIZED_SQL).rows == expected


def test_obs_counters_see_batches_and_fallbacks(db):
    OBS.reset()
    OBS.enable()
    try:
        db.clear_plan_cache()
        db.query(VECTORIZED_SQL)
        db.query(ROW_ONLY_SQL)
        counters = OBS.metrics.counters()
        assert counters["minidb.vector.plan.routed"] >= 1
        assert counters["minidb.vector.plan.row_path"] >= 1
        assert counters["minidb.vector.batches"] >= 1
        assert counters["minidb.vector.select.count"] >= 1
    finally:
        OBS.disable()
        OBS.reset()


def test_obs_filter_selectivity_observed(db):
    OBS.reset()
    OBS.enable()
    try:
        db.clear_plan_cache()
        db.query("SELECT id FROM t WHERE units >= 3")
        histogram = OBS.metrics.histogram("minidb.vector.filter.selectivity")
        assert histogram is not None and histogram.count >= 1
    finally:
        OBS.disable()
        OBS.reset()
