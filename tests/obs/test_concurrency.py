"""Concurrency smoke tests: the thread-safety contract of repro.obs.

N threads hammering one registry/tracer must lose no increments and
produce well-nested spans (per-thread nesting is tracked thread-locally;
the shared ring is lock-protected).  This pins the contract any future
async/sharded serving layer will build on.
"""

import threading

from repro.obs import OBS, MetricsRegistry, SlowQueryLog, Tracer

THREADS = 8
ITERATIONS = 50


def _run_threads(worker):
    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_registry_loses_no_increments():
    registry = MetricsRegistry()

    def worker(index):
        for i in range(ITERATIONS):
            registry.inc("ops")
            registry.inc(f"worker.{index}")
            registry.observe("ms", (i % 8) / 4.0)
            registry.add_gauge("load", 0.25)

    _run_threads(worker)
    assert registry.counter("ops") == THREADS * ITERATIONS
    for index in range(THREADS):
        assert registry.counter(f"worker.{index}") == ITERATIONS
    histogram = registry.histogram("ms")
    assert histogram.count == THREADS * ITERATIONS
    assert sum(histogram.counts) == histogram.count
    assert registry.gauge("load") == THREADS * ITERATIONS * 0.25


def test_tracer_spans_are_well_nested_per_thread():
    # A barrier keeps all workers alive simultaneously: OS thread idents
    # are recycled once a thread exits, which would fold distinct workers
    # into one thread_id in the assertions below.
    tracer = Tracer(ring_size=THREADS * ITERATIONS * 2 + 16)
    barrier = threading.Barrier(THREADS)

    def worker(index):
        barrier.wait()
        for i in range(ITERATIONS):
            with tracer.span(f"outer.{index}"):
                with tracer.span(f"inner.{index}"):
                    pass
        barrier.wait()

    _run_threads(worker)
    records = tracer.records()
    assert len(records) == THREADS * ITERATIONS * 2
    by_thread = {}
    for record in records:
        by_thread.setdefault(record.thread_id, []).append(record)
    assert len(by_thread) == THREADS
    for thread_records in by_thread.values():
        outers = [r for r in thread_records if r.name.startswith("outer.")]
        inners = [r for r in thread_records if r.name.startswith("inner.")]
        assert len(outers) == ITERATIONS
        assert len(inners) == ITERATIONS
        worker_id = outers[0].name.split(".")[1]
        for record in outers:
            assert record.depth == 0
            assert record.parent is None
        for record in inners:
            assert record.depth == 1
            assert record.parent == f"outer.{worker_id}"


def test_slow_log_under_contention_keeps_top_k():
    log = SlowQueryLog(threshold_ms=1.0, top_k=10)

    def worker(index):
        for i in range(ITERATIONS):
            log.offer(f"SELECT {index}", float(index * ITERATIONS + i))

    _run_threads(worker)
    entries = log.entries()
    assert len(entries) == 10
    durations = [entry.duration_ms for entry in entries]
    assert durations == sorted(durations, reverse=True)
    # The 10 slowest offered overall must be the ones retained.
    expected = sorted(
        (
            float(index * ITERATIONS + i)
            for index in range(THREADS)
            for i in range(ITERATIONS)
            if float(index * ITERATIONS + i) >= 1.0
        ),
        reverse=True,
    )[:10]
    assert durations == expected
    assert log.stats()["offered"] == THREADS * ITERATIONS


def test_global_obs_under_concurrent_instrumented_queries():
    """End-to-end: threads running real queries against one database
    while OBS is enabled neither crash nor drop counter updates."""
    from repro.minidb import Database

    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(50):
        db.execute("INSERT INTO t VALUES (?, ?)", [i, i % 5])
    OBS.enable()
    errors = []

    def worker(index):
        try:
            for _ in range(ITERATIONS // 2):
                rows = db.query(
                    "SELECT id FROM t WHERE v = ? ORDER BY id", [index % 5]
                ).rows
                assert len(rows) == 10
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    try:
        _run_threads(worker)
    finally:
        OBS.disable()
    assert errors == []
    assert (
        OBS.metrics.counter("minidb.select.count")
        == THREADS * (ITERATIONS // 2)
    )
