"""Instrumentation equivalence: enabled observability never changes results.

The contract every instrumented layer must honor: with tracing + metrics
+ slow log fully enabled, every query result, recommendation, and cloud
is bit-identical to the disabled run.  Checked three ways:

* every corpus seed in ``tests/corpus/`` replayed under the full minidb
  config sweep, enabled vs disabled;
* fresh seeded testkit generator cases, same comparison;
* an application-level workload (search, clouds, refinement,
  recommendations, SQL) on two identically-generated universes.

EXPLAIN ANALYZE gets its own check: instrumenting a *cached* plan must
leave the plan pristine afterwards (no shadowed ``rows`` methods) and
must not perturb later executions.
"""

import json
import pathlib

import pytest

from repro.obs import OBS
from repro.testkit import CaseGenerator
from repro.testkit.dialects import render_case
from repro.testkit.oracle import SWEEP, load_seed, normalize_rows, run_minidb

# Only oracle pins render to SQL op lists; churn pins (kind == "churn")
# replay through the ChurnDriver and are covered by the corpus-replay
# suite instead.
CORPUS = sorted(
    path
    for path in (pathlib.Path(__file__).parent.parent / "corpus").glob(
        "*.json"
    )
    if json.loads(path.read_text()).get("kind", "oracle") == "oracle"
)


def _signatures(rendered, enabled):
    """Per-op outcome signatures for the full sweep under one obs mode."""
    if enabled:
        OBS.enable()
    else:
        OBS.disable()
    try:
        per_config = {}
        for config in SWEEP:
            outcomes, intra = run_minidb(rendered.minidb, config)
            assert intra == [], f"intra-config divergence ({config.name})"
            per_config[config.name] = [
                outcome.signature() for outcome in outcomes
            ]
        return per_config
    finally:
        OBS.disable()


@pytest.mark.parametrize(
    "seed_path", CORPUS, ids=[path.stem for path in CORPUS]
)
def test_corpus_seed_enabled_equals_disabled(seed_path):
    rendered = load_seed(seed_path)
    disabled = _signatures(rendered, enabled=False)
    OBS.reset()
    enabled = _signatures(rendered, enabled=True)
    assert enabled == disabled


@pytest.mark.parametrize("seed", [11, 23, 47, 101, 211])
def test_generated_case_enabled_equals_disabled(seed):
    rendered = render_case(CaseGenerator(seed).case())
    disabled = _signatures(rendered, enabled=False)
    OBS.reset()
    enabled = _signatures(rendered, enabled=True)
    assert enabled == disabled


def _app_workload(app):
    """Run a representative workload, returning only comparable data."""
    outputs = {}
    result, cloud = app.search_courses("introduction")
    outputs["search_hits"] = [
        (hit.doc_id, round(hit.score, 9)) for hit in result.hits
    ]
    outputs["cloud_terms"] = [
        (term.term, round(term.score, 9), term.result_df, term.bucket)
        for term in cloud.terms
    ]
    session = app.search_session("american")
    if session.cloud.terms:
        session.refine(session.cloud.terms[0].term)
        outputs["refined_hits"] = [
            (hit.doc_id, round(hit.score, 9)) for hit in session.result.hits
        ]
        outputs["refined_terms"] = [
            (term.term, round(term.score, 9)) for term in session.cloud.terms
        ]
        session.back()
    recommendation = app.recommendations.run(
        "related_courses", course_id=1, path="direct"
    )
    outputs["recommend_rows"] = normalize_rows(
        [tuple(row.values()) for row in recommendation.rows]
    )
    outputs["sql_rows"] = normalize_rows(
        app.db.query(
            "SELECT DepID, COUNT(*) AS n FROM Courses GROUP BY DepID"
        ).rows
    )
    outputs["stats"] = app.site_statistics()
    return outputs


def test_app_workload_enabled_equals_disabled():
    from repro.courserank import CourseRank
    from repro.datagen import generate_university

    OBS.disable()
    baseline = _app_workload(
        CourseRank(generate_university(scale="tiny", seed=7))
    )
    OBS.reset()
    OBS.enable()
    try:
        observed = _app_workload(
            CourseRank(generate_university(scale="tiny", seed=7))
        )
    finally:
        OBS.disable()
    assert observed == baseline
    # The enabled run actually recorded something — the equality above
    # must not be vacuous.
    assert OBS.metrics.counter("search.query.count") >= 2
    assert OBS.metrics.counter("minidb.select.count") > 0
    assert len(OBS.tracer) > 0


def test_analyze_leaves_cached_plan_pristine():
    """EXPLAIN ANALYZE instruments plan-cache entries in place; the
    wrappers must be removed afterwards and results must not change."""
    from repro.minidb import Database
    from repro.minidb.planner import walk_plan
    from repro.minidb.sql.parser import parse_statement

    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(30):
        db.execute("INSERT INTO t VALUES (?, ?)", [i, i % 7])
    sql = "SELECT v, COUNT(*) AS n FROM t GROUP BY v ORDER BY v"
    before = db.query(sql).rows
    report = db.analyze(sql)
    assert report.cached  # same plan instance as the first execution
    # Fetch the cached plan again and assert no node carries a shadowed
    # instance-level rows() left over from the instrumentation.
    plan, was_cached = db._get_executor().plan_for(parse_statement(sql))
    assert was_cached
    for node in walk_plan(plan.root):
        assert "rows" not in node.__dict__
    after = db.query(sql).rows
    assert after == before
    assert report.result.rows == before


def test_analyze_under_enabled_obs_matches_plain_query():
    from repro.minidb import Database

    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(25):
        db.execute("INSERT INTO t VALUES (?, ?)", [i, i % 4])
    sql = "SELECT id FROM t WHERE v = ? ORDER BY id"
    plain = db.query(sql, [2]).rows
    OBS.enable()
    try:
        report = db.analyze(sql, [2])
    finally:
        OBS.disable()
    assert report.result.rows == plain
    assert db.query(sql, [2]).rows == plain
