"""Unit tests for the obs components and the report pipeline.

Also pins the "single source of truth" contract: the metrics/spans the
instrumented layers emit are views over the numbers the public result
objects (``SearchResult``, ``RecommendStats``) already carry — both
surfaces must agree exactly.
"""

import json

import pytest

from repro.obs import (
    COUNT_EDGES,
    NOOP_SPAN,
    OBS,
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
)
from repro.obs.report import (
    merge_snapshots,
    registry_from_snapshot,
    render_report,
)


# -- tracer -----------------------------------------------------------------


def test_ring_buffer_ages_out_oldest():
    tracer = Tracer(ring_size=4)
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    names = [record.name for record in tracer.records()]
    assert names == ["s6", "s7", "s8", "s9"]
    assert len(tracer) == 4


def test_span_attrs_and_exception_marking():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom", {"k": 1}) as span:
            span.set(extra=2)
            raise ValueError("no")
    record = tracer.records()[-1]
    assert record.name == "boom"
    assert record.attrs["k"] == 1
    assert record.attrs["extra"] == 2
    assert record.attrs["error"] == "ValueError"
    assert record.duration_ms >= 0.0


def test_record_attaches_to_open_parent():
    tracer = Tracer()
    with tracer.span("outer"):
        tracer.record("measured", 12.5, {"n": 3})
    records = {record.name: record for record in tracer.records()}
    assert records["measured"].parent == "outer"
    assert records["measured"].depth == 1
    assert records["measured"].duration_ms == 12.5


def test_export_round_trips_through_json():
    tracer = Tracer()
    with tracer.span("a", {"x": 1}):
        pass
    parsed = json.loads(tracer.to_json())
    assert parsed[0]["name"] == "a"
    assert parsed[0]["attrs"] == {"x": 1}


def test_obs_span_is_shared_noop_when_disabled():
    assert OBS.span("anything") is NOOP_SPAN
    with OBS.span("anything") as span:
        span.set(ignored=True)
    assert len(OBS.tracer) == 0
    OBS.enable()
    try:
        assert OBS.span("real") is not NOOP_SPAN
    finally:
        OBS.disable()


# -- slow log ---------------------------------------------------------------


def test_slow_log_threshold_and_eviction():
    log = SlowQueryLog(threshold_ms=5.0, top_k=3)
    assert not log.offer("fast", 1.0)
    for duration in (6.0, 7.0, 8.0, 9.0):
        assert log.offer(f"q{duration}", duration, plan="Plan")
    assert not log.offer("not slow enough now", 5.5)
    entries = log.entries()
    assert [entry.duration_ms for entry in entries] == [9.0, 8.0, 7.0]
    assert entries[0].plan == "Plan"
    stats = log.stats()
    assert stats["offered"] == 6
    assert stats["retained_now"] == 3


def test_slow_log_export_is_json_ready():
    log = SlowQueryLog(threshold_ms=0.0, top_k=2)
    log.offer("SELECT 1", 3.0, attrs={"rows": 1})
    json.dumps(log.export())


# -- snapshot / report ------------------------------------------------------


def _populated_registry():
    registry = MetricsRegistry()
    registry.inc("queries", 7)
    registry.set_gauge("tables", 4.0)
    registry.observe("ms", 0.75)
    registry.observe("ms", 12.0)
    registry.observe("candidates", 30.0, edges=COUNT_EDGES)
    return registry


def test_registry_snapshot_round_trip():
    registry = _populated_registry()
    rebuilt = registry_from_snapshot(registry.snapshot())
    assert rebuilt.snapshot() == registry.snapshot()


def test_merge_snapshots_adds_up():
    a, b = _populated_registry(), _populated_registry()
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged.counter("queries") == 14
    assert merged.gauge("tables") == 8.0
    assert merged.histogram("ms").count == 4


def test_render_report_mentions_everything():
    text = render_report(
        _populated_registry(),
        slow_queries=[
            {"sql": "SELECT slow", "duration_ms": 42.0, "plan": "SeqScan"}
        ],
    )
    assert "queries" in text
    assert "tables" in text
    assert "ms" in text and "p95=" in text
    assert "SELECT slow" in text
    assert "| SeqScan" in text


def test_obs_state_snapshot_is_json_serializable():
    OBS.enable()
    try:
        OBS.metrics.inc("x")
        OBS.slow_log.offer("SELECT 1", 999.0)
        with OBS.tracer.span("s"):
            pass
    finally:
        OBS.disable()
    json.dumps(OBS.snapshot())
    OBS.reset()
    empty = OBS.snapshot()
    assert empty["metrics"]["counters"] == {}
    assert empty["span_count"] == 0


def test_report_cli_merges_and_renders(tmp_path, capsys):
    from repro.obs.__main__ import main

    snapshot = {
        "metrics": _populated_registry().snapshot(),
        "slow_queries": [{"sql": "SELECT slow", "duration_ms": 42.0}],
    }
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    first.write_text(json.dumps(snapshot))
    second.write_text(json.dumps(snapshot))
    assert main(["report", str(first), str(second)]) == 0
    text = capsys.readouterr().out
    assert "queries" in text and "14" in text
    assert "SELECT slow" in text
    assert main(["report", "--json", str(first)]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["counters"]["queries"] == 7


# -- single source of truth -------------------------------------------------


def _small_app():
    from repro.courserank import CourseRank
    from repro.datagen import generate_university

    return CourseRank(generate_university(scale="tiny", seed=11))


def test_search_metrics_mirror_result_fields():
    app = _small_app()
    app.cloudsearch.ensure_built()
    OBS.enable()
    try:
        result, _cloud = app.search_courses("introduction")
    finally:
        OBS.disable()
    stats = app.cloudsearch.query_stats(result)
    # query_stats is the result-object view; the metrics/spans must carry
    # the very same numbers (one measurement site, two surfaces).
    assert stats["candidate_count"] == result.candidate_count
    span = next(
        record
        for record in OBS.tracer.records()
        if record.name == "search.query"
    )
    assert span.attrs["candidates"] == result.candidate_count
    assert span.attrs["hits"] == len(result.hits)
    assert span.attrs["cache_hit"] == result.cache_hit
    assert OBS.metrics.counter("search.query.count") == 1
    histogram = OBS.metrics.histogram("search.query.candidates")
    assert histogram.count == 1
    assert histogram.total == float(result.candidate_count)


def test_recommend_metrics_mirror_recommend_stats():
    app = _small_app()
    OBS.enable()
    try:
        app.recommendations.run("related_courses", course_id=1, path="direct")
    finally:
        OBS.disable()
    stats = app.recommendations.last_stats[-1]
    assert OBS.metrics.counter("flexrecs.recommend.count") == len(
        app.recommendations.last_stats
    )
    assert (
        OBS.metrics.counter("flexrecs.recommend.cache_hits")
        == sum(s.cache_hits for s in app.recommendations.last_stats)
    )
    span = next(
        record
        for record in OBS.tracer.records()
        if record.name == "flexrecs.recommend"
    )
    assert span.attrs["comparator"] == stats.comparator
    assert span.duration_ms == stats.elapsed_ms
    outer = next(
        record
        for record in OBS.tracer.records()
        if record.name == "recommend.run"
    )
    assert outer.attrs["path"] == "direct"


def test_slow_query_log_captures_plan_for_slow_select():
    from repro.minidb import Database

    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(10):
        db.execute("INSERT INTO t VALUES (?, ?)", [i, i])
    OBS.enable()
    OBS.slow_log.threshold_ms = 0.0  # everything is "slow"
    try:
        db.query("SELECT v FROM t WHERE id > 3 ORDER BY v")
    finally:
        OBS.disable()
        OBS.slow_log.threshold_ms = 10.0
    entries = OBS.slow_log.entries()
    assert entries
    assert "SELECT" in entries[0].sql
    assert "SeqScan" in (entries[0].plan or "")
    assert entries[0].attrs["rows"] == 6
