"""EXPLAIN/ANALYZE surface of index-assisted vector scans (PR 8).

Pins three contracts.  First, *plan-render parity*: the logical
``IndexScan(...)`` line is identical whether the executor runs the row
path or the vector path — vectorization is an executor property, not a
plan property, so only the ``[vectorized]``/``[numpy]`` head markers may
differ.  Second, the ``[numpy]`` marker tracks ``vector.NUMPY``
dynamically (a flag flip shows up without replanning).  Third, the new
``repro.obs`` counters fire: index-scan probes/rowids, multi-key join
routing, and numpy column mirroring/fallback.
"""

import pytest

import repro.minidb.planner as planner_module
import repro.minidb.vector as vector_module
from repro.minidb import Database
from repro.obs import OBS


@pytest.fixture()
def db(monkeypatch):
    monkeypatch.setattr(planner_module, "VECTORIZE", True)
    database = Database()
    database.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, k INT, n INT, v FLOAT)"
    )
    database.execute("CREATE INDEX idx_t_k ON t (k) USING hash")
    database.execute("CREATE INDEX idx_t_n ON t (n) USING sorted")
    for i in range(40):
        database.execute(
            "INSERT INTO t VALUES (?, ?, ?, ?)",
            [i, i % 4, i % 7, 0.25 * (1 + i % 4)],
        )
    database.execute("CREATE TABLE e (a INT, b INT, w FLOAT)")
    for i in range(20):
        database.execute(
            "INSERT INTO e VALUES (?, ?, ?)", [i % 4, i % 7, 0.5]
        )
    return database


HASH_SQL = "SELECT id, n FROM t WHERE k = 2 AND n > 1"
RANGE_SQL = "SELECT id FROM t WHERE n >= 3"
MULTIKEY_SQL = (
    "SELECT t.id, e.w FROM t JOIN e ON t.k = e.a AND t.n = e.b "
    "ORDER BY t.id, e.w"
)


def _explain_lines(database, sql):
    result = database.execute("EXPLAIN " + sql)
    return [row[0] for row in result.rows]


def _strip_markers(line):
    return line.replace(" [vectorized]", "").replace(" [numpy]", "")


@pytest.mark.parametrize("sql", [HASH_SQL, RANGE_SQL])
def test_index_plan_lines_identical_across_paths(db, sql):
    vectorized = _explain_lines(db, sql)
    assert "[vectorized]" in vectorized[0]
    assert any("IndexScan(" in line for line in vectorized)

    planner_module.VECTORIZE = False
    db.clear_plan_cache()
    row_path = _explain_lines(db, sql)
    assert "[vectorized]" not in row_path[0]
    assert [_strip_markers(line) for line in vectorized] == row_path


def test_hash_equality_renders_index_and_residual(db):
    lines = _explain_lines(db, HASH_SQL)
    index_line = next(line for line in lines if "IndexScan(" in line)
    assert "using idx_t_k" in index_line
    assert "filter=" in index_line  # residual predicate stays visible


def test_multikey_join_is_vectorized(db):
    lines = _explain_lines(db, MULTIKEY_SQL)
    assert "[vectorized]" in lines[0]
    join_line = next(line for line in lines if "HashJoin(" in line)
    assert "t.k" in join_line and "t.n" in join_line


def test_numpy_marker_tracks_flag_without_replanning(db):
    if not vector_module.HAS_NUMPY:
        pytest.skip("numpy not installed")
    saved = vector_module.NUMPY
    try:
        vector_module.NUMPY = True
        assert "[numpy]" in _explain_lines(db, HASH_SQL)[0]
        # No clear_plan_cache(): the marker reads the flag at render time.
        vector_module.NUMPY = False
        assert "[numpy]" not in _explain_lines(db, HASH_SQL)[0]
    finally:
        vector_module.NUMPY = saved


def test_analyze_reports_index_scan_batches(db):
    report = db.analyze(HASH_SQL)
    assert report.vectorized
    assert any(
        "IndexScan(" in line and "batches=" in line for line in report.lines
    )

    def check(node):
        assert node.rows_in == sum(child.rows_out for child in node.children)
        for child in node.children:
            check(child)

    check(report.root)
    assert report.root.rows_out == len(report.result)


def test_index_scan_results_match_row_path(db):
    for sql in (HASH_SQL, RANGE_SQL, MULTIKEY_SQL):
        vectorized = db.query(sql)
        planner_module.VECTORIZE = False
        db.clear_plan_cache()
        row_path = db.query(sql)
        planner_module.VECTORIZE = True
        db.clear_plan_cache()
        assert vectorized.rows == row_path.rows, sql


def test_obs_counters_index_scan_and_multikey(db):
    OBS.reset()
    OBS.enable()
    try:
        db.clear_plan_cache()
        db.query(HASH_SQL)
        db.query(RANGE_SQL)
        db.query(MULTIKEY_SQL)
        counters = OBS.metrics.counters()
        assert counters["minidb.vector.index_scan.probes"] >= 2
        assert counters["minidb.vector.index_scan.rowids"] >= 1
        assert counters["minidb.vector.multikey_join.count"] >= 1
    finally:
        OBS.disable()
        OBS.reset()


def test_obs_counters_numpy_columns(db):
    if not vector_module.HAS_NUMPY:
        pytest.skip("numpy not installed")
    saved = vector_module.NUMPY
    OBS.reset()
    OBS.enable()
    try:
        vector_module.NUMPY = True
        db.clear_plan_cache()
        db.query("SELECT id FROM t WHERE v > 0.5")
        counters = OBS.metrics.counters()
        # id/k/n/v are all int or float with no NULLs -> all mirrored.
        assert counters["minidb.vector.numpy.columns"] >= 1
    finally:
        vector_module.NUMPY = saved
        OBS.disable()
        OBS.reset()
