"""EXPLAIN ANALYZE row-accounting and rendering tests.

The accounting invariants, checked on a fixed schema and on
fuzzer-generated queries:

* every node's ``rows_in`` equals the sum of its children's ``rows_out``
  (derived that way, but the recursion over the *rendered* tree re-checks
  the linkage end to end);
* a non-DISTINCT plan's root node emits exactly ``len(result)`` rows;
  a DISTINCT plan's root emits at least that many (dedup consumes more);
* ``[cached]`` / ``[compiled-expr]`` markers render exactly as plain
  EXPLAIN renders them;
* the executed result matches a plain ``query()`` of the same SQL.
"""

import pytest

from repro.minidb import Database
from repro.testkit import CaseGenerator
from repro.testkit.dialects import MINIDB, bind_value, render_case


def _check_accounting(node):
    """Recursively assert rows_in == sum(children rows_out)."""
    assert node.rows_in == sum(child.rows_out for child in node.children)
    assert node.time_ms >= 0.0
    for child in node.children:
        _check_accounting(child)


def _assert_report_consistent(report, distinct):
    _check_accounting(report.root)
    if distinct:
        assert report.root.rows_out >= len(report.result)
    else:
        assert report.root.rows_out == len(report.result)


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE courses (id INT PRIMARY KEY, dep INT, units INT)"
    )
    database.execute(
        "CREATE TABLE enroll (sid INT, cid INT, grade FLOAT, "
        "PRIMARY KEY (sid, cid))"
    )
    for i in range(40):
        database.execute(
            "INSERT INTO courses VALUES (?, ?, ?)", [i, i % 5, 1 + i % 4]
        )
    for sid in range(25):
        for cid in range(0, 40, 5 + sid % 3):
            database.execute(
                "INSERT INTO enroll VALUES (?, ?, ?)",
                [sid, cid, float(sid % 4) + 1.0],
            )
    return database


FIXED_QUERIES = [
    ("SELECT id FROM courses WHERE dep = 2 ORDER BY id", False),
    ("SELECT dep, COUNT(*) AS n FROM courses GROUP BY dep", False),
    (
        "SELECT c.id, COUNT(*) AS n FROM courses c "
        "JOIN enroll e ON c.id = e.cid "
        "GROUP BY c.id HAVING COUNT(*) > 2 ORDER BY n DESC, c.id LIMIT 5",
        False,
    ),
    ("SELECT DISTINCT dep FROM courses ORDER BY dep", True),
    ("SELECT DISTINCT units FROM courses LIMIT 2", True),
    (
        "SELECT id FROM courses WHERE id IN "
        "(SELECT cid FROM enroll WHERE grade > 2.0) ORDER BY id",
        False,
    ),
    (
        "SELECT dep, AVG(units) AS mu FROM courses "
        "WHERE id > 3 GROUP BY dep ORDER BY mu LIMIT 3 OFFSET 1",
        False,
    ),
]


@pytest.mark.parametrize(
    "sql,distinct", FIXED_QUERIES, ids=[s[:40] for s, _d in FIXED_QUERIES]
)
def test_fixed_schema_accounting(db, sql, distinct):
    expected = db.query(sql).rows
    report = db.analyze(sql)
    assert report.result.rows == expected
    _assert_report_consistent(report, distinct)


def test_root_rows_out_equals_result_length(db):
    sql = "SELECT id, units FROM courses WHERE units >= 2"
    report = db.analyze(sql)
    assert report.root.rows_out == len(report.result)
    assert report.to_dict()["row_count"] == len(report.result)


def test_markers_render_under_analyze(db):
    sql = "SELECT id FROM courses WHERE dep = 1 ORDER BY id"
    cold = db.analyze(sql)
    assert not cold.cached
    assert "[cached]" not in cold.lines[0]
    assert "[compiled-expr]" in cold.lines[0]
    warm = db.analyze(sql)
    assert warm.cached
    assert "[cached]" in warm.lines[0]
    assert "[compiled-expr]" in warm.lines[0]
    # EXPLAIN ANALYZE through plain SQL renders the same markers.
    result = db.execute("EXPLAIN ANALYZE " + sql)
    assert result.columns == ["QUERY PLAN"]
    assert "[cached]" in result.rows[0][0]
    assert "[compiled-expr]" in result.rows[0][0]


def test_interpreted_plan_has_no_compiled_marker(db):
    import repro.minidb.planner as planner_module

    sql = "SELECT id FROM courses WHERE dep = 3"
    saved = planner_module.COMPILE_EXPRESSIONS
    planner_module.COMPILE_EXPRESSIONS = False
    db.clear_plan_cache()
    try:
        report = db.analyze(sql)
    finally:
        planner_module.COMPILE_EXPRESSIONS = saved
        db.clear_plan_cache()
    assert "[compiled-expr]" not in report.lines[0]
    assert not report.compiled


def test_analyze_with_parameters(db):
    sql = "SELECT id FROM courses WHERE dep = ? AND units > ? ORDER BY id"
    expected = db.query(sql, [2, 1]).rows
    report = db.analyze(sql, [2, 1])
    assert report.result.rows == expected
    _assert_report_consistent(report, distinct=False)


def test_analyze_rejects_non_select(db):
    from repro.errors import PlannerError

    with pytest.raises(PlannerError):
        db.analyze("INSERT INTO courses VALUES (99, 1, 1)")


def test_distinct_limit_renders_post_limit_wrapper(db):
    report = db.analyze("SELECT DISTINCT dep FROM courses LIMIT 2")
    assert report.lines[0].startswith("Limit(2 offset 0)")
    assert "(out=2)" in report.lines[0]
    assert any("Distinct Project" in line for line in report.lines)


def test_every_node_line_carries_counts(db):
    report = db.analyze(
        "SELECT c.dep, COUNT(*) AS n FROM courses c "
        "JOIN enroll e ON c.id = e.cid GROUP BY c.dep"
    )
    for line in report.lines[1:]:
        assert "in=" in line and "out=" in line and "time=" in line


@pytest.mark.parametrize("seed", [5, 29, 83, 131])
def test_fuzzer_generated_queries_balance(seed):
    """Replay a generated case; ANALYZE every successful query op."""
    rendered = render_case(CaseGenerator(seed).case()).minidb
    database = Database()
    for ddl in rendered.create:
        database.execute(ddl)
    analyzed = 0
    for op in rendered.ops:
        params = [bind_value(value, MINIDB) for value in op.params]
        if op.kind != "query":
            try:
                database.execute(op.sql, params or None)
            except Exception:
                pass
            continue
        try:
            expected = database.query(op.sql, params or None).rows
        except Exception:
            continue  # error-parity cases are the testkit suite's job
        report = database.analyze(op.sql, params or None)
        assert sorted(map(repr, report.result.rows)) == sorted(
            map(repr, expected)
        )
        distinct = any("Distinct Project" in line for line in report.lines)
        _assert_report_consistent(report, distinct)
        analyzed += 1
    assert analyzed > 0  # the seed actually exercised ANALYZE
