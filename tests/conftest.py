"""Shared Hypothesis profiles for every property-based suite.

Two profiles, selected with ``HYPOTHESIS_PROFILE`` (default ``dev``):

* ``dev`` — fast local iteration: few examples, no deadline;
* ``ci``  — thorough: an order of magnitude more examples for scheduled
  runs (``HYPOTHESIS_PROFILE=ci pytest ...``).

Both are **deterministic by default** (``derandomize=True``) so tier-1
never flakes on an unlucky draw; set ``HYPOTHESIS_DERANDOMIZE=0`` to let
Hypothesis explore fresh random examples (the nightly fuzz job does).

Individual tests keep only test-specific overrides in their own
``@settings(...)`` (e.g. a suppressed health check); example *counts*
come from the profile so one knob scales the whole repo.

``REPRO_VECTORIZE`` (default ``1``) selects the default execution path
for the whole run: ``REPRO_VECTORIZE=0`` pins ``planner.VECTORIZE`` off
so tier-1 exercises the row pipeline end to end — the CI matrix runs
both legs.  Tests that need a specific path still set the flag (and
clear plan caches) themselves.

``REPRO_SHARDS`` (default ``3``) sets the shard count the service-layer
equivalence tests build their :class:`repro.service.CourseRankService`
with; the CI matrix runs a ``REPRO_SHARDS=4`` leg so tier-1 exercises a
second sharding geometry end to end.

``REPRO_BACKEND`` (default ``minidb``) selects the execution backend the
:class:`~repro.courserank.recommendations.RecommendationService` routes
compiled-SQL workflow runs through; the CI matrix runs a
``REPRO_BACKEND=sqlite3`` leg so the whole tier-1 suite exercises the
DB-API driver end to end.  The variable is read lazily by
``repro.backends.registry.default_backend_name`` — nothing to pin here
beyond failing fast on an unknown name.
"""

import os

from hypothesis import settings

import repro.minidb.planner as _planner

_planner.VECTORIZE = os.environ.get("REPRO_VECTORIZE", "1") != "0"

# Fail fast (at collection, not mid-suite) if the run names a backend
# that is not registered.
_backend = os.environ.get("REPRO_BACKEND", "").strip().lower()
if _backend:
    from repro.backends.registry import REGISTRY as _backend_registry

    if not _backend_registry.is_registered(_backend):
        raise RuntimeError(
            f"REPRO_BACKEND={_backend!r} is not a registered backend; "
            f"available: {_backend_registry.names()}"
        )

_DERANDOMIZE = os.environ.get("HYPOTHESIS_DERANDOMIZE", "1") != "0"

settings.register_profile(
    "dev",
    max_examples=25,
    deadline=None,
    derandomize=_DERANDOMIZE,
    print_blob=True,
)
settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    derandomize=_DERANDOMIZE,
    print_blob=True,
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
