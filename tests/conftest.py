"""Shared Hypothesis profiles for every property-based suite.

Two profiles, selected with ``HYPOTHESIS_PROFILE`` (default ``dev``):

* ``dev`` — fast local iteration: few examples, no deadline;
* ``ci``  — thorough: an order of magnitude more examples for scheduled
  runs (``HYPOTHESIS_PROFILE=ci pytest ...``).

Both are **deterministic by default** (``derandomize=True``) so tier-1
never flakes on an unlucky draw; set ``HYPOTHESIS_DERANDOMIZE=0`` to let
Hypothesis explore fresh random examples (the nightly fuzz job does).

Individual tests keep only test-specific overrides in their own
``@settings(...)`` (e.g. a suppressed health check); example *counts*
come from the profile so one knob scales the whole repo.

``REPRO_VECTORIZE`` (default ``1``) selects the default execution path
for the whole run: ``REPRO_VECTORIZE=0`` pins ``planner.VECTORIZE`` off
so tier-1 exercises the row pipeline end to end — the CI matrix runs
both legs.  Tests that need a specific path still set the flag (and
clear plan caches) themselves.

``REPRO_SHARDS`` (default ``3``) sets the shard count the service-layer
equivalence tests build their :class:`repro.service.CourseRankService`
with; the CI matrix runs a ``REPRO_SHARDS=4`` leg so tier-1 exercises a
second sharding geometry end to end.
"""

import os

from hypothesis import settings

import repro.minidb.planner as _planner

_planner.VECTORIZE = os.environ.get("REPRO_VECTORIZE", "1") != "0"

_DERANDOMIZE = os.environ.get("HYPOTHESIS_DERANDOMIZE", "1") != "0"

settings.register_profile(
    "dev",
    max_examples=25,
    deadline=None,
    derandomize=_DERANDOMIZE,
    print_blob=True,
)
settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    derandomize=_DERANDOMIZE,
    print_blob=True,
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
