"""Tests for grade distributions and the privacy policies."""

import pytest

from repro.errors import PrivacyError
from repro.courserank.gradebook import GradeBook
from repro.courserank.privacy import PrivacyGuard, PrivacyPolicy
from repro.courserank.schema import new_database


@pytest.fixture()
def db():
    database = new_database()
    database.execute_script(
        """
        INSERT INTO Departments VALUES
          (1, 'Computer Science', 'Engineering', TRUE),
          (2, 'History', 'Humanities', FALSE);
        INSERT INTO Courses VALUES
          (1, 1, 'Intro CS', '', 5, ''),
          (2, 2, 'Intro History', '', 4, ''),
          (3, 1, 'Tiny Seminar', '', 2, ''),
          (4, 2, 'Unrated', '', 3, '');
        """
    )
    for suid in range(10, 22):
        database.execute(
            f"INSERT INTO Students VALUES ({suid}, 'S{suid}', 2010, 'CS', NULL)"
        )
    # Course 1 (Engineering): 6 self-reports + official histogram.
    grades = ["A", "A", "B", "B", "B", "C"]
    for offset, grade in enumerate(grades):
        database.execute(
            f"INSERT INTO Enrollments VALUES ({10 + offset}, 1, 2008, 'Aut', '{grade}')"
        )
    database.execute(
        "INSERT INTO OfficialGrades VALUES "
        "(1, 2008, 'A', 4), (1, 2008, 'B', 6), (1, 2008, 'C', 2)"
    )
    # Course 2 (History, no official release): 6 self-reports.
    for offset, grade in enumerate(["A", "B", "B", "C", "A", "B"]):
        database.execute(
            f"INSERT INTO Enrollments VALUES ({10 + offset}, 2, 2008, 'Win', '{grade}')"
        )
    # Course 3: only 2 reports (below the k threshold).
    database.execute(
        "INSERT INTO Enrollments VALUES (10, 3, 2008, 'Spr', 'A'), "
        "(11, 3, 2008, 'Spr', 'B')"
    )
    # Plans on course 1: two shared, one private.
    database.execute(
        "INSERT INTO Plans VALUES "
        "(19, 1, 2009, 'Aut', TRUE), (20, 1, 2009, 'Aut', TRUE), "
        "(21, 1, 2009, 'Aut', FALSE)"
    )
    return database


class TestGradeBook:
    def test_official_distribution(self, db):
        dist = GradeBook(db).official_distribution(1)
        assert dist.source == "official"
        assert dist.counts["B"] == 6
        assert dist.total == 12

    def test_official_missing(self, db):
        assert GradeBook(db).official_distribution(2) is None

    def test_self_reported(self, db):
        dist = GradeBook(db).self_reported_distribution(2)
        assert dist.source == "self-reported"
        assert dist.counts == {"A": 2, "B": 3, "C": 1, "D": 0, "F": 0}

    def test_self_reported_missing(self, db):
        assert GradeBook(db).self_reported_distribution(4) is None

    def test_department_release_flag(self, db):
        book = GradeBook(db)
        assert book.department_releases_official(1)
        assert not book.department_releases_official(2)

    def test_distribution_agreement_high_when_close(self, db):
        agreement = GradeBook(db).distribution_agreement(1)
        assert agreement is not None
        assert agreement > 0.8  # official ~ self-reported, paper's claim

    def test_agreement_none_without_official(self, db):
        assert GradeBook(db).distribution_agreement(2) is None

    def test_mean_points(self, db):
        dist = GradeBook(db).self_reported_distribution(2)
        # 2*4 + 3*3 + 1*2 = 19 over 6
        assert dist.mean_points() == pytest.approx(19 / 6)

    def test_fractions_sum_to_one(self, db):
        dist = GradeBook(db).official_distribution(1)
        assert sum(dist.fractions().values()) == pytest.approx(1.0)

    def test_courses_with_official(self, db):
        assert GradeBook(db).courses_with_official_grades() == [1]


class TestPrivacyGuard:
    def test_engineering_shows_official(self, db):
        guard = PrivacyGuard(db)
        dist = guard.visible_distribution(1)
        assert dist.source == "official"

    def test_non_release_department_shows_self_reported(self, db):
        guard = PrivacyGuard(db)
        dist = guard.visible_distribution(2)
        assert dist.source == "self-reported"

    def test_small_class_suppressed(self, db):
        guard = PrivacyGuard(db)
        with pytest.raises(PrivacyError, match="suppressed"):
            guard.visible_distribution(3)

    def test_no_data_suppressed(self, db):
        guard = PrivacyGuard(db)
        with pytest.raises(PrivacyError):
            guard.visible_distribution(4)

    def test_threshold_tunable(self, db):
        lenient = PrivacyGuard(db, PrivacyPolicy(min_distribution_size=2))
        assert lenient.visible_distribution(3).total == 2

    def test_distribution_or_none(self, db):
        guard = PrivacyGuard(db)
        assert guard.distribution_or_none(3) is None
        assert guard.distribution_or_none(1) is not None


class TestPlanSharing:
    def test_only_shared_visible(self, db):
        guard = PrivacyGuard(db)
        visible = guard.who_is_planning(1)
        assert [suid for suid, _name in visible] == [19, 20]

    def test_viewer_sees_own_private_entry(self, db):
        guard = PrivacyGuard(db)
        visible = guard.who_is_planning(1, viewer_suid=21)
        assert 21 in [suid for suid, _name in visible]

    def test_sharing_rate(self, db):
        guard = PrivacyGuard(db)
        assert guard.sharing_rate() == pytest.approx(2 / 3)

    def test_sharing_rate_empty(self):
        database = new_database()
        assert PrivacyGuard(database).sharing_rate() is None
