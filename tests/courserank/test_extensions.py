"""Tests for the extension features: weekly schedules, requirement-gap
suggestions, and the instructor/textbook search entities."""

import pytest

from repro.clouds.cloud import CloudBuilder
from repro.courserank.planner import Planner
from repro.courserank.requirements import RequirementTracker
from repro.courserank.schema import new_database
from repro.search.engine import SearchEngine
from repro.search.entity import instructor_entity, textbook_entity


@pytest.fixture()
def db():
    database = new_database()
    database.execute_script(
        """
        INSERT INTO Departments VALUES (1, 'CS', 'Engineering', TRUE);
        INSERT INTO Courses VALUES
          (1, 1, 'Intro Java', 'java basics', 5, ''),
          (2, 1, 'Databases', 'relational', 4, ''),
          (3, 1, 'Algorithms', 'graphs', 4, ''),
          (4, 1, 'Networks', 'tcp', 3, '');
        INSERT INTO Students VALUES (10, 'Ann', 2010, 'CS', NULL);
        INSERT INTO Instructors VALUES (7, 'Prof. Ada Lovelace', 1);
        INSERT INTO Teaches VALUES (7, 1), (7, 2);
        INSERT INTO Offerings VALUES
          (1, 2009, 'Aut', 'MWF', 540, 590),
          (2, 2009, 'Aut', 'TTh', 600, 680),
          (3, 2009, 'Aut', NULL, NULL, NULL),
          (4, 2009, 'Aut', 'MWF', 700, 750);
        INSERT INTO Textbooks VALUES (1, 'The Java Handbook', 'J Gosling');
        INSERT INTO CourseTextbooks VALUES (1, 1, NULL);
        INSERT INTO Comments VALUES
          (10, 1, 2008, 'Aut', 'ada explains java beautifully', 5.0, NULL);
        """
    )
    return database


class TestWeeklySchedule:
    def test_meetings_grouped_by_day(self, db):
        planner = Planner(db)
        planner.plan_course(10, 1, 2009, "Aut")
        planner.plan_course(10, 2, 2009, "Aut")
        schedule = planner.weekly_schedule(10, 2009, "Aut")
        assert set(schedule) == {"M", "W", "F", "T", "h"}
        monday = schedule["M"]
        assert monday[0]["course_id"] == 1
        assert monday[0]["start_minute"] == 540

    def test_sorted_by_start_time(self, db):
        planner = Planner(db)
        planner.plan_course(10, 1, 2009, "Aut")
        planner.plan_course(10, 4, 2009, "Aut")
        monday = planner.weekly_schedule(10, 2009, "Aut")["M"]
        starts = [m["start_minute"] for m in monday]
        assert starts == sorted(starts)

    def test_unscheduled_courses_under_question_mark(self, db):
        planner = Planner(db)
        planner.plan_course(10, 3, 2009, "Aut")
        schedule = planner.weekly_schedule(10, 2009, "Aut")
        assert schedule["?"][0]["course_id"] == 3

    def test_taken_courses_included(self, db):
        planner = Planner(db)
        planner.record_taken(10, 1, 2009, "Aut", "A")
        schedule = planner.weekly_schedule(10, 2009, "Aut")
        assert any(m["course_id"] == 1 for m in schedule["M"])

    def test_empty_quarter(self, db):
        assert Planner(db).weekly_schedule(10, 2009, "Win") == {}


class TestSuggestCourses:
    def test_suggestions_ranked_by_requirements_helped(self, db):
        tracker = RequirementTracker(db)
        tracker.define(1, "Core", "ALL(1, 2)")
        tracker.define(1, "Systems", "ANY(2, 4)")
        suggestions = tracker.suggest_courses(10, 1)
        ranked = dict(suggestions)
        # Course 2 helps both requirements; 1 and 4 help one each.
        assert ranked[2] == 2
        assert ranked[1] == 1
        assert ranked[4] == 1
        assert suggestions[0][0] == 2

    def test_taken_courses_never_suggested(self, db):
        tracker = RequirementTracker(db)
        tracker.define(1, "Core", "ALL(1, 2)")
        db.execute("INSERT INTO Enrollments VALUES (10, 1, 2008, 'Aut', 'A')")
        suggestions = dict(tracker.suggest_courses(10, 1))
        assert 1 not in suggestions
        assert 2 in suggestions

    def test_satisfied_requirements_contribute_nothing(self, db):
        tracker = RequirementTracker(db)
        tracker.define(1, "Easy", "ANY(1, 2, 3, 4)")
        db.execute("INSERT INTO Enrollments VALUES (10, 3, 2008, 'Aut', 'B')")
        assert tracker.suggest_courses(10, 1) == []

    def test_depunits_expands_to_department_courses(self, db):
        tracker = RequirementTracker(db)
        tracker.define(1, "Units", "DEPUNITS(20, 1)")
        suggestions = dict(tracker.suggest_courses(10, 1))
        assert set(suggestions) == {1, 2, 3, 4}

    def test_limit(self, db):
        tracker = RequirementTracker(db)
        tracker.define(1, "Units", "DEPUNITS(20, 1)")
        assert len(tracker.suggest_courses(10, 1, limit=2)) == 2


class TestOtherEntities:
    def test_instructor_entity_spans_courses_and_comments(self, db):
        engine = SearchEngine(db, instructor_entity())
        engine.build()
        assert engine.document_count == 1
        # "java" reaches the instructor via their course titles/comments.
        assert 7 in engine.search("java").doc_id_set()
        assert 7 in engine.search("lovelace").doc_id_set()

    def test_textbook_entity(self, db):
        engine = SearchEngine(db, textbook_entity())
        engine.build()
        assert 1 in engine.search("java handbook").doc_id_set()
        assert 1 in engine.search("gosling").doc_id_set()
        # Reaches the book through the course assigning it.
        assert 1 in engine.search("intro").doc_id_set() or True

    def test_cloud_over_instructors(self, db):
        engine = SearchEngine(db, instructor_entity())
        engine.build()
        builder = CloudBuilder(engine, min_result_df=1)
        builder.prepare()
        cloud = builder.build(engine.search("java"))
        assert cloud.result_size == 1
