"""Tests for the CourseCloudSearch wiring (search + clouds + resolution)."""

import pytest

from repro.courserank.cloudsearch import CourseCloudSearch
from repro.datagen import generate_university


@pytest.fixture(scope="module")
def search():
    service = CourseCloudSearch(generate_university(scale="tiny", seed=42))
    service.build()
    return service


class TestBuild:
    def test_build_counts(self, search):
        assert search.engine.document_count == 48

    def test_lazy_build(self):
        service = CourseCloudSearch(generate_university(scale="tiny", seed=42))
        # search() triggers the build transparently.
        result, _cloud = service.search("design")
        assert service.engine.document_count == 48


class TestSearch:
    def test_search_returns_pair(self, search):
        result, cloud = search.search("programming")
        assert cloud.result_size == len(result)

    def test_limit_truncates_hits_not_cloud(self, search):
        full, full_cloud = search.search("design")
        if len(full) <= 1:
            pytest.skip("need multiple hits at this scale")
        limited, limited_cloud = search.search("design", limit=1)
        assert len(limited) == 1
        # The cloud still summarizes the whole result set.
        assert limited_cloud.result_size == full_cloud.result_size

    def test_count(self, search):
        result, _cloud = search.search("circuits")
        assert search.count("circuits") == len(result)


class TestResolution:
    def test_resolve_preserves_rank_order(self, search):
        result, _cloud = search.search("design")
        resolved = search.resolve_courses(result, limit=10)
        scores = [row["score"] for row in resolved]
        assert scores == sorted(scores, reverse=True)

    def test_resolve_includes_department(self, search):
        result, _cloud = search.search("design")
        for row in search.resolve_courses(result, limit=3):
            assert row["Department"]

    def test_resolve_empty_result(self, search):
        result, _cloud = search.search("zzzznope")
        assert search.resolve_courses(result) == []


class TestSession:
    def test_session_starts_at_query(self, search):
        session = search.session("design")
        assert session.depth == 0
        assert session.query == "design"

    def test_session_refines_with_cloud_terms(self, search):
        session = search.session("design")
        if not session.cloud.terms:
            pytest.skip("empty cloud at tiny scale")
        before = len(session.result)
        session.refine(session.cloud.terms[0].term)
        assert len(session.result) <= before
