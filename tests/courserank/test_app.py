"""Tests for the CourseRank facade over generated data."""

import pytest

from repro.errors import AuthorizationError, CourseRankError
from repro.courserank.accounts import Role


class TestFacadeWiring:
    def test_components_inventory(self, shared_app):
        components = shared_app.components()
        for expected in (
            "search", "course_cloud", "flexrecs", "planner",
            "requirement_tracker", "forum", "incentives", "privacy",
        ):
            assert expected in components

    def test_site_statistics_match_generation(self, shared_app):
        stats = shared_app.site_statistics()
        assert stats["courses"] == 48
        assert stats["comments"] == 150
        assert stats["ratings"] == 100
        assert stats["students"] == 30
        assert stats["student_users"] == 24

    def test_course_lookup(self, shared_app):
        course = shared_app.course(1)
        assert course.course_id == 1
        assert course.title
        with pytest.raises(CourseRankError):
            shared_app.course(99999)

    def test_course_page_sections(self, shared_app):
        page = shared_app.course_page(1)
        assert set(page) >= {
            "course", "average_rating", "comments", "grade_distribution",
            "planning_to_take", "offerings", "textbooks", "instructors",
        }
        assert page["instructors"]
        assert page["offerings"]


class TestSearchThroughFacade:
    def test_search_returns_cloud(self, shared_app):
        result, cloud = shared_app.search_courses("programming")
        if len(result) > 0:
            assert cloud.result_size == len(result)

    def test_session_refinement(self, shared_app):
        session = shared_app.search_session("circuits")
        if session.cloud.terms:
            before = len(session.result)
            session.refine(session.cloud.terms[0].term)
            assert len(session.result) <= before

    def test_resolve_courses(self, shared_app):
        result, _cloud = shared_app.search_courses("design")
        resolved = shared_app.cloudsearch.resolve_courses(result, limit=5)
        assert len(resolved) <= 5
        for row in resolved:
            assert "Title" in row and "score" in row


class TestAuthenticatedActions:
    def test_student_comment_awards_points(self, app):
        user = app.accounts.authenticate("student1")
        app.comment_on_course(user, 1, "solid intro", 4.0)
        assert app.incentives.total(user.user_id) == 6  # comment 5 + rating 1

    def test_faculty_cannot_comment(self, app):
        faculty_username = app.db.query(
            "SELECT Username FROM Users WHERE Role = 'faculty' LIMIT 1"
        ).scalar()
        user = app.accounts.authenticate(faculty_username)
        with pytest.raises(AuthorizationError):
            app.comment_on_course(user, 1, "nice", 4.0)

    def test_faculty_note_own_course_only(self, app):
        row = app.db.query(
            "SELECT u.Username, t.CourseID FROM Users u "
            "JOIN Teaches t ON u.PersonID = t.InstructorID "
            "WHERE u.Role = 'faculty' LIMIT 1"
        ).rows[0]
        username, own_course = row
        user = app.accounts.authenticate(username)
        note_id = app.add_faculty_note(user, own_course, "syllabus updated")
        assert note_id >= 1
        other_course = app.db.query(
            "SELECT c.CourseID FROM Courses c LEFT JOIN Teaches t "
            f"ON c.CourseID = t.CourseID AND t.InstructorID = {user.person_id} "
            "WHERE t.CourseID IS NULL LIMIT 1"
        ).scalar()
        with pytest.raises(AuthorizationError):
            app.add_faculty_note(user, other_course, "not mine")

    def test_staff_define_requirement(self, app):
        user = app.accounts.authenticate("staff1")
        req_id = app.define_requirement(user, 1, "Extra", "ANY(1, 2)")
        assert req_id >= 1
        student = app.accounts.authenticate("student1")
        with pytest.raises(AuthorizationError):
            app.define_requirement(student, 1, "Nope", "ANY(1)")

    def test_report_textbook_dedupes(self, app):
        user = app.accounts.authenticate("student1")
        first = app.report_textbook(user, 1, "Custom Reader", "A. Author")
        second = app.report_textbook(user, 1, "Custom Reader", "A. Author")
        assert first == second
        count = app.db.query(
            "SELECT COUNT(*) FROM CourseTextbooks WHERE CourseID = 1 "
            f"AND TextbookID = {first}"
        ).scalar()
        assert count == 1

    def test_compare_course_to_department(self, app):
        faculty_username = app.db.query(
            "SELECT Username FROM Users WHERE Role = 'faculty' LIMIT 1"
        ).scalar()
        user = app.accounts.authenticate(faculty_username)
        report = app.compare_course_to_department(user, 1)
        assert "course_average" in report and "department_average" in report


class TestRecommendationsThroughFacade:
    def test_strategy_registry(self, shared_app):
        names = shared_app.recommendations.available()
        assert "collaborative_filtering" in names
        assert "related_courses" in names

    def test_custom_strategy_registration(self, app):
        from repro.core import strategies

        app.recommendations.register(
            "my_related", lambda course_id, top_k=5: strategies.related_courses(
                course_id, top_k=top_k
            )
        )
        result = app.recommendations.run("my_related", course_id=1)
        assert result is not None

    def test_unknown_strategy(self, shared_app):
        with pytest.raises(Exception):
            shared_app.recommendations.run("astrology")

    def test_courses_for_student_excludes_taken(self, shared_app):
        suid = shared_app.db.query(
            "SELECT SuID FROM Comments WHERE Rating IS NOT NULL LIMIT 1"
        ).scalar()
        taken = set(
            shared_app.db.query(
                f"SELECT CourseID FROM Enrollments WHERE SuID = {suid}"
            ).column("CourseID")
        )
        recs = shared_app.recommendations.courses_for_student(suid, top_k=5)
        for row in recs.rows:
            assert row["CourseID"] not in taken
            assert "missing_prerequisites" in row

    def test_both_paths_available(self, shared_app):
        direct = shared_app.recommendations.run(
            "related_courses", course_id=1, path="direct"
        )
        compiled = shared_app.recommendations.run(
            "related_courses", course_id=1, path="sql"
        )
        assert direct.column("CourseID") == compiled.column("CourseID")
