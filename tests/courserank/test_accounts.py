"""Tests for constituencies, registration, and authorization."""

import pytest

from repro.errors import AuthorizationError, CourseRankError
from repro.courserank.accounts import PERMISSIONS, AccountManager, Role, User
from repro.courserank.schema import new_database


@pytest.fixture()
def db():
    database = new_database()
    database.execute("INSERT INTO Departments VALUES (1, 'CS', 'Engineering', TRUE)")
    database.execute("INSERT INTO Students VALUES (10, 'Ann', 2010, 'CS', 3.5)")
    database.execute("INSERT INTO Instructors VALUES (7, 'Prof. X', 1)")
    return database


@pytest.fixture()
def manager(db):
    return AccountManager(db)


class TestRegistration:
    def test_student_registration(self, manager):
        user = manager.register("ann", Role.STUDENT, person_id=10)
        assert user.role is Role.STUDENT
        assert user.person_id == 10

    def test_student_requires_registry_row(self, manager):
        with pytest.raises(AuthorizationError):
            manager.register("ghost", Role.STUDENT, person_id=999)
        with pytest.raises(AuthorizationError):
            manager.register("ghost", Role.STUDENT, person_id=None)

    def test_faculty_requires_instructor_row(self, manager):
        user = manager.register("profx", Role.FACULTY, person_id=7)
        assert user.role is Role.FACULTY
        with pytest.raises(AuthorizationError):
            manager.register("ghost", Role.FACULTY, person_id=999)

    def test_staff_needs_no_person(self, manager):
        user = manager.register("registrar", Role.STAFF)
        assert user.person_id is None

    def test_duplicate_username_rejected(self, manager):
        manager.register("ann", Role.STUDENT, person_id=10)
        with pytest.raises(Exception):
            manager.register("ann", Role.STAFF)

    def test_empty_username_rejected(self, manager):
        with pytest.raises(CourseRankError):
            manager.register("", Role.STAFF)


class TestLookup:
    def test_authenticate(self, manager):
        manager.register("ann", Role.STUDENT, person_id=10)
        user = manager.authenticate("ann")
        assert user.username == "ann"
        assert user.role is Role.STUDENT

    def test_authenticate_unknown(self, manager):
        with pytest.raises(AuthorizationError):
            manager.authenticate("nobody")

    def test_get_by_id(self, manager):
        created = manager.register("ann", Role.STUDENT, person_id=10)
        fetched = manager.get(created.user_id)
        assert fetched == created

    def test_get_unknown_id(self, manager):
        with pytest.raises(AuthorizationError):
            manager.get(12345)

    def test_count_by_role(self, manager):
        manager.register("ann", Role.STUDENT, person_id=10)
        manager.register("profx", Role.FACULTY, person_id=7)
        manager.register("reg", Role.STAFF)
        assert manager.count_by_role() == {
            "student": 1,
            "faculty": 1,
            "staff": 1,
        }


class TestAuthorization:
    def make(self, manager, role):
        if role is Role.STUDENT:
            return manager.register("s", role, person_id=10)
        if role is Role.FACULTY:
            return manager.register("f", role, person_id=7)
        return manager.register("t", role)

    def test_students_comment_faculty_do_not(self, manager):
        student = self.make(manager, Role.STUDENT)
        faculty = self.make(manager, Role.FACULTY)
        manager.authorize(student, "comment")
        with pytest.raises(AuthorizationError):
            manager.authorize(faculty, "comment")

    def test_staff_define_requirements(self, manager):
        staff = self.make(manager, Role.STAFF)
        student = self.make(manager, Role.STUDENT)
        manager.authorize(staff, "define_requirement")
        with pytest.raises(AuthorizationError):
            manager.authorize(student, "define_requirement")

    def test_faculty_notes_faculty_only(self, manager):
        faculty = self.make(manager, Role.FACULTY)
        staff = self.make(manager, Role.STAFF)
        manager.authorize(faculty, "faculty_note")
        with pytest.raises(AuthorizationError):
            manager.authorize(staff, "faculty_note")

    def test_everyone_searches(self, manager):
        for role in Role:
            user = User(user_id=1, username="u", role=role)
            manager.authorize(user, "search")

    def test_unknown_action(self, manager):
        user = self.make(manager, Role.STAFF)
        with pytest.raises(CourseRankError):
            manager.authorize(user, "launch_rockets")

    def test_can_helper(self, manager):
        student = self.make(manager, Role.STUDENT)
        assert manager.can(student, "comment")
        assert not manager.can(student, "seed_faq")

    def test_every_action_has_some_allowed_role(self):
        for action, roles in PERMISSIONS.items():
            assert roles, f"action {action} allows nobody"

    def test_role_parse(self):
        assert Role.parse("student") is Role.STUDENT
        with pytest.raises(CourseRankError):
            Role.parse("superuser")
