"""Tests for the Planner: plans, conflicts, prerequisites, GPAs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CourseRankError, PlannerConflictError
from repro.courserank.models import Offering
from repro.courserank.planner import Planner, term_order
from repro.courserank.schema import new_database


@pytest.fixture()
def db():
    database = new_database()
    database.execute(
        "INSERT INTO Departments VALUES (1, 'CS', 'Engineering', TRUE)"
    )
    database.execute(
        "INSERT INTO Courses VALUES "
        "(1, 1, 'Intro', '', 5, ''), (2, 1, 'Adv', '', 3, ''), "
        "(3, 1, 'Sem', '', 4, ''), (4, 1, 'Lab', '', 2, '')"
    )
    database.execute("INSERT INTO Prerequisites VALUES (2, 1)")
    database.execute(
        "INSERT INTO Students VALUES (10, 'Ann', 2010, 'CS', NULL)"
    )
    # Courses 1 and 2 overlap MWF mornings in Aut 2009; 3 is afternoons.
    database.execute(
        "INSERT INTO Offerings VALUES "
        "(1, 2009, 'Aut', 'MWF', 540, 590), "
        "(2, 2009, 'Aut', 'MWF', 560, 650), "
        "(3, 2009, 'Aut', 'TTh', 780, 890), "
        "(4, 2009, 'Win', 'MWF', 540, 590), "
        "(1, 2008, 'Aut', 'MWF', 540, 590), "
        "(2, 2008, 'Win', 'MWF', 540, 590)"
    )
    return database


@pytest.fixture()
def planner(db):
    return Planner(db)


class TestTermOrder:
    def test_ordering(self):
        assert term_order(2008, "Aut") < term_order(2009, "Aut")
        assert term_order(2008, "Aut") < term_order(2008, "Win")
        assert term_order(2008, "Win") < term_order(2008, "Spr")

    def test_unknown_term(self):
        with pytest.raises(CourseRankError):
            term_order(2008, "Fall")


class TestOfferingOverlap:
    def make(self, days, start, end, term="Aut"):
        return Offering(1, 2009, term, days, start, end)

    def test_overlapping_times_same_days(self):
        assert self.make("MWF", 540, 590).overlaps(self.make("MWF", 560, 650))

    def test_disjoint_times(self):
        assert not self.make("MWF", 540, 590).overlaps(self.make("MWF", 600, 650))

    def test_back_to_back_not_conflict(self):
        assert not self.make("MWF", 540, 590).overlaps(self.make("MWF", 590, 640))

    def test_different_days(self):
        assert not self.make("MWF", 540, 590).overlaps(self.make("TTh", 540, 590))

    def test_shared_day_conflicts(self):
        assert self.make("MW", 540, 590).overlaps(self.make("WF", 540, 590))

    def test_different_terms(self):
        assert not self.make("MWF", 540, 590).overlaps(
            self.make("MWF", 540, 590, term="Win")
        )

    def test_missing_times_no_conflict(self):
        silent = Offering(1, 2009, "Aut", None, None, None)
        assert not silent.overlaps(self.make("MWF", 540, 590))


class TestPlanning:
    def test_plan_course(self, planner, db):
        planner.plan_course(10, 3, 2009, "Aut")
        assert db.query("SELECT COUNT(*) FROM Plans").scalar() == 1

    def test_conflict_detected_and_rejected(self, planner):
        planner.plan_course(10, 1, 2009, "Aut")
        with pytest.raises(PlannerConflictError):
            planner.plan_course(10, 2, 2009, "Aut")

    def test_conflict_allowed_when_requested(self, planner):
        planner.plan_course(10, 1, 2009, "Aut")
        conflicts = planner.plan_course(10, 2, 2009, "Aut", allow_conflicts=True)
        assert len(conflicts) == 1
        assert {conflicts[0].course_a, conflicts[0].course_b} == {1, 2}

    def test_check_quarter_reports_pairs(self, planner):
        planner.plan_course(10, 1, 2009, "Aut")
        planner.plan_course(10, 2, 2009, "Aut", allow_conflicts=True)
        planner.plan_course(10, 3, 2009, "Aut")
        conflicts = planner.check_quarter(10, 2009, "Aut")
        assert len(conflicts) == 1

    def test_unknown_course(self, planner):
        with pytest.raises(CourseRankError):
            planner.plan_course(10, 999, 2009, "Aut")

    def test_already_taken_rejected(self, planner):
        planner.record_taken(10, 1, 2008, "Aut", "A")
        with pytest.raises(CourseRankError):
            planner.plan_course(10, 1, 2009, "Aut")

    def test_replan_moves_course(self, planner, db):
        planner.plan_course(10, 4, 2009, "Win")
        planner.plan_course(10, 4, 2009, "Win", shared=False)
        assert db.query("SELECT COUNT(*) FROM Plans").scalar() == 1

    def test_unplan(self, planner):
        planner.plan_course(10, 3, 2009, "Aut")
        assert planner.unplan_course(10, 3)
        assert not planner.unplan_course(10, 3)

    def test_sharing_toggle(self, planner, db):
        planner.plan_course(10, 3, 2009, "Aut", shared=True)
        planner.set_plan_sharing(10, 3, False)
        assert db.query("SELECT Shared FROM Plans").scalar() is False
        with pytest.raises(CourseRankError):
            planner.set_plan_sharing(10, 999, True)


class TestPrerequisites:
    def test_missing_prereq_warned(self, planner):
        planner.plan_course(10, 2, 2009, "Aut")
        warnings = planner.prerequisite_warnings(10)
        assert len(warnings) == 1
        assert warnings[0].missing_prereq == 1

    def test_prereq_taken_earlier_ok(self, planner):
        planner.record_taken(10, 1, 2008, "Aut", "A")
        planner.plan_course(10, 2, 2009, "Aut")
        assert planner.prerequisite_warnings(10) == []

    def test_prereq_planned_later_warned(self, planner):
        planner.plan_course(10, 2, 2009, "Aut")
        planner.plan_course(10, 1, 2009, "Aut", allow_conflicts=True)
        warnings = planner.prerequisite_warnings(10)
        # Prereq in the same quarter does not count as "earlier".
        assert len(warnings) == 1


class TestGpa:
    def test_quarter_gpa_unit_weighted(self, planner):
        planner.record_taken(10, 1, 2008, "Aut", "A")  # 5 units * 4.0
        planner.record_taken(10, 2, 2008, "Win", "C")  # 3 units * 2.0
        assert planner.quarter_gpa(10, 2008, "Aut") == 4.0
        assert planner.cumulative_gpa(10) == pytest.approx((20 + 6) / 8)

    def test_ungraded_courses_ignored(self, planner):
        planner.record_taken(10, 1, 2008, "Aut", None)
        assert planner.cumulative_gpa(10) is None

    def test_student_gpa_column_refreshed(self, planner, db):
        planner.record_taken(10, 1, 2008, "Aut", "B")
        assert db.query(
            "SELECT GPA FROM Students WHERE SuID = 10"
        ).scalar() == pytest.approx(3.0)

    def test_bad_grade_rejected(self, planner):
        with pytest.raises(CourseRankError):
            planner.record_taken(10, 1, 2008, "Aut", "A+")

    def test_taking_course_removes_plan(self, planner, db):
        planner.plan_course(10, 4, 2009, "Win")
        planner.record_taken(10, 4, 2009, "Win", "B")
        assert db.query("SELECT COUNT(*) FROM Plans").scalar() == 0


class TestFourYearView:
    def test_plan_structure(self, planner):
        planner.record_taken(10, 1, 2008, "Aut", "A")
        planner.plan_course(10, 3, 2009, "Aut")
        plan = planner.four_year_plan(10)
        assert list(plan) == [(2008, "Aut"), (2009, "Aut")]
        assert plan[(2008, "Aut")][0]["status"] == "taken"
        assert plan[(2009, "Aut")][0]["status"] == "planned"

    def test_quarter_units(self, planner):
        planner.plan_course(10, 3, 2009, "Aut")  # 4 units
        planner.record_taken(10, 1, 2008, "Aut", "A")
        assert planner.quarter_units(10, 2009, "Aut") == 4
        assert planner.quarter_units(10, 2008, "Aut") == 5

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([1, 2, 3, 4]),
                st.sampled_from(["A", "B", "C", "D", "F"]),
            ),
            max_size=4,
            unique_by=lambda pair: pair[0],
        )
    )
    def test_gpa_matches_manual_computation(self, records):
        database = new_database()
        database.execute(
            "INSERT INTO Departments VALUES (1, 'CS', 'Engineering', TRUE)"
        )
        database.execute(
            "INSERT INTO Courses VALUES "
            "(1, 1, 'A', '', 5, ''), (2, 1, 'B', '', 3, ''), "
            "(3, 1, 'C', '', 4, ''), (4, 1, 'D', '', 2, '')"
        )
        database.execute(
            "INSERT INTO Students VALUES (10, 'Ann', 2010, 'CS', NULL)"
        )
        planner = Planner(database)
        from repro.courserank.schema import GRADE_POINTS

        units_of = {1: 5, 2: 3, 3: 4, 4: 2}
        for course_id, grade in records:
            planner.record_taken(10, course_id, 2008, "Aut", grade)
        expected_units = sum(units_of[c] for c, _g in records)
        if expected_units == 0:
            assert planner.cumulative_gpa(10) is None
        else:
            expected = (
                sum(GRADE_POINTS[g] * units_of[c] for c, g in records)
                / expected_units
            )
            assert planner.cumulative_gpa(10) == pytest.approx(expected)
