"""Tests for the Q&A forum (routing, FAQ seeding) and the point ledger."""

import datetime

import pytest

from repro.errors import CourseRankError
from repro.courserank.forum import Forum
from repro.courserank.incentives import POINT_SCHEDULE, IncentiveLedger
from repro.courserank.schema import new_database


@pytest.fixture()
def db():
    database = new_database()
    database.execute(
        "INSERT INTO Departments VALUES (1, 'CS', 'Engineering', TRUE)"
    )
    database.execute(
        "INSERT INTO Courses VALUES (1, 1, 'Intro', '', 5, ''), "
        "(2, 1, 'Adv', '', 3, '')"
    )
    database.execute(
        "INSERT INTO Students VALUES "
        "(10, 'Ann', 2010, 'CS', 3.5), (11, 'Bob', 2011, 'CS', 3.0), "
        "(12, 'Eve', 2009, 'CS', 3.2), (13, 'Joe', 2009, 'CS', 2.2)"
    )
    # 10, 11, 12 took course 1; 11 commented on it (most engaged).
    database.execute(
        "INSERT INTO Enrollments VALUES "
        "(10, 1, 2008, 'Aut', 'A'), (11, 1, 2008, 'Aut', 'B'), "
        "(12, 1, 2008, 'Aut', 'A'), (13, 2, 2008, 'Win', 'C')"
    )
    database.execute(
        "INSERT INTO Comments VALUES "
        "(11, 1, 2008, 'Aut', 'tips inside', 4.0, '2008-10-01')"
    )
    database.execute(
        "INSERT INTO Users VALUES (1, 'ann', 'student', 10)"
    )
    return database


@pytest.fixture()
def forum(db):
    return Forum(db)


class TestAsking:
    def test_ask_routes_to_takers(self, forum):
        question = forum.ask(13, "how are the exams?", course_id=1)
        routed = forum.routed_to(11)
        assert question.question_id in routed
        # Commenter 11 is the most engaged -> routed first.
        targets = forum.route_targets(course_id=1, dep_id=None)
        assert targets[0] == 11

    def test_asker_not_routed_to_self(self, forum):
        forum.ask(10, "question", course_id=1)
        assert forum.routed_to(10) == []

    def test_department_routing(self, forum):
        targets = forum.route_targets(course_id=None, dep_id=1)
        assert set(targets) == {10, 11, 12, 13}

    def test_route_cap(self, db):
        forum = Forum(db, max_routes=2)
        assert len(forum.route_targets(course_id=1, dep_id=None)) <= 2

    def test_empty_question_rejected(self, forum):
        with pytest.raises(CourseRankError):
            forum.ask(10, "  ", course_id=1)


class TestAnswering:
    def test_answer_flow(self, forum):
        question = forum.ask(10, "exams?", course_id=1)
        answer = forum.answer(question.question_id, 11, "two midterms")
        answers = forum.answers_for(question.question_id)
        assert [a.answer_id for a in answers] == [answer.answer_id]

    def test_answer_unknown_question(self, forum):
        with pytest.raises(CourseRankError):
            forum.answer(999, 11, "text")

    def test_empty_answer_rejected(self, forum):
        question = forum.ask(10, "exams?", course_id=1)
        with pytest.raises(CourseRankError):
            forum.answer(question.question_id, 11, "")

    def test_best_answer_by_asker_only(self, forum):
        question = forum.ask(10, "exams?", course_id=1)
        answer = forum.answer(question.question_id, 11, "two midterms")
        with pytest.raises(CourseRankError):
            forum.mark_best(question.question_id, answer.answer_id, by_suid=11)
        forum.mark_best(question.question_id, answer.answer_id, by_suid=10)
        answers = forum.answers_for(question.question_id)
        assert answers[0].best

    def test_best_answer_is_single(self, forum):
        question = forum.ask(10, "exams?", course_id=1)
        first = forum.answer(question.question_id, 11, "a")
        second = forum.answer(question.question_id, 12, "b")
        forum.mark_best(question.question_id, first.answer_id, by_suid=10)
        forum.mark_best(question.question_id, second.answer_id, by_suid=10)
        best = [a for a in forum.answers_for(question.question_id) if a.best]
        assert [a.answer_id for a in best] == [second.answer_id]

    def test_best_answer_must_belong(self, forum):
        q1 = forum.ask(10, "one", course_id=1)
        q2 = forum.ask(10, "two", course_id=1)
        answer = forum.answer(q2.question_id, 11, "for q2")
        with pytest.raises(CourseRankError):
            forum.mark_best(q1.question_id, answer.answer_id, by_suid=10)


class TestSeedingAndStats:
    def test_seed_faq(self, forum):
        ids = forum.seed_faq(
            [
                ("Who approves my program?", "The department manager."),
                ("Good intro for non-majors?", "Course 1."),
            ],
            dep_id=1,
        )
        assert len(ids) == 2
        answers = forum.answers_for(ids[0])
        assert answers[0].best  # official answers are pre-marked best
        stats = forum.stats()
        assert stats["official_seeded"] == 2
        assert stats["unanswered"] == 0

    def test_unanswered_listing(self, forum):
        question = forum.ask(10, "lonely question", course_id=1)
        assert forum.unanswered() == [question.question_id]
        forum.answer(question.question_id, 11, "reply")
        assert forum.unanswered() == []


class TestIncentives:
    @pytest.fixture()
    def ledger(self, db):
        return IncentiveLedger(db)

    def test_award_matches_schedule(self, ledger):
        for action, points in POINT_SCHEDULE.items():
            if action == "daily_login":
                continue
            assert ledger.award(1, action) == points

    def test_total_and_breakdown(self, ledger):
        ledger.award(1, "comment")
        ledger.award(1, "comment")
        ledger.award(1, "rate_course")
        assert ledger.total(1) == 11
        assert ledger.breakdown(1) == {"comment": 10, "rate_course": 1}

    def test_daily_login_idempotent_per_day(self, ledger):
        day = datetime.date(2008, 10, 1)
        assert ledger.award(1, "daily_login", day=day) == 1
        assert ledger.award(1, "daily_login", day=day) == 0
        next_day = datetime.date(2008, 10, 2)
        assert ledger.award(1, "daily_login", day=next_day) == 1
        assert ledger.total(1) == 2

    def test_unknown_action(self, ledger):
        with pytest.raises(CourseRankError):
            ledger.award(1, "bribe")

    def test_leaderboard(self, db, ledger):
        db.execute("INSERT INTO Users VALUES (2, 'bob', 'student', 11)")
        ledger.award(1, "comment")
        ledger.award(2, "best_answer")
        board = ledger.leaderboard()
        assert board[0] == (2, 10)
        assert board[1] == (1, 5)

    def test_action_counts(self, ledger):
        ledger.award(1, "comment")
        ledger.award(1, "ask_question")
        assert ledger.action_counts() == {"comment": 1, "ask_question": 1}

    def test_total_of_unknown_user_is_zero(self, ledger):
        assert ledger.total(999) == 0
