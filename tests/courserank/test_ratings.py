"""Tests for comments, ratings, and helpfulness votes."""

import pytest

from repro.errors import CourseRankError
from repro.courserank.ratings import RatingsService
from repro.courserank.schema import new_database


@pytest.fixture()
def db():
    database = new_database()
    database.execute(
        "INSERT INTO Departments VALUES (1, 'CS', 'Engineering', TRUE)"
    )
    database.execute(
        "INSERT INTO Courses VALUES (1, 1, 'Intro', 'x', 5, ''), (2, 1, 'Adv', 'y', 3, '')"
    )
    database.execute(
        "INSERT INTO Students VALUES (10, 'Ann', 2010, 'CS', 3.5), "
        "(11, 'Bob', 2011, 'CS', 3.0), (12, 'Eve', 2009, 'CS', 3.2)"
    )
    return database


@pytest.fixture()
def service(db):
    return RatingsService(db)


class TestAddComment:
    def test_basic(self, service):
        comment = service.add_comment(10, 1, "great course", 4.5)
        assert comment.rating == 4.5

    def test_requires_content(self, service):
        with pytest.raises(CourseRankError):
            service.add_comment(10, 1, None, None)

    def test_rating_range(self, service):
        with pytest.raises(CourseRankError):
            service.add_comment(10, 1, "x", 0.5)
        with pytest.raises(CourseRankError):
            service.add_comment(10, 1, "x", 5.5)

    def test_rating_only_allowed(self, service):
        comment = service.add_comment(10, 1, None, 3.0)
        assert comment.text is None

    def test_replaces_existing(self, service, db):
        service.add_comment(10, 1, "first", 2.0)
        service.add_comment(10, 1, "second", 4.0)
        assert db.query("SELECT COUNT(*) FROM Comments").scalar() == 1
        assert service.average_rating(1) == 4.0

    def test_unknown_student_rejected_by_fk(self, service):
        with pytest.raises(Exception):
            service.add_comment(999, 1, "x", 3.0)


class TestVotes:
    def test_vote_and_tally(self, service):
        service.add_comment(10, 1, "useful", 4.0)
        service.vote_comment(11, 10, 1, helpful=True)
        service.vote_comment(12, 10, 1, helpful=False)
        comments = service.comments_for_course(1)
        assert comments[0].helpful_votes == 1
        assert comments[0].unhelpful_votes == 1
        assert comments[0].helpfulness == 0.5

    def test_revote_replaces(self, service):
        service.add_comment(10, 1, "useful", 4.0)
        service.vote_comment(11, 10, 1, helpful=False)
        service.vote_comment(11, 10, 1, helpful=True)
        comments = service.comments_for_course(1)
        assert comments[0].helpful_votes == 1
        assert comments[0].unhelpful_votes == 0

    def test_self_vote_rejected(self, service):
        service.add_comment(10, 1, "useful", 4.0)
        with pytest.raises(CourseRankError):
            service.vote_comment(10, 10, 1, helpful=True)

    def test_vote_on_missing_comment(self, service):
        with pytest.raises(CourseRankError):
            service.vote_comment(11, 10, 1, helpful=True)

    def test_ordering_by_helpfulness(self, service):
        service.add_comment(10, 1, "meh", 3.0)
        service.add_comment(11, 1, "helpful one", 3.0)
        service.vote_comment(12, 11, 1, helpful=True)
        comments = service.comments_for_course(1)
        assert comments[0].suid == 11


class TestDeleteAndAggregates:
    def test_delete_comment_and_votes(self, service, db):
        service.add_comment(10, 1, "x", 4.0)
        service.vote_comment(11, 10, 1, helpful=True)
        assert service.delete_comment(10, 1)
        assert db.query("SELECT COUNT(*) FROM CommentVotes").scalar() == 0
        assert not service.delete_comment(10, 1)

    def test_average_and_count(self, service):
        service.add_comment(10, 1, "a", 5.0)
        service.add_comment(11, 1, "b", 3.0)
        service.add_comment(12, 1, "c", None)
        assert service.average_rating(1) == 4.0
        assert service.rating_count(1) == 2
        assert service.average_rating(2) is None

    def test_top_rated_requires_minimum(self, service):
        service.add_comment(10, 1, "a", 5.0)
        service.add_comment(11, 1, "b", 5.0)
        service.add_comment(12, 1, "c", 5.0)
        service.add_comment(10, 2, "d", 5.0)
        top = service.top_rated_courses(min_ratings=3)
        assert [entry[0] for entry in top] == [1]
