"""Tests for the faculty/administrator analytics dashboards."""

import pytest

from repro.courserank.analytics import Analytics
from repro.courserank.schema import new_database


@pytest.fixture()
def db():
    database = new_database()
    database.execute_script(
        """
        INSERT INTO Departments VALUES
          (1, 'CS', 'Engineering', TRUE), (2, 'History', 'Humanities', FALSE);
        INSERT INTO Courses VALUES
          (1, 1, 'Intro', '', 5, ''), (2, 1, 'Adv', '', 3, ''),
          (3, 2, 'Hist', '', 4, ''), (4, 1, 'Unloved', '', 2, '');
        INSERT INTO Instructors VALUES
          (7, 'Prof. Star', 1), (8, 'Prof. Meh', 1), (9, 'Prof. New', 2);
        INSERT INTO Teaches VALUES (7, 1), (8, 2), (9, 3);
        INSERT INTO Students VALUES
          (10, 'A', 2010, 'CS', NULL), (11, 'B', 2010, 'CS', NULL),
          (12, 'C', 2011, 'History', NULL), (13, 'D', 2011, 'CS', NULL);
        INSERT INTO Enrollments VALUES
          (10, 1, 2008, 'Aut', 'A'), (11, 1, 2008, 'Aut', 'B'),
          (12, 3, 2008, 'Win', 'B'), (13, 2, 2008, 'Spr', 'C');
        INSERT INTO Comments VALUES
          (10, 1, 2008, 'Aut', 'great', 5.0, '2008-10-01'),
          (11, 1, 2008, 'Aut', 'good', 4.5, '2008-10-02'),
          (13, 1, 2008, 'Aut', 'fine', 4.0, '2008-10-03'),
          (12, 3, 2008, 'Win', 'long', 2.0, '2008-10-04'),
          (10, 2, 2008, 'Spr', 'ok', 3.0, '2008-10-05'),
          (11, 2, 2008, 'Spr', 'meh', 2.5, '2008-10-06'),
          (13, 2, 2008, 'Spr', 'nah', 2.0, '2008-10-07');
        """
    )
    return database


@pytest.fixture()
def analytics(db):
    return Analytics(db)


class TestDepartmentReport:
    def test_counts(self, analytics):
        report = analytics.department_report(1)
        assert report.courses == 3
        assert report.rated_courses == 2  # course 4 has no comments
        assert report.comments == 6
        assert report.enrollments == 3

    def test_average(self, analytics):
        report = analytics.department_report(1)
        assert report.average_rating == pytest.approx(
            (5.0 + 4.5 + 4.0 + 3.0 + 2.5 + 2.0) / 6
        )

    def test_rating_coverage(self, analytics):
        assert analytics.department_report(1).rating_coverage == pytest.approx(
            2 / 3
        )

    def test_all_departments(self, analytics):
        reports = analytics.all_departments()
        assert [report.dep_id for report in reports] == [1, 2]


class TestInstructorRatings:
    def test_ranked_by_average(self, analytics):
        ranked = analytics.instructor_ratings(min_ratings=3)
        assert [row[0] for row in ranked] == [7, 8]
        assert ranked[0][2] > ranked[1][2]

    def test_min_ratings_suppression(self, analytics):
        # Prof. New has one rating: suppressed at the default threshold.
        ranked = analytics.instructor_ratings(min_ratings=3)
        assert 9 not in [row[0] for row in ranked]
        lenient = analytics.instructor_ratings(min_ratings=1)
        assert 9 in [row[0] for row in lenient]

    def test_department_filter(self, analytics):
        ranked = analytics.instructor_ratings(dep_id=2, min_ratings=1)
        assert [row[0] for row in ranked] == [9]


class TestParticipation:
    def test_by_class_year(self, analytics):
        participation = analytics.participation_by_class_year()
        assert participation[2010] == {
            "students": 2, "commenters": 2, "comments": 4,
        }
        assert participation[2011]["commenters"] == 2


class TestCourseViews:
    def test_unrated_courses(self, analytics):
        assert analytics.unrated_courses(1) == [4]
        assert analytics.unrated_courses(2) == []

    def test_rating_percentile(self, analytics):
        # Course 1 avg 4.5, course 2 avg 2.5, course 3 avg 2.0.
        assert analytics.course_rating_percentile(1) == pytest.approx(1.0)
        assert analytics.course_rating_percentile(3) == pytest.approx(0.0)
        assert analytics.course_rating_percentile(2) == pytest.approx(0.5)

    def test_percentile_none_for_unrated(self, analytics):
        assert analytics.course_rating_percentile(4) is None
