"""Tests for the requirement rule DSL and tracker."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RequirementError
from repro.courserank.requirements import (
    RequirementTracker,
    StudentContext,
    parse_rule,
)
from repro.courserank.schema import new_database


def ctx(courses, units=None, departments=None):
    return StudentContext(
        set(courses),
        units or {course: 4 for course in courses},
        departments or {course: 1 for course in courses},
    )


class TestRuleParsing:
    def test_all(self):
        rule = parse_rule("ALL(1, 2, 3)")
        assert rule.satisfied(ctx({1, 2, 3}))
        assert not rule.satisfied(ctx({1, 2}))

    def test_any(self):
        rule = parse_rule("ANY(1, 2)")
        assert rule.satisfied(ctx({2}))
        assert not rule.satisfied(ctx({3}))

    def test_course(self):
        rule = parse_rule("COURSE(7)")
        assert rule.satisfied(ctx({7}))
        assert not rule.satisfied(ctx({8}))

    def test_atleast(self):
        rule = parse_rule("ATLEAST(2, 1, 2, 3)")
        assert rule.satisfied(ctx({1, 3}))
        assert not rule.satisfied(ctx({1}))

    def test_units(self):
        rule = parse_rule("UNITS(8, 1, 2, 3)")
        assert rule.satisfied(ctx({1, 2}, units={1: 5, 2: 3}))
        assert not rule.satisfied(ctx({1}, units={1: 5}))

    def test_depunits(self):
        rule = parse_rule("DEPUNITS(6, 2)")
        good = ctx({1, 2}, units={1: 4, 2: 4}, departments={1: 2, 2: 2})
        bad = ctx({1}, units={1: 4}, departments={1: 2})
        assert rule.satisfied(good)
        assert not rule.satisfied(bad)

    def test_and_or_precedence(self):
        rule = parse_rule("COURSE(1) OR COURSE(2) AND COURSE(3)")
        # OR(1, AND(2,3))
        assert rule.satisfied(ctx({1}))
        assert rule.satisfied(ctx({2, 3}))
        assert not rule.satisfied(ctx({2}))

    def test_parentheses(self):
        rule = parse_rule("(COURSE(1) OR COURSE(2)) AND COURSE(3)")
        assert rule.satisfied(ctx({1, 3}))
        assert not rule.satisfied(ctx({1}))

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "ALL()",
            "ATLEAST(2)",
            "DEPUNITS(6, 2, 3)",
            "NOPE(1)",
            "ALL(1) trailing",
            "ALL(1",
            "ALL(x)",
            "COURSE(1, 2)",
            "ALL(1 2)",
        ],
    )
    def test_bad_rules_rejected(self, bad):
        with pytest.raises(RequirementError):
            parse_rule(bad)


class TestGaps:
    def test_all_reports_missing(self):
        rule = parse_rule("ALL(1, 2, 3)")
        gaps = rule.gaps(ctx({1}))
        assert len(gaps) == 2
        assert any("2" in gap for gap in gaps)

    def test_atleast_counts_remaining(self):
        rule = parse_rule("ATLEAST(3, 1, 2, 3, 4)")
        gaps = rule.gaps(ctx({1}))
        assert "2 more" in gaps[0]

    def test_or_reports_closest_branch(self):
        rule = parse_rule("ALL(1, 2, 3) OR COURSE(9)")
        gaps = rule.gaps(ctx({1, 2}))
        # The ALL branch needs 1 course; the COURSE branch needs 1 too, but
        # both have a single gap — either is acceptable; just one gap line.
        assert len(gaps) == 1

    def test_satisfied_rule_no_gaps(self):
        rule = parse_rule("ANY(1, 2)")
        assert rule.gaps(ctx({1})) == []


class TestMonotonicity:
    RULES = [
        "ALL(1, 2)",
        "ANY(3, 4)",
        "ATLEAST(2, 1, 2, 3)",
        "UNITS(8, 1, 2, 3)",
        "DEPUNITS(8, 1)",
        "(ALL(1, 2) OR ANY(4, 5)) AND ATLEAST(1, 6, 7)",
    ]

    @given(
        st.sets(st.integers(min_value=1, max_value=8), max_size=6),
        st.integers(min_value=1, max_value=8),
        st.sampled_from(RULES),
    )
    def test_adding_courses_never_unsatisfies(self, courses, extra, rule_text):
        rule = parse_rule(rule_text)
        before = rule.satisfied(ctx(courses))
        after = rule.satisfied(ctx(courses | {extra}))
        if before:
            assert after


class TestTracker:
    @pytest.fixture()
    def db(self):
        database = new_database()
        database.execute(
            "INSERT INTO Departments VALUES (1, 'CS', 'Engineering', TRUE)"
        )
        database.execute(
            "INSERT INTO Courses VALUES "
            "(1, 1, 'Intro', '', 5, ''), (2, 1, 'Adv', '', 3, ''), "
            "(3, 1, 'Elective A', '', 4, ''), (4, 1, 'Elective B', '', 4, '')"
        )
        database.execute(
            "INSERT INTO Students VALUES (10, 'Ann', 2010, 'CS', NULL)"
        )
        database.execute(
            "INSERT INTO Offerings VALUES (3, 2009, 'Aut', NULL, NULL, NULL)"
        )
        return database

    def test_define_validates_rule(self, db):
        tracker = RequirementTracker(db)
        with pytest.raises(RequirementError):
            tracker.define(1, "Broken", "ALL(")
        req_id = tracker.define(1, "Core", "ALL(1, 2)")
        assert req_id == 1

    def test_check_against_enrollments(self, db):
        tracker = RequirementTracker(db)
        tracker.define(1, "Core", "ALL(1, 2)")
        db.execute("INSERT INTO Enrollments VALUES (10, 1, 2008, 'Aut', 'A')")
        statuses = tracker.check(10, 1)
        assert not statuses[0].satisfied
        db.execute("INSERT INTO Enrollments VALUES (10, 2, 2008, 'Win', 'B')")
        statuses = tracker.check(10, 1)
        assert statuses[0].satisfied

    def test_planned_courses_count_optionally(self, db):
        tracker = RequirementTracker(db)
        tracker.define(1, "Elective", "ANY(3, 4)")
        db.execute("INSERT INTO Plans VALUES (10, 3, 2009, 'Aut', TRUE)")
        with_planned = tracker.check(10, 1, include_planned=True)
        without = tracker.check(10, 1, include_planned=False)
        assert with_planned[0].satisfied
        assert not without[0].satisfied

    def test_unmet_filter(self, db):
        tracker = RequirementTracker(db)
        tracker.define(1, "Core", "ALL(1)")
        tracker.define(1, "Elective", "ANY(3, 4)")
        db.execute("INSERT INTO Enrollments VALUES (10, 1, 2008, 'Aut', 'A')")
        unmet = tracker.unmet(10, 1)
        assert [status.name for status in unmet] == ["Elective"]
        assert unmet[0].missing

    def test_requirements_for_listing(self, db):
        tracker = RequirementTracker(db)
        tracker.define(1, "Core", "ALL(1)")
        listed = tracker.requirements_for(1)
        assert listed == [(1, "Core", "ALL(1)")]
