"""Shared fixtures for application-layer tests."""

import pytest

from repro.courserank.app import CourseRank
from repro.datagen import generate_university


@pytest.fixture(scope="module")
def tiny_db():
    """A generated tiny university, shared read-mostly per module."""
    return generate_university(scale="tiny", seed=42)


@pytest.fixture()
def app():
    """A fresh tiny CourseRank app (mutating tests get their own)."""
    return CourseRank(generate_university(scale="tiny", seed=42))


@pytest.fixture(scope="module")
def shared_app(tiny_db):
    return CourseRank(tiny_db)
