"""Property battery for the FolkRank ranker (the ISSUE's hypothesis leg).

Four determinism hypotheses, each over generated graphs:

* the rank vector is a distribution — scores sum to 1 within 1e-9;
* scores are **bit-identical** under any permutation of user ids
  (integer weights + ``math.fsum`` make accumulation order irrelevant);
* repeated runs over the same adjacency are bit-identical;
* a live engine refreshed incrementally across DML churn produces
  differentials bit-identical to a cold engine over the final state.

The graphs are built through the real ``build_layer`` SQL over a minimal
schema carrying exactly the columns the layers read, so the properties
cover the extraction path, not just the arithmetic.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.graphrank import (
    GraphRankEngine,
    TripartiteAdjacency,
    build_layer,
    power_iteration,
)
from repro.minidb import Database

VOCAB = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
USER_IDS = list(range(1, 9))
COURSE_IDS = list(range(1, 7))


def make_db(enrollments=(), comments=(), titles=()):
    """A minimal database carrying exactly the layer source columns."""
    db = Database()
    db.execute("CREATE TABLE Enrollments (SuID INTEGER, CourseID INTEGER)")
    db.execute(
        "CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER, Text TEXT)"
    )
    db.execute(
        "CREATE TABLE Courses "
        "(CourseID INTEGER PRIMARY KEY, Title TEXT, Description TEXT)"
    )
    courses = db.table("Courses")
    titled = dict(titles)
    for course_id in COURSE_IDS:
        courses.insert(
            [course_id, titled.get(course_id, ""), ""]
        )
    table = db.table("Enrollments")
    for suid, course_id in enrollments:
        table.insert([suid, course_id])
    table = db.table("Comments")
    for suid, course_id, text in comments:
        table.insert([suid, course_id, text])
    return db


def adjacency_of(db):
    layers = {
        name: build_layer(name, db)
        for name in ("enrollment", "comment", "content")
    }
    return TripartiteAdjacency(layers)


enrollment_lists = st.lists(
    st.tuples(st.sampled_from(USER_IDS), st.sampled_from(COURSE_IDS)),
    min_size=1,
    max_size=24,
)

comment_lists = st.lists(
    st.tuples(
        st.sampled_from(USER_IDS),
        st.sampled_from(COURSE_IDS),
        st.lists(st.sampled_from(VOCAB), min_size=0, max_size=3).map(
            " ".join
        ),
    ),
    max_size=12,
)


class TestNormalization:
    @given(enrollments=enrollment_lists, comments=comment_lists)
    @settings(deadline=None)
    def test_scores_sum_to_one(self, enrollments, comments):
        adjacency = adjacency_of(make_db(enrollments, comments))
        result = power_iteration(adjacency)
        assert result.converged
        assert abs(math.fsum(result.scores.values()) - 1.0) <= 1e-9

    @given(
        enrollments=enrollment_lists,
        comments=comment_lists,
        seed_user=st.sampled_from(USER_IDS),
    )
    @settings(deadline=None)
    def test_biased_scores_also_sum_to_one(
        self, enrollments, comments, seed_user
    ):
        adjacency = adjacency_of(make_db(enrollments, comments))
        result = power_iteration(
            adjacency, preference=(("user", seed_user),)
        )
        assert abs(math.fsum(result.scores.values()) - 1.0) <= 1e-9


class TestPermutationInvariance:
    @given(
        enrollments=enrollment_lists,
        comments=comment_lists,
        permuted=st.permutations(USER_IDS),
    )
    @settings(deadline=None)
    def test_user_id_relabeling_is_bit_identical(
        self, enrollments, comments, permuted
    ):
        mapping = dict(zip(USER_IDS, permuted))
        base = power_iteration(
            adjacency_of(make_db(enrollments, comments))
        )
        relabeled = power_iteration(
            adjacency_of(
                make_db(
                    [(mapping[u], c) for u, c in enrollments],
                    [(mapping[u], c, t) for u, c, t in comments],
                )
            )
        )
        assert base.iterations == relabeled.iterations
        for node, score in base.scores.items():
            if node[0] == "user":
                node = ("user", mapping[node[1]])
            assert relabeled.scores[node] == score


class TestDeterminism:
    @given(
        enrollments=enrollment_lists,
        comments=comment_lists,
        seed_user=st.sampled_from(USER_IDS),
    )
    @settings(deadline=None)
    def test_repeated_runs_are_bit_identical(
        self, enrollments, comments, seed_user
    ):
        adjacency = adjacency_of(make_db(enrollments, comments))
        preference = (("user", seed_user),)
        first = power_iteration(adjacency, preference=preference)
        second = power_iteration(adjacency, preference=preference)
        assert first.scores == second.scores
        assert first.iterations == second.iterations
        assert first.delta == second.delta


churn_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("enroll"),
            st.sampled_from(USER_IDS),
            st.sampled_from(COURSE_IDS),
        ),
        st.tuples(
            st.just("comment"),
            st.sampled_from(USER_IDS),
            st.sampled_from(COURSE_IDS),
            st.lists(st.sampled_from(VOCAB), min_size=1, max_size=3).map(
                " ".join
            ),
        ),
        st.tuples(
            st.just("retitle"),
            st.sampled_from(COURSE_IDS),
            st.sampled_from(VOCAB),
        ),
    ),
    min_size=1,
    max_size=8,
)


def _apply(db, op):
    if op[0] == "enroll":
        db.execute(
            f"INSERT INTO Enrollments VALUES ({op[1]}, {op[2]})"
        )
    elif op[0] == "comment":
        db.execute(
            f"INSERT INTO Comments VALUES ({op[1]}, {op[2]}, '{op[3]}')"
        )
    else:
        db.execute(
            f"UPDATE Courses SET Title = '{op[2]}' WHERE CourseID = {op[1]}"
        )


class TestIncrementalEqualsCold:
    @given(
        enrollments=enrollment_lists,
        comments=comment_lists,
        ops=churn_ops,
        seed_user=st.sampled_from(USER_IDS),
    )
    @settings(deadline=None)
    def test_differential_after_churn_matches_cold_engine(
        self, enrollments, comments, ops, seed_user
    ):
        live_db = make_db(enrollments, comments)
        live = GraphRankEngine(live_db)
        live.refresh()
        for op in ops:
            _apply(live_db, op)
            live.refresh()  # exercise the layer-reuse path every step
        cold_db = make_db(enrollments, comments)
        for op in ops:
            _apply(cold_db, op)
        cold = GraphRankEngine(cold_db)
        preference = (("user", seed_user),)
        assert live.differential(preference) == cold.differential(preference)
        assert live.layers_reused > 0
