"""Version-keyed tripartite adjacency: layers, merges, invalidation.

The determinism story of the whole graphrank stack rests on two facts
pinned here: edge weights are exact integers (so merge order cannot
matter), and each layer's version key snapshots exactly its own source
tables (so a write elsewhere reuses the layer verbatim).
"""

import pytest

from repro.datagen import generate_university
from repro.errors import GraphRankError
from repro.graphrank import (
    LAYER_ORDER,
    LAYER_TABLES,
    GraphRankEngine,
    TripartiteAdjacency,
    build_layer,
    layer_version,
)


@pytest.fixture(scope="module")
def db():
    return generate_university(scale="tiny", seed=7)


def _fresh_pair(database, course_id):
    """A (SuID, course_id) pair that satisfies both FKs and the PK."""
    commented = {
        tuple(row)
        for row in database.query(
            "SELECT SuID, CourseID FROM Comments"
        ).rows
    }
    for (suid,) in database.query(
        "SELECT SuID FROM Students ORDER BY SuID"
    ).rows:
        if (suid, course_id) not in commented:
            return suid, course_id
    raise AssertionError("no free (student, course) pair at this scale")


def test_layer_order_covers_every_table_spec():
    assert set(LAYER_ORDER) == set(LAYER_TABLES)


def test_unknown_layer_raises(db):
    with pytest.raises(GraphRankError):
        build_layer("bogus", db)


def test_missing_layer_rejected_at_merge(db):
    enrollment = build_layer("enrollment", db)
    with pytest.raises(GraphRankError):
        TripartiteAdjacency({"enrollment": enrollment})


def test_edges_are_symmetric_integers(db):
    adjacency = GraphRankEngine(db).refresh()
    assert len(adjacency) > 0 and adjacency.edge_count > 0
    for node, neighbors in adjacency.neighbors.items():
        for neighbor, weight in neighbors.items():
            assert type(weight) is int and weight >= 1
            assert adjacency.neighbors[neighbor][node] == weight
        assert adjacency.degrees[node] == sum(neighbors.values())


def test_every_node_has_a_kind_and_degree(db):
    adjacency = GraphRankEngine(db).refresh()
    kinds = {node[0] for node in adjacency.nodes}
    assert kinds <= {"user", "course", "term"}
    assert all(adjacency.degrees[node] >= 1 for node in adjacency.nodes)


def test_version_key_moves_only_with_source_tables(db):
    before = {name: layer_version(db, name) for name in LAYER_ORDER}
    suid, course_id = _fresh_pair(db, 2)
    db.execute(
        "INSERT INTO Comments VALUES "
        f"({suid}, {course_id}, 2008, 'Autumn', "
        "'adjacency probe text', 4.0, '2008-01-01')"
    )
    try:
        after = {name: layer_version(db, name) for name in LAYER_ORDER}
        assert after["comment"] != before["comment"]
        assert after["enrollment"] == before["enrollment"]
        assert after["content"] == before["content"]
    finally:
        db.execute("DELETE FROM Comments WHERE Text = 'adjacency probe text'")


def test_incremental_refresh_reuses_untouched_layers(db):
    engine = GraphRankEngine(db)
    engine.refresh()
    rebuilt, reused = engine.layers_rebuilt, engine.layers_reused
    suid, course_id = _fresh_pair(db, 3)
    db.execute(
        "INSERT INTO Comments VALUES "
        f"({suid}, {course_id}, 2008, 'Winter', "
        "'incremental probe text', 3.5, '2008-01-02')"
    )
    try:
        engine.refresh()
        # Only the comment layer went stale.
        assert engine.layers_rebuilt == rebuilt + 1
        assert engine.layers_reused == reused + 2
    finally:
        db.execute(
            "DELETE FROM Comments WHERE Text = 'incremental probe text'"
        )


def test_incremental_merge_equals_cold_build(db):
    live = GraphRankEngine(db)
    live.refresh()
    suid, course_id = _fresh_pair(db, 4)
    db.execute(
        "INSERT INTO Comments VALUES "
        f"({suid}, {course_id}, 2008, 'Spring', "
        "'merge parity probe', 5.0, '2008-01-03')"
    )
    try:
        incremental = live.refresh()
        cold = GraphRankEngine(db).refresh()
        assert incremental.version_key() == cold.version_key()
        assert incremental.nodes == cold.nodes
        assert incremental.neighbors == cold.neighbors
        assert incremental.degrees == cold.degrees
    finally:
        db.execute("DELETE FROM Comments WHERE Text = 'merge parity probe'")


def test_for_database_returns_one_shared_engine(db):
    assert GraphRankEngine.for_database(db) is GraphRankEngine.for_database(db)
