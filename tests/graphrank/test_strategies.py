"""Graph-backed FlexRecs strategies, end to end.

``graph_rank_courses`` / ``similar_by_folkrank`` are direct-only
workflows: they must run through :class:`RecommendationService` on every
requested path (any SQL-ish path reroutes to the reference executor),
refuse to compile, route through the sharded service layer, and feed the
cloud scoring exposure deterministically.
"""

import os

import pytest

from repro.core import strategies
from repro.courserank import CourseRank
from repro.datagen import generate_university
from repro.errors import CompilationError, GraphRankError
from repro.graphrank import GraphRankEngine, GraphWeightedScoring
from repro.service import CourseRankService

REPRO_SHARDS = int(os.environ.get("REPRO_SHARDS", "3"))


@pytest.fixture(scope="module")
def app():
    return CourseRank(generate_university(scale="tiny", seed=7))


def _scores(recommendation):
    return [row["score"] for row in recommendation.rows]


class TestGraphRankCourses:
    def test_end_to_end_via_recommendation_service(self, app):
        recommendation = app.recommendations.run(
            "graph_rank_courses", student_id=1, top_k=5
        )
        assert 0 < len(recommendation.rows) <= 5
        assert "score" in recommendation.columns
        scores = _scores(recommendation)
        assert scores == sorted(scores, reverse=True)
        known = set(app.db.query("SELECT CourseID FROM Courses").column(
            "CourseID"
        ))
        assert {row["CourseID"] for row in recommendation.rows} <= known

    def test_every_requested_path_reroutes_to_direct(self, app):
        baseline = app.recommendations.run(
            "graph_rank_courses", student_id=1, top_k=5
        )
        for path in ("direct", "sql", "staged", "minidb"):
            rerouted = app.recommendations.run(
                "graph_rank_courses", student_id=1, top_k=5, path=path
            )
            assert rerouted.as_tuples("CourseID", "score") == (
                baseline.as_tuples("CourseID", "score")
            )

    def test_courses_for_student_post_processing(self, app):
        recommendation = app.recommendations.courses_for_student(
            1, strategy="graph_rank_courses", top_k=5
        )
        taken = set(
            app.db.query(
                "SELECT CourseID FROM Enrollments WHERE SuID = 1"
            ).column("CourseID")
        )
        assert len(recommendation.rows) <= 5
        for row in recommendation.rows:
            assert row["CourseID"] not in taken
            assert "missing_prerequisites" in row

    def test_workflow_refuses_to_compile(self, app):
        workflow = strategies.graph_rank_courses(1, top_k=5)
        assert workflow.direct_only
        with pytest.raises(CompilationError):
            workflow.compiled_for(app.db)

    def test_repeated_runs_are_bit_identical(self, app):
        first = app.recommendations.run(
            "graph_rank_courses", student_id=1, top_k=8
        )
        second = app.recommendations.run(
            "graph_rank_courses", student_id=1, top_k=8
        )
        assert first.as_tuples("CourseID", "score") == second.as_tuples(
            "CourseID", "score"
        )


class TestSimilarByFolkrank:
    def test_seed_course_is_excluded(self, app):
        recommendation = app.recommendations.run(
            "similar_by_folkrank", course_id=4, top_k=6
        )
        assert recommendation.rows
        assert 4 not in {row["CourseID"] for row in recommendation.rows}

    def test_matches_engine_ranking(self, app):
        recommendation = app.recommendations.run(
            "similar_by_folkrank", course_id=4, top_k=6
        )
        expected = GraphRankEngine.for_database(app.db).rank_courses(
            (("course", 4),), top_k=6
        )
        assert recommendation.as_tuples("CourseID", "score") == [
            tuple(pair) for pair in expected
        ]


class TestShardedService:
    @pytest.fixture(scope="class")
    def service(self):
        return CourseRankService(
            generate_university(scale="tiny", seed=7),
            num_shards=REPRO_SHARDS,
        )

    def test_graph_rank_courses_matches_the_unsharded_app(
        self, app, service
    ):
        base = app.recommendations.run(
            "graph_rank_courses", student_id=1, top_k=5
        )
        sharded = service.recommend(
            "graph_rank_courses", student_id=1, top_k=5
        )
        assert sharded.rows
        assert sharded.columns == base.columns
        assert sharded.as_tuples(*base.columns) == base.as_tuples(
            *base.columns
        )

    def test_similar_by_folkrank_matches_the_unsharded_app(
        self, app, service
    ):
        base = app.recommendations.run(
            "similar_by_folkrank", course_id=2, top_k=5
        )
        sharded = service.recommend(
            "similar_by_folkrank", course_id=2, top_k=5
        )
        assert sharded.rows
        assert 2 not in {row["CourseID"] for row in sharded.rows}
        assert sharded.as_tuples(*base.columns) == base.as_tuples(
            *base.columns
        )

    def test_union_merge_reuses_layers_across_calls(self, service):
        engine = service.graphrank
        service.recommend("graph_rank_courses", student_id=2, top_k=5)
        rebuilt, reused = engine.layers_rebuilt, engine.layers_reused
        service.recommend("graph_rank_courses", student_id=3, top_k=5)
        assert engine.layers_rebuilt == rebuilt  # merge is warm
        assert engine.layers_reused > reused


class TestGraphWeightedScoring:
    def test_negative_boost_rejected(self, app):
        with pytest.raises(GraphRankError):
            GraphWeightedScoring(app.graph, (("user", 1),), boost=-1.0)

    def test_boost_only_lifts_positive_differentials(self, app):
        app.cloudsearch.ensure_built()
        builder = app.cloudsearch.builder
        plain = builder.with_scoring("popularity")
        boosted = builder.with_scoring(
            GraphWeightedScoring(app.graph, (("user", 1),), boost=500.0)
        )
        weights = app.graph.term_weights((("user", 1),))
        docs = tuple(plain.source.engine.index.document_ids())
        plain_cloud = plain.build_for_docs(docs)
        boosted_cloud = boosted.build_for_docs(docs)
        plain_scores = {term.term: term.score for term in plain_cloud.terms}
        boosted_scores = {
            term.term: term.score for term in boosted_cloud.terms
        }
        lifted = dropped = 0
        for term, score in plain_scores.items():
            if term not in boosted_scores:
                continue
            lift = weights.get(term, 0.0)
            if lift > 0.0 and score > 0:
                assert boosted_scores[term] == score * (1.0 + 500.0 * lift)
                lifted += 1
            else:
                assert boosted_scores[term] == score
                dropped += 1
        assert lifted > 0  # the preference actually moved some terms

    def test_weights_snapshot_is_deterministic(self, app):
        one = GraphWeightedScoring(app.graph, (("course", 3),))
        two = GraphWeightedScoring(app.graph, (("course", 3),))
        assert one.weights() == two.weights()
