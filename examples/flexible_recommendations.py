#!/usr/bin/env python
"""FlexRecs: declarative recommendation workflows (Section 3.2).

Run:  python examples/flexible_recommendations.py [scale]

Shows the administrator's view of FlexRecs: the Figure 5 workflows as
operator trees, their compiled SQL, a custom strategy registered at run
time, and the personalization options the paper describes (taste-based vs
grade-based neighbours, major recommendation, quarter recommendation).
"""

import sys

from repro.core import NumericCloseness, Recommend, Select, Source, Workflow
from repro.core import strategies
from repro.courserank import CourseRank
from repro.datagen import generate_university


def pick_active_student(app: CourseRank) -> int:
    return app.db.query(
        "SELECT SuID FROM Comments WHERE Rating IS NOT NULL "
        "GROUP BY SuID HAVING COUNT(*) >= 3 ORDER BY SuID LIMIT 1"
    ).scalar()


def show_figure5_workflows(app: CourseRank, suid: int) -> None:
    print("== Figure 5(a): related-course workflow ==")
    course_id = app.db.query(
        "SELECT CourseID FROM Courses ORDER BY CourseID LIMIT 1"
    ).scalar()
    workflow = strategies.related_courses(course_id, top_k=5)
    print(workflow.explain())
    result = workflow.run(app.db)
    for row in result.rows:
        print(f"  [{row['score']:.2f}] {row['Title']}")

    print("\n== Figure 5(b): collaborative-filtering workflow ==")
    workflow = strategies.collaborative_filtering(suid, top_k=5)
    print(workflow.explain())
    print("\n  compiles to SQL (excerpt):")
    sql = workflow.to_sql(app.db)
    print("   ", sql[:200], "...")
    direct = workflow.run(app.db)
    compiled = workflow.run_sql(app.db)
    print(f"\n  rank-identical across paths: "
          f"{direct.column('CourseID') == compiled.column('CourseID')}")
    for row in direct.rows:
        print(f"  [{row['score']:.2f}] {row['Title']}")


def show_personalization(app: CourseRank, suid: int) -> None:
    print("\n== Personalization: taste vs grades ==")
    taste = app.recommendations.run(
        "collaborative_filtering", student_id=suid, top_k=5
    )
    grades = app.recommendations.run(
        "grade_based_filtering", student_id=suid, top_k=5
    )
    print("  taste-based :", taste.column("CourseID"))
    print("  grade-based :", grades.column("CourseID"))

    print("\n== Recommended majors for an undeclared student ==")
    majors = app.recommendations.run("recommended_majors", student_id=suid)
    for row in majors.rows[:3]:
        print(f"  [{row['score']:.2f}] {row['Name']}")

    course_id = app.db.query(
        "SELECT CourseID FROM Enrollments GROUP BY CourseID "
        "ORDER BY COUNT(*) DESC LIMIT 1"
    ).scalar()
    print(f"\n== Best quarter to take course {course_id} ==")
    quarters = app.recommendations.run("recommended_quarters", course_id=course_id)
    for row in quarters.rows:
        print(f"  {row['Term']}: {row['score']:.0f} students historically")


def register_custom_strategy(app: CourseRank, suid: int) -> None:
    print("\n== A custom strategy, registered by the administrator ==")

    def study_buddies(student_id: int, top_k: int = 5) -> Workflow:
        """Classmates in the same class year with the closest GPA."""
        me = Select(Source("Students"), f"SuID = {student_id}")
        return Workflow(
            Recommend(
                target=Source("Students"),
                reference=me,
                comparator=NumericCloseness("GPA", "GPA", scale=0.3),
                target_key="SuID",
                top_k=top_k,
                exclude_self=("SuID", "SuID"),
            ),
            name="study_buddies",
        )

    app.recommendations.register("study_buddies", study_buddies)
    result = app.recommendations.run("study_buddies", student_id=suid)
    for row in result.rows:
        print(f"  [{row['score']:.2f}] {row['Name']} (GPA {row['GPA']})")


def show_dsl_and_execution_modes(app: CourseRank, suid: int) -> None:
    print("\n== The textual workflow language ==")
    app.recommendations.register_dsl(
        "dsl_buddies",
        "source Students | recommend against "
        "( source Students | filter [SuID = {student_id}] ) "
        "using numeric_closeness(GPA, GPA, scale=0.3) key SuID "
        "top {top_k} exclude SuID = SuID",
    )
    result = app.recommendations.run("dsl_buddies", student_id=suid, top_k=3)
    print("  dsl_buddies:", result.as_tuples("SuID", "score"))

    print("\n== Execution modes: one statement vs a sequence of SQL calls ==")
    from repro.core.staged import compile_workflow_staged

    workflow = strategies.collaborative_filtering(suid, top_k=5)
    staged = compile_workflow_staged(workflow, app.db)
    print(f"  staged form: {staged.statement_count} statements, "
          f"temp tables: {staged.temp_tables}")
    single = app.recommendations.run_workflow(workflow, path="sql")
    sequence = app.recommendations.run_workflow(workflow, path="staged")
    print(f"  single-statement == staged sequence: "
          f"{single.column('CourseID') == sequence.column('CourseID')}")

    print("\n== The workflow optimizer ==")
    from repro.core import Workflow, optimize
    from repro.core.operators import Select, TopK

    inner = strategies.collaborative_filtering(suid, top_k=None)
    wrapped = Workflow(TopK(Select(inner.root, "Units >= 4"), 5, "score"))
    optimized = optimize(wrapped, app.db)
    print("  before:", wrapped.root.describe())
    print("  after :", optimized.root.describe(),
          "(filter pushed into the target, top-k fused)")
    same = (
        wrapped.run(app.db).column("CourseID")
        == optimized.run(app.db).column("CourseID")
    )
    print(f"  semantics preserved: {same}")


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    app = CourseRank(generate_university(scale=scale, seed=2008))
    suid = pick_active_student(app)
    show_figure5_workflows(app, suid)
    show_personalization(app, suid)
    register_custom_strategy(app, suid)
    show_dsl_and_execution_modes(app, suid)


if __name__ == "__main__":
    main()
