#!/usr/bin/env python
"""Beyond CourseRank: a corporate social site on the same substrates.

Run:  python examples/corporate_site.py

Section 2.2: "we envision a corporate social site where employees and
customers can interact and share experiences and resources. A corporate
site shares many features with CourseRank: the need to service a varied
constituency, restricted access, having the control of the site..."

This example rebuilds that vision with the *same* library components on
a completely different schema — products, employees, customers, support
tickets — demonstrating that the search entities, data clouds, and
FlexRecs workflows are schema-agnostic:

* a product search entity folds specs, customer reviews, and support
  tickets, with spec matches weighted above ticket chatter;
* the product cloud summarizes a query's results and refines by click;
* FlexRecs recommends products from review-vector neighbours (the same
  Figure 5(b) shape, different relations) — defined in the textual DSL.
"""

import random

from repro.clouds.cloud import CloudBuilder
from repro.clouds.refinement import RefinementSession
from repro.core.dsl import parse_workflow
from repro.minidb import Database
from repro.search.engine import SearchEngine
from repro.search.entity import EntityDefinition, FieldSpec

ADJECTIVES = ("compact", "rugged", "wireless", "ergonomic", "modular", "quiet")
CATEGORIES = {
    "laptop": ("battery", "display", "keyboard", "performance", "cooling"),
    "camera": ("lens", "autofocus", "sensor", "stabilization", "low light"),
    "printer": ("toner", "duplex", "paper jam", "wifi setup", "drivers"),
    "headset": ("microphone", "noise cancelling", "comfort", "bluetooth",
                "battery"),
}
REVIEW_TEMPLATES = (
    "The {aspect} is {adj}. Would buy again.",
    "Disappointed by the {aspect}, though the {aspect2} compensates.",
    "Best {aspect} in its class; our whole team switched.",
    "After a month the {aspect} still impresses.",
)
TICKET_TEMPLATES = (
    "Customer reports issues with {aspect} after firmware update.",
    "Replacement requested: {aspect} failed within warranty.",
    "How-to question about {aspect} configuration.",
)


def build_corporate_db(seed: int = 7) -> Database:
    rng = random.Random(seed)
    db = Database()
    db.execute_script(
        """
        CREATE TABLE Products (ProductID INTEGER PRIMARY KEY, Category TEXT,
          Name TEXT, Specs TEXT, Price FLOAT);
        CREATE TABLE Customers (CustomerID INTEGER PRIMARY KEY, Name TEXT,
          Segment TEXT);
        CREATE TABLE Employees (EmployeeID INTEGER PRIMARY KEY, Name TEXT,
          Team TEXT);
        CREATE TABLE Reviews (CustomerID INTEGER, ProductID INTEGER,
          Text TEXT, Stars FLOAT, PRIMARY KEY (CustomerID, ProductID),
          FOREIGN KEY (CustomerID) REFERENCES Customers (CustomerID),
          FOREIGN KEY (ProductID) REFERENCES Products (ProductID));
        CREATE TABLE Tickets (TicketID INTEGER PRIMARY KEY,
          ProductID INTEGER, EmployeeID INTEGER, Text TEXT,
          FOREIGN KEY (ProductID) REFERENCES Products (ProductID));
        """
    )
    products = db.table("Products")
    product_id = 0
    catalog = []
    for category, aspects in CATEGORIES.items():
        for _ in range(12):
            product_id += 1
            adj = rng.choice(ADJECTIVES)
            name = f"{adj.title()} {category.title()} {product_id}"
            specs = (
                f"A {adj} {category} featuring excellent "
                f"{rng.choice(aspects)} and improved {rng.choice(aspects)}."
            )
            products.insert(
                [product_id, category, name, specs, rng.randint(99, 2999) * 1.0]
            )
            catalog.append((product_id, category, aspects))
    customers = db.table("Customers")
    for customer_id in range(1, 41):
        customers.insert(
            [customer_id, f"Customer {customer_id}",
             rng.choice(("enterprise", "consumer"))]
        )
    employees = db.table("Employees")
    for employee_id in range(1, 9):
        employees.insert(
            [employee_id, f"Agent {employee_id}", rng.choice(("support", "sales"))]
        )
    reviews = db.table("Reviews")
    for customer_id in range(1, 41):
        for pid, _category, aspects in rng.sample(catalog, k=6):
            text = rng.choice(REVIEW_TEMPLATES).format(
                aspect=rng.choice(aspects),
                aspect2=rng.choice(aspects),
                adj=rng.choice(ADJECTIVES),
            )
            reviews.insert([customer_id, pid, text, float(rng.randint(2, 10)) / 2])
    tickets = db.table("Tickets")
    ticket_id = 0
    for pid, _category, aspects in catalog:
        for _ in range(rng.randint(0, 3)):
            ticket_id += 1
            tickets.insert(
                [ticket_id, pid, rng.randint(1, 8),
                 rng.choice(TICKET_TEMPLATES).format(aspect=rng.choice(aspects))]
            )
    return db


def product_entity() -> EntityDefinition:
    """A product entity spanning specs, reviews, and support tickets."""
    return EntityDefinition(
        name="product",
        fields=(
            FieldSpec("name", "SELECT ProductID, Name FROM Products", weight=4.0),
            FieldSpec("specs", "SELECT ProductID, Specs FROM Products", weight=2.0),
            FieldSpec("reviews", "SELECT ProductID, Text FROM Reviews", weight=1.0),
            FieldSpec("tickets", "SELECT ProductID, Text FROM Tickets", weight=0.5),
        ),
    )


def main() -> None:
    db = build_corporate_db()
    print("== Corporate catalog ==")
    print(db.query(
        "SELECT Category, COUNT(*) AS products, AVG(Price) AS avg_price "
        "FROM Products GROUP BY Category ORDER BY Category"
    ).pretty())

    engine = SearchEngine(db, product_entity())
    engine.build()
    builder = CloudBuilder(engine, min_result_df=1)
    builder.prepare()

    print("\n== Product search with a data cloud ==")
    session = RefinementSession(engine, builder, "battery")
    print(f"  'battery' matches {len(session.result)} products "
          "(specs, reviews, and tickets all searched)")
    print(f"  cloud: {', '.join(session.cloud.term_names()[:10])}")
    if session.cloud.terms:
        term = session.cloud.terms[0].term
        step = session.refine(term)
        print(f"  clicked {term!r}: narrowed to {len(step.result)} products")

    print("\n== FlexRecs on the corporate schema (textual DSL) ==")
    target_customer = 5
    workflow = parse_workflow(f"""
        source Products
        | recommend against (
            source Customers
            | extend stars from Reviews key CustomerID = CustomerID
              map ProductID value Stars
            | recommend against (
                source Customers
                | extend stars from Reviews key CustomerID = CustomerID
                  map ProductID value Stars
                | filter [CustomerID = {target_customer}]
              ) using inverse_euclidean(stars, stars) key CustomerID
                score sim top 5 exclude CustomerID = CustomerID
          ) using vector_lookup(ProductID, stars) key ProductID agg avg top 5
    """, name="corporate-cf")
    direct = workflow.run(db)
    compiled = workflow.run_sql(db)
    agree = direct.column("ProductID") == compiled.column("ProductID")
    print(f"  products for customer {target_customer} "
          f"(direct == compiled SQL: {agree}):")
    for row in direct.rows:
        print(f"    [{row['score']:.2f}] {row['Name']} (${row['Price']:.0f})")

    print("\n== Constituencies ==")
    print("  employees route tickets; customers review; both search —")
    print("  the same closed-community, real-id model as CourseRank.")


if __name__ == "__main__":
    main()
