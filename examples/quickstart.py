#!/usr/bin/env python
"""Quickstart: generate a university, explore courses, get recommendations.

Run:  python examples/quickstart.py [scale]

Walks through the core loop of the paper's CourseRank system:
search with a data cloud, a course page, and FlexRecs recommendations
executed both directly and as compiled SQL.
"""

import sys

from repro.clouds.render import render_text
from repro.courserank import CourseRank
from repro.datagen import generate_university


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    print(f"Generating a synthetic university (scale={scale}) ...")
    app = CourseRank(generate_university(scale=scale, seed=2008))

    print("\n== Site statistics (cf. Section 2 of the paper) ==")
    for key, value in app.site_statistics().items():
        print(f"  {key:>14}: {value}")

    print("\n== Keyword search with a course cloud (Figure 3) ==")
    result, cloud = app.search_courses("american")
    print(f"  'american' matched {len(result)} courses")
    print("  course cloud (term(font-bucket)):")
    for line in render_text(cloud, columns=4).splitlines()[:6]:
        print("   ", line)

    print("\n== Top hits resolved to course rows ==")
    for row in app.cloudsearch.resolve_courses(result, limit=5):
        print(
            f"  [{row['score']:.2f}] {row['Title']} "
            f"({row['Department']}, {row['Units']} units)"
        )

    print("\n== A course page (Figure 1, left) ==")
    top_course = result.hits[0].doc_id if result.hits else 1
    page = app.course_page(top_course)
    course = page["course"]
    print(f"  {course.title} — {course.units} units")
    print(f"  instructors: {', '.join(page['instructors'])}")
    print(f"  average rating: {page['average_rating']}")
    distribution = page["grade_distribution"]
    if distribution is not None:
        print(f"  grades ({distribution.source}): {distribution.counts}")
    else:
        print("  grades: suppressed (privacy threshold)")
    for comment in page["comments"][:2]:
        print(f"  comment: {comment.text!r} (rating {comment.rating})")

    print("\n== FlexRecs recommendations (Figure 5) ==")
    suid = app.db.query(
        "SELECT SuID FROM Comments WHERE Rating IS NOT NULL "
        "GROUP BY SuID HAVING COUNT(*) >= 3 ORDER BY SuID LIMIT 1"
    ).scalar()
    print(f"  collaborative filtering for student {suid}:")
    recs = app.recommendations.courses_for_student(suid, top_k=5)
    for row in recs.rows:
        print(f"    [{row['score']:.2f}] {row['Title']}")

    print("\n  the same workflow, compiled to SQL (first 160 chars):")
    from repro.core import strategies

    workflow = strategies.collaborative_filtering(suid, top_k=5)
    print("   ", workflow.to_sql(app.db)[:160], "...")

    direct = workflow.run(app.db)
    compiled = workflow.run_sql(app.db)
    agree = direct.column("CourseID") == compiled.column("CourseID")
    print(f"  direct evaluation == compiled SQL: {agree}")


if __name__ == "__main__":
    main()
