#!/usr/bin/env python
"""The Planner and Requirement Tracker (Section 2.1's "New Tools").

Run:  python examples/academic_planning.py [scale]

A staff member defines program requirements; a student plans a quarter
(hitting a schedule conflict on the way), checks requirement progress,
sees GPA tracking, and exercises the plan-sharing privacy opt-out.
"""

import sys

from repro.errors import PlannerConflictError
from repro.courserank import CourseRank
from repro.datagen import generate_university


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    app = CourseRank(generate_university(scale=scale, seed=2008))

    user = app.accounts.authenticate("student2")
    suid = user.person_id
    print(f"== Student {suid}'s four-year plan ==")
    plan = app.planner.four_year_plan(suid)
    for (year, term), entries in list(plan.items())[:4]:
        shown = ", ".join(
            f"{entry['title']}"
            + (f" [{entry['grade']}]" if entry["grade"] else " (planned)")
            for entry in entries[:3]
        )
        print(f"  {term} {year}: {shown}")
    print(f"  cumulative GPA: {app.planner.cumulative_gpa(suid)}")

    print("\n== Planning a new quarter (2009 Aut) ==")
    taken_or_planned = set(
        app.db.query(
            f"SELECT CourseID FROM Enrollments WHERE SuID = {suid}"
        ).column("CourseID")
    ) | set(
        app.db.query(
            f"SELECT CourseID FROM Plans WHERE SuID = {suid}"
        ).column("CourseID")
    )
    autumn_courses = [
        course_id
        for course_id in app.db.query(
            "SELECT CourseID FROM Offerings WHERE Year = 2009 AND Term = 'Aut' "
            "ORDER BY CourseID"
        ).column("CourseID")
        if course_id not in taken_or_planned
    ]
    planned = 0
    conflicts_hit = 0
    for course_id in autumn_courses:
        if planned >= 3:
            break
        try:
            app.planner.plan_course(suid, course_id, 2009, "Aut")
            planned += 1
            print(f"  planned course {course_id}: "
                  f"{app.course(course_id).title}")
        except PlannerConflictError as conflict:
            conflicts_hit += 1
            print(f"  conflict rejected: {conflict}")
    print(f"  ({planned} planned, {conflicts_hit} conflicts caught)")
    print(f"  quarter load: {app.planner.quarter_units(suid, 2009, 'Aut')} units")

    warnings = app.planner.prerequisite_warnings(suid)
    print(f"\n== Prerequisite warnings: {len(warnings)} ==")
    for warning in warnings[:3]:
        print(f"  {warning}")

    print("\n== Requirement Tracker ==")
    dep_id = app.db.query(
        "SELECT d.DepID FROM Departments d JOIN Students s "
        f"ON d.Name = s.Major WHERE s.SuID = {suid}"
    ).scalar()
    for status in app.tracker.check(suid, dep_id):
        mark = "OK " if status.satisfied else "MISSING"
        print(f"  [{mark}] {status.name}")
        for gap in status.missing[:2]:
            print(f"          - {gap}")

    print("\n== Weekly timetable (2009 Aut) ==")
    schedule = app.planner.weekly_schedule(suid, 2009, "Aut")
    for day in "MTWhF":
        meetings = schedule.get(day, [])
        shown = ", ".join(
            f"{m['title'][:28]} {m['start_minute'] // 60:02d}:"
            f"{m['start_minute'] % 60:02d}"
            for m in meetings
            if m["start_minute"] is not None
        )
        print(f"  {day}: {shown or '-'}")

    print("\n== What should I take next? (requirement-gap suggestions) ==")
    for course_id, helps in app.tracker.suggest_courses(suid, dep_id, limit=5):
        print(f"  course {course_id} ({app.course(course_id).title}) "
              f"advances {helps} requirement(s)")

    print("\n== Plan sharing (privacy opt-out) ==")
    my_plans = app.db.query(
        f"SELECT CourseID FROM Plans WHERE SuID = {suid} LIMIT 1"
    ).column("CourseID")
    if my_plans:
        course_id = my_plans[0]
        before = app.privacy.who_is_planning(course_id)
        app.planner.set_plan_sharing(suid, course_id, False)
        after = app.privacy.who_is_planning(course_id)
        print(f"  course {course_id}: visible planners "
              f"{len(before)} -> {len(after)} after opting out")
        print(f"  sitewide sharing rate: {app.privacy.sharing_rate():.0%}")


if __name__ == "__main__":
    main()
