#!/usr/bin/env python
"""Serendipitous course discovery with data clouds (Section 3.1).

Run:  python examples/course_discovery.py [scale]

Reproduces the paper's motivating scenario: a student browsing for
"something related to Greece" won't find the history-of-science course by
catalog navigation — but a keyword search plus cloud refinement surfaces
the connection.  The script then replays the Figure 3 → Figure 4
walkthrough ("american" → "african american") and compares the three
term-significance models on the same result set.
"""

import sys

from repro.clouds.cloud import CloudBuilder
from repro.clouds.refinement import RefinementSession
from repro.courserank import CourseRank
from repro.datagen import generate_university


def serendipity_demo(app: CourseRank) -> None:
    print("== Serendipity: searching 'greek' across all relations ==")
    result, cloud = app.search_courses("greek")
    print(f"  {len(result)} courses mention 'greek' somewhere")
    for row in app.cloudsearch.resolve_courses(result, limit=5, with_snippets=True):
        print(f"  [{row['score']:.2f}] {row['Title']} ({row['Department']})")
        if row.get("snippet"):
            print(f"      {row['snippet']}")
    if cloud.terms:
        print(f"  related cloud terms: {', '.join(cloud.term_names()[:8])}")


def refinement_walkthrough(app: CourseRank) -> None:
    print("\n== Figure 3 -> Figure 4: refine 'american' ==")
    session = app.search_session("american")
    print(f"  'american': {len(session.result)} matching courses")
    print(f"  cloud: {', '.join(session.cloud.term_names()[:10])}")
    phrases = [
        term.term
        for term in session.cloud.terms
        if " " in term.term and "american" in term.term
    ]
    if not phrases:
        print("  (no american-phrases in this corpus; try a larger scale)")
        return
    clicked = phrases[0]
    step = session.refine(clicked)
    factor = len(session._steps[0].result) / max(1, len(step.result))
    print(
        f"  clicked {clicked!r}: narrowed to {len(step.result)} courses "
        f"({factor:.1f}x narrowing)"
    )
    print(f"  refined cloud: {', '.join(step.cloud.term_names()[:10])}")
    session.back()
    print(f"  back(): restored {len(session.result)} results")


def scoring_model_comparison(app: CourseRank) -> None:
    print("\n== Term-significance models on the same results ==")
    engine = app.cloudsearch.engine
    result = engine.search("american")
    for scoring in ("frequency", "tfidf", "popularity"):
        builder = CloudBuilder(engine, scoring=scoring, max_terms=8)
        builder.prepare()
        cloud = builder.build(result)
        print(f"  {scoring:>10}: {', '.join(cloud.term_names())}")


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    app = CourseRank(generate_university(scale=scale, seed=2008))
    app.cloudsearch.build()
    serendipity_demo(app)
    refinement_walkthrough(app)
    scoring_model_comparison(app)


if __name__ == "__main__":
    main()
