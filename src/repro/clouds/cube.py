"""OLAP-style cloud cubes: dimensional drill-down over data clouds.

"Collaborative OLAP with Tag Clouds" (Aouiche et al.) treats a tag cloud
as the *measure* of an OLAP cell: pick dimensions, and every coordinate
in the lattice owns the cloud of the documents matching it.  Here the
documents are courses and the shipped dimensions are department, quarter
(offering term), and instructor — the axes a student actually browses.

The navigational operators are the classic three:

* :meth:`CloudCube.drill_down` — split a cell along a new dimension into
  one child cell per value;
* :meth:`CloudCube.roll_up` — return to the parent cell (drop the last
  coordinate);
* :meth:`CloudCube.slice` — fix one value of a dimension.

The cost trick generalizes PR 2's refinement narrowing to lattice edges:
a child cell's documents are a subset of its parent's, so the child cloud
is derived by *subtracting the dropped documents* from the parent's
cached term aggregates (:meth:`CloudBuilder.build_for_docs_narrowed`)
instead of re-merging from scratch.  The differential tests in
``tests/clouds/test_cube.py`` pin every navigated cloud bit-identical to
a cold build over the same filtered doc set.

Dimension membership maps are version-keyed per database (schema epoch +
source-table data versions, the extendcache discipline), so any DML
invalidates them by construction.  A :class:`CloudCube` itself is a
snapshot navigator: its cell memo embeds the database version vector, so
after a write a freshly constructed cube (or any cell access) observes
the new data, while cells already handed out keep their snapshot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.caching import LRUCache
from repro.errors import CloudError
from repro.minidb.catalog import Database
from repro.obs import OBS
from repro.clouds.cloud import CloudBuilder, DataCloud, DocId

Coordinate = Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class DimensionSpec:
    """One cube dimension: a name and the SQL yielding (doc, value) rows.

    ``sql`` must select exactly two columns — the document id and the
    dimension value; a document may have several values (a course offered
    in two quarters belongs to both slices).  ``tables`` lists the source
    tables, which key the membership-map invalidation.
    """

    name: str
    sql: str
    tables: Tuple[str, ...]


#: the course dimensions the paper's site would expose
COURSE_DIMENSIONS: Tuple[DimensionSpec, ...] = (
    DimensionSpec(
        name="department",
        sql="SELECT CourseID, DepID FROM Courses",
        tables=("Courses",),
    ),
    DimensionSpec(
        name="quarter",
        sql="SELECT CourseID, Term FROM Offerings",
        tables=("Offerings",),
    ),
    DimensionSpec(
        name="instructor",
        sql="SELECT CourseID, InstructorID FROM Teaches",
        tables=("Teaches",),
    ),
)

_MEMBERSHIPS: "WeakKeyDictionary[Database, LRUCache]" = WeakKeyDictionary()
_MEMBERSHIPS_LOCK = threading.Lock()


def database_version_vector(database: Database) -> Tuple[Any, ...]:
    """Schema epoch + every table's data version — the snapshot identity."""
    return (
        database.schema_epoch,
        tuple(
            (name, database.table(name).data_version)
            for name in database.table_names()
        ),
    )


def membership_for(
    database: Database, spec: DimensionSpec
) -> Dict[DocId, Tuple[Any, ...]]:
    """``{doc_id: sorted value tuple}`` for one dimension, version-cached."""
    with _MEMBERSHIPS_LOCK:
        cache = _MEMBERSHIPS.get(database)
        if cache is None:
            cache = LRUCache(maxsize=32)
            _MEMBERSHIPS[database] = cache
    key = (
        spec.name,
        spec.sql,
        database.schema_epoch,
        tuple(
            (table, database.table(table).data_version)
            for table in spec.tables
        ),
    )
    cached = cache.get(key)
    if cached is not None:
        return cached
    grouped: Dict[DocId, List[Any]] = {}
    for doc_id, value in database.query(spec.sql).rows:
        if doc_id is None or value is None:
            continue
        grouped.setdefault(doc_id, []).append(value)
    membership = {
        doc_id: tuple(sorted(set(values)))
        for doc_id, values in grouped.items()
    }
    cache.put(key, membership)
    return membership


@dataclass(frozen=True)
class CubeCell:
    """One lattice cell: a coordinate, its documents, and their cloud."""

    coordinate: Coordinate
    doc_ids: Tuple[DocId, ...]
    cloud: DataCloud

    @property
    def result_size(self) -> int:
        return len(self.doc_ids)


class CloudCube:
    """A navigable lattice of data clouds over one document set.

    ``base_doc_ids`` roots the cube (default: the whole corpus); a cube
    rooted at a search result is the paper's "cloud over these hits,
    broken down by department".  Cells are memoized per (database
    version, coordinate), so roll-up after drill-down is a cache hit and
    repeated walks cost nothing.
    """

    def __init__(
        self,
        database: Database,
        builder: CloudBuilder,
        base_doc_ids: Optional[Sequence[DocId]] = None,
        dimensions: Optional[Sequence[DimensionSpec]] = None,
        query: str = "",
        query_terms: Optional[Sequence[str]] = None,
    ) -> None:
        self.database = database
        self.builder = builder
        self.dimensions: Tuple[DimensionSpec, ...] = tuple(
            dimensions if dimensions is not None else COURSE_DIMENSIONS
        )
        names = [spec.name for spec in self.dimensions]
        if len(set(names)) != len(names):
            raise CloudError(f"duplicate cube dimensions: {names}")
        self._by_name = {spec.name: spec for spec in self.dimensions}
        if base_doc_ids is None:
            base_doc_ids = builder.source.engine.index.document_ids()
        self.base_doc_ids: Tuple[DocId, ...] = tuple(base_doc_ids)
        self.query = query
        self.query_terms = (
            tuple(query_terms) if query_terms is not None else None
        )
        self._cells: Dict[Tuple[Any, ...], CubeCell] = {}
        #: build-path counters, asserted on by the differential tests
        self.stats = {
            "cold_builds": 0,
            "incremental_builds": 0,
            "memo_hits": 0,
        }

    # -- plumbing ------------------------------------------------------------

    def _spec(self, dimension: str) -> DimensionSpec:
        spec = self._by_name.get(dimension)
        if spec is None:
            raise CloudError(
                f"unknown cube dimension {dimension!r}; "
                f"available: {sorted(self._by_name)}"
            )
        return spec

    def _membership(self, dimension: str) -> Dict[DocId, Tuple[Any, ...]]:
        return membership_for(self.database, self._spec(dimension))

    def _memo_key(self, coordinate: Coordinate) -> Tuple[Any, ...]:
        return (database_version_vector(self.database), coordinate)

    def _validate(self, coordinate: Coordinate) -> Coordinate:
        coordinate = tuple(
            (dimension, value) for dimension, value in coordinate
        )
        seen = set()
        for dimension, _value in coordinate:
            self._spec(dimension)
            if dimension in seen:
                raise CloudError(
                    f"dimension {dimension!r} fixed twice in {coordinate!r}"
                )
            seen.add(dimension)
        return coordinate

    def _filter_docs(
        self, doc_ids: Sequence[DocId], dimension: str, value: Any
    ) -> Tuple[DocId, ...]:
        membership = self._membership(dimension)
        return tuple(
            doc_id
            for doc_id in doc_ids
            if value in membership.get(doc_id, ())
        )

    # -- cell construction ---------------------------------------------------

    def cell(self, coordinate: Coordinate = ()) -> CubeCell:
        """The cell at ``coordinate``, cold-built (and memoized)."""
        coordinate = self._validate(coordinate)
        key = self._memo_key(coordinate)
        cached = self._cells.get(key)
        if cached is not None:
            self.stats["memo_hits"] += 1
            return cached
        docs: Tuple[DocId, ...] = self.base_doc_ids
        for dimension, value in coordinate:
            docs = self._filter_docs(docs, dimension, value)
        with OBS.span(
            "cloud.cube.cell", {"coordinate": repr(coordinate)}
        ) as span:
            started = time.perf_counter()
            cloud = self.builder.build_for_docs(
                docs, query=self.query, query_terms=self.query_terms
            )
            if OBS.enabled:
                span.set(docs=len(docs), terms=len(cloud.terms))
                OBS.metrics.inc("cloud.cube.cold_build")
                OBS.metrics.observe(
                    "cloud.cube.cell.ms",
                    (time.perf_counter() - started) * 1000.0,
                )
        self.stats["cold_builds"] += 1
        cell = CubeCell(coordinate=coordinate, doc_ids=docs, cloud=cloud)
        self._cells[key] = cell
        return cell

    def root(self) -> CubeCell:
        """The apex cell — every base document, no dimension fixed."""
        return self.cell(())

    # -- navigation ----------------------------------------------------------

    def dimension_values(self, cell: CubeCell, dimension: str) -> List[Any]:
        """The values ``dimension`` takes within ``cell`` (sorted)."""
        membership = self._membership(dimension)
        values = set()
        for doc_id in cell.doc_ids:
            values.update(membership.get(doc_id, ()))
        return sorted(values)

    def slice(self, cell: CubeCell, dimension: str, value: Any) -> CubeCell:
        """Fix ``dimension = value`` within ``cell`` (one lattice edge).

        The child cloud is derived incrementally from the parent's cached
        aggregates; the memoized result is shared with any other path
        that reaches the same coordinate.
        """
        coordinate = self._validate(
            cell.coordinate + ((dimension, value),)
        )
        key = self._memo_key(coordinate)
        cached = self._cells.get(key)
        if cached is not None:
            self.stats["memo_hits"] += 1
            return cached
        docs = self._filter_docs(cell.doc_ids, dimension, value)
        with OBS.span(
            "cloud.cube.slice", {"dimension": dimension, "value": repr(value)}
        ) as span:
            started = time.perf_counter()
            cloud = self.builder.build_for_docs_narrowed(
                docs,
                cell.doc_ids,
                query=self.query,
                query_terms=self.query_terms,
            )
            if OBS.enabled:
                span.set(docs=len(docs), terms=len(cloud.terms))
                OBS.metrics.inc("cloud.cube.incremental_build")
                OBS.metrics.observe(
                    "cloud.cube.cell.ms",
                    (time.perf_counter() - started) * 1000.0,
                )
        self.stats["incremental_builds"] += 1
        child = CubeCell(coordinate=coordinate, doc_ids=docs, cloud=cloud)
        self._cells[key] = child
        return child

    def drill_down(
        self, cell: CubeCell, dimension: str
    ) -> Dict[Any, CubeCell]:
        """Split ``cell`` along ``dimension``: one child per value."""
        return {
            value: self.slice(cell, dimension, value)
            for value in self.dimension_values(cell, dimension)
        }

    def roll_up(self, cell: CubeCell) -> CubeCell:
        """The parent cell (drop the last fixed dimension)."""
        if not cell.coordinate:
            raise CloudError("cannot roll up from the apex cell")
        return self.cell(cell.coordinate[:-1])
