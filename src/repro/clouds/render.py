"""Rendering data clouds as text or HTML.

The site UI renders cloud terms at font sizes proportional to their
bucket; for a library the equivalents are a compact text form (used by
examples and the REPL) and a self-contained HTML fragment.
"""

from __future__ import annotations

import html
from typing import List

from repro.clouds.cloud import DataCloud

#: font-size in points for buckets 1..5 (clamped for other bucket counts)
_FONT_SIZES = [10, 13, 16, 20, 26]


def render_text(cloud: DataCloud, columns: int = 4) -> str:
    """A fixed-width rendering: ``term(bucket)`` cells in rows.

    >>> # render_text(cloud) →
    >>> # african american(5)   politics(3)   indians(2) ...
    """
    cells = [f"{term.term}({term.bucket})" for term in cloud.terms]
    if not cells:
        return "(empty cloud)"
    width = max(len(cell) for cell in cells) + 2
    lines: List[str] = []
    for start in range(0, len(cells), columns):
        row = cells[start : start + columns]
        lines.append("".join(cell.ljust(width) for cell in row).rstrip())
    return "\n".join(lines)


def render_html(cloud: DataCloud, css_class: str = "data-cloud") -> str:
    """An HTML fragment with one clickable span per term.

    Every term carries ``data-term`` so a front end can wire refinement
    clicks; font size maps from the bucket.
    """
    parts = [f'<div class="{html.escape(css_class)}">']
    for term in cloud.terms:
        index = min(term.bucket, len(_FONT_SIZES)) - 1
        size = _FONT_SIZES[max(index, 0)]
        escaped = html.escape(term.term)
        parts.append(
            f'<span class="cloud-term" data-term="{escaped}" '
            f'style="font-size:{size}pt" '
            f'title="score {term.score:.3f}, in {term.result_df} results">'
            f"{escaped}</span>"
        )
    parts.append("</div>")
    return "\n".join(parts)
