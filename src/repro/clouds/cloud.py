"""DataCloud construction.

:class:`CloudBuilder` connects a :class:`~repro.search.engine.SearchEngine`
to a term-gathering strategy and a significance model, and produces a
:class:`DataCloud` for any result set.  Query terms themselves are
suppressed from the cloud (searching "American" should not show
"american" as its own biggest tag), but *phrases containing* a query term
survive — the paper's Figure 3 cloud for "American" prominently features
"Latin American" and "African American".
"""

from __future__ import annotations

import copy
import heapq
import time
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Set

from repro.errors import CloudError
from repro.obs import OBS
from repro.search.engine import SearchEngine, SearchResult
from repro.clouds.scoring import (
    SignificanceScoring,
    TermSource,
    TermStats,
    get_scoring,
)

DocId = Any


@dataclass(frozen=True)
class CloudTerm:
    """One tag in a data cloud."""

    term: str
    score: float
    occurrences: float
    result_df: int
    bucket: int = 1  # font-size bucket 1..n, assigned at cloud build


@dataclass
class DataCloud:
    """A ranked collection of cloud terms for one result set."""

    query: str
    result_size: int
    terms: List[CloudTerm]

    def __len__(self) -> int:
        return len(self.terms)

    def term_names(self) -> List[str]:
        return [term.term for term in self.terms]

    def top(self, k: int) -> List[CloudTerm]:
        return self.terms[:k]

    def find(self, term: str) -> Optional[CloudTerm]:
        lowered = term.lower()
        for cloud_term in self.terms:
            if cloud_term.term == lowered:
                return cloud_term
        return None


class CloudBuilder:
    """Builds data clouds over search results.

    ``max_terms`` caps the cloud size; ``min_result_df`` drops terms that
    appear in only a handful of result documents (noise suppression);
    ``buckets`` is the number of font-size classes for rendering.
    """

    def __init__(
        self,
        engine: SearchEngine,
        scoring: Any = "popularity",
        strategy: str = "forward",
        max_terms: int = 40,
        min_result_df: int = 2,
        buckets: int = 5,
        include_bigrams: bool = True,
        topk_per_doc: int = 12,
    ) -> None:
        if max_terms < 1:
            raise CloudError("max_terms must be at least 1")
        if buckets < 1:
            raise CloudError("buckets must be at least 1")
        self.engine = engine
        self.scoring: SignificanceScoring = get_scoring(scoring)
        self.source = TermSource(
            engine,
            strategy=strategy,
            topk_per_doc=topk_per_doc,
            include_bigrams=include_bigrams,
        )
        self.max_terms = max_terms
        self.min_result_df = min_result_df
        self.buckets = buckets
        self._prepared = False

    def prepare(self) -> None:
        """Precompute per-document term caches (run after engine.build())."""
        self.source.prepare()
        self._prepared = True

    def with_scoring(self, scoring: Any) -> "CloudBuilder":
        """A shallow variant of this builder using a different scoring.

        Shares the term source (and its gathered-stats caches) — only the
        significance model differs, so e.g. a graph-weighted cloud reuses
        every aggregate the plain builder already computed.
        """
        clone = copy.copy(self)
        clone.scoring = get_scoring(scoring)
        return clone

    def build(self, result: SearchResult) -> DataCloud:
        """Compute the data cloud for a search result."""
        return self.build_for_docs(
            result.doc_ids(), query=result.query, query_terms=result.terms
        )

    def build_narrowed(
        self, result: SearchResult, parent: SearchResult
    ) -> DataCloud:
        """Cloud for a *refined* result, derived from its parent's stats.

        Refinement is conjunctive, so ``result``'s documents are a subset
        of ``parent``'s; the term source subtracts the dropped documents
        from the parent's cached aggregates instead of re-merging the
        whole result set.  Output is identical to :meth:`build` — the
        incremental path is purely a cost optimization.
        """
        return self.build_for_docs_narrowed(
            result.doc_ids(),
            parent.doc_ids(),
            query=result.query,
            query_terms=result.terms,
            result_size=len(result.hits),
        )

    def build_for_docs_narrowed(
        self,
        doc_ids: Sequence[DocId],
        parent_doc_ids: Sequence[DocId],
        query: str = "",
        query_terms: Optional[Sequence[str]] = None,
        result_size: Optional[int] = None,
    ) -> DataCloud:
        """Cloud for a doc subset, derived from a superset's cached stats.

        The doc-id-level spelling of :meth:`build_narrowed` — cube
        navigation narrows along lattice edges rather than query
        refinements, but the subtraction trick is the same.  Output is
        identical to :meth:`build_for_docs` over ``doc_ids``.
        """
        if not self._prepared:
            self.prepare()
        with OBS.span("cloud.build_narrowed") as span:
            started = time.perf_counter()
            stats = self.source.gather_narrowed(parent_doc_ids, doc_ids)
            size = len(doc_ids) if result_size is None else result_size
            cloud = self._cloud_from_stats(stats, size, query, query_terms)
            if OBS.enabled:
                span.set(docs=size, terms=len(cloud.terms))
                OBS.metrics.inc("cloud.build_narrowed.count")
                OBS.metrics.observe(
                    "cloud.build.ms",
                    (time.perf_counter() - started) * 1000.0,
                )
        return cloud

    def build_for_docs(
        self,
        doc_ids: Sequence[DocId],
        query: str = "",
        query_terms: Optional[Sequence[str]] = None,
    ) -> DataCloud:
        if not self._prepared:
            self.prepare()
        with OBS.span("cloud.build") as span:
            started = time.perf_counter()
            stats = self.source.gather(doc_ids)
            cloud = self._cloud_from_stats(
                stats, len(doc_ids), query, query_terms
            )
            if OBS.enabled:
                span.set(docs=len(doc_ids), terms=len(cloud.terms))
                OBS.metrics.inc("cloud.build.count")
                OBS.metrics.observe(
                    "cloud.build.ms",
                    (time.perf_counter() - started) * 1000.0,
                )
        return cloud

    def build_from_stats(
        self,
        stats: Sequence[TermStats],
        result_size: int,
        query: str = "",
        query_terms: Optional[Sequence[str]] = None,
        corpus_size: Optional[int] = None,
    ) -> DataCloud:
        """Score and bucket pre-merged term statistics.

        The scatter-gather path merges per-shard counters into global
        :class:`TermStats` (occurrence sums, result df sums, corpus df
        sums) and hands them here with the merged ``corpus_size``; the
        scoring, suppression, top-k cut, and bucketing are then exactly
        the ones an unsharded builder would apply, so the resulting cloud
        is bit-identical to the unsharded build.
        """
        if not self._prepared:
            self.prepare()
        return self._cloud_from_stats(
            stats, result_size, query, query_terms, corpus_size=corpus_size
        )

    def _cloud_from_stats(
        self,
        stats: Sequence[TermStats],
        result_size: int,
        query: str = "",
        query_terms: Optional[Sequence[str]] = None,
        corpus_size: Optional[int] = None,
    ) -> DataCloud:
        if corpus_size is None:
            corpus_size = self.source.corpus_size
        suppressed = self._suppressed_terms(query_terms or [])
        min_df = self.min_result_df if result_size >= self.min_result_df else 1
        scored: List[CloudTerm] = []
        for stat in stats:
            if stat.result_df < min_df:
                continue
            if self._is_suppressed(stat.term, suppressed):
                continue
            score = self.scoring.score(stat, result_size, corpus_size)
            if score <= 0:
                continue
            scored.append(
                CloudTerm(
                    term=stat.term,
                    score=score,
                    occurrences=stat.occurrences,
                    result_df=stat.result_df,
                )
            )
        if len(scored) > self.max_terms:
            # Bounded heap top-k: same ordering as the full sort (ties
            # break on the term text), without sorting the whole tail.
            scored = heapq.nsmallest(
                self.max_terms, scored, key=lambda term: (-term.score, term.term)
            )
        else:
            scored.sort(key=lambda term: (-term.score, term.term))
        return DataCloud(
            query=query,
            result_size=result_size,
            terms=self._assign_buckets(scored),
        )

    # -- helpers -----------------------------------------------------------

    def _suppressed_terms(self, query_terms: Sequence[str]) -> Set[str]:
        """Stemmed forms of the query, used to drop echo terms."""
        return set(query_terms)

    def _is_suppressed(self, term: str, suppressed: Set[str]) -> bool:
        """A display term is suppressed when *all* its words echo the query."""
        if not suppressed:
            return False
        words = term.split(" ")
        stemmed = [self.engine.tokenizer.stem_token(word) for word in words]
        return all(stem in suppressed for stem in stemmed)

    def _assign_buckets(self, terms: List[CloudTerm]) -> List[CloudTerm]:
        """Map scores to font buckets 1..n by linear score interpolation."""
        if not terms:
            return terms
        high = terms[0].score
        low = terms[-1].score
        span = high - low
        rebuilt: List[CloudTerm] = []
        for term in terms:
            if span <= 0:
                bucket = self.buckets
            else:
                fraction = (term.score - low) / span
                bucket = 1 + int(round(fraction * (self.buckets - 1)))
            rebuilt.append(
                CloudTerm(
                    term=term.term,
                    score=term.score,
                    occurrences=term.occurrences,
                    result_df=term.result_df,
                    bucket=bucket,
                )
            )
        return rebuilt
