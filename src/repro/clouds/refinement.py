"""Click-to-refine sessions over data clouds (Figures 3 and 4).

A :class:`RefinementSession` holds the current query, its results, and its
cloud.  ``refine(term)`` appends the clicked cloud term to the query,
re-runs the (conjunctive) search, and rebuilds the cloud over the narrowed
result set — exactly the "American" → "African American" walk-through in
the paper.  ``back()`` undoes the last refinement.

Invariant (tested property): because matching is conjunctive, every
refinement step's result set is a subset of the previous step's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Set

from repro.errors import CloudError
from repro.clouds.cloud import CloudBuilder, DataCloud
from repro.search.engine import SearchEngine, SearchResult

DocId = Any


@dataclass
class RefinementStep:
    """One state of the session: the query, its results, and its cloud."""

    query: str
    result: SearchResult
    cloud: DataCloud

    @property
    def result_size(self) -> int:
        return len(self.result)


class RefinementSession:
    """Interactive narrow-down over a search engine + cloud builder."""

    def __init__(
        self,
        engine: SearchEngine,
        builder: CloudBuilder,
        query: str,
        limit: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.builder = builder
        self.limit = limit
        self._steps: List[RefinementStep] = []
        self._push(query)

    # -- state ------------------------------------------------------------

    @property
    def current(self) -> RefinementStep:
        return self._steps[-1]

    @property
    def query(self) -> str:
        return self.current.query

    @property
    def result(self) -> SearchResult:
        return self.current.result

    @property
    def cloud(self) -> DataCloud:
        return self.current.cloud

    @property
    def depth(self) -> int:
        """Number of refinements applied (0 for the initial query)."""
        return len(self._steps) - 1

    def history(self) -> List[str]:
        return [step.query for step in self._steps]

    # -- interaction -----------------------------------------------------------

    def refine(self, term: str) -> RefinementStep:
        """Click a cloud term: conjunctively narrow the current results.

        Multi-word cloud terms ("african american") refine as *phrases* —
        the words must appear consecutively, matching what the cloud
        displayed rather than any scattered co-occurrence.
        """
        term = term.strip()
        if not term:
            raise CloudError("refinement term must be non-empty")
        if " " in term and not term.startswith('"'):
            term = f'"{term}"'
        new_query = f"{self.query} {term}".strip()
        return self._push(new_query, within=self.result.doc_id_set())

    def cube(self, dimensions: Optional[Any] = None):
        """A cloud cube rooted at the current result set.

        The paper's Figure 4 step sideways: instead of refining by a
        term, break the current hits down along course dimensions.
        """
        from repro.clouds.cube import CloudCube

        return CloudCube(
            self.engine.database,
            self.builder,
            base_doc_ids=self.result.doc_ids(),
            dimensions=dimensions,
            query=self.query,
            query_terms=self.result.terms,
        )

    def back(self) -> RefinementStep:
        """Undo the last refinement."""
        if len(self._steps) == 1:
            raise CloudError("already at the initial query")
        self._steps.pop()
        return self.current

    def reset(self, query: str) -> RefinementStep:
        """Start over with a fresh query."""
        self._steps.clear()
        return self._push(query)

    # -- internals ---------------------------------------------------------

    def _push(
        self, query: str, within: Optional[Set[DocId]] = None
    ) -> RefinementStep:
        result = self.engine.search(
            query, limit=self.limit, mode="all", within=within
        )
        if within is not None and self._steps:
            # Refinement narrows the parent's result set, so the new
            # cloud is derived incrementally from the parent's cached
            # aggregates (identical output, fraction of the cost).
            cloud = self.builder.build_narrowed(result, self.current.result)
        else:
            cloud = self.builder.build(result)
        step = RefinementStep(query=query, result=result, cloud=cloud)
        self._steps.append(step)
        return step
