"""Data Clouds (Section 3.1 of the paper).

A *data cloud* is a tag cloud whose tags are the most significant terms in
the result set of a keyword search over the database.  Terms come from
every relation folded into the search entity (titles, descriptions,
comments, instructor names), are scored by a pluggable significance model,
and act as hyperlinks: clicking a term refines the search conjunctively
and the cloud is recomputed over the narrowed results.

Modules:

* :mod:`scoring` — term significance models (frequency, TF-IDF over the
  result set, popularity) and term-gathering strategies (rescan, forward
  index, per-document top-k cache) whose cost trade-offs the P1 benchmark
  measures;
* :mod:`cloud` — :class:`CloudBuilder` producing :class:`DataCloud`;
* :mod:`refinement` — :class:`RefinementSession`, the click-to-refine loop
  of Figures 3 and 4;
* :mod:`render` — text/HTML rendering with font-size buckets.
"""

from repro.clouds.cloud import CloudBuilder, CloudTerm, DataCloud
from repro.clouds.refinement import RefinementSession, RefinementStep
from repro.clouds.render import render_html, render_text
from repro.clouds.scoring import (
    FrequencyScoring,
    PopularityScoring,
    TfIdfScoring,
    TermStats,
)

__all__ = [
    "CloudBuilder",
    "CloudTerm",
    "DataCloud",
    "RefinementSession",
    "RefinementStep",
    "render_html",
    "render_text",
    "FrequencyScoring",
    "PopularityScoring",
    "TfIdfScoring",
    "TermStats",
]
