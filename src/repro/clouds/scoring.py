"""Term gathering and significance scoring for data clouds.

Two orthogonal choices are kept pluggable because the paper explicitly
poses them as open questions ("How do we find and rank terms in the
results of a search and how can we dynamically and efficiently compute
their data cloud?"):

**Gathering strategy** — how term statistics over the current result set
are obtained (cost question, benchmarked by P1):

* ``rescan``  — re-extract terms from each result document's raw text at
  query time; no extra memory, highest per-query cost.
* ``forward`` — per-document term counters precomputed at build time;
  per-query work is merging counters of the result docs.  Exact.
* ``topk``    — only each document's top-*m* terms are cached; merging is
  cheaper still but term counts are approximate (long-tail terms from
  individual documents are dropped).

**Significance model** — how gathered terms are ranked (quality question):

* :class:`FrequencyScoring`   — raw weighted occurrence count;
* :class:`TfIdfScoring`       — occurrences in the result set, discounted
  by corpus-wide document frequency (rare-in-corpus terms bubble up);
* :class:`PopularityScoring`  — fraction of result documents containing
  the term, discounted by corpus df (favors terms that characterize the
  whole result set rather than one verbose document).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.caching import LRUCache
from repro.errors import CloudError
from repro.search.engine import SearchEngine
from repro.search.phrases import display_unigrams, extract_bigrams

DocId = Any


@dataclass
class TermStats:
    """Aggregate statistics of one display term over a result set."""

    term: str
    occurrences: float  # field-weight-scaled occurrence mass in results
    result_df: int  # number of result documents containing the term
    corpus_df: int  # number of corpus documents containing the term


class TermSource:
    """Extracts and caches display terms (unigrams + bigrams) per document.

    Display terms are unstemmed so the cloud shows readable words; the
    search index remains stemmed.  Field weights from the entity
    definition scale occurrence counts, so a term in a title counts more
    than in a comment, mirroring the ranking of the search itself.
    """

    def __init__(
        self,
        engine: SearchEngine,
        strategy: str = "forward",
        topk_per_doc: int = 12,
        include_bigrams: bool = True,
    ) -> None:
        if strategy not in ("rescan", "forward", "topk"):
            raise CloudError(f"unknown gathering strategy {strategy!r}")
        self.engine = engine
        self.strategy = strategy
        self.topk_per_doc = topk_per_doc
        self.include_bigrams = include_bigrams
        self._doc_terms: Dict[DocId, Counter] = {}
        self._corpus_df: Counter = Counter()
        self._prepared = False
        self._prepared_epoch: Optional[int] = None
        # Result sets repeat across a session (identical searches, cloud
        # refinement back()); memoize the merged statistics per doc set.
        # Keys embed the index epoch, so entries cannot survive index
        # mutations; values keep the raw counters so a *narrowed* result
        # set (cloud refinement) can be derived by subtraction instead of
        # re-merged from scratch — see :meth:`gather_narrowed`.
        self._gather_cache = LRUCache(maxsize=64)

    # -- build-time work -----------------------------------------------------

    def prepare(self) -> None:
        """Precompute whatever the strategy needs (called once per build)."""
        self._doc_terms.clear()
        self._corpus_df.clear()
        self._gather_cache.clear()
        for doc_id in self.engine.index.document_ids():
            counts = self._extract(doc_id)
            self._corpus_df.update(counts.keys())
            if self.strategy == "forward":
                self._doc_terms[doc_id] = counts
            elif self.strategy == "topk":
                top = counts.most_common(self.topk_per_doc)
                self._doc_terms[doc_id] = Counter(dict(top))
            # rescan keeps nothing per-doc
        self._prepared = True
        self._prepared_epoch = self.engine.index.epoch

    def _extract(self, doc_id: DocId) -> Counter:
        texts = self.engine.document_text(doc_id)
        weights = self.engine.field_weights
        counts: Counter = Counter()
        for field_name, text in texts.items():
            weight = weights.get(field_name, 1.0)
            for term in display_unigrams(text, self.engine.tokenizer):
                counts[term] += weight
            if self.include_bigrams:
                for term in extract_bigrams(text, self.engine.tokenizer):
                    counts[term] += weight
        return counts

    # -- query-time work ----------------------------------------------------

    def _cache_key(
        self, ordered: Tuple[DocId, ...]
    ) -> Optional[Tuple[int, Tuple[DocId, ...]]]:
        """(epoch, result-set fingerprint), or None for unhashable ids."""
        key = (self.engine.index.epoch, ordered)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def _doc_counts(self, doc_id: DocId) -> Counter:
        if self.strategy == "rescan":
            return self._extract(doc_id)
        return self._doc_terms.get(doc_id, Counter())

    def _stats_from_counters(
        self, occurrences: Counter, result_df: Counter
    ) -> List[TermStats]:
        corpus_df = self._corpus_df
        return [
            TermStats(
                term=term,
                occurrences=occurrences[term],
                result_df=result_df[term],
                corpus_df=corpus_df.get(term, result_df[term]),
            )
            for term in occurrences
        ]

    def gather(self, doc_ids: Iterable[DocId]) -> List[TermStats]:
        """Term statistics over ``doc_ids`` according to the strategy."""
        if not self._prepared:
            raise CloudError("TermSource.prepare() must run before gather()")
        ordered = tuple(doc_ids)
        key = self._cache_key(ordered)
        if key is not None:
            cached = self._gather_cache.get(key)
            if cached is not None:
                # The cache holds an immutable tuple; hand each caller a
                # fresh list so in-place mutations cannot corrupt it.
                return list(cached[2])
        occurrences: Counter = Counter()
        result_df: Counter = Counter()
        for doc_id in ordered:
            for term, count in self._doc_counts(doc_id).items():
                occurrences[term] += count
                result_df[term] += 1
        stats = self._stats_from_counters(occurrences, result_df)
        if key is not None:
            self._gather_cache.put(
                key, (occurrences, result_df, tuple(stats))
            )
        return stats

    def gather_narrowed(
        self, parent_ids: Iterable[DocId], doc_ids: Iterable[DocId]
    ) -> List[TermStats]:
        """Statistics over ``doc_ids``, derived from a cached superset.

        Cloud refinement always *narrows* the result set, so the child's
        counters equal the parent's minus the dropped documents'.  When
        the parent's aggregates are cached and fewer documents were
        dropped than remain, subtraction beats a from-scratch merge; in
        every other case this transparently falls back to :meth:`gather`.
        The output is identical to ``gather(doc_ids)`` either way.
        """
        if not self._prepared:
            raise CloudError("TermSource.prepare() must run before gather()")
        ordered = tuple(doc_ids)
        parent_key = self._cache_key(tuple(parent_ids))
        key = self._cache_key(ordered)
        if parent_key is None or key is None:
            return self.gather(ordered)
        cached = self._gather_cache.get(key)
        if cached is not None:
            return list(cached[2])
        parent = self._gather_cache.get(parent_key)
        if parent is None:
            return self.gather(ordered)
        kept = set(ordered)
        removed = [doc_id for doc_id in parent_key[1] if doc_id not in kept]
        if len(removed) >= len(ordered):
            return self.gather(ordered)
        # Aggregate the dropped documents once, then derive the child in a
        # single pass over the parent's vocabulary (cheaper than copying
        # and mutating the parent's counters term by term).
        removed_occurrences: Dict[str, float] = {}
        removed_df: Dict[str, int] = {}
        for doc_id in removed:
            for term, count in self._doc_counts(doc_id).items():
                removed_occurrences[term] = (
                    removed_occurrences.get(term, 0) + count
                )
                removed_df[term] = removed_df.get(term, 0) + 1
        parent_occurrences, parent_df = parent[0], parent[1]
        occurrences: Counter = Counter()
        result_df: Counter = Counter()
        dropped_df = removed_df.get
        dropped_occ = removed_occurrences.get
        for term, df in parent_df.items():
            new_df = df - dropped_df(term, 0)
            if new_df > 0:
                result_df[term] = new_df
                occurrences[term] = parent_occurrences[term] - dropped_occ(
                    term, 0
                )
        stats = self._stats_from_counters(occurrences, result_df)
        self._gather_cache.put(key, (occurrences, result_df, tuple(stats)))
        return stats

    # -- scatter-gather exports ---------------------------------------------

    def partial_gather(
        self, doc_ids: Iterable[DocId]
    ) -> Tuple[Counter, Counter]:
        """Raw ``(occurrences, result_df)`` counters over ``doc_ids``.

        The merge-side primitive of sharded cloud construction: both
        counters are plain sums over the result documents, so per-shard
        partials over disjoint doc sets add up to exactly the counters
        :meth:`gather` would produce over the union (occurrence weights
        are dyadic rationals — half-integers — so float addition here is
        exact and order-independent).  Callers must treat the returned
        counters as immutable: they may be the gather cache's own.
        """
        if not self._prepared:
            raise CloudError("TermSource.prepare() must run before gather()")
        ordered = tuple(doc_ids)
        key = self._cache_key(ordered)
        if key is not None:
            cached = self._gather_cache.get(key)
            if cached is not None:
                return cached[0], cached[1]
        occurrences: Counter = Counter()
        result_df: Counter = Counter()
        for doc_id in ordered:
            for term, count in self._doc_counts(doc_id).items():
                occurrences[term] += count
                result_df[term] += 1
        if key is not None:
            stats = self._stats_from_counters(occurrences, result_df)
            self._gather_cache.put(key, (occurrences, result_df, tuple(stats)))
        return occurrences, result_df

    def corpus_document_frequencies(
        self, terms: Iterable[str]
    ) -> Dict[str, int]:
        """This shard's corpus df for ``terms`` (absent terms omitted).

        Shard corpora are disjoint, so summing these across shards yields
        the unsharded corpus df exactly.
        """
        corpus_df = self._corpus_df
        return {term: corpus_df[term] for term in terms if term in corpus_df}

    @property
    def corpus_size(self) -> int:
        return self.engine.index.document_count


class SignificanceScoring:
    """Base class for term significance models."""

    name = "base"

    def score(self, stats: TermStats, result_size: int, corpus_size: int) -> float:
        raise NotImplementedError


class FrequencyScoring(SignificanceScoring):
    """Raw weighted occurrence mass — the classic tag-cloud rule."""

    name = "frequency"

    def score(self, stats: TermStats, result_size: int, corpus_size: int) -> float:
        return float(stats.occurrences)


class TfIdfScoring(SignificanceScoring):
    """Occurrences in the results, discounted by corpus-wide rarity."""

    name = "tfidf"

    def score(self, stats: TermStats, result_size: int, corpus_size: int) -> float:
        if corpus_size == 0:
            return 0.0
        idf = math.log(1.0 + corpus_size / (1.0 + stats.corpus_df))
        return stats.occurrences * idf


class PopularityScoring(SignificanceScoring):
    """Coverage of the result set, discounted by corpus-wide rarity.

    A term in 80% of the matching courses characterizes the result set
    even if each mention is brief; a term mentioned 40 times in a single
    verbose comment does not.
    """

    name = "popularity"

    def score(self, stats: TermStats, result_size: int, corpus_size: int) -> float:
        if result_size == 0 or corpus_size == 0:
            return 0.0
        coverage = stats.result_df / result_size
        idf = math.log(1.0 + corpus_size / (1.0 + stats.corpus_df))
        return coverage * idf * math.log(1.0 + stats.occurrences)


SCORINGS = {
    scoring.name: scoring
    for scoring in (FrequencyScoring(), TfIdfScoring(), PopularityScoring())
}


def get_scoring(name_or_instance) -> SignificanceScoring:
    if isinstance(name_or_instance, SignificanceScoring):
        return name_or_instance
    try:
        return SCORINGS[name_or_instance]
    except KeyError:
        raise CloudError(
            f"unknown significance model {name_or_instance!r}; "
            f"choose from {sorted(SCORINGS)}"
        ) from None
