"""Preference-biased power iteration with deterministic convergence.

FolkRank's core computation: PageRank over the undirected tripartite
graph, with the teleport vector biased toward a *preference* set of
nodes, and the final ranking read off the **differential** between the
biased run and an unbiased baseline run (the baseline cancels the
popularity every node earns just from graph topology).

Determinism rules (property-tested in ``tests/graphrank``):

* Per-node incoming mass, the L1 convergence delta, and normalization
  checks all use :func:`math.fsum`, which is *exactly rounded*: the
  result is the correctly rounded true sum, independent of operand
  order.  Combined with integer edge weights (exact degrees), every
  score is bit-identical under user/course id permutation and under
  incremental-vs-cold adjacency rebuilds.
* Fixed ``damping``, ``epsilon``-on-L1-delta + ``max_iters`` stopping
  rule, and a stable ``(-score, node)`` tie-break wherever rankings are
  materialized.
* The graph contains only nodes with at least one edge (see
  :mod:`repro.graphrank.adjacency`), so the transition matrix is column
  stochastic and the rank mass stays at 1 (± one rounding) every
  iteration — the normalization property needs no renormalization step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GraphRankError
from repro.graphrank.adjacency import NodeId, TripartiteAdjacency

#: node kinds a preference entry may name
NODE_KINDS = ("user", "course", "term")


@dataclass(frozen=True)
class RankResult:
    """One converged (or max-iters-truncated) power iteration."""

    scores: Dict[NodeId, float]
    iterations: int
    converged: bool
    delta: float


def normalize_preference(
    preference: Optional[Iterable[Sequence]],
) -> Tuple[NodeId, ...]:
    """Validate and freeze a preference spec into node-id tuples.

    Duplicates collapse (first occurrence wins the ordering), so a
    repeated seed cannot double its teleport share.
    """
    if preference is None:
        return ()
    seen: Dict[NodeId, None] = {}
    for entry in preference:
        entry = tuple(entry)
        if len(entry) != 2 or entry[0] not in NODE_KINDS:
            raise GraphRankError(
                f"preference entries must be ('user'|'course'|'term', key); "
                f"got {entry!r}"
            )
        seen.setdefault(entry, None)
    return tuple(seen)


def teleport_vector(
    adjacency: TripartiteAdjacency,
    preference: Tuple[NodeId, ...] = (),
    preference_weight: float = 0.3,
) -> Dict[NodeId, float]:
    """The biased restart distribution ``p``.

    Uniform mass ``(1 - preference_weight)/n`` everywhere, with the
    remaining ``preference_weight`` split evenly over the preference
    nodes *present in the graph*.  With no (present) preference nodes
    this degrades to the uniform baseline vector.
    """
    nodes = adjacency.nodes
    count = len(nodes)
    if count == 0:
        return {}
    base = 1.0 / count
    present = [node for node in preference if node in adjacency.degrees]
    if not present:
        return {node: base for node in nodes}
    vector = {node: (1.0 - preference_weight) * base for node in nodes}
    boost = preference_weight / len(present)
    for node in present:
        vector[node] += boost
    return vector


def power_iteration(
    adjacency: TripartiteAdjacency,
    preference: Tuple[NodeId, ...] = (),
    damping: float = 0.85,
    epsilon: float = 1e-12,
    max_iters: int = 250,
    preference_weight: float = 0.3,
) -> RankResult:
    """Run damped power iteration to a fixed point.

    ``w ← (1-d)·p + d·A·w`` with ``A`` the degree-normalized adjacency;
    stops when the L1 delta between successive vectors drops to
    ``epsilon`` (or after ``max_iters``).  Starting from ``p`` itself
    makes repeated runs trivially identical.
    """
    if not 0.0 < damping < 1.0:
        raise GraphRankError(f"damping must be in (0, 1); got {damping}")
    if max_iters < 1:
        raise GraphRankError("max_iters must be at least 1")
    nodes = adjacency.nodes
    if not nodes:
        return RankResult(scores={}, iterations=0, converged=True, delta=0.0)
    teleport = teleport_vector(adjacency, preference, preference_weight)
    degrees = adjacency.degrees
    neighbors = adjacency.neighbors
    restart = 1.0 - damping
    rank = dict(teleport)
    iterations = 0
    delta = math.inf
    for iterations in range(1, max_iters + 1):
        fresh: Dict[NodeId, float] = {}
        for node in nodes:
            incoming = [
                rank[source] * (weight / degrees[source])
                for source, weight in neighbors[node].items()
            ]
            fresh[node] = (
                restart * teleport[node] + damping * math.fsum(incoming)
            )
        delta = math.fsum(abs(fresh[node] - rank[node]) for node in nodes)
        rank = fresh
        if delta <= epsilon:
            return RankResult(
                scores=rank, iterations=iterations, converged=True,
                delta=delta,
            )
    return RankResult(
        scores=rank, iterations=iterations, converged=False, delta=delta
    )


def ranked_of_kind(
    scores: Dict[NodeId, float],
    kind: str,
    exclude: Tuple[NodeId, ...] = (),
    top_k: Optional[int] = None,
) -> List[Tuple[object, float]]:
    """``(key, score)`` pairs of one node kind, deterministically ranked.

    Sorted by ``(-score, key)`` — the stable tie-break every exposure of
    the ranking shares, so equal scores never reorder between runs.
    """
    dropped = set(exclude)
    entries = [
        (node[1], score)
        for node, score in scores.items()
        if node[0] == kind and node not in dropped
    ]
    entries.sort(key=lambda entry: (-entry[1], entry[0]))
    if top_k is not None:
        entries = entries[:top_k]
    return entries
