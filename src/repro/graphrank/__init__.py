"""FolkRank-style graph ranking over the user–course–term graph.

See :mod:`repro.graphrank.adjacency` (version-keyed layered graph),
:mod:`repro.graphrank.ranker` (deterministic preference-biased power
iteration), and :mod:`repro.graphrank.engine` (the cached per-database
engine plus the cloud term-weighting scoring).
"""

from repro.graphrank.adjacency import (
    LAYER_ORDER,
    LAYER_TABLES,
    AdjacencyLayer,
    NodeId,
    TripartiteAdjacency,
    build_layer,
    layer_version,
)
from repro.graphrank.engine import GraphRankEngine, GraphWeightedScoring
from repro.graphrank.ranker import (
    NODE_KINDS,
    RankResult,
    normalize_preference,
    power_iteration,
    ranked_of_kind,
    teleport_vector,
)

__all__ = [
    "LAYER_ORDER",
    "LAYER_TABLES",
    "AdjacencyLayer",
    "NodeId",
    "TripartiteAdjacency",
    "build_layer",
    "layer_version",
    "GraphRankEngine",
    "GraphWeightedScoring",
    "NODE_KINDS",
    "RankResult",
    "normalize_preference",
    "power_iteration",
    "ranked_of_kind",
    "teleport_vector",
]
