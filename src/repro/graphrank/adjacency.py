"""Tripartite user–course–term adjacency for FolkRank-style ranking.

The folksonomy literature ("Deeper Into the Folksonomy Graph") ranks by
spreading weight over the undirected tripartite graph of users, items,
and tags.  CourseRank's analogue: **users** (students), **courses**, and
**terms** (display vocabulary mined from comment and course text, the
same unstemmed unigrams the data clouds show).  Edges:

* user–course — one unit per enrollment, plus one per comment;
* user–term / course–term — one unit per occurrence of the term in a
  comment that user left on that course;
* course–term — ``title_weight`` units per occurrence in the course
  title, one per occurrence in the description.

Two design rules make everything downstream deterministic:

* **Integer edge weights.**  Integer sums are exact regardless of
  accumulation order, so the merged adjacency (and every node degree) is
  identical whether layers were rebuilt cold or patched incrementally,
  and identical under any permutation of user/course ids.
* **Version-keyed layers.**  The adjacency is built as three independent
  layers (enrollment, comment, content), each stamped with the
  ``(schema_epoch, data_version)`` snapshot of its source tables — the
  extendcache discipline.  A write to Comments invalidates only the
  comment layer; the other layers are reused verbatim, and the merge
  runs in a fixed layer order, so an incremental refresh reproduces the
  cold build bit for bit *by construction*.

Nodes are ``(kind, key)`` tuples — ``("user", suid)``,
``("course", course_id)``, ``("term", text)`` — and only nodes with at
least one edge exist (no dangling mass, so rank vectors stay normalized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import GraphRankError
from repro.minidb.catalog import Database
from repro.search.phrases import display_unigrams
from repro.search.tokenizer import Tokenizer

NodeId = Tuple[str, Any]
Edges = Dict[NodeId, Dict[NodeId, int]]

#: fixed build + merge order; changing it would change nothing semantically
#: (integer sums commute) but keeping it fixed makes the determinism
#: argument a one-liner.
LAYER_ORDER: Tuple[str, ...] = ("enrollment", "comment", "content")

#: source tables per layer — the version key of a layer snapshots exactly
#: these tables, so a write anywhere else cannot invalidate it.
LAYER_TABLES: Dict[str, Tuple[str, ...]] = {
    "enrollment": ("Enrollments",),
    "comment": ("Comments",),
    "content": ("Courses",),
}


@dataclass(frozen=True)
class AdjacencyLayer:
    """One independently rebuildable slice of the tripartite graph."""

    name: str
    version: Tuple[Any, ...]
    edges: Edges


def layer_version(database: Database, name: str) -> Tuple[Any, ...]:
    """The invalidation key of layer ``name`` over ``database``.

    Embeds the schema epoch and each source table's data version, so any
    DML on a source table (or any DDL at all) rotates the key — stale
    layers become unreachable by construction, never by bookkeeping.
    """
    tables = LAYER_TABLES.get(name)
    if tables is None:
        raise GraphRankError(f"unknown adjacency layer {name!r}")
    return (
        database.schema_epoch,
        tuple(
            (table, database.table(table).data_version) for table in tables
        ),
    )


def _add_edge(edges: Edges, left: NodeId, right: NodeId, weight: int) -> None:
    """Accumulate an undirected integer-weight edge."""
    if left == right:
        return
    forward = edges.setdefault(left, {})
    forward[right] = forward.get(right, 0) + weight
    backward = edges.setdefault(right, {})
    backward[left] = backward.get(left, 0) + weight


def build_layer(
    name: str,
    database: Database,
    tokenizer: Optional[Tokenizer] = None,
    title_weight: int = 2,
) -> AdjacencyLayer:
    """Cold-build one layer from its source tables."""
    version = layer_version(database, name)
    edges: Edges = {}
    if name == "enrollment":
        rows = database.query("SELECT SuID, CourseID FROM Enrollments").rows
        for suid, course_id in rows:
            if suid is None or course_id is None:
                continue
            _add_edge(edges, ("user", suid), ("course", course_id), 1)
    elif name == "comment":
        rows = database.query(
            "SELECT SuID, CourseID, Text FROM Comments"
        ).rows
        for suid, course_id, text in rows:
            if suid is None or course_id is None:
                continue
            user: NodeId = ("user", suid)
            course: NodeId = ("course", course_id)
            _add_edge(edges, user, course, 1)
            if text:
                for term in display_unigrams(str(text), tokenizer):
                    node: NodeId = ("term", term)
                    _add_edge(edges, user, node, 1)
                    _add_edge(edges, course, node, 1)
    elif name == "content":
        rows = database.query(
            "SELECT CourseID, Title, Description FROM Courses"
        ).rows
        for course_id, title, description in rows:
            if course_id is None:
                continue
            course = ("course", course_id)
            for text, weight in ((title, title_weight), (description, 1)):
                if not text:
                    continue
                for term in display_unigrams(str(text), tokenizer):
                    _add_edge(edges, course, ("term", term), weight)
    else:
        raise GraphRankError(f"unknown adjacency layer {name!r}")
    return AdjacencyLayer(name=name, version=version, edges=edges)


class TripartiteAdjacency:
    """The merged user–course–term graph, ready for power iteration.

    ``nodes`` is the sorted node tuple (the deterministic iteration
    order), ``neighbors[u]`` maps each neighbor to the summed integer
    edge weight, and ``degrees[u]`` is the (exact, integer) weighted
    degree.  Merging always walks :data:`LAYER_ORDER`, so a graph
    assembled from any mix of cached and rebuilt layers is identical to
    a cold build over the same data.
    """

    def __init__(self, layers: Dict[str, AdjacencyLayer]) -> None:
        missing = [name for name in LAYER_ORDER if name not in layers]
        if missing:
            raise GraphRankError(f"missing adjacency layers: {missing}")
        self.layers = {name: layers[name] for name in LAYER_ORDER}
        merged: Edges = {}
        for name in LAYER_ORDER:
            for node, neighbors in self.layers[name].edges.items():
                bucket = merged.setdefault(node, {})
                for neighbor, weight in neighbors.items():
                    bucket[neighbor] = bucket.get(neighbor, 0) + weight
        self.neighbors: Edges = merged
        self.nodes: Tuple[NodeId, ...] = tuple(sorted(merged))
        self.degrees: Dict[NodeId, int] = {
            node: sum(neighbors.values())
            for node, neighbors in merged.items()
        }
        self.edge_count = (
            sum(len(neighbors) for neighbors in merged.values()) // 2
        )

    def version_key(self) -> Tuple[Any, ...]:
        """The concatenated layer versions — the graph's identity."""
        return tuple(self.layers[name].version for name in LAYER_ORDER)

    def nodes_of_kind(self, kind: str) -> List[NodeId]:
        return [node for node in self.nodes if node[0] == kind]

    def __contains__(self, node: NodeId) -> bool:
        return node in self.degrees

    def __len__(self) -> int:
        return len(self.nodes)
