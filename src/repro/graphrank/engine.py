"""The FolkRank engine: cached adjacency, baselines, and differentials.

One :class:`GraphRankEngine` per database (via :meth:`for_database`, the
extendcache ``WeakKeyDictionary`` idiom) owns

* the layered tripartite adjacency, refreshed incrementally — only
  layers whose source-table versions moved are rebuilt (see
  :mod:`repro.graphrank.adjacency`);
* a memoized **baseline** rank vector per adjacency version (the
  uniform-teleport run both every differential and the cloud
  term-weighting mode subtract);
* a memoized differential vector per ``(adjacency version, parameters,
  preference)`` — the Zipfian head of a service workload repeats
  preferences, so warm calls skip the iteration entirely.

All memo keys embed the adjacency version key (which embeds source-table
data versions and the schema epoch), so any write invalidates by
construction.  The engine is thread-safe: refresh and rank run under one
reentrant lock (the service layer calls in from many worker threads).

:class:`GraphWeightedScoring` is the cloud-side exposure: a significance
model that boosts a base scoring by the positive baseline-subtracted
graph weight of each term, so a preference-seeded cloud leans toward the
vocabulary the graph associates with that user or course.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.caching import LRUCache
from repro.clouds.scoring import SignificanceScoring, TermStats, get_scoring
from repro.errors import GraphRankError
from repro.minidb.catalog import Database
from repro.obs import OBS
from repro.search.tokenizer import Tokenizer
from repro.graphrank.adjacency import (
    LAYER_ORDER,
    NodeId,
    TripartiteAdjacency,
    build_layer,
    layer_version,
)
from repro.graphrank.ranker import (
    RankResult,
    normalize_preference,
    power_iteration,
    ranked_of_kind,
)

_ENGINES: "WeakKeyDictionary[Database, GraphRankEngine]" = WeakKeyDictionary()
_ENGINES_LOCK = threading.Lock()


class GraphRankEngine:
    """Preference-biased graph ranking over one database."""

    def __init__(
        self,
        database: Database,
        damping: float = 0.85,
        epsilon: float = 1e-12,
        max_iters: int = 250,
        preference_weight: float = 0.3,
        title_weight: int = 2,
        tokenizer: Optional[Tokenizer] = None,
    ) -> None:
        self.database = database
        self.damping = damping
        self.epsilon = epsilon
        self.max_iters = max_iters
        self.preference_weight = preference_weight
        self.title_weight = title_weight
        self.tokenizer = tokenizer or Tokenizer()
        self._lock = threading.RLock()
        self._layers: Dict[str, Any] = {}
        self._adjacency: Optional[TripartiteAdjacency] = None
        self._baseline_cache = LRUCache(maxsize=8)
        self._rank_cache = LRUCache(maxsize=64)
        self.layers_rebuilt = 0
        self.layers_reused = 0
        #: the most recent preference-biased iteration (tests/obs)
        self.last_result: Optional[RankResult] = None

    @classmethod
    def for_database(cls, database: Database) -> "GraphRankEngine":
        """The shared engine of ``database`` (created on first use).

        Keyed weakly, so caching an engine never pins a database, and
        every caller — executor, clouds, service shards — converges on
        the same warmed adjacency.
        """
        with _ENGINES_LOCK:
            engine = _ENGINES.get(database)
            if engine is None:
                engine = cls(database)
                _ENGINES[database] = engine
            return engine

    # -- adjacency maintenance ----------------------------------------------

    def refresh(self) -> TripartiteAdjacency:
        """The current adjacency, rebuilding only stale layers."""
        with self._lock:
            changed = False
            layers: Dict[str, Any] = {}
            for name in LAYER_ORDER:
                version = layer_version(self.database, name)
                cached = self._layers.get(name)
                if cached is not None and cached.version == version:
                    layers[name] = cached
                    self.layers_reused += 1
                    continue
                with OBS.span("graphrank.layer_build", {"layer": name}):
                    started = time.perf_counter()
                    layers[name] = build_layer(
                        name,
                        self.database,
                        tokenizer=self.tokenizer,
                        title_weight=self.title_weight,
                    )
                    if OBS.enabled:
                        OBS.metrics.inc(f"graphrank.layer_build.{name}")
                        OBS.metrics.observe(
                            "graphrank.layer_build.ms",
                            (time.perf_counter() - started) * 1000.0,
                        )
                self.layers_rebuilt += 1
                changed = True
            if changed or self._adjacency is None:
                self._layers = layers
                self._adjacency = TripartiteAdjacency(layers)
            return self._adjacency

    # -- ranking -------------------------------------------------------------

    def _params(
        self,
        damping: Optional[float],
        epsilon: Optional[float],
        max_iters: Optional[int],
        preference_weight: Optional[float],
    ) -> Tuple[float, float, int, float]:
        return (
            self.damping if damping is None else damping,
            self.epsilon if epsilon is None else epsilon,
            self.max_iters if max_iters is None else max_iters,
            (
                self.preference_weight
                if preference_weight is None
                else preference_weight
            ),
        )

    def baseline(
        self,
        damping: Optional[float] = None,
        epsilon: Optional[float] = None,
        max_iters: Optional[int] = None,
    ) -> Dict[NodeId, float]:
        """The uniform-teleport rank vector (memoized per graph version)."""
        with self._lock:
            adjacency = self.refresh()
            resolved = self._params(damping, epsilon, max_iters, None)
            key = (adjacency.version_key(), resolved[:3])
            cached = self._baseline_cache.get(key)
            if cached is not None:
                return cached
            with OBS.span("graphrank.baseline"):
                result = power_iteration(
                    adjacency,
                    preference=(),
                    damping=resolved[0],
                    epsilon=resolved[1],
                    max_iters=resolved[2],
                )
            self._baseline_cache.put(key, result.scores)
            return result.scores

    def rank(
        self,
        preference: Optional[Iterable[Sequence]] = None,
        damping: Optional[float] = None,
        epsilon: Optional[float] = None,
        max_iters: Optional[int] = None,
        preference_weight: Optional[float] = None,
    ) -> RankResult:
        """One raw (non-differential) preference-biased iteration."""
        frozen = normalize_preference(preference)
        with self._lock:
            adjacency = self.refresh()
            resolved = self._params(
                damping, epsilon, max_iters, preference_weight
            )
            result = power_iteration(
                adjacency,
                preference=frozen,
                damping=resolved[0],
                epsilon=resolved[1],
                max_iters=resolved[2],
                preference_weight=resolved[3],
            )
            self.last_result = result
            return result

    def differential(
        self,
        preference: Iterable[Sequence],
        damping: Optional[float] = None,
        epsilon: Optional[float] = None,
        max_iters: Optional[int] = None,
        preference_weight: Optional[float] = None,
    ) -> Dict[NodeId, float]:
        """FolkRank scores: biased rank minus the unbiased baseline.

        The subtraction cancels pure-topology popularity, leaving what
        the preference *added* — the folksonomy papers' differential
        ranking.  Memoized per (graph version, parameters, preference).
        """
        frozen = normalize_preference(preference)
        with self._lock:
            adjacency = self.refresh()
            resolved = self._params(
                damping, epsilon, max_iters, preference_weight
            )
            key = (adjacency.version_key(), resolved, frozen)
            cached = self._rank_cache.get(key)
            if cached is not None:
                if OBS.enabled:
                    OBS.metrics.inc("graphrank.rank.memo_hit")
                return cached
            with OBS.span(
                "graphrank.differential", {"seeds": len(frozen)}
            ) as span:
                started = time.perf_counter()
                base = self.baseline(
                    damping=resolved[0],
                    epsilon=resolved[1],
                    max_iters=resolved[2],
                )
                result = power_iteration(
                    adjacency,
                    preference=frozen,
                    damping=resolved[0],
                    epsilon=resolved[1],
                    max_iters=resolved[2],
                    preference_weight=resolved[3],
                )
                self.last_result = result
                scores = {
                    node: score - base[node]
                    for node, score in result.scores.items()
                }
                if OBS.enabled:
                    span.set(
                        nodes=len(adjacency), iterations=result.iterations
                    )
                    OBS.metrics.inc("graphrank.rank.computed")
                    OBS.metrics.observe(
                        "graphrank.rank.ms",
                        (time.perf_counter() - started) * 1000.0,
                    )
            self._rank_cache.put(key, scores)
            return scores

    def rank_courses(
        self,
        preference: Iterable[Sequence],
        top_k: Optional[int] = None,
        exclude_seed: bool = True,
        **params: Any,
    ) -> List[Tuple[Any, float]]:
        """Ranked ``(course_id, differential score)`` pairs.

        Only courses present in the graph (≥ one edge) are rankable;
        with ``exclude_seed`` any course named in the preference itself
        is dropped, so "similar to course X" never answers "X".
        """
        frozen = normalize_preference(preference)
        scores = self.differential(frozen, **params)
        exclude = (
            tuple(node for node in frozen if node[0] == "course")
            if exclude_seed
            else ()
        )
        return ranked_of_kind(scores, "course", exclude=exclude, top_k=top_k)

    def term_weights(
        self, preference: Iterable[Sequence], **params: Any
    ) -> Dict[str, float]:
        """Baseline-subtracted term scores (the cloud-weighting mode)."""
        scores = self.differential(preference, **params)
        return {
            node[1]: score
            for node, score in scores.items()
            if node[0] == "term"
        }

    # -- maintenance / observability ----------------------------------------

    def clear_rank_memo(self) -> None:
        """Drop memoized differentials (baselines and layers survive).

        The warm-adjacency benchmark uses this to time the iteration
        itself rather than a dictionary lookup.
        """
        with self._lock:
            self._rank_cache.clear()

    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "layers_rebuilt": self.layers_rebuilt,
                "layers_reused": self.layers_reused,
                "baseline_hits": self._baseline_cache.hits,
                "baseline_misses": self._baseline_cache.misses,
                "rank_hits": self._rank_cache.hits,
                "rank_misses": self._rank_cache.misses,
                "nodes": len(self._adjacency) if self._adjacency else 0,
                "edges": (
                    self._adjacency.edge_count if self._adjacency else 0
                ),
            }


class GraphWeightedScoring(SignificanceScoring):
    """A cloud significance model boosted by graph differentials.

    Wraps any base scoring and multiplies each term's base score by
    ``1 + boost · max(differential, 0)``: terms the preference-biased
    walk lifts above baseline grow, everything else keeps its base
    score.  The weights snapshot lazily on first use — instances are
    per-request objects, like the preference they carry.
    """

    name = "graphrank"

    def __init__(
        self,
        engine: GraphRankEngine,
        preference: Iterable[Sequence],
        base: Any = "popularity",
        boost: float = 200.0,
    ) -> None:
        if boost < 0:
            raise GraphRankError("boost must be non-negative")
        self.engine = engine
        self.preference = normalize_preference(preference)
        self.base = get_scoring(base)
        self.boost = boost
        self._weights: Optional[Dict[str, float]] = None

    def weights(self) -> Dict[str, float]:
        if self._weights is None:
            self._weights = self.engine.term_weights(self.preference)
        return self._weights

    def score(
        self, stats: TermStats, result_size: int, corpus_size: int
    ) -> float:
        base_score = self.base.score(stats, result_size, corpus_size)
        if base_score <= 0:
            return base_score
        lift = self.weights().get(stats.term, 0.0)
        if lift <= 0.0:
            return base_score
        return base_score * (1.0 + self.boost * lift)
