"""Synthetic university data (the paper's Stanford-registry substitution).

Deterministic, seeded generation of the complete CourseRank dataset:
catalog (departments, courses, instructors, offerings with meeting times,
prerequisites, textbooks, program requirements) and population (students,
accounts, enrollments with grades, comments, ratings, plans, official
grade histograms, forum questions).

The ``full`` preset reproduces the paper's September-2008 statistics:
18,605 courses, 134,000 comments, 50,300 ratings, 9,000 registered
students of ~14,000.
"""

from repro.datagen.catalog import GeneratedCatalog, GeneratedCourse, generate_catalog
from repro.datagen.config import SCALES, ScaleConfig, get_scale
from repro.datagen.population import GeneratedPopulation, generate_population
from repro.datagen.university import GenerationReport, generate_university

__all__ = [
    "GeneratedCatalog",
    "GeneratedCourse",
    "generate_catalog",
    "SCALES",
    "ScaleConfig",
    "get_scale",
    "GeneratedPopulation",
    "generate_population",
    "GenerationReport",
    "generate_university",
]
