"""Generation of the official-data side: the course catalog.

Produces departments, courses (with themed titles/descriptions),
instructors and teaching assignments, offerings with meeting times,
acyclic prerequisites, textbooks, and program requirements — the data
CourseRank gets "from the university" rather than from users.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.courserank.schema import TERMS
from repro.datagen.config import ScaleConfig
from repro.datagen.vocab import (
    DESCRIPTION_PATTERNS,
    FIRST_NAMES,
    LAST_NAMES,
    TEXTBOOK_PATTERNS,
    TITLE_PATTERNS,
    DepartmentTheme,
    synthesize_departments,
)
from repro.minidb.catalog import Database


@dataclass
class GeneratedCourse:
    """Catalog-side metadata kept for the population generator."""

    course_id: int
    dep_id: int
    title: str
    topics: Tuple[str, ...]  # the topic phrases woven into this course
    units: int
    easiness: float  # 0..1, drives grade distributions
    quality: float  # 0..1, drives ratings
    school: str


@dataclass
class GeneratedCatalog:
    """Everything downstream generators need about the catalog."""

    departments: List[Tuple[int, DepartmentTheme]]
    courses: List[GeneratedCourse]
    courses_by_department: Dict[int, List[GeneratedCourse]]
    offering_slots: Dict[int, List[Tuple[int, str]]]  # course -> (year, term)


def _course_counts(total: int, departments: int, rng: random.Random) -> List[int]:
    """Distribute ``total`` courses over departments, roughly 0.5x-1.5x even."""
    base = total // departments
    counts = []
    remaining = total
    for index in range(departments):
        if index == departments - 1:
            counts.append(remaining)
            break
        low = max(1, int(base * 0.5))
        high = max(low + 1, int(base * 1.5))
        count = min(remaining - (departments - index - 1), rng.randint(low, high))
        count = max(1, count)
        counts.append(count)
        remaining -= count
    return counts


def generate_catalog(
    database: Database, config: ScaleConfig, rng: random.Random
) -> GeneratedCatalog:
    """Populate catalog relations; returns metadata for the population step."""
    themes = synthesize_departments(config.departments)
    departments_table = database.table("Departments")
    departments: List[Tuple[int, DepartmentTheme]] = []
    for dep_id, theme in enumerate(themes, start=1):
        departments_table.insert(
            [dep_id, theme.name, theme.school, theme.school == "Engineering"]
        )
        departments.append((dep_id, theme))

    counts = _course_counts(config.courses, config.departments, rng)
    courses_table = database.table("Courses")
    courses: List[GeneratedCourse] = []
    by_department: Dict[int, List[GeneratedCourse]] = {}
    course_id = 0
    for (dep_id, theme), count in zip(departments, counts):
        for _ in range(count):
            course_id += 1
            main_topic = rng.choice(theme.topics)
            extra = [rng.choice(theme.topics) for _ in range(2)]
            pattern = rng.choice(TITLE_PATTERNS)
            title = pattern.format(topic=main_topic.title())
            description = rng.choice(DESCRIPTION_PATTERNS).format(
                a=main_topic, b=extra[0], c=extra[1]
            )
            units = rng.choice((1, 2, 3, 3, 4, 4, 5, 5))
            course = GeneratedCourse(
                course_id=course_id,
                dep_id=dep_id,
                title=title,
                topics=(main_topic, extra[0], extra[1]),
                units=units,
                easiness=rng.uniform(0.2, 0.9),
                quality=rng.uniform(0.3, 0.95),
                school=theme.school,
            )
            courses_table.insert(
                [
                    course_id,
                    dep_id,
                    title,
                    description,
                    units,
                    f"http://courses.example.edu/{course_id}",
                ]
            )
            courses.append(course)
            by_department.setdefault(dep_id, []).append(course)

    _generate_instructors(database, departments, by_department, config, rng)
    offering_slots = _generate_offerings(database, courses, config, rng)
    _generate_prerequisites(database, by_department, config, rng)
    _generate_textbooks(database, courses, config, rng)
    _generate_requirements(database, by_department, rng)

    return GeneratedCatalog(
        departments=departments,
        courses=courses,
        courses_by_department=by_department,
        offering_slots=offering_slots,
    )


def _generate_instructors(
    database: Database,
    departments: Sequence[Tuple[int, DepartmentTheme]],
    by_department: Dict[int, List[GeneratedCourse]],
    config: ScaleConfig,
    rng: random.Random,
) -> None:
    instructors_table = database.table("Instructors")
    teaches_table = database.table("Teaches")
    instructor_id = 0
    for dep_id, _theme in departments:
        local: List[int] = []
        for _ in range(config.instructors_per_department):
            instructor_id += 1
            name = (
                f"Prof. {rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
            )
            instructors_table.insert([instructor_id, name, dep_id])
            local.append(instructor_id)
        # Every course gets 1-2 instructors from its department.
        for course in by_department.get(dep_id, ()):
            chosen = rng.sample(local, k=min(len(local), rng.choice((1, 1, 2))))
            for teacher in chosen:
                teaches_table.insert([teacher, course.course_id])


_DAY_PATTERNS = ("MWF", "TTh", "MW", "F")
_START_HOURS = tuple(range(8, 17))


def _generate_offerings(
    database: Database,
    courses: Sequence[GeneratedCourse],
    config: ScaleConfig,
    rng: random.Random,
) -> Dict[int, List[Tuple[int, str]]]:
    offerings_table = database.table("Offerings")
    slots: Dict[int, List[Tuple[int, str]]] = {}
    years = tuple(config.years) + (config.plan_year,)
    for course in courses:
        course_slots: List[Tuple[int, str]] = []
        for year in years:
            terms = rng.sample(TERMS[:3], k=rng.choice((1, 1, 2)))
            for term in terms:
                days = rng.choice(_DAY_PATTERNS)
                start = rng.choice(_START_HOURS) * 60 + rng.choice((0, 30))
                duration = rng.choice((50, 80, 110))
                offerings_table.insert(
                    [course.course_id, year, term, days, start, start + duration]
                )
                course_slots.append((year, term))
        slots[course.course_id] = course_slots
    return slots


def _generate_prerequisites(
    database: Database,
    by_department: Dict[int, List[GeneratedCourse]],
    config: ScaleConfig,
    rng: random.Random,
) -> None:
    """Prerequisites within a department, acyclic by id ordering."""
    table = database.table("Prerequisites")
    for courses in by_department.values():
        for position, course in enumerate(courses):
            if position == 0:
                continue
            if rng.random() < config.prerequisite_fraction:
                prereq = rng.choice(courses[:position])
                table.insert([course.course_id, prereq.course_id])


def _generate_textbooks(
    database: Database,
    courses: Sequence[GeneratedCourse],
    config: ScaleConfig,
    rng: random.Random,
) -> None:
    textbooks_table = database.table("Textbooks")
    link_table = database.table("CourseTextbooks")
    textbook_id = 0
    for course in courses:
        if rng.random() >= config.textbook_fraction:
            continue
        for _ in range(rng.choice((1, 1, 2))):
            textbook_id += 1
            title = rng.choice(TEXTBOOK_PATTERNS).format(
                topic=rng.choice(course.topics).title()
            )
            author = f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
            textbooks_table.insert(
                [textbook_id, f"{title} #{textbook_id}", author]
            )
            link_table.insert([course.course_id, textbook_id, None])


def _generate_requirements(
    database: Database,
    by_department: Dict[int, List[GeneratedCourse]],
    rng: random.Random,
) -> None:
    """2-3 requirements per department over its own courses."""
    from repro.courserank.requirements import RequirementTracker

    tracker = RequirementTracker(database)
    for dep_id, courses in by_department.items():
        ids = [course.course_id for course in courses]
        if len(ids) < 4:
            core = ids[: max(1, len(ids) // 2)]
            tracker.define(
                dep_id,
                "Core sequence",
                f"ALL({', '.join(str(i) for i in core)})",
            )
            continue
        core = ids[:2]
        elective_pool = ids[2 : min(len(ids), 8)]
        tracker.define(
            dep_id,
            "Core sequence",
            f"ALL({', '.join(str(i) for i in core)})",
        )
        tracker.define(
            dep_id,
            "Electives",
            f"ATLEAST(2, {', '.join(str(i) for i in elective_pool)})",
        )
        total_units = rng.choice((12, 15, 18))
        tracker.define(
            dep_id,
            "Unit minimum",
            f"DEPUNITS({total_units}, {dep_id})",
        )
