"""Generation of the user-contributed side: the campus population.

Students (with majors and class years), user accounts for the three
constituencies, enrollments with self-reported grades (Zipfian course
popularity, major-biased course choice), comments and ratings hitting the
configured totals exactly, four-year-plan entries with the sharing flag,
official grade distributions for the Engineering school (correlated with
the self-reported ones, as the paper observes), and a trickle of forum
questions (the paper: the forum had little traffic).
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.courserank.schema import GRADE_BUCKETS, GRADE_POINTS
from repro.datagen.catalog import GeneratedCatalog, GeneratedCourse
from repro.datagen.config import ScaleConfig
from repro.datagen.vocab import (
    COMMENT_TEMPLATES,
    FIRST_NAMES,
    LAST_NAMES,
    LOAD_WORDS,
    QUALITY_WORDS,
    SPAM_TEMPLATES,
)
from repro.minidb.catalog import Database


@dataclass
class GeneratedPopulation:
    """Metadata about the generated population (for reports/tests)."""

    student_ids: List[int]
    registered_student_ids: List[int]
    enrollment_count: int
    comment_count: int
    rating_count: int


def generate_population(
    database: Database,
    catalog: GeneratedCatalog,
    config: ScaleConfig,
    rng: random.Random,
) -> GeneratedPopulation:
    students = _generate_students(database, catalog, config, rng)
    registered = students[: config.registered_users]
    _generate_users(database, catalog, config, rng, registered)
    enrollments = _generate_enrollments(
        database, catalog, config, rng, students, set(registered)
    )
    comment_count, rating_count = _generate_comments(
        database, catalog, config, rng, enrollments, registered
    )
    _update_gpas(database, catalog, enrollments)
    _generate_plans(database, catalog, config, rng, registered, enrollments)
    _generate_official_grades(database, catalog, config, rng, enrollments)
    _generate_questions(database, catalog, config, rng, registered)
    return GeneratedPopulation(
        student_ids=students,
        registered_student_ids=registered,
        enrollment_count=sum(len(rows) for rows in enrollments.values()),
        comment_count=comment_count,
        rating_count=rating_count,
    )


# ---------------------------------------------------------------------------
# students & users
# ---------------------------------------------------------------------------


def _generate_students(
    database: Database,
    catalog: GeneratedCatalog,
    config: ScaleConfig,
    rng: random.Random,
) -> List[int]:
    table = database.table("Students")
    department_names = {
        dep_id: theme.name for dep_id, theme in catalog.departments
    }
    dep_ids = list(department_names)
    student_ids = []
    for suid in range(1, config.students + 1):
        name = (
            f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)} {suid}"
        )
        class_year = rng.choice((2009, 2010, 2011, 2012))
        major = department_names[rng.choice(dep_ids)]
        table.insert([suid, name, class_year, major, None])
        student_ids.append(suid)
    return student_ids


def _generate_users(
    database: Database,
    catalog: GeneratedCatalog,
    config: ScaleConfig,
    rng: random.Random,
    registered: Sequence[int],
) -> None:
    table = database.table("Users")
    user_id = 0
    for suid in registered:
        user_id += 1
        table.insert([user_id, f"student{suid}", "student", suid])
    instructor_ids = [
        row[0] for row in database.table("Instructors").rows()
    ]
    for instructor_id in instructor_ids[: config.faculty_users]:
        user_id += 1
        table.insert(
            [user_id, f"faculty{instructor_id}", "faculty", instructor_id]
        )
    for index in range(config.staff_users):
        user_id += 1
        table.insert([user_id, f"staff{index + 1}", "staff", None])


# ---------------------------------------------------------------------------
# enrollments
# ---------------------------------------------------------------------------


def _zipf_weights(count: int) -> List[float]:
    return [1.0 / (rank + 1) for rank in range(count)]


def _grade_for(easiness: float, rng: random.Random) -> Optional[str]:
    """Draw a letter grade; easier courses skew toward A."""
    roll = rng.random()
    a_cut = 0.25 + 0.5 * easiness
    b_cut = a_cut + 0.30
    c_cut = b_cut + 0.15
    d_cut = c_cut + 0.05
    if roll < a_cut:
        return "A"
    if roll < b_cut:
        return "B"
    if roll < c_cut:
        return "C"
    if roll < d_cut:
        return "D"
    return "F"


def _generate_enrollments(
    database: Database,
    catalog: GeneratedCatalog,
    config: ScaleConfig,
    rng: random.Random,
    students: Sequence[int],
    registered: Set[int],
) -> Dict[int, List[Tuple[GeneratedCourse, int, str, Optional[str]]]]:
    """Per-student enrollments: course, year, term, grade."""
    table = database.table("Enrollments")
    department_of_major = {
        theme.name: dep_id for dep_id, theme in catalog.departments
    }
    all_courses = catalog.courses
    global_weights = _zipf_weights(len(all_courses))
    comments_per_user = max(1, config.comments // max(1, config.registered_users))
    by_student: Dict[int, List[Tuple[GeneratedCourse, int, str, Optional[str]]]] = {}
    students_rows = {
        row[0]: row for row in database.table("Students").rows()
    }
    for suid in students:
        is_registered = suid in registered
        want = (
            comments_per_user + rng.randint(3, 8)
            if is_registered
            else rng.randint(2, 6)
        )
        major_name = students_rows[suid][3]
        major_dep = department_of_major.get(major_name)
        major_courses = catalog.courses_by_department.get(major_dep, [])
        chosen: Dict[int, GeneratedCourse] = {}
        attempts = 0
        while len(chosen) < want and attempts < want * 6:
            attempts += 1
            if major_courses and rng.random() < 0.7:
                weights = _zipf_weights(len(major_courses))
                course = rng.choices(major_courses, weights=weights, k=1)[0]
            else:
                course = rng.choices(all_courses, weights=global_weights, k=1)[0]
            chosen[course.course_id] = course
        rows = []
        for course in chosen.values():
            slots = [
                (year, term)
                for year, term in catalog.offering_slots[course.course_id]
                if year in config.years
            ]
            if not slots:
                continue
            year, term = rng.choice(slots)
            grade = _grade_for(course.easiness, rng)
            table.insert([suid, course.course_id, year, term, grade])
            rows.append((course, year, term, grade))
        by_student[suid] = rows
    return by_student


def _update_gpas(
    database: Database,
    catalog: GeneratedCatalog,
    enrollments: Dict[int, List[Tuple[GeneratedCourse, int, str, Optional[str]]]],
) -> None:
    """Set Students.GPA to the unit-weighted GPA of the enrollments."""
    gpas: Dict[int, Optional[float]] = {}
    for suid, rows in enrollments.items():
        points = 0.0
        units = 0
        for course, _year, _term, grade in rows:
            if grade in GRADE_POINTS:
                weight = course.units or 1
                points += GRADE_POINTS[grade] * weight
                units += weight
        gpas[suid] = round(points / units, 4) if units else None
    table = database.table("Students")
    for rowid, row in list(table.rows_with_ids()):
        gpa = gpas.get(row[0])
        if gpa is not None:
            table.update_rowid(rowid, (row[0], row[1], row[2], row[3], gpa))


# ---------------------------------------------------------------------------
# comments & ratings
# ---------------------------------------------------------------------------


def _rating_for(
    quality: float, grade: Optional[str], rng: random.Random
) -> float:
    """An honest rating: mostly course quality, partly own experience.

    The grade term makes per-course average ratings track the actual
    course outcomes — the signal the closed-community quality metrics
    measure (spam ratings carry none of it).
    """
    grade_points = GRADE_POINTS.get(grade, 2.5) if grade else 2.5
    raw = (
        1.0
        + 3.2 * quality
        + 0.35 * (grade_points - 2.0)
        + rng.gauss(0.0, 0.5)
    )
    clamped = min(5.0, max(1.0, raw))
    return round(clamped * 2) / 2  # half-star granularity


def _spam_rating(rng: random.Random) -> float:
    """Spammers rate at the extremes, uncorrelated with quality."""
    return rng.choice((1.0, 1.0, 5.0, 5.0, 3.0))


def _comment_text(course: GeneratedCourse, rng: random.Random) -> str:
    template = rng.choice(COMMENT_TEMPLATES)
    return template.format(
        topic=rng.choice(course.topics),
        quality=rng.choice(QUALITY_WORDS),
        load=rng.choice(LOAD_WORDS),
    )


def _generate_comments(
    database: Database,
    catalog: GeneratedCatalog,
    config: ScaleConfig,
    rng: random.Random,
    enrollments: Dict[int, List[Tuple[GeneratedCourse, int, str, Optional[str]]]],
    registered: Sequence[int],
) -> Tuple[int, int]:
    """Write exactly ``config.comments`` comments, ``config.ratings`` rated.

    Ratings are spread over the comment stream with Bresenham stepping so
    the quota is hit exactly without clustering on early users.
    """
    table = database.table("Comments")
    target = config.comments
    rating_target = config.ratings
    written = 0
    rated = 0
    epoch = datetime.date(2007, 9, 1)
    # Exactly rating_target of the comment slots carry ratings.  The flags
    # are shuffled so the round-robin over students doesn't alias with the
    # quota pattern (which would starve some students of ratings).
    rating_flags = [index < rating_target for index in range(target)]
    rng.shuffle(rating_flags)
    # Round-robin over registered students until the quota is reached, so
    # contribution counts stay roughly uniform (closed community: everyone
    # contributes, per Section 2.2).
    cursors = {suid: 0 for suid in registered}
    progress = True
    while written < target and progress:
        progress = False
        for suid in registered:
            if written >= target:
                break
            rows = enrollments.get(suid, ())
            cursor = cursors[suid]
            if cursor >= len(rows):
                continue
            course, year, term, grade = rows[cursor]
            cursors[suid] = cursor + 1
            progress = True
            is_spam = (
                config.community == "open"
                and rng.random() < config.open_spam_fraction
            )
            if rating_flags[written]:
                rating = (
                    _spam_rating(rng)
                    if is_spam
                    else _rating_for(course.quality, grade, rng)
                )
            else:
                rating = None
            text = (
                rng.choice(SPAM_TEMPLATES)
                if is_spam
                else _comment_text(course, rng)
            )
            # Adoption grows over the site's first ~14 months: activity
            # density increases linearly with time (sqrt-transformed
            # uniform draw), matching the paper's narrative of rising
            # usage ("a little over a year after its launch ... more
            # than 9,000 students").
            day = epoch + datetime.timedelta(
                days=int(420 * (rng.random() ** 0.5))
            )
            table.insert(
                [suid, course.course_id, year, term, text, rating, day]
            )
            written += 1
            if rating is not None:
                rated += 1
    return written, rated


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------


def _generate_plans(
    database: Database,
    catalog: GeneratedCatalog,
    config: ScaleConfig,
    rng: random.Random,
    registered: Sequence[int],
    enrollments: Dict[int, List[Tuple[GeneratedCourse, int, str, Optional[str]]]],
) -> None:
    table = database.table("Plans")
    all_courses = catalog.courses
    weights = _zipf_weights(len(all_courses))
    for suid in registered:
        taken = {course.course_id for course, *_ in enrollments.get(suid, ())}
        want = rng.randint(1, config.plan_courses_per_user)
        chosen: Dict[int, GeneratedCourse] = {}
        attempts = 0
        while len(chosen) < want and attempts < want * 6:
            attempts += 1
            course = rng.choices(all_courses, weights=weights, k=1)[0]
            if course.course_id in taken:
                continue
            chosen[course.course_id] = course
        for course in chosen.values():
            slots = [
                (year, term)
                for year, term in catalog.offering_slots[course.course_id]
                if year == config.plan_year
            ]
            if not slots:
                continue
            year, term = rng.choice(slots)
            shared = rng.random() < config.plan_shared_probability
            table.insert([suid, course.course_id, year, term, shared])


# ---------------------------------------------------------------------------
# official grades
# ---------------------------------------------------------------------------


def _generate_official_grades(
    database: Database,
    catalog: GeneratedCatalog,
    config: ScaleConfig,
    rng: random.Random,
    enrollments: Dict[int, List[Tuple[GeneratedCourse, int, str, Optional[str]]]],
) -> None:
    """Official histograms for Engineering courses, near self-reported.

    The paper validates self-reported data by noting official Engineering
    distributions are very close to them; we generate official counts by
    scaling the self-reported histogram (official classes include
    non-reporting students) with small noise.
    """
    self_reported: Dict[int, Dict[str, int]] = {}
    for rows in enrollments.values():
        for course, _year, _term, grade in rows:
            if grade is None or course.school != "Engineering":
                continue
            bucket = self_reported.setdefault(
                course.course_id, {b: 0 for b in GRADE_BUCKETS}
            )
            bucket[grade] += 1
    table = database.table("OfficialGrades")
    year = max(config.years)
    for course_id, counts in self_reported.items():
        for bucket, count in counts.items():
            if count == 0:
                continue
            official = max(
                count,
                int(round(count * config.official_grade_multiplier))
                + rng.randint(-1, 1),
            )
            table.insert([course_id, year, bucket, official])


# ---------------------------------------------------------------------------
# forum seed traffic
# ---------------------------------------------------------------------------


def _generate_questions(
    database: Database,
    catalog: GeneratedCatalog,
    config: ScaleConfig,
    rng: random.Random,
    registered: Sequence[int],
) -> None:
    """A small trickle of student questions (the forum's cold start)."""
    from repro.courserank.forum import Forum

    forum = Forum(database)
    count = max(1, int(len(registered) * config.question_fraction))
    askers = registered[:count]
    epoch = datetime.date(2008, 1, 15)
    for index, suid in enumerate(askers):
        course = rng.choice(catalog.courses)
        forum.ask(
            asker_id=suid,
            text=(
                f"Is {course.title} manageable alongside a heavy quarter? "
                "How were the exams?"
            ),
            course_id=course.course_id,
            day=epoch + datetime.timedelta(days=index % 200),
        )
