"""One-call generation of a synthetic university database.

>>> from repro.datagen import generate_university
>>> db = generate_university(scale="tiny", seed=42)
>>> db.query("SELECT COUNT(*) FROM Courses").scalar()
48

The same (scale, seed) pair always produces byte-identical data, so
experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import DataGenError
from repro.courserank.schema import new_database
from repro.datagen.catalog import GeneratedCatalog, generate_catalog
from repro.datagen.config import SCALES, ScaleConfig, get_scale
from repro.datagen.population import GeneratedPopulation, generate_population
from repro.minidb.catalog import Database


@dataclass
class GenerationReport:
    """What a generation run produced (inspection and tests)."""

    config: ScaleConfig
    seed: int
    catalog: GeneratedCatalog
    population: GeneratedPopulation

    def summary(self) -> dict:
        return {
            "scale": self.config.name,
            "seed": self.seed,
            "departments": len(self.catalog.departments),
            "courses": len(self.catalog.courses),
            "students": len(self.population.student_ids),
            "registered_users": len(self.population.registered_student_ids),
            "enrollments": self.population.enrollment_count,
            "comments": self.population.comment_count,
            "ratings": self.population.rating_count,
        }


def generate_university(
    scale: Union[str, ScaleConfig] = "small",
    seed: int = 2008,
    database: Optional[Database] = None,
    return_report: bool = False,
):
    """Generate a complete CourseRank database.

    ``scale`` is a preset name ("tiny", "small", "medium", "full") or a
    custom :class:`ScaleConfig`.  Returns the Database, or
    ``(Database, GenerationReport)`` with ``return_report=True``.
    """
    config = get_scale(scale)
    rng = random.Random(seed)
    db = database or new_database()
    if db.query("SELECT COUNT(*) FROM Courses").scalar() > 0:
        raise DataGenError("target database already contains catalog data")
    catalog = generate_catalog(db, config, rng)
    population = generate_population(db, catalog, config, rng)
    if population.comment_count < config.comments:
        raise DataGenError(
            f"could only generate {population.comment_count} of "
            f"{config.comments} comments; increase enrollments per user"
        )
    if return_report:
        report = GenerationReport(
            config=config, seed=seed, catalog=catalog, population=population
        )
        return db, report
    return db
