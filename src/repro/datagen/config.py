"""Scale presets for the synthetic university.

``full`` reproduces the operational statistics the paper reports for
September 2008: 18,605 courses, 134,000 comments, over 50,300 ratings,
about 14,000 students of whom more than 9,000 use the site (the vast
majority undergraduates, of ~6,500 total undergrads).

Smaller presets keep the same proportions so experiment *shapes* hold at
test-friendly sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import DataGenError


@dataclass(frozen=True)
class ScaleConfig:
    """All knobs of one generation run."""

    name: str
    departments: int
    courses: int
    students: int
    registered_users: int  # students holding accounts
    faculty_users: int
    staff_users: int
    comments: int
    ratings: int  # comments that carry a numeric rating
    years: Tuple[int, ...] = (2007, 2008)
    plan_year: int = 2009  # future year plans target
    instructors_per_department: int = 6
    textbook_fraction: float = 0.4
    prerequisite_fraction: float = 0.3
    plan_courses_per_user: int = 4
    plan_shared_probability: float = 0.92
    question_fraction: float = 0.01  # of registered users, pre-seeded
    official_grade_multiplier: float = 1.6  # official class size vs reporters
    # "closed" (the CourseRank model) or "open" (simulates an anonymous
    # public site: a fraction of comments are spam/low-effort and their
    # ratings are extreme and uncorrelated with course quality).
    community: str = "closed"
    open_spam_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.community not in ("closed", "open"):
            raise DataGenError(
                f"community must be 'closed' or 'open', got {self.community!r}"
            )
        if self.ratings > self.comments:
            raise DataGenError("ratings cannot exceed comments")
        if self.registered_users > self.students:
            raise DataGenError("registered users cannot exceed students")
        if self.courses < self.departments:
            raise DataGenError("need at least one course per department")
        for count in (
            self.departments,
            self.courses,
            self.students,
            self.registered_users,
        ):
            if count <= 0:
                raise DataGenError("counts must be positive")


SCALES: Dict[str, ScaleConfig] = {
    "tiny": ScaleConfig(
        name="tiny",
        departments=4,
        courses=48,
        students=30,
        registered_users=24,
        faculty_users=4,
        staff_users=2,
        comments=150,
        ratings=100,
    ),
    "small": ScaleConfig(
        name="small",
        departments=10,
        courses=400,
        students=250,
        registered_users=180,
        faculty_users=12,
        staff_users=4,
        comments=1400,
        ratings=800,
    ),
    "medium": ScaleConfig(
        name="medium",
        departments=24,
        courses=2400,
        students=1600,
        registered_users=1100,
        faculty_users=40,
        staff_users=10,
        comments=11000,
        ratings=4800,
    ),
    "full": ScaleConfig(
        name="full",
        departments=64,
        courses=18605,
        students=14000,
        registered_users=9000,
        faculty_users=300,
        staff_users=60,
        comments=134000,
        ratings=50300,
    ),
}


def get_scale(scale) -> ScaleConfig:
    """Resolve a preset name or pass a ScaleConfig through."""
    if isinstance(scale, ScaleConfig):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise DataGenError(
            f"unknown scale {scale!r}; presets: {sorted(SCALES)}"
        ) from None
