"""Vocabularies for the synthetic university.

Departments carry *topic word pools* so generated titles, descriptions,
and student comments cluster the way real catalogs do — which is what
makes data clouds informative (searching "american" surfaces "latin
american", "politics", "civil war" from several departments, mirroring
the paper's Figure 3) and keeps department-level search selectivity
realistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class DepartmentTheme:
    """One department blueprint: name, school, topic vocabulary."""

    name: str
    school: str
    topics: Tuple[str, ...]


# Schools: Engineering releases official grade distributions (the paper:
# "so far only the School of Engineering has bought our argument").
ENGINEERING = "Engineering"
HUMANITIES = "Humanities and Sciences"
EARTH = "Earth Sciences"
MEDICINE = "Medicine"
BUSINESS = "Business"

DEPARTMENT_THEMES: Tuple[DepartmentTheme, ...] = (
    DepartmentTheme(
        "Computer Science",
        ENGINEERING,
        (
            "programming", "java", "algorithms", "data structures",
            "databases", "operating systems", "networks", "compilers",
            "artificial intelligence", "machine learning", "graphics",
            "cryptography", "distributed systems", "logic",
        ),
    ),
    DepartmentTheme(
        "Electrical Engineering",
        ENGINEERING,
        (
            "circuits", "signals", "semiconductors", "control",
            "electromagnetics", "embedded systems", "communication",
            "photonics", "power systems", "digital design",
        ),
    ),
    DepartmentTheme(
        "Mechanical Engineering",
        ENGINEERING,
        (
            "thermodynamics", "fluid mechanics", "dynamics", "robotics",
            "manufacturing", "materials", "vibration", "design",
            "heat transfer", "mechatronics",
        ),
    ),
    DepartmentTheme(
        "Civil Engineering",
        ENGINEERING,
        (
            "structures", "concrete", "geotechnics", "transportation",
            "hydrology", "construction", "earthquake", "infrastructure",
        ),
    ),
    DepartmentTheme(
        "Chemical Engineering",
        ENGINEERING,
        (
            "reaction", "kinetics", "transport", "polymers", "catalysis",
            "process design", "separation", "biomolecular",
        ),
    ),
    DepartmentTheme(
        "Bioengineering",
        ENGINEERING,
        (
            "biomechanics", "imaging", "tissue", "synthetic biology",
            "biodevices", "neural engineering", "genomics",
        ),
    ),
    DepartmentTheme(
        "History",
        HUMANITIES,
        (
            "american history", "civil war", "colonial america",
            "european history", "ancient rome", "medieval society",
            "american revolution", "world war", "cold war",
            "african american history", "native american", "reconstruction",
            "empire", "historiography",
        ),
    ),
    DepartmentTheme(
        "Political Science",
        HUMANITIES,
        (
            "american politics", "elections", "congress", "democracy",
            "international relations", "public policy", "constitutional law",
            "political economy", "latin american politics", "voting",
        ),
    ),
    DepartmentTheme(
        "American Studies",
        HUMANITIES,
        (
            "american culture", "american identity", "immigration",
            "african american studies", "american west", "popular culture",
            "american literature", "jazz", "hollywood", "suburbia",
        ),
    ),
    DepartmentTheme(
        "Classics",
        HUMANITIES,
        (
            "greek", "latin", "homer", "ancient philosophy", "mythology",
            "greek science", "roman empire", "epic poetry", "archaeology",
        ),
    ),
    DepartmentTheme(
        "English",
        HUMANITIES,
        (
            "poetry", "the novel", "shakespeare", "american literature",
            "creative writing", "rhetoric", "modernism", "fiction",
            "literary theory", "victorian literature",
        ),
    ),
    DepartmentTheme(
        "Philosophy",
        HUMANITIES,
        (
            "ethics", "epistemology", "metaphysics", "logic", "kant",
            "philosophy of mind", "political philosophy", "aesthetics",
        ),
    ),
    DepartmentTheme(
        "Mathematics",
        HUMANITIES,
        (
            "calculus", "linear algebra", "analysis", "topology",
            "number theory", "probability", "differential equations",
            "combinatorics", "geometry", "abstract algebra",
        ),
    ),
    DepartmentTheme(
        "Statistics",
        HUMANITIES,
        (
            "inference", "regression", "bayesian methods", "stochastic processes",
            "experimental design", "time series", "multivariate analysis",
        ),
    ),
    DepartmentTheme(
        "Physics",
        HUMANITIES,
        (
            "mechanics", "quantum", "relativity", "electromagnetism",
            "thermodynamics", "particle physics", "astrophysics", "optics",
        ),
    ),
    DepartmentTheme(
        "Chemistry",
        HUMANITIES,
        (
            "organic chemistry", "inorganic chemistry", "physical chemistry",
            "spectroscopy", "synthesis", "biochemistry", "quantum chemistry",
        ),
    ),
    DepartmentTheme(
        "Biology",
        HUMANITIES,
        (
            "genetics", "evolution", "ecology", "cell biology",
            "molecular biology", "neuroscience", "physiology", "botany",
        ),
    ),
    DepartmentTheme(
        "Economics",
        HUMANITIES,
        (
            "microeconomics", "macroeconomics", "econometrics", "game theory",
            "labor economics", "finance", "development", "trade",
            "american economy",
        ),
    ),
    DepartmentTheme(
        "Psychology",
        HUMANITIES,
        (
            "cognition", "perception", "social psychology", "development",
            "memory", "emotion", "personality", "psychopathology",
        ),
    ),
    DepartmentTheme(
        "Sociology",
        HUMANITIES,
        (
            "social networks", "inequality", "race and ethnicity",
            "urban sociology", "organizations", "american society",
            "immigration", "social movements",
        ),
    ),
    DepartmentTheme(
        "Music",
        HUMANITIES,
        (
            "music theory", "composition", "jazz", "opera", "orchestra",
            "american music", "counterpoint", "ethnomusicology", "chamber music",
        ),
    ),
    DepartmentTheme(
        "Art History",
        HUMANITIES,
        (
            "renaissance", "modern art", "photography", "architecture",
            "american art", "impressionism", "sculpture", "museums",
        ),
    ),
    DepartmentTheme(
        "Linguistics",
        HUMANITIES,
        (
            "syntax", "semantics", "phonology", "morphology",
            "sociolinguistics", "language acquisition", "pragmatics",
        ),
    ),
    DepartmentTheme(
        "Anthropology",
        HUMANITIES,
        (
            "ethnography", "culture", "archaeology", "human origins",
            "kinship", "ritual", "native american cultures", "globalization",
        ),
    ),
    DepartmentTheme(
        "Religious Studies",
        HUMANITIES,
        (
            "buddhism", "christianity", "islam", "judaism", "ritual",
            "sacred texts", "mysticism", "religion in america",
        ),
    ),
    DepartmentTheme(
        "Comparative Literature",
        HUMANITIES,
        (
            "translation", "world literature", "narrative", "poetics",
            "latin american literature", "postcolonial literature",
        ),
    ),
    DepartmentTheme(
        "East Asian Studies",
        HUMANITIES,
        (
            "chinese history", "japanese literature", "korean culture",
            "confucianism", "east asian politics", "calligraphy",
        ),
    ),
    DepartmentTheme(
        "Geophysics",
        EARTH,
        (
            "seismology", "plate tectonics", "earth structure",
            "geodynamics", "exploration", "volcanology",
        ),
    ),
    DepartmentTheme(
        "Geology",
        EARTH,
        (
            "mineralogy", "petrology", "stratigraphy", "paleontology",
            "geochemistry", "field methods", "sedimentology",
        ),
    ),
    DepartmentTheme(
        "Environmental Science",
        EARTH,
        (
            "climate change", "sustainability", "ecosystems", "pollution",
            "conservation", "energy policy", "water resources",
        ),
    ),
    DepartmentTheme(
        "Medicine",
        MEDICINE,
        (
            "anatomy", "physiology", "pharmacology", "pathology",
            "immunology", "epidemiology", "public health", "clinical practice",
        ),
    ),
    DepartmentTheme(
        "Business",
        BUSINESS,
        (
            "accounting", "marketing", "strategy", "entrepreneurship",
            "organizational behavior", "negotiation", "operations",
            "corporate finance",
        ),
    ),
)

#: prefixes used to synthesize extra departments beyond the base themes
SYNTHETIC_PREFIXES = ("Applied", "Computational", "Comparative", "Modern", "Global")

TITLE_PATTERNS: Tuple[str, ...] = (
    "Introduction to {topic}",
    "Advanced {topic}",
    "Topics in {topic}",
    "Seminar on {topic}",
    "Foundations of {topic}",
    "{topic} in Practice",
    "The History of {topic}",
    "Research Methods in {topic}",
    "{topic} and Society",
    "Special Studies: {topic}",
)

DESCRIPTION_PATTERNS: Tuple[str, ...] = (
    "A survey of {a} and {b}, with emphasis on {c}.",
    "Covers {a}, {b}, and an introduction to {c}. Weekly sections.",
    "An examination of {a} through the lens of {b}; includes {c}.",
    "Fundamentals of {a}. Additional topics: {b} and {c}.",
    "Project-based exploration of {a} with case studies in {b}.",
    "Lectures and readings on {a}, {b}, and {c}. Term paper required.",
)

COMMENT_TEMPLATES: Tuple[str, ...] = (
    "Really enjoyed the material on {topic}. {quality} lectures overall.",
    "The sections on {topic} were {quality}, though the workload was {load}.",
    "{quality} course if you care about {topic}; problem sets were {load}.",
    "Professor made {topic} come alive. Exams were {load} but fair.",
    "Took this for my major; the {topic} unit alone was worth it. {quality}.",
    "Honestly {quality}. Skip the readings at your peril, especially on {topic}.",
    "Great discussions about {topic}; grading felt {load}.",
    "If {topic} interests you at all, take it. {quality} teaching staff.",
)

QUALITY_WORDS = ("excellent", "solid", "outstanding", "decent", "mediocre", "weak")
LOAD_WORDS = ("light", "reasonable", "heavy", "brutal")

#: low-effort/spam comments used by the *open-community* simulation
#: (Section 2.2: open sites "may attract spammers and malicious users";
#: CourseRank's closed community sees "much higher quality comments")
SPAM_TEMPLATES: Tuple[str, ...] = (
    "lol",
    "meh",
    "worst ever",
    "best class ever!!!",
    "first!!!",
    "dont take it",
    "ez A",
    "check out cheap textbooks at dealz dot example",
    "buy essays online fast cheap guaranteed",
    "follow me for more reviews",
    "this prof sux",
    "AAAAAAAA",
)

FIRST_NAMES: Tuple[str, ...] = (
    "Alice", "Ben", "Carla", "David", "Elena", "Felix", "Grace", "Hugo",
    "Iris", "Jack", "Karen", "Liam", "Maya", "Noah", "Olivia", "Pablo",
    "Quinn", "Rosa", "Sam", "Tara", "Umar", "Vera", "Wes", "Ximena",
    "Yuki", "Zoe", "Aaron", "Bella", "Carlos", "Diana", "Ethan", "Fiona",
    "George", "Hannah", "Ivan", "Julia", "Kevin", "Laura", "Marco", "Nina",
)

LAST_NAMES: Tuple[str, ...] = (
    "Anderson", "Brown", "Chen", "Davis", "Evans", "Fischer", "Garcia",
    "Hernandez", "Ito", "Johnson", "Kim", "Lee", "Martinez", "Nguyen",
    "O'Brien", "Patel", "Quintero", "Rodriguez", "Smith", "Taylor",
    "Ueda", "Vasquez", "Wang", "Xu", "Young", "Zhang", "Adler", "Baker",
    "Cohen", "Dubois", "Engel", "Foster", "Gupta", "Haas", "Iyer", "Jones",
)

TEXTBOOK_PATTERNS: Tuple[str, ...] = (
    "Principles of {topic}",
    "{topic}: A Modern Approach",
    "Readings in {topic}",
    "The {topic} Handbook",
    "Essentials of {topic}",
)


def synthesize_departments(count: int) -> List[DepartmentTheme]:
    """The first ``count`` departments, extending base themes as needed.

    Synthetic departments reuse a base theme's topics under a prefixed
    name ("Applied Physics"), preserving vocabulary clustering.
    """
    themes = list(DEPARTMENT_THEMES)
    base_index = 0
    prefix_index = 0
    while len(themes) < count:
        base = DEPARTMENT_THEMES[base_index % len(DEPARTMENT_THEMES)]
        prefix = SYNTHETIC_PREFIXES[prefix_index % len(SYNTHETIC_PREFIXES)]
        themes.append(
            DepartmentTheme(
                name=f"{prefix} {base.name}",
                school=base.school,
                topics=base.topics,
            )
        )
        base_index += 1
        if base_index % len(DEPARTMENT_THEMES) == 0:
            prefix_index += 1
    return themes[:count]
