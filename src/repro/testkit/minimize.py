"""Delta-debugging failure minimization for testkit cases.

Given a failing :class:`~repro.testkit.generators.Case` and a
``fails(case) -> bool`` predicate (usually
:func:`repro.testkit.oracle.case_fails`), the shrinker runs a fixpoint
loop of reduction passes:

1. **ddmin over ops** — classic Zeller/Hildebrandt delta debugging on
   the operation list;
2. **drop unused tables** — any table no surviving op references (and
   its initial rows) disappears;
3. **ddmin over initial rows** — per table;
4. **clause simplification** — per query op, try dropping WHERE /
   HAVING / ORDER BY+LIMIT / DISTINCT / GROUP BY / individual items /
   individual joins.

Every candidate is validated by re-running ``fails``: a transformation
that breaks the SQL makes *both* engines error, which is error parity,
not a divergence — so invalid candidates are rejected automatically and
no pass needs its own validity rules.

``write_repro`` serializes the shrunk case's **rendered** SQL (both
dialects) as a JSON corpus seed plus a standalone replay script, so
committed seeds keep replaying verbatim even if the generator drifts.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.testkit import generators as g
from repro.testkit.dialects import render_case, rendered_to_dict

__all__ = ["ddmin", "Shrinker", "shrink_case", "write_repro"]


def ddmin(items: Sequence[Any],
          fails: Callable[[List[Any]], bool]) -> List[Any]:
    """Minimize ``items`` to a smaller list that still fails.

    Assumes ``fails(list(items))`` is true; returns a 1-minimal-ish
    sublist (no single removed chunk of the final granularity can be
    restored-removed further).
    """
    current = list(items)
    if not fails(current):
        raise ValueError("ddmin requires a failing input")
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if fails(candidate):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(current), granularity * 2)
    return current


class Shrinker:
    def __init__(
        self,
        fails: Callable[[g.Case], bool],
        max_rounds: int = 6,
    ) -> None:
        self.fails = fails
        self.max_rounds = max_rounds
        self.evaluations = 0

    def _fails(self, case: g.Case) -> bool:
        self.evaluations += 1
        return self.fails(case)

    def shrink(self, case: g.Case) -> g.Case:
        if not self._fails(case):
            raise ValueError("shrink requires a failing case")
        for _ in range(self.max_rounds):
            before = _size(case)
            case = self._shrink_ops(case)
            case = self._drop_unused_tables(case)
            case = self._shrink_rows(case)
            case = self._simplify_queries(case)
            if _size(case) == before:
                break
        return case

    # -- passes -------------------------------------------------------------

    def _shrink_ops(self, case: g.Case) -> g.Case:
        def fails(ops: List[g.Op]) -> bool:
            return self._fails(_with(case, ops=ops))

        if not case.ops:
            return case
        return _with(case, ops=ddmin(case.ops, fails))

    def _drop_unused_tables(self, case: g.Case) -> g.Case:
        used: set = set()
        for op in case.ops:
            used |= g.referenced_tables(op)
        kept = tuple(t for t in case.tables if t.name in used)
        if len(kept) == len(case.tables) or not kept:
            return case
        candidate = g.Case(
            seed=case.seed,
            tables=kept,
            rows={t.name: case.rows.get(t.name, []) for t in kept},
            ops=list(case.ops),
        )
        return candidate if self._fails(candidate) else case

    def _shrink_rows(self, case: g.Case) -> g.Case:
        for table in case.tables:
            rows = case.rows.get(table.name, [])
            if not rows:
                continue

            def fails(subset: List[Any], name: str = table.name) -> bool:
                new_rows = dict(case.rows)
                new_rows[name] = subset
                return self._fails(_with(case, rows=new_rows))

            if fails(list(rows)):  # pragma: no branch - establish baseline
                reduced = ddmin(rows, fails)
                new_rows = dict(case.rows)
                new_rows[table.name] = reduced
                case = _with(case, rows=new_rows)
        return case

    def _simplify_queries(self, case: g.Case) -> g.Case:
        for index, op in enumerate(case.ops):
            if not isinstance(op, g.QueryOp):
                continue
            for variant in _query_variants(op.query):
                candidate_ops = list(case.ops)
                candidate_ops[index] = g.QueryOp(variant)
                candidate = _with(case, ops=candidate_ops)
                if self._fails(candidate):
                    case = candidate
        return case


def _size(case: g.Case) -> int:
    return (
        len(case.ops)
        + len(case.tables)
        + case.total_rows
        + sum(
            _query_weight(op.query)
            for op in case.ops
            if isinstance(op, g.QueryOp)
        )
    )


def _query_weight(query: g.Query) -> int:
    weight = len(query.joins)
    weight += 1 if query.where is not None else 0
    weight += 1 if query.having is not None else 0
    weight += len(query.group_by) + len(query.order_by)
    weight += len(query.items) if query.items else 0
    weight += 1 if query.limit is not None else 0
    weight += 1 if query.distinct else 0
    return weight


def _query_variants(query: g.Query) -> List[g.Query]:
    """Simpler versions of one query, most aggressive first.  Invalid
    variants (e.g. an ORDER BY alias whose item was dropped) fail on
    both engines and are rejected by the fails() check."""
    variants: List[g.Query] = []
    if query.joins:
        variants.append(replace(query, joins=query.joins[:-1]))
    if query.where is not None:
        variants.append(replace(query, where=None))
    if query.having is not None:
        variants.append(replace(query, having=None))
    if query.limit is not None or query.order_by:
        variants.append(
            replace(query, order_by=(), limit=None, offset=None)
        )
    if query.distinct:
        variants.append(replace(query, distinct=False))
    if query.group_by:
        variants.append(
            replace(query, group_by=(), having=None, order_by=(),
                    limit=None, offset=None)
        )
    if query.items and len(query.items) > 1:
        for drop in range(len(query.items)):
            items = tuple(
                item for i, item in enumerate(query.items) if i != drop
            )
            variants.append(replace(query, items=items))
    return variants


def _with(case: g.Case, **changes: Any) -> g.Case:
    merged = {
        "seed": case.seed,
        "tables": case.tables,
        "rows": case.rows,
        "ops": case.ops,
    }
    merged.update(changes)
    return g.Case(**merged)


def shrink_case(
    case: g.Case,
    fails: Callable[[g.Case], bool],
    max_rounds: int = 6,
) -> g.Case:
    return Shrinker(fails, max_rounds=max_rounds).shrink(case)


_REPRO_TEMPLATE = '''"""Standalone replay for testkit corpus seed {name!r}.

{note}

Run with ``PYTHONPATH=src python {name}.py``; exits nonzero if the two
engines still diverge.
"""

import pathlib

from repro.testkit import oracle

rendered = oracle.load_seed(pathlib.Path(__file__).with_suffix(".json"))
report = oracle.run_rendered(rendered)
for line in report.divergences:
    print(line)
print(f"query ops: {{report.query_ops}}, errors: {{report.error_ops}}")
raise SystemExit(1 if report.divergences else 0)
'''


def write_repro(
    case: g.Case,
    directory: Any,
    name: str,
    note: str = "",
) -> Dict[str, pathlib.Path]:
    """Write ``<name>.json`` (corpus seed) and ``<name>.py`` (standalone
    repro script) under ``directory``; returns both paths."""
    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    rendered = render_case(case)
    payload = rendered_to_dict(
        rendered,
        name=name,
        note=note,
        generator_seed=case.seed,
        tables=len(case.tables),
        initial_rows=case.total_rows,
    )
    seed_path = out / f"{name}.json"
    seed_path.write_text(json.dumps(payload, indent=2) + "\n")
    script_path = out / f"{name}.py"
    script_path.write_text(
        _REPRO_TEMPLATE.format(name=name, note=note or "(no note)")
    )
    return {"seed": seed_path, "script": script_path}
