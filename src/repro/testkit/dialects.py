"""Render testkit ASTs to the minidb and sqlite dialects.

One AST, two renderers.  The renderers agree on everything except the
handful of places the engines genuinely differ:

============================  =======================  ====================
construct                     minidb                   sqlite
============================  =======================  ====================
division                      ``(l / r)``              ``(l * 1.0 / r)``
boolean literal               ``TRUE`` / ``FALSE``     ``1`` / ``0``
date literal                  ``DATE '2008-01-05'``    ``'2008-01-05'``
LEAST / GREATEST              ``LEAST`` / ``GREATEST`` ``MIN`` / ``MAX``
CREATE INDEX                  ``... USING hash``       no ``USING`` clause
bound date parameter          ``datetime.date``        ISO string
bound bool parameter          ``bool``                 ``int``
============================  =======================  ====================

``?`` parameters are numbered by **text position** in both engines, so
each renderer appends a parameter's value to its collection list at the
moment it emits the placeholder; clauses are rendered strictly in final
text order to keep the two lists aligned.

The rendered form (``RenderedCase``) is also the corpus-seed format:
serializing rendered SQL instead of the AST makes committed seeds immune
to future generator drift.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.testkit import generators as g

__all__ = [
    "RenderedOp",
    "RenderedScript",
    "RenderedCase",
    "render_case",
    "render_query",
    "render_expr",
    "create_table_sql",
    "create_index_sql",
    "rendered_to_dict",
    "rendered_from_dict",
]

MINIDB = "minidb"
SQLITE = "sqlite"

#: shared-name scalar functions that need a per-dialect spelling
_FUNC_NAMES = {
    "least": {MINIDB: "LEAST", SQLITE: "MIN"},
    "greatest": {MINIDB: "GREATEST", SQLITE: "MAX"},
}

_AGG_NAMES = {
    "count": "COUNT",
    "count_star": "COUNT",
    "sum": "SUM",
    "avg": "AVG",
    "min": "MIN",
    "max": "MAX",
}


@dataclass(frozen=True)
class RenderedOp:
    kind: str  # query | insert | update | delete | ddl
    sql: str
    params: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class RenderedScript:
    create: Tuple[str, ...]
    ops: Tuple[RenderedOp, ...]


@dataclass(frozen=True)
class RenderedCase:
    minidb: RenderedScript
    sqlite: RenderedScript
    query_count: int


# ---------------------------------------------------------------------------
# literals and parameters
# ---------------------------------------------------------------------------


def literal_sql(value: Any, dialect: str) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        if dialect == MINIDB:
            return "TRUE" if value else "FALSE"
        return "1" if value else "0"
    if isinstance(value, datetime.date):
        if dialect == MINIDB:
            return f"DATE '{value.isoformat()}'"
        return f"'{value.isoformat()}'"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise TypeError(f"unrenderable literal: {value!r}")


def bind_value(value: Any, dialect: str) -> Any:
    """Convert a parameter for the target driver's binding layer."""
    if dialect == SQLITE:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, datetime.date):
            return value.isoformat()
    return value


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


def render_expr(expr: Any, dialect: str, params: List[Any]) -> str:
    if isinstance(expr, g.Col):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, g.Lit):
        return literal_sql(expr.value, dialect)
    if isinstance(expr, g.Param):
        params.append(expr.value)
        return "?"
    if isinstance(expr, g.Arith):
        left = render_expr(expr.left, dialect, params)
        right = render_expr(expr.right, dialect, params)
        if expr.op == "/" and dialect == SQLITE:
            # sqlite's / truncates on integers; * 1.0 promotes the
            # numerator so both engines do IEEE double division.
            return f"({left} * 1.0 / {right})"
        return f"({left} {expr.op} {right})"
    if isinstance(expr, g.Compare):
        left = render_expr(expr.left, dialect, params)
        right = render_expr(expr.right, dialect, params)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, g.Logic):
        joined = f" {expr.op} ".join(
            render_expr(item, dialect, params) for item in expr.items
        )
        return f"({joined})"
    if isinstance(expr, g.NotE):
        return f"(NOT {render_expr(expr.operand, dialect, params)})"
    if isinstance(expr, g.IsNull):
        clause = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({render_expr(expr.operand, dialect, params)} {clause})"
    if isinstance(expr, g.InList):
        operand = render_expr(expr.operand, dialect, params)
        items = ", ".join(
            render_expr(item, dialect, params) for item in expr.items
        )
        negation = "NOT " if expr.negated else ""
        return f"({operand} {negation}IN ({items}))"
    if isinstance(expr, g.Between):
        operand = render_expr(expr.operand, dialect, params)
        low = render_expr(expr.low, dialect, params)
        high = render_expr(expr.high, dialect, params)
        negation = "NOT " if expr.negated else ""
        return f"({operand} {negation}BETWEEN {low} AND {high})"
    if isinstance(expr, g.LikeE):
        operand = render_expr(expr.operand, dialect, params)
        negation = "NOT " if expr.negated else ""
        return f"({operand} {negation}LIKE '{expr.pattern}')"
    if isinstance(expr, g.Func):
        name = _FUNC_NAMES.get(expr.name, {}).get(
            dialect, expr.name.upper()
        )
        args = ", ".join(
            render_expr(arg, dialect, params) for arg in expr.args
        )
        return f"{name}({args})"
    if isinstance(expr, g.CaseE):
        condition = render_expr(expr.condition, dialect, params)
        then = render_expr(expr.then, dialect, params)
        if expr.otherwise is None:
            return f"(CASE WHEN {condition} THEN {then} END)"
        otherwise = render_expr(expr.otherwise, dialect, params)
        return f"(CASE WHEN {condition} THEN {then} ELSE {otherwise} END)"
    if isinstance(expr, g.Agg):
        name = _AGG_NAMES[expr.func]
        if expr.func == "count_star":
            return f"{name}(*)"
        arg = render_expr(expr.arg, dialect, params)
        if expr.distinct:
            return f"{name}(DISTINCT {arg})"
        return f"{name}({arg})"
    if isinstance(expr, g.InSubquery):
        operand = render_expr(expr.operand, dialect, params)
        inner = render_query(expr.query, dialect, params)
        negation = "NOT " if expr.negated else ""
        return f"({operand} {negation}IN ({inner}))"
    if isinstance(expr, g.Exists):
        inner = render_query(expr.query, dialect, params)
        negation = "NOT " if expr.negated else ""
        return f"({negation}EXISTS ({inner}))"
    raise TypeError(f"unrenderable expression: {expr!r}")


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------


def _render_source(source: g.Source, dialect: str,
                   params: List[Any]) -> str:
    if source.derived:
        inner = f"SELECT * FROM {source.table}"
        if source.predicate is not None:
            inner += f" WHERE {render_expr(source.predicate, dialect, params)}"
        return f"({inner}) AS {source.alias}"
    if source.alias:
        return f"{source.table} AS {source.alias}"
    return source.table


def render_query(query: g.Query, dialect: str,
                 params: Optional[List[Any]] = None) -> str:
    # Clauses are rendered in final text order so the shared ``params``
    # list matches the left-to-right numbering of ``?`` in both engines.
    if params is None:
        params = []
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    if query.items is None:
        parts.append("*")
    else:
        rendered_items = []
        for expr, alias in query.items:
            text = render_expr(expr, dialect, params)
            if alias:
                text += f" AS {alias}"
            rendered_items.append(text)
        parts.append(", ".join(rendered_items))
    parts.append("FROM")
    parts.append(_render_source(query.source, dialect, params))
    for join in query.joins:
        keyword = {"INNER": "INNER JOIN", "LEFT": "LEFT JOIN",
                   "CROSS": "CROSS JOIN"}[join.kind]
        clause = f"{keyword} {_render_source(join.source, dialect, params)}"
        if join.condition is not None:
            clause += f" ON {render_expr(join.condition, dialect, params)}"
        parts.append(clause)
    if query.where is not None:
        parts.append(f"WHERE {render_expr(query.where, dialect, params)}")
    if query.group_by:
        keys = ", ".join(
            render_expr(key, dialect, params) for key in query.group_by
        )
        parts.append(f"GROUP BY {keys}")
    if query.having is not None:
        parts.append(f"HAVING {render_expr(query.having, dialect, params)}")
    if query.order_by:
        terms = ", ".join(
            render_expr(term.expr, dialect, params)
            + (" DESC" if term.desc else " ASC")
            for term in query.order_by
        )
        parts.append(f"ORDER BY {terms}")
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
        if query.offset is not None:
            parts.append(f"OFFSET {query.offset}")
    return " ".join(parts)


# ---------------------------------------------------------------------------
# DDL and DML
# ---------------------------------------------------------------------------


def create_table_sql(table: g.TableSpec) -> str:
    """Identical text for both dialects: sqlite accepts minidb's type
    names (FLOAT -> REAL affinity, DATE/BOOLEAN -> NUMERIC, which store
    our ISO strings and 0/1 ints unchanged)."""
    pieces = []
    for column in table.columns:
        text = f"{column.name} {column.dtype}"
        if column.name == "id":
            text += " PRIMARY KEY"
        elif not column.nullable:
            text += " NOT NULL"
        pieces.append(text)
    return f"CREATE TABLE {table.name} ({', '.join(pieces)})"


def create_index_sql(table: str, index: g.IndexSpec, dialect: str) -> str:
    columns = ", ".join(index.columns)
    sql = f"CREATE INDEX {index.name} ON {table} ({columns})"
    if dialect == MINIDB:
        sql += f" USING {index.kind}"
    return sql


def _insert_sql(table: str, values: Tuple[Any, ...], dialect: str) -> str:
    rendered = ", ".join(literal_sql(value, dialect) for value in values)
    return f"INSERT INTO {table} VALUES ({rendered})"


def _render_op(op: g.Op, dialect: str) -> List[RenderedOp]:
    if isinstance(op, g.QueryOp):
        params: List[Any] = []
        sql = render_query(op.query, dialect, params)
        return [RenderedOp("query", sql, tuple(params))]
    if isinstance(op, g.InsertOp):
        return [RenderedOp("insert", _insert_sql(op.table, op.values,
                                                 dialect))]
    if isinstance(op, g.UpdateOp):
        params = []
        sets = ", ".join(
            f"{column} = {render_expr(expr, dialect, params)}"
            for column, expr in op.sets
        )
        sql = f"UPDATE {op.table} SET {sets}"
        if op.where is not None:
            sql += f" WHERE {render_expr(op.where, dialect, params)}"
        return [RenderedOp("update", sql, tuple(params))]
    if isinstance(op, g.DeleteOp):
        params = []
        sql = f"DELETE FROM {op.table}"
        if op.where is not None:
            sql += f" WHERE {render_expr(op.where, dialect, params)}"
        return [RenderedOp("delete", sql, tuple(params))]
    if isinstance(op, g.CreateIndexOp):
        return [
            RenderedOp("ddl", create_index_sql(op.table, op.index, dialect))
        ]
    if isinstance(op, g.DropIndexOp):
        # Same text in both dialects.
        return [RenderedOp("ddl", f"DROP INDEX {op.name}")]
    if isinstance(op, g.DropCreateOp):
        out = [
            RenderedOp("ddl", f"DROP TABLE {op.table.name}"),
            RenderedOp("ddl", create_table_sql(op.table)),
        ]
        out.extend(
            RenderedOp(
                "ddl", create_index_sql(op.table.name, index, dialect)
            )
            for index in op.table.indexes
        )
        out.extend(
            RenderedOp("insert", _insert_sql(op.table.name, row, dialect))
            for row in op.rows
        )
        return out
    raise TypeError(f"unrenderable op: {op!r}")


def _render_script(case: g.Case, dialect: str) -> RenderedScript:
    create: List[str] = []
    for table in case.tables:
        create.append(create_table_sql(table))
        create.extend(
            create_index_sql(table.name, index, dialect)
            for index in table.indexes
        )
    for table in case.tables:
        create.extend(
            _insert_sql(table.name, row, dialect)
            for row in case.rows.get(table.name, ())
        )
    ops: List[RenderedOp] = []
    for op in case.ops:
        ops.extend(_render_op(op, dialect))
    return RenderedScript(tuple(create), tuple(ops))


def render_case(case: g.Case) -> RenderedCase:
    return RenderedCase(
        minidb=_render_script(case, MINIDB),
        sqlite=_render_script(case, SQLITE),
        query_count=case.query_count,
    )


# ---------------------------------------------------------------------------
# corpus-seed (de)serialization
# ---------------------------------------------------------------------------


def _encode_param(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return value


def _decode_param(value: Any) -> Any:
    if isinstance(value, dict) and "$date" in value:
        return datetime.date.fromisoformat(value["$date"])
    return value


def _script_to_dict(script: RenderedScript) -> Dict[str, Any]:
    return {
        "create": list(script.create),
        "ops": [
            {
                "kind": op.kind,
                "sql": op.sql,
                "params": [_encode_param(value) for value in op.params],
            }
            for op in script.ops
        ],
    }


def _script_from_dict(data: Dict[str, Any]) -> RenderedScript:
    return RenderedScript(
        create=tuple(data["create"]),
        ops=tuple(
            RenderedOp(
                kind=op["kind"],
                sql=op["sql"],
                params=tuple(
                    _decode_param(value) for value in op.get("params", [])
                ),
            )
            for op in data["ops"]
        ),
    )


def rendered_to_dict(rendered: RenderedCase, **meta: Any) -> Dict[str, Any]:
    payload: Dict[str, Any] = dict(meta)
    payload["query_count"] = rendered.query_count
    payload["minidb"] = _script_to_dict(rendered.minidb)
    payload["sqlite"] = _script_to_dict(rendered.sqlite)
    return payload


def rendered_from_dict(data: Dict[str, Any]) -> RenderedCase:
    return RenderedCase(
        minidb=_script_from_dict(data["minidb"]),
        sqlite=_script_from_dict(data["sqlite"]),
        query_count=int(data.get("query_count", 0)),
    )
