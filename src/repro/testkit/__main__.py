"""Command-line fuzz entry point: ``python -m repro.testkit``.

Runs the differential fuzzer (and optionally the churn driver) with a
configurable budget.  Any failing case is shrunk and written to
``--artifacts`` as a corpus seed + standalone repro script, so a nightly
CI job can upload the minimized failure for a human (or the next run) to
replay.  Exits nonzero on any divergence.
"""

from __future__ import annotations

import argparse
import sys

from repro.testkit.churn import ChurnDriver
from repro.testkit.minimize import Shrinker, write_repro
from repro.testkit.oracle import (
    case_fails,
    register_default_backends,
    run_differential,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit",
        description="Differential + metamorphic fuzz run against sqlite3.",
    )
    parser.add_argument(
        "--ops", type=int, default=2000,
        help="minimum generated query executions to compare (default 2000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base generator seed (cases use seed, seed+1, ...)",
    )
    parser.add_argument(
        "--artifacts", default="fuzz-artifacts",
        help="directory for shrunk failing seeds + repro scripts",
    )
    parser.add_argument(
        "--churn-seeds", type=int, default=4,
        help="number of metamorphic churn runs (0 disables)",
    )
    parser.add_argument(
        "--churn-steps", type=int, default=32,
        help="mutations per churn run",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="write failing cases without delta-debugging them first",
    )
    parser.add_argument(
        "--cross-backend", action="store_true",
        help="also execute every case on all registered repro.backends "
             "drivers (N-backend cross-equivalence)",
    )
    args = parser.parse_args(argv)

    if args.cross_backend:
        names = register_default_backends()
        print(f"cross-backend: {', '.join(names)}")

    failed = False
    report = run_differential(min_query_ops=args.ops, base_seed=args.seed)
    print(
        f"differential: {report.cases} cases, {report.query_ops} query ops, "
        f"{report.error_ops} error ops, {len(report.failures)} failing"
    )
    fails = case_fails()
    for failure in report.failures:
        failed = True
        case = failure.case
        if not args.no_shrink:
            case = Shrinker(fails).shrink(case)
        paths = write_repro(
            case,
            args.artifacts,
            f"fuzz_seed_{failure.seed}",
            note=failure.report.divergences[0]
            if failure.report.divergences else "",
        )
        print(f"  seed {failure.seed}: shrunk to {len(case.tables)} "
              f"table(s), {case.total_rows} row(s), {len(case.ops)} op(s)")
        print(f"  wrote {paths['seed']} and {paths['script']}")
        for line in failure.report.divergences[:3]:
            print(f"    {line}")
    if report.error_ops:
        # Both-engine errors are not divergences, but a nonzero rate means
        # the generator is wasting budget on invalid SQL — flag it.
        print(f"  warning: {report.error_ops} op(s) errored on both engines")

    for index in range(args.churn_seeds):
        churn = ChurnDriver(
            seed=args.seed + index, steps=args.churn_steps
        ).run()
        status = "ok" if churn.ok else "FAIL"
        print(
            f"churn[{index}]: {status} steps={churn.steps} "
            f"checks={churn.checks} coverage={churn.coverage}"
        )
        for line in churn.failures[:5]:
            failed = True
            print(f"    {line}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
