"""Metamorphic churn driver: every fast path vs a from-scratch replay.

PRs 1-3 each shipped an ad-hoc churn test for their own fast path (plan
cache + compiled expressions, search/cloud epoch caches, extend-cache +
pruned recommend).  This driver generalizes them into one workload: a
seeded stream of INSERT/UPDATE/DELETE/DROP+CREATE against a CourseRank-
shaped database, interleaved with

* SQL queries  — live (plan-cache warm, compiled) vs a replica database
  rebuilt from shadow state with ``COMPILE_EXPRESSIONS`` off;
* recommends   — fast path vs ``FAST_RECOMMEND = False`` naive runs;
* searches     — the live, incrementally-refreshed engine vs a cold
  engine built over the replica;
* cloud refinements — ``RefinementSession`` incremental clouds vs cold
  ``CloudBuilder`` builds over the same narrowed result.

The driver keeps a **shadow state** (plain dicts) that every mutation
updates first; the replica is rebuilt from it at each checkpoint, so a
stale cache anywhere in the stack shows up as a mismatch against an
engine that never had a cache to go stale.

``ChurnReport.coverage`` proves the run actually exercised the three
fast paths (plan-cache hits, extend-cache hits, search-result-cache
hits, compiled plans) instead of silently passing on cold code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ChurnReport", "ChurnDriver"]

SCHEMA = """
CREATE TABLE Students (SuID INTEGER PRIMARY KEY, Name TEXT,
  Class INTEGER, Major TEXT, GPA FLOAT);
CREATE TABLE Courses (CourseID INTEGER PRIMARY KEY, DepID INTEGER,
  Title TEXT, Description TEXT, Units INTEGER, Url TEXT);
CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER, Year INTEGER,
  Term TEXT, Text TEXT, Rating FLOAT, CommentDate DATE,
  PRIMARY KEY (SuID, CourseID));
CREATE TABLE Enrollments (SuID INTEGER, CourseID INTEGER,
  Year INTEGER, Term TEXT, Grade TEXT,
  PRIMARY KEY (SuID, CourseID));
CREATE TABLE Docs (DocID INTEGER PRIMARY KEY, Title TEXT, Body TEXT);
CREATE TABLE DocDims (DocID INTEGER PRIMARY KEY, Topic TEXT,
  Shelf INTEGER);
CREATE INDEX idx_comments_course ON Comments (CourseID) USING hash;
CREATE INDEX idx_students_gpa ON Students (GPA) USING sorted;
CREATE INDEX idx_enroll_course ON Enrollments (CourseID) USING hash;
"""

COMMENTS_DDL = (
    "CREATE TABLE Comments (SuID INTEGER, CourseID INTEGER, Year INTEGER, "
    "Term TEXT, Text TEXT, Rating FLOAT, CommentDate DATE, "
    "PRIMARY KEY (SuID, CourseID))"
)

#: recreated with the table in ``_drop_recreate_comments`` (DROP TABLE
#: drops its indexes), so indexed plans stay live across schema churn.
COMMENTS_INDEX_DDL = (
    "CREATE INDEX idx_comments_course ON Comments (CourseID) USING hash"
)

DOC_WORDS = (
    "american", "history", "revolution", "jazz", "database", "systems",
    "culture", "politics", "music", "film", "query", "war", "empires",
)

#: live-vs-replica SQL probes: joins, aggregates, a folded subquery, and
#: a parameterized query — one per plan-cache-sensitive shape.
QUERIES: Tuple[Tuple[str, Tuple[Any, ...]], ...] = (
    ("SELECT s.SuID, s.GPA FROM Students AS s "
     "WHERE s.GPA >= ? ORDER BY s.SuID LIMIT 5", (1.0,)),
    ("SELECT c.CourseID, COUNT(*) AS n, AVG(m.Rating) AS r "
     "FROM Courses AS c INNER JOIN Comments AS m "
     "ON c.CourseID = m.CourseID GROUP BY c.CourseID", ()),
    ("SELECT m.SuID, m.Rating FROM Comments AS m "
     "WHERE m.CourseID IN (SELECT CourseID FROM Courses WHERE Units >= 3)",
     ()),
    ("SELECT e.SuID, e.Grade FROM Enrollments AS e "
     "LEFT JOIN Students AS s ON e.SuID = s.SuID "
     "WHERE s.GPA IS NOT NULL OR e.Grade = 'A'", ()),
    # Literal predicates so the planner routes the secondary indexes
    # (parameters never choose an access path): hash equality on
    # Comments, sorted range on Students — exercised live-vs-replica on
    # both the row path and the vectorized VIndexScan.
    ("SELECT m.SuID, m.Rating FROM Comments AS m "
     "WHERE m.CourseID = 3 ORDER BY m.SuID", ()),
    ("SELECT s.SuID, s.GPA FROM Students AS s "
     "WHERE s.GPA >= 3.0 ORDER BY s.SuID", ()),
    # Composite equi-join: two key pairs, vectorized multi-key hash join.
    ("SELECT m.SuID, m.CourseID, e.Grade FROM Comments AS m "
     "INNER JOIN Enrollments AS e "
     "ON m.SuID = e.SuID AND m.CourseID = e.CourseID "
     "ORDER BY m.SuID, m.CourseID", ()),
)

SEARCH_QUERIES = ("american history", "jazz", "database systems", "war")
CLOUD_TERMS = ("history", "revolution", "culture", "jazz")

#: cube dimensions over the churned Docs corpus (see ``_check_cube``)
DOC_DIMENSIONS: Tuple[Tuple[str, str], ...] = (
    ("topic", "SELECT DocID, Topic FROM DocDims"),
    ("shelf", "SELECT DocID, Shelf FROM DocDims"),
)


@dataclass
class ChurnReport:
    steps: int = 0
    checks: int = 0
    failures: List[str] = field(default_factory=list)
    coverage: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class _Shadow:
    """The ground truth every mutation updates before touching the live
    database."""

    students: Dict[int, Tuple[str, int, str, float]] = field(
        default_factory=dict
    )
    courses: Dict[int, Tuple[int, str, str, int, str]] = field(
        default_factory=dict
    )
    #: (rating, comment text) per (student, course) pair — the text feeds
    #: term edges into the graph ranker's comment layer
    ratings: Dict[Tuple[int, int], Tuple[float, str]] = field(
        default_factory=dict
    )
    docs: Dict[int, Tuple[str, str]] = field(default_factory=dict)


class ChurnDriver:
    """Run ``steps`` random mutations with periodic coherence checks."""

    def __init__(self, seed: int = 0, steps: int = 24,
                 check_every: int = 6) -> None:
        self.rng = random.Random(seed)
        self.steps = steps
        self.check_every = max(1, check_every)
        self.report = ChurnReport()

    # -- lifecycle ----------------------------------------------------------

    def run(self) -> ChurnReport:
        import repro.core.executor as core_executor
        from repro.core.extendcache import clear_extend_cache

        saved_fast = core_executor.FAST_RECOMMEND
        core_executor.FAST_RECOMMEND = True
        try:
            self._setup()
            for step in range(self.steps):
                self._mutate()
                self.report.steps += 1
                if (step + 1) % self.check_every == 0:
                    self._check_all()
            self._check_all()
        finally:
            core_executor.FAST_RECOMMEND = saved_fast
            clear_extend_cache()
        return self.report

    def _setup(self) -> None:
        from repro.clouds.cloud import CloudBuilder
        from repro.minidb import Database

        rng = self.rng
        self.shadow = _Shadow()
        for suid in range(1, 7):
            self.shadow.students[suid] = (
                f"s{suid}", 2010, "M", rng.randint(0, 16) / 4.0
            )
        for course_id in range(1, 7):
            self.shadow.courses[course_id] = (
                1, f"Course {course_id}", "", rng.choice((3, 4)), ""
            )
        for _ in range(12):
            key = (rng.randint(1, 6), rng.randint(1, 6))
            self.shadow.ratings[key] = (
                rng.randint(4, 20) / 4.0, self._comment_text()
            )
        for doc_id in range(1, 7):
            self.shadow.docs[doc_id] = self._doc_text()
        self._next_doc_id = 7
        self.db = Database()
        self.db.execute_script(SCHEMA)
        self._populate(self.db, with_docs=True)
        self.engine = self._make_engine(self.db)
        self.builder = CloudBuilder(
            self.engine, strategy="forward", min_result_df=1
        )
        self.builder.prepare()

    def _doc_text(self) -> Tuple[str, str]:
        rng = self.rng
        title = " ".join(
            rng.choice(DOC_WORDS) for _ in range(rng.randint(1, 3))
        )
        body = " ".join(
            rng.choice(DOC_WORDS) for _ in range(rng.randint(3, 8))
        )
        return title, body

    def _comment_text(self) -> str:
        rng = self.rng
        return f"{rng.choice(DOC_WORDS)} {rng.choice(DOC_WORDS)}"

    @staticmethod
    def _dims_for(title: str, body: str) -> Tuple[str, int]:
        """Deterministic cube coordinates of one shadow doc."""
        return title.split()[0], len(body.split()) % 3

    def _populate(self, db: Any, with_docs: bool) -> None:
        for suid, row in sorted(self.shadow.students.items()):
            db.table("Students").insert([suid, *row])
        for course_id, row in sorted(self.shadow.courses.items()):
            db.table("Courses").insert([course_id, *row])
        self._populate_ratings(db)
        if with_docs:
            for doc_id, (title, body) in sorted(self.shadow.docs.items()):
                db.table("Docs").insert([doc_id, title, body])
                topic, shelf = self._dims_for(title, body)
                db.table("DocDims").insert([doc_id, topic, shelf])

    def _populate_ratings(self, db: Any) -> None:
        for (suid, course_id), (rating, text) in sorted(
            self.shadow.ratings.items()
        ):
            db.table("Comments").insert(
                [suid, course_id, 2008, "Aut", text, rating, "2008-01-01"]
            )
            db.table("Enrollments").insert(
                [suid, course_id, 2008, "Aut", "A"]
            )

    def _make_engine(self, db: Any) -> Any:
        from repro.search.engine import SearchEngine
        from repro.search.entity import EntityDefinition, FieldSpec

        entity = EntityDefinition(
            "doc",
            (
                FieldSpec("title", "SELECT DocID, Title FROM Docs",
                          weight=3.0),
                FieldSpec("body", "SELECT DocID, Body FROM Docs",
                          weight=1.0),
            ),
        )
        engine = SearchEngine(db, entity)
        engine.build()
        return engine

    def _replica(self, with_docs: bool = False) -> Any:
        from repro.minidb import Database

        db = Database()
        db.execute_script(SCHEMA)
        self._populate(db, with_docs=with_docs)
        return db

    # -- mutations ----------------------------------------------------------

    def _mutate(self) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.30:
            self._rating_insert()
        elif roll < 0.48:
            self._rating_update()
        elif roll < 0.62:
            self._rating_delete()
        elif roll < 0.72:
            self._student_update()
        elif roll < 0.94:
            self._doc_churn()
        else:
            self._drop_recreate_comments()

    def _rating_insert(self) -> None:
        rng = self.rng
        key = (rng.randint(1, 6), rng.randint(1, 6))
        if key in self.shadow.ratings:
            return
        rating = rng.randint(4, 20) / 4.0
        text = self._comment_text()
        self.shadow.ratings[key] = (rating, text)
        suid, course_id = key
        self.db.execute(
            f"INSERT INTO Comments VALUES ({suid}, {course_id}, 2008, "
            f"'Aut', '{text}', {rating!r}, '2008-01-01')"
        )
        self.db.execute(
            f"INSERT INTO Enrollments VALUES ({suid}, {course_id}, "
            f"2008, 'Aut', 'A')"
        )

    def _rating_update(self) -> None:
        if not self.shadow.ratings:
            return
        rng = self.rng
        key = rng.choice(sorted(self.shadow.ratings))
        rating = rng.randint(4, 20) / 4.0
        text = self._comment_text()
        self.shadow.ratings[key] = (rating, text)
        self.db.execute(
            f"UPDATE Comments SET Rating = {rating!r}, Text = '{text}' "
            f"WHERE SuID = {key[0]} AND CourseID = {key[1]}"
        )

    def _rating_delete(self) -> None:
        if not self.shadow.ratings:
            return
        key = self.rng.choice(sorted(self.shadow.ratings))
        del self.shadow.ratings[key]
        self.db.execute(
            f"DELETE FROM Comments "
            f"WHERE SuID = {key[0]} AND CourseID = {key[1]}"
        )
        self.db.execute(
            f"DELETE FROM Enrollments "
            f"WHERE SuID = {key[0]} AND CourseID = {key[1]}"
        )

    def _student_update(self) -> None:
        rng = self.rng
        suid = rng.choice(sorted(self.shadow.students))
        name, year, major, _gpa = self.shadow.students[suid]
        gpa = rng.randint(0, 16) / 4.0
        self.shadow.students[suid] = (name, year, major, gpa)
        self.db.execute(
            f"UPDATE Students SET GPA = {gpa!r} WHERE SuID = {suid}"
        )

    def _doc_churn(self) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.4 or not self.shadow.docs:
            doc_id = self._next_doc_id
            self._next_doc_id += 1
            title, body = self._doc_text()
            self.shadow.docs[doc_id] = (title, body)
            self.db.execute(
                f"INSERT INTO Docs VALUES ({doc_id}, '{title}', '{body}')"
            )
            topic, shelf = self._dims_for(title, body)
            self.db.execute(
                f"INSERT INTO DocDims VALUES ({doc_id}, '{topic}', {shelf})"
            )
        elif roll < 0.75:
            doc_id = rng.choice(sorted(self.shadow.docs))
            title, body = self._doc_text()
            self.shadow.docs[doc_id] = (title, body)
            self.db.execute(
                f"UPDATE Docs SET Title = '{title}', Body = '{body}' "
                f"WHERE DocID = {doc_id}"
            )
            topic, shelf = self._dims_for(title, body)
            self.db.execute(
                f"UPDATE DocDims SET Topic = '{topic}', Shelf = {shelf} "
                f"WHERE DocID = {doc_id}"
            )
        else:
            doc_id = rng.choice(sorted(self.shadow.docs))
            del self.shadow.docs[doc_id]
            self.db.execute(f"DELETE FROM Docs WHERE DocID = {doc_id}")
            self.db.execute(f"DELETE FROM DocDims WHERE DocID = {doc_id}")
        self.engine.refresh_document(doc_id)

    def _drop_recreate_comments(self) -> None:
        """Schema-epoch churn: the recreated table restarts its version
        counters, which the epoch-keyed caches must not alias."""
        self.db.execute("DROP TABLE Comments")
        self.db.execute(COMMENTS_DDL)
        self.db.execute(COMMENTS_INDEX_DDL)
        for (suid, course_id), (rating, text) in sorted(
            self.shadow.ratings.items()
        ):
            self.db.execute(
                f"INSERT INTO Comments VALUES ({suid}, {course_id}, 2008, "
                f"'Aut', '{text}', {rating!r}, '2008-01-01')"
            )

    # -- checks -------------------------------------------------------------

    def _fail(self, message: str) -> None:
        self.report.failures.append(message)

    def _bump(self, key: str, amount: int = 1) -> None:
        self.report.coverage[key] = self.report.coverage.get(key, 0) + amount

    def _check_all(self) -> None:
        self.report.checks += 1
        self._check_sql()
        self._check_recommend()
        self._check_search_and_cloud()
        self._check_graphrank()
        self._check_cube()

    def _check_sql(self) -> None:
        import repro.minidb.planner as planner_module
        from repro.testkit.oracle import normalize_rows

        replica = self._replica()
        for sql, params in QUERIES:
            hits_before = self.db._plan_cache.hits
            live_first = self.db.query(sql, list(params) or None)
            live_second = self.db.query(sql, list(params) or None)
            if self.db._plan_cache.hits > hits_before:
                self._bump("plan_cache_hits")
            explain = self.db.query(f"EXPLAIN {sql}")
            if any("[compiled-expr]" in row[0] for row in explain.rows):
                self._bump("compiled_plans")
            if any("IndexScan" in row[0] for row in explain.rows):
                self._bump("indexed_plans")
            if any("[vectorized]" in row[0] for row in explain.rows):
                self._bump("vectorized_plans")
            live_rows = normalize_rows(live_first.rows)
            if live_rows != normalize_rows(live_second.rows):
                self._fail(f"warm re-execution diverged: {sql}")
            saved = planner_module.COMPILE_EXPRESSIONS
            planner_module.COMPILE_EXPRESSIONS = False
            try:
                fresh = replica.query(sql, list(params) or None)
            finally:
                planner_module.COMPILE_EXPRESSIONS = saved
            if live_rows != normalize_rows(fresh.rows):
                self._fail(
                    f"live (compiled, cached) != replica (interpreted, "
                    f"cold): {sql}"
                )

    def _check_recommend(self) -> None:
        import repro.core.executor as core_executor
        from repro.core import strategies as flexrecs

        workflows = {
            "jaccard": flexrecs.similar_audience_courses(1, top_k=4),
            "pearson": flexrecs.similar_students_pearson(1),
            "collab": flexrecs.collaborative_filtering(1, top_k=5),
        }
        for name, workflow in workflows.items():
            fast = workflow.run(self.db)
            warm = workflow.run(self.db)
            core_executor.FAST_RECOMMEND = False
            try:
                naive = workflow.run(self.db)
            finally:
                core_executor.FAST_RECOMMEND = True
            for label, candidate in (("cold", fast), ("warm", warm)):
                if self._rec_rows(candidate) != self._rec_rows(naive):
                    self._fail(
                        f"fast recommend ({name}, {label}) != naive "
                        f"after churn"
                    )
            self._bump(
                "recommend_cache_hits",
                sum(record.cache_hits for record in warm.stats),
            )

    @staticmethod
    def _rec_rows(recommendation: Any) -> List[Tuple[Any, ...]]:
        return [
            tuple(sorted(row.items(), key=lambda item: item[0]))
            for row in recommendation.rows
        ]

    def _check_search_and_cloud(self) -> None:
        from repro.clouds.cloud import CloudBuilder
        from repro.clouds.refinement import RefinementSession

        cold_db = self._replica(with_docs=True)
        cold_engine = self._make_engine(cold_db)
        for text in SEARCH_QUERIES:
            live = self.engine.search(text)
            warm = self.engine.search(text)
            if warm.cache_hit:
                self._bump("search_cache_hits")
            cold = cold_engine.search(text)
            live_hits = [(hit.doc_id, hit.score) for hit in live.hits]
            cold_hits = [(hit.doc_id, hit.score) for hit in cold.hits]
            if live_hits != cold_hits:
                self._fail(
                    f"live search != cold rebuild for {text!r}: "
                    f"{live_hits} != {cold_hits}"
                )
        # Cloud refinement: incremental vs a cold build over the same
        # narrowed result, on the cold engine (no shared caches at all).
        self.builder.prepare()
        session = RefinementSession(self.engine, self.builder, "american")
        term = self.rng.choice(CLOUD_TERMS)
        step = session.refine(term)
        cold_builder = CloudBuilder(
            cold_engine, strategy="forward", min_result_df=1
        )
        cold_builder.prepare()
        live_signature = self._cloud_signature(step.cloud)
        cold_signature = self._cloud_signature(
            cold_builder.build(step.result)
        )
        if live_signature != cold_signature:
            self._fail(
                f"incremental cloud != cold build for refine({term!r})"
            )
        else:
            self._bump("cloud_refinements")

    def _check_graphrank(self) -> None:
        from repro.core import strategies as flexrecs
        from repro.graphrank.engine import GraphRankEngine

        # The live engine persists across checks (for_database memo), so
        # after churn it refreshes *incrementally* — only layers whose
        # source tables moved rebuild.  The cold engine never cached
        # anything; bit-identical differentials prove incremental ≡ cold.
        live = GraphRankEngine.for_database(self.db)
        reused_before = live.layers_reused
        replica = self._replica()
        cold = GraphRankEngine(replica)
        preference = (("user", 1),)
        live_scores = live.differential(preference)
        cold_scores = cold.differential(preference)
        if live_scores != cold_scores:
            self._fail(
                "incremental graph differential != cold rebuild after churn"
            )
        else:
            self._bump("graphrank_checks")
        self._bump(
            "graphrank_layer_reuse", live.layers_reused - reused_before
        )
        live_rec = flexrecs.similar_by_folkrank(1, top_k=4).run(self.db)
        cold_rec = flexrecs.similar_by_folkrank(1, top_k=4).run(replica)
        if self._rec_rows(live_rec) != self._rec_rows(cold_rec):
            self._fail("similar_by_folkrank live != replica after churn")

    def _check_cube(self) -> None:
        from repro.clouds.cloud import CloudBuilder
        from repro.clouds.cube import CloudCube, DimensionSpec

        dims = tuple(
            DimensionSpec(name=name, sql=sql, tables=("DocDims",))
            for name, sql in DOC_DIMENSIONS
        )
        self.builder.prepare()
        cold_db = self._replica(with_docs=True)
        cold_builder = CloudBuilder(
            self._make_engine(cold_db), strategy="forward", min_result_df=1
        )
        cold_builder.prepare()
        cube = CloudCube(self.db, self.builder, dimensions=dims)
        root = cube.root()
        # Every drill-down child (derived incrementally from the root's
        # aggregates) must match a cold build over the same doc subset on
        # an engine that shares no caches with the live stack.
        for topic, cell in cube.drill_down(root, "topic").items():
            cold = cold_builder.build_for_docs(cell.doc_ids)
            if self._cloud_signature(cell.cloud) != self._cloud_signature(
                cold
            ):
                self._fail(
                    f"cube slice topic={topic!r} != cold build after churn"
                )
            else:
                self._bump("cube_cells")
            shelves = cube.dimension_values(cell, "shelf")
            if shelves:
                deeper = cube.slice(cell, "shelf", shelves[0])
                cold_deep = cold_builder.build_for_docs(deeper.doc_ids)
                if self._cloud_signature(
                    deeper.cloud
                ) != self._cloud_signature(cold_deep):
                    self._fail(
                        f"cube slice (topic={topic!r}, shelf="
                        f"{shelves[0]!r}) != cold build after churn"
                    )
                parent = cube.roll_up(deeper)
                if parent.coordinate != cell.coordinate or (
                    parent.doc_ids != cell.doc_ids
                ):
                    self._fail("cube roll_up did not restore the parent")
                else:
                    self._bump("cube_walks")

    @staticmethod
    def _cloud_signature(cloud: Any) -> List[Tuple[Any, ...]]:
        return [
            (term.term, term.score, term.occurrences, term.result_df,
             term.bucket)
            for term in cloud.terms
        ]
