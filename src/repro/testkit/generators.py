"""Seeded random schema/data/query generation for differential testing.

The AST here is deliberately *not* minidb's internal AST: the testkit may
only express what **both** engines agree on, and that shared dialect is
narrower than either engine's full surface.  The :class:`Capabilities`
mask encodes the boundary; the reasons live next to each knob.

Cross-engine semantics baked into the generator (violating any of these
turns a healthy engine pair into false-positive divergences):

* ``/`` is Python true division in minidb and integer division in
  sqlite, so the sqlite renderer emits ``(l * 1.0 / r)``; generated
  denominators are nonzero literals because minidb raises on division by
  zero while sqlite yields NULL.
* ``LIKE`` is case-sensitive in minidb and case-insensitive in sqlite,
  so all generated text data and patterns are lowercase ASCII.
* FLOAT data is restricted to exact quarters (``n / 4.0``) and
  SUM/AVG arguments to plain column refs, so float aggregation is exact
  and therefore independent of scan order.
* Text comparisons rely on bytewise collation agreement, which holds
  for lowercase ASCII only.
* ``%``, ``ROUND``, ``STDDEV``, ``GROUP_CONCAT``, ``ILIKE``,
  ``YEAR``/``MONTH``, and ``||`` on non-TEXT are outside the shared
  dialect (sign conventions, rounding modes, and coercions differ).
* LIMIT/OFFSET require a totalizing ORDER BY (primary keys of every
  source, all group keys, or all DISTINCT outputs) — otherwise the two
  engines may legitimately return different prefixes.
* Parameters (``?``) appear only in WHERE clauses, never inside
  IN/EXISTS subqueries (minidb rejects those at plan time).

Everything is driven by one ``random.Random(seed)``, so a case is fully
reproducible from its seed.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "INTEGER",
    "FLOAT",
    "TEXT",
    "BOOLEAN",
    "DATE",
    "ColumnSpec",
    "IndexSpec",
    "TableSpec",
    "Col",
    "Lit",
    "Param",
    "Arith",
    "Compare",
    "Logic",
    "NotE",
    "IsNull",
    "InList",
    "Between",
    "LikeE",
    "Func",
    "CaseE",
    "Agg",
    "InSubquery",
    "Exists",
    "Source",
    "Join",
    "OrderTerm",
    "Query",
    "QueryOp",
    "InsertOp",
    "UpdateOp",
    "DeleteOp",
    "CreateIndexOp",
    "DropIndexOp",
    "DropCreateOp",
    "Case",
    "Capabilities",
    "CaseGenerator",
    "referenced_tables",
]

INTEGER = "INTEGER"
FLOAT = "FLOAT"
TEXT = "TEXT"
BOOLEAN = "BOOLEAN"
DATE = "DATE"

NUMERIC = (INTEGER, FLOAT)


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnSpec:
    name: str
    dtype: str
    nullable: bool = True


@dataclass(frozen=True)
class IndexSpec:
    name: str
    columns: Tuple[str, ...]  # single- or multi-column
    kind: str  # "hash" | "sorted"


@dataclass(frozen=True)
class TableSpec:
    name: str
    columns: Tuple[ColumnSpec, ...]  # columns[0] is the INTEGER pk "id"
    indexes: Tuple[IndexSpec, ...] = ()

    @property
    def data_columns(self) -> Tuple[ColumnSpec, ...]:
        return self.columns[1:]

    def column(self, name: str) -> ColumnSpec:
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(name)


# ---------------------------------------------------------------------------
# expressions — plain frozen dataclasses rendered by dialects.py
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Col:
    table: Optional[str]  # source alias, or None for a bare reference
    name: str
    dtype: str


@dataclass(frozen=True)
class Lit:
    value: Any
    dtype: str


@dataclass(frozen=True)
class Param:
    value: Any
    dtype: str


@dataclass(frozen=True)
class Arith:
    op: str  # + - * / ||
    left: Any
    right: Any
    dtype: str


@dataclass(frozen=True)
class Compare:
    op: str  # = <> < <= > >=
    left: Any
    right: Any


@dataclass(frozen=True)
class Logic:
    op: str  # AND | OR
    items: Tuple[Any, ...]


@dataclass(frozen=True)
class NotE:
    operand: Any


@dataclass(frozen=True)
class IsNull:
    operand: Any
    negated: bool = False


@dataclass(frozen=True)
class InList:
    operand: Any
    items: Tuple[Any, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between:
    operand: Any
    low: Any
    high: Any
    negated: bool = False


@dataclass(frozen=True)
class LikeE:
    operand: Any
    pattern: str  # lowercase ASCII + % and _ only
    negated: bool = False


@dataclass(frozen=True)
class Func:
    name: str  # lowercase shared-dialect name; dialects.py maps per engine
    args: Tuple[Any, ...]
    dtype: str


@dataclass(frozen=True)
class CaseE:
    condition: Any
    then: Any
    otherwise: Optional[Any]
    dtype: str


@dataclass(frozen=True)
class Agg:
    func: str  # count | count_star | sum | avg | min | max
    arg: Optional[Col]
    distinct: bool = False


@dataclass(frozen=True)
class InSubquery:
    operand: Any
    query: "Query"
    negated: bool = False


@dataclass(frozen=True)
class Exists:
    query: "Query"
    negated: bool = False


# ---------------------------------------------------------------------------
# queries and operations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Source:
    table: str
    alias: Optional[str]
    # When set, render as a derived table: (SELECT * FROM table [WHERE
    # predicate]) AS alias.  A predicate-free derived table exercises
    # minidb's subquery-flattening fast path; one with a predicate takes
    # the SubqueryScan path.
    derived: bool = False
    predicate: Optional[Any] = None


@dataclass(frozen=True)
class Join:
    kind: str  # INNER | LEFT | CROSS
    source: Source
    condition: Optional[Any]  # None for CROSS


@dataclass(frozen=True)
class OrderTerm:
    expr: Any
    desc: bool = False


@dataclass(frozen=True)
class Query:
    source: Source
    joins: Tuple[Join, ...] = ()
    # None means SELECT *; otherwise (expr, alias) pairs.
    items: Optional[Tuple[Tuple[Any, Optional[str]], ...]] = None
    where: Optional[Any] = None
    group_by: Tuple[Any, ...] = ()
    having: Optional[Any] = None
    order_by: Tuple[OrderTerm, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class QueryOp:
    query: Query


@dataclass(frozen=True)
class InsertOp:
    table: str
    values: Tuple[Any, ...]


@dataclass(frozen=True)
class UpdateOp:
    table: str
    sets: Tuple[Tuple[str, Any], ...]
    where: Optional[Any]


@dataclass(frozen=True)
class DeleteOp:
    table: str
    where: Optional[Any]


@dataclass(frozen=True)
class CreateIndexOp:
    """CREATE INDEX on a live table (hash or sorted, single- or
    multi-column).  Exercises index maintenance under subsequent DML,
    plan-cache invalidation on schema epoch bumps, and — for
    single-column indexes over literal predicates — the planner's
    index-routed access paths, row and vectorized."""

    table: str
    index: IndexSpec


@dataclass(frozen=True)
class DropIndexOp:
    """DROP INDEX by name; later queries must re-plan without it."""

    table: str
    name: str


@dataclass(frozen=True)
class DropCreateOp:
    """DROP TABLE + CREATE TABLE + fresh indexes + reinserted rows.

    Exercises schema-epoch invalidation of the plan cache and the
    recreated-table aliasing hazard PR 3 guarded against.  Index names
    carry a generation suffix so the recreate never collides with a name
    sqlite already dropped but a buggy engine might have kept.
    """

    table: TableSpec
    rows: Tuple[Tuple[Any, ...], ...]


Op = Union[
    QueryOp, InsertOp, UpdateOp, DeleteOp,
    CreateIndexOp, DropIndexOp, DropCreateOp,
]


@dataclass
class Case:
    seed: int
    tables: Tuple[TableSpec, ...]
    rows: Dict[str, List[Tuple[Any, ...]]]
    ops: List[Op]

    @property
    def query_count(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, QueryOp))

    @property
    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.rows.values())


# ---------------------------------------------------------------------------
# capability mask
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Capabilities:
    """What the generator may emit.  Defaults describe the full shared
    dialect; tests narrow this to focus a hunt."""

    max_tables: int = 3
    max_data_columns: int = 4
    max_rows: int = 12
    max_ops: int = 12
    min_queries: int = 3
    max_expr_depth: int = 2
    allow_joins: bool = True
    allow_left_join: bool = True
    allow_cross_join: bool = True
    allow_derived_tables: bool = True
    allow_aggregates: bool = True
    allow_having: bool = True
    allow_subqueries: bool = True
    allow_distinct: bool = True
    allow_order_limit: bool = True
    allow_params: bool = True
    allow_dml: bool = True
    allow_drop_create: bool = True
    allow_index_ddl: bool = True
    # Scalar functions present in both engines with identical semantics
    # on the generated value domain (see module docstring).
    functions: Tuple[str, ...] = (
        "abs",
        "lower",
        "upper",
        "length",
        "coalesce",
        "nullif",
        "least",
        "greatest",
    )


WORDS = (
    "alpha", "beta", "gamma", "delta", "ink", "oak", "pine", "zig",
    "ember", "quartz", "river", "stone", "",
)

COMPARE_OPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass
class _Scope:
    """Column universe for one expression context."""

    bindings: Tuple[Tuple[Optional[str], TableSpec], ...]
    qualify: bool
    allow_params: bool = False
    allow_subqueries: bool = False

    def columns(self, dtypes: Optional[Sequence[str]] = None) -> List[Col]:
        out: List[Col] = []
        for alias, table in self.bindings:
            for column in table.columns:
                if dtypes is None or column.dtype in dtypes:
                    out.append(
                        Col(alias if self.qualify else None, column.name,
                            column.dtype)
                    )
        return out


def referenced_tables(op: Op) -> set:
    """Table names an op touches (for the shrinker's unused-table pass)."""
    names: set = set()

    def walk_query(query: Query) -> None:
        names.add(query.source.table)
        for join in query.joins:
            names.add(join.source.table)
        for expr in _subexpressions(query):
            if isinstance(expr, (InSubquery, Exists)):
                walk_query(expr.query)

    if isinstance(op, QueryOp):
        walk_query(op.query)
    elif isinstance(op, DropCreateOp):
        names.add(op.table.name)
    else:
        names.add(op.table)
        for expr in _op_expressions(op):
            if isinstance(expr, (InSubquery, Exists)):
                walk_query(expr.query)
    return names


def _subexpressions(query: Query):
    roots: List[Any] = []
    if query.items:
        roots.extend(expr for expr, _ in query.items)
    if query.source.predicate is not None:
        roots.append(query.source.predicate)
    for join in query.joins:
        if join.condition is not None:
            roots.append(join.condition)
        if join.source.predicate is not None:
            roots.append(join.source.predicate)
    for clause in (query.where, query.having):
        if clause is not None:
            roots.append(clause)
    roots.extend(query.group_by)
    roots.extend(term.expr for term in query.order_by)
    return _walk_all(roots)


def _op_expressions(op: Op):
    roots: List[Any] = []
    if isinstance(op, UpdateOp):
        roots.extend(expr for _, expr in op.sets)
        if op.where is not None:
            roots.append(op.where)
    elif isinstance(op, DeleteOp) and op.where is not None:
        roots.append(op.where)
    return _walk_all(roots)


def _walk_all(roots: Sequence[Any]):
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Arith):
            stack.extend((node.left, node.right))
        elif isinstance(node, Compare):
            stack.extend((node.left, node.right))
        elif isinstance(node, Logic):
            stack.extend(node.items)
        elif isinstance(node, NotE):
            stack.append(node.operand)
        elif isinstance(node, IsNull):
            stack.append(node.operand)
        elif isinstance(node, InList):
            stack.append(node.operand)
            stack.extend(node.items)
        elif isinstance(node, Between):
            stack.extend((node.operand, node.low, node.high))
        elif isinstance(node, LikeE):
            stack.append(node.operand)
        elif isinstance(node, Func):
            stack.extend(node.args)
        elif isinstance(node, CaseE):
            stack.extend(
                x for x in (node.condition, node.then, node.otherwise)
                if x is not None
            )
        elif isinstance(node, Agg) and node.arg is not None:
            stack.append(node.arg)
        elif isinstance(node, InSubquery):
            stack.append(node.operand)


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------


class CaseGenerator:
    """Produces :class:`Case` objects from a seed, inside a capability
    mask.  ``CaseGenerator(seed).case()`` is deterministic."""

    def __init__(self, seed: int, caps: Optional[Capabilities] = None) -> None:
        self.seed = seed
        self.caps = caps or Capabilities()
        self.rng = random.Random(seed)
        self.tables: Tuple[TableSpec, ...] = ()
        self._next_id: Dict[str, int] = {}
        self._index_serial = 0

    # -- values -------------------------------------------------------------

    def value(self, dtype: str, nullable: bool) -> Any:
        rng = self.rng
        if nullable and rng.random() < 0.18:
            return None
        if dtype == INTEGER:
            return rng.randint(-20, 100)
        if dtype == FLOAT:
            # Exact quarters: sums of any subset are exact in binary
            # floating point, making aggregates order-independent.
            return rng.randint(-80, 320) / 4.0
        if dtype == TEXT:
            if rng.random() < 0.7:
                return rng.choice(WORDS)
            return "".join(
                rng.choice("abcdefgz") for _ in range(rng.randint(1, 4))
            )
        if dtype == BOOLEAN:
            return rng.random() < 0.5
        if dtype == DATE:
            return datetime.date(
                rng.randint(2007, 2009), rng.randint(1, 12), rng.randint(1, 28)
            )
        raise ValueError(dtype)

    def _literal(self, dtype: str, nullable: bool = True) -> Lit:
        return Lit(self.value(dtype, nullable), dtype)

    def _leaf(self, dtype: str, scope: _Scope) -> Any:
        """A column of the requested type if one exists, else a literal."""
        columns = scope.columns((dtype,))
        if columns and self.rng.random() < 0.7:
            return self.rng.choice(columns)
        return self._literal(dtype)

    def _maybe_param(self, dtype: str, scope: _Scope) -> Any:
        if scope.allow_params and self.rng.random() < 0.3:
            return Param(self.value(dtype, nullable=False), dtype)
        return self._literal(dtype, nullable=False)

    # -- scalars ------------------------------------------------------------

    def scalar(self, dtype: str, scope: _Scope, depth: int) -> Any:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.45:
            return self._leaf(dtype, scope)
        if dtype in NUMERIC:
            roll = rng.random()
            if roll < 0.45:
                op = rng.choice("+-*")
                return Arith(
                    op,
                    self.scalar(rng.choice(NUMERIC), scope, depth - 1),
                    self.scalar(rng.choice(NUMERIC), scope, depth - 1),
                    FLOAT if dtype == FLOAT else INTEGER,
                )
            if roll < 0.6:
                # Division by a nonzero literal: minidb raises on /0
                # where sqlite returns NULL, so the denominator is pinned.
                denominator = Lit(rng.choice((2, 3, 4, 5, -2)), INTEGER)
                return Arith(
                    "/", self.scalar(dtype, scope, depth - 1), denominator,
                    FLOAT,
                )
            if roll < 0.75 and "abs" in self.caps.functions:
                return Func("abs", (self.scalar(dtype, scope, depth - 1),),
                            dtype)
            if roll < 0.9:
                name = rng.choice(("least", "greatest", "coalesce", "nullif"))
                if name not in self.caps.functions:
                    return self._leaf(dtype, scope)
                return Func(
                    name,
                    (
                        self.scalar(dtype, scope, depth - 1),
                        self.scalar(dtype, scope, depth - 1),
                    ),
                    dtype,
                )
            return CaseE(
                self.predicate(scope, depth - 1),
                self.scalar(dtype, scope, depth - 1),
                self._leaf(dtype, scope) if rng.random() < 0.8 else None,
                dtype,
            )
        if dtype == TEXT:
            roll = rng.random()
            if roll < 0.3:
                return Arith(
                    "||",
                    self._leaf(TEXT, scope),
                    self._leaf(TEXT, scope),
                    TEXT,
                )
            if roll < 0.6:
                name = rng.choice(("lower", "upper"))
                if name in self.caps.functions:
                    return Func(name, (self._leaf(TEXT, scope),), TEXT)
            if roll < 0.8:
                name = rng.choice(("coalesce", "nullif"))
                if name in self.caps.functions:
                    return Func(
                        name,
                        (self._leaf(TEXT, scope), self._leaf(TEXT, scope)),
                        TEXT,
                    )
            return self._leaf(TEXT, scope)
        # BOOLEAN and DATE stay shallow: arithmetic on them is outside
        # the shared dialect.
        return self._leaf(dtype, scope)

    # -- predicates ---------------------------------------------------------

    def predicate(self, scope: _Scope, depth: int) -> Any:
        rng = self.rng
        roll = rng.random()
        if depth > 0 and roll < 0.14:
            op = rng.choice(("AND", "OR"))
            return Logic(
                op,
                (self.predicate(scope, depth - 1),
                 self.predicate(scope, depth - 1)),
            )
        if depth > 0 and roll < 0.2:
            return NotE(self.predicate(scope, depth - 1))
        if roll < 0.32:
            columns = scope.columns()
            if columns:
                return IsNull(rng.choice(columns), negated=rng.random() < 0.5)
        if roll < 0.45:
            columns = scope.columns((INTEGER, FLOAT, TEXT, DATE))
            if columns:
                column = rng.choice(columns)
                family = (
                    NUMERIC if column.dtype in NUMERIC else (column.dtype,)
                )
                items = tuple(
                    self._maybe_param(rng.choice(family), scope)
                    for _ in range(rng.randint(1, 4))
                )
                if rng.random() < 0.15:
                    items = items + (Lit(None, column.dtype),)
                return InList(column, items, negated=rng.random() < 0.4)
        if roll < 0.56:
            columns = scope.columns((INTEGER, FLOAT, TEXT, DATE))
            if columns:
                column = rng.choice(columns)
                dtype = column.dtype if column.dtype not in NUMERIC else (
                    rng.choice(NUMERIC)
                )
                return Between(
                    column,
                    self._maybe_param(dtype, scope),
                    self._maybe_param(dtype, scope),
                    negated=rng.random() < 0.3,
                )
        if roll < 0.66:
            columns = scope.columns((TEXT,))
            if columns:
                return LikeE(
                    rng.choice(columns),
                    self._like_pattern(),
                    negated=rng.random() < 0.3,
                )
        if (
            roll < 0.76
            and scope.allow_subqueries
            and self.caps.allow_subqueries
            and self.tables
        ):
            return self._subquery_predicate(scope)
        return self._comparison(scope, depth)

    def _comparison(self, scope: _Scope, depth: int) -> Compare:
        rng = self.rng
        family = rng.choice((NUMERIC, (TEXT,), (DATE,), (BOOLEAN,)))
        columns = scope.columns(family)
        if not columns:
            family = NUMERIC
            columns = scope.columns(family)
        left = (
            rng.choice(columns)
            if columns and rng.random() < 0.75
            else self.scalar(rng.choice(family), scope, depth)
        )
        if family == (BOOLEAN,):
            op = rng.choice(("=", "<>"))
            right: Any = (
                rng.choice(columns)
                if columns and rng.random() < 0.4
                else Lit(rng.random() < 0.5, BOOLEAN)
            )
        else:
            op = rng.choice(COMPARE_OPS)
            if rng.random() < 0.5 and columns:
                right = rng.choice(columns)
            elif rng.random() < 0.5:
                right = self._maybe_param(rng.choice(family), scope)
            else:
                right = self.scalar(rng.choice(family), scope, depth)
        return Compare(op, left, right)

    def _like_pattern(self) -> str:
        rng = self.rng
        pieces = []
        for _ in range(rng.randint(1, 3)):
            roll = rng.random()
            if roll < 0.4:
                pieces.append("%")
            elif roll < 0.55:
                pieces.append("_")
            else:
                pieces.append(rng.choice("abegiz"))
        return "".join(pieces) or "%"

    def _subquery_predicate(self, scope: _Scope) -> Any:
        rng = self.rng
        table = rng.choice(self.tables)
        inner_scope = _Scope(
            bindings=((None, table),),
            qualify=False,
            allow_params=False,   # minidb rejects ? inside subqueries
            allow_subqueries=False,
        )
        if rng.random() < 0.5:
            column = rng.choice(list(table.columns))
            inner = Query(
                source=Source(table.name, alias=None),
                items=((Col(None, column.name, column.dtype), None),),
                where=(
                    self.predicate(inner_scope, 0)
                    if rng.random() < 0.7 else None
                ),
            )
            family = NUMERIC if column.dtype in NUMERIC else (column.dtype,)
            outer_columns = scope.columns(family)
            operand = (
                rng.choice(outer_columns)
                if outer_columns
                else self._literal(column.dtype, nullable=False)
            )
            return InSubquery(operand, inner, negated=rng.random() < 0.4)
        inner = Query(
            source=Source(table.name, alias=None),
            items=((Col(None, "id", INTEGER), None),),
            where=(
                self.predicate(inner_scope, 0) if rng.random() < 0.8 else None
            ),
        )
        return Exists(inner, negated=rng.random() < 0.4)

    # -- schema and data ----------------------------------------------------

    def _make_tables(self) -> Tuple[TableSpec, ...]:
        rng = self.rng
        caps = self.caps
        tables = []
        for t in range(rng.randint(1, caps.max_tables)):
            columns = [ColumnSpec("id", INTEGER, nullable=False)]
            for c in range(rng.randint(2, caps.max_data_columns)):
                dtype = rng.choice((INTEGER, FLOAT, TEXT, BOOLEAN, DATE))
                columns.append(
                    ColumnSpec(
                        f"c{c + 1}_{dtype[:3].lower()}",
                        dtype,
                        nullable=rng.random() < 0.75,
                    )
                )
            name = f"t{t}"
            indexes = tuple(
                self._make_index(name, self._index_columns(tuple(columns)))
                for _ in range(rng.randint(0, 2))
            )
            # Dedupe index column sets (two indexes on one column set are
            # legal but add nothing).
            seen: set = set()
            unique_indexes = []
            for index in indexes:
                if index.columns not in seen:
                    seen.add(index.columns)
                    unique_indexes.append(index)
            tables.append(TableSpec(name, tuple(columns),
                                    tuple(unique_indexes)))
        return tuple(tables)

    def _index_columns(
        self, columns: Tuple[ColumnSpec, ...]
    ) -> Tuple[str, ...]:
        """1–2 distinct columns; mostly single (those route access paths)."""
        rng = self.rng
        if len(columns) > 1 and rng.random() < 0.3:
            picked = rng.sample(list(columns), 2)
            return tuple(column.name for column in picked)
        return (rng.choice(columns).name,)

    def _make_index(
        self, table: str, columns: Tuple[str, ...]
    ) -> IndexSpec:
        self._index_serial += 1
        return IndexSpec(
            f"idx_{table}_{'_'.join(columns)}_{self._index_serial}",
            columns,
            self.rng.choice(("hash", "sorted")),
        )

    def _make_row(self, table: TableSpec) -> Tuple[Any, ...]:
        row_id = self._next_id.get(table.name, 1)
        self._next_id[table.name] = row_id + 1
        values: List[Any] = [row_id]
        for column in table.data_columns:
            values.append(self.value(column.dtype, column.nullable))
        return tuple(values)

    # -- queries ------------------------------------------------------------

    def query(self) -> Query:
        rng = self.rng
        caps = self.caps
        sources, joins = self._sources_and_joins()
        multi = bool(joins)
        qualify = multi or rng.random() < 0.5
        scope = _Scope(
            bindings=tuple(
                (src.alias if qualify else None, self._table(src.table))
                for src in sources
            ),
            qualify=qualify,
            allow_params=False,
            allow_subqueries=False,
        )
        where_scope = replace(
            scope,
            allow_params=caps.allow_params,
            allow_subqueries=True,
        )
        where = (
            self.predicate(where_scope, caps.max_expr_depth)
            if rng.random() < 0.75 else None
        )
        if caps.allow_aggregates and rng.random() < 0.3:
            return self._aggregate_query(sources, joins, scope, where)
        return self._plain_query(sources, joins, scope, where)

    def _table(self, name: str) -> TableSpec:
        for table in self.tables:
            if table.name == name:
                return table
        raise KeyError(name)

    def _sources_and_joins(self) -> Tuple[List[Source], Tuple[Join, ...]]:
        rng = self.rng
        caps = self.caps
        count = 1
        if caps.allow_joins and len(self.tables) >= 1:
            roll = rng.random()
            if roll < 0.4:
                count = 2
            if roll < 0.12:
                count = 3
        sources: List[Source] = []
        for i in range(count):
            table = rng.choice(self.tables)
            derived = (
                caps.allow_derived_tables and rng.random() < 0.18
            )
            predicate = None
            if derived and rng.random() < 0.6:
                inner_scope = _Scope(
                    bindings=((None, table),), qualify=False
                )
                predicate = self.predicate(inner_scope, 1)
            sources.append(
                Source(table.name, f"a{i}", derived=derived,
                       predicate=predicate)
            )
        joins: List[Join] = []
        for right in sources[1:]:
            kind = "INNER"
            roll = rng.random()
            if caps.allow_left_join and roll < 0.3:
                kind = "LEFT"
            elif caps.allow_cross_join and roll < 0.4 and len(sources) == 2:
                kind = "CROSS"
            condition = None
            if kind != "CROSS":
                condition = self._join_condition(sources, right)
            joins.append(Join(kind, right, condition))
        return sources, tuple(joins)

    def _join_condition(self, sources: List[Source], right: Source) -> Any:
        rng = self.rng
        right_table = self._table(right.table)
        left_sources = sources[: sources.index(right)]
        pairs = []
        for left in left_sources:
            left_table = self._table(left.table)
            for lcol in left_table.columns:
                for rcol in right_table.columns:
                    if lcol.dtype == rcol.dtype:
                        pairs.append(
                            (
                                Col(left.alias, lcol.name, lcol.dtype),
                                Col(right.alias, rcol.name, rcol.dtype),
                            )
                        )
        left_col, right_col = rng.choice(pairs)
        condition: Any = Compare("=", left_col, right_col)
        if rng.random() < 0.25:
            extra = Compare(
                rng.choice(COMPARE_OPS),
                Col(right.alias, "id", INTEGER),
                Lit(rng.randint(0, 8), INTEGER),
            )
            condition = Logic("AND", (condition, extra))
        return condition

    def _plain_query(
        self,
        sources: List[Source],
        joins: Tuple[Join, ...],
        scope: _Scope,
        where: Optional[Any],
    ) -> Query:
        rng = self.rng
        caps = self.caps
        star = rng.random() < 0.15
        distinct = caps.allow_distinct and rng.random() < 0.2
        limit = offset = None
        order: Tuple[OrderTerm, ...] = ()
        items: Optional[Tuple[Tuple[Any, Optional[str]], ...]] = None
        want_limit = caps.allow_order_limit and rng.random() < 0.45
        if not star:
            exprs: List[Any] = []
            for _ in range(rng.randint(1, 4)):
                if distinct and want_limit:
                    # DISTINCT + LIMIT needs ORDER BY over outputs that
                    # totalize the distinct rows: plain columns only.
                    columns = scope.columns()
                    exprs.append(rng.choice(columns))
                elif rng.random() < 0.6:
                    columns = scope.columns()
                    exprs.append(rng.choice(columns))
                else:
                    dtype = rng.choice((INTEGER, FLOAT, TEXT))
                    exprs.append(self.scalar(dtype, scope, 1))
            items = tuple(
                (expr, f"c{i}") for i, expr in enumerate(exprs)
            )
        if want_limit:
            limit = rng.randint(0, 8)
            if rng.random() < 0.3:
                # Include offsets beyond max_rows so "OFFSET past the
                # end" is a routinely fuzzed shape, not just a unit test.
                offset = rng.choice((1, 2, 3, 5, 9, 16, 25))
            if distinct and items is not None:
                order = tuple(
                    OrderTerm(Col(None, alias, INTEGER),
                              desc=rng.random() < 0.4)
                    for _, alias in items
                )
            else:
                extra = []
                if rng.random() < 0.4:
                    columns = scope.columns((INTEGER, FLOAT, DATE))
                    if columns:
                        extra.append(
                            OrderTerm(rng.choice(columns),
                                      desc=rng.random() < 0.5)
                        )
                pk_terms = [
                    OrderTerm(
                        Col(alias, "id", INTEGER), desc=rng.random() < 0.3
                    )
                    for alias, _ in scope.bindings
                ]
                order = tuple(extra) + tuple(pk_terms)
        elif caps.allow_order_limit and rng.random() < 0.2:
            # ORDER BY without LIMIT: results compare as multisets, so
            # this only checks that both engines accept the clause.
            columns = scope.columns()
            order = (OrderTerm(rng.choice(columns),
                               desc=rng.random() < 0.5),)
        return Query(
            source=sources[0],
            joins=joins,
            items=items,
            where=where,
            order_by=order,
            limit=limit,
            offset=offset,
            distinct=distinct and items is not None,
        )

    def _aggregate_query(
        self,
        sources: List[Source],
        joins: Tuple[Join, ...],
        scope: _Scope,
        where: Optional[Any],
    ) -> Query:
        rng = self.rng
        caps = self.caps
        columns = scope.columns()
        global_agg = rng.random() < 0.25
        group_by: Tuple[Any, ...] = ()
        items: List[Tuple[Any, Optional[str]]] = []
        if not global_agg:
            keys = rng.sample(columns, k=min(len(columns),
                                             rng.randint(1, 2)))
            group_by = tuple(keys)
            items.extend((key, f"g{i}") for i, key in enumerate(keys))
        for i in range(rng.randint(1, 3)):
            items.append((self._aggregate(scope), f"a{i}"))
        having = None
        if group_by and caps.allow_having and rng.random() < 0.35:
            having = Compare(
                rng.choice((">=", ">", "<", "=")),
                Agg("count_star", None),
                Lit(rng.randint(0, 3), INTEGER),
            )
        order: Tuple[OrderTerm, ...] = ()
        limit = None
        if group_by and caps.allow_order_limit and rng.random() < 0.4:
            # Group keys are unique per output row, so ordering by every
            # key alias is total and LIMIT is deterministic.
            order = tuple(
                OrderTerm(Col(None, f"g{i}", INTEGER),
                          desc=rng.random() < 0.4)
                for i in range(len(group_by))
            )
            limit = rng.randint(0, 6)
        return Query(
            source=sources[0],
            joins=joins,
            items=tuple(items),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order,
            limit=limit,
        )

    def _aggregate(self, scope: _Scope) -> Agg:
        rng = self.rng
        roll = rng.random()
        if roll < 0.3:
            return Agg("count_star", None)
        if roll < 0.5:
            columns = scope.columns()
            return Agg("count", rng.choice(columns),
                       distinct=rng.random() < 0.4)
        if roll < 0.75:
            # SUM/AVG over plain columns only: exact quarters keep float
            # accumulation order-independent (see module docstring).
            columns = scope.columns(NUMERIC)
            if columns:
                return Agg(rng.choice(("sum", "avg")), rng.choice(columns))
        columns = scope.columns((INTEGER, FLOAT, TEXT, DATE))
        if not columns:
            return Agg("count_star", None)
        return Agg(rng.choice(("min", "max")), rng.choice(columns))

    # -- DML ----------------------------------------------------------------

    def _dml(self) -> Op:
        rng = self.rng
        table = rng.choice(self.tables)
        scope = _Scope(bindings=((None, table),), qualify=False)
        roll = rng.random()
        if roll < 0.45:
            return InsertOp(table.name, self._make_row(table))
        if roll < 0.75:
            sets = []
            data_columns = list(table.data_columns)
            rng.shuffle(data_columns)
            for column in data_columns[: rng.randint(1, 2)]:
                sets.append((column.name, self._set_expression(column, scope)))
            where = (
                self.predicate(scope, 1) if rng.random() < 0.85 else None
            )
            return UpdateOp(table.name, tuple(sets), where)
        return DeleteOp(
            table.name,
            self.predicate(scope, 1) if rng.random() < 0.9 else None,
        )

    def _set_expression(self, column: ColumnSpec, scope: _Scope) -> Any:
        rng = self.rng
        if column.dtype in NUMERIC and rng.random() < 0.4:
            # + and - with small literals only: repeated updates must not
            # overflow sqlite's 64-bit integers, and / would assign FLOAT
            # into INTEGER columns (minidb's strict coercion rejects it).
            return Arith(
                rng.choice("+-"),
                Col(None, column.name, column.dtype),
                Lit(rng.randint(1, 5), INTEGER),
                column.dtype,
            )
        if column.dtype == TEXT and rng.random() < 0.3:
            return Arith(
                "||",
                Func("coalesce",
                     (Col(None, column.name, TEXT), Lit("", TEXT)), TEXT),
                Lit(rng.choice(("x", "qa", "z")), TEXT),
                TEXT,
            )
        return self._literal(column.dtype, nullable=column.nullable)

    def _index_ddl(self) -> Op:
        """CREATE INDEX or DROP INDEX against the live registry, so the
        name set stays collision-free and drops always hit a real index
        (identical outcomes on both engines, no error-path noise)."""
        rng = self.rng
        indexed = [table for table in self.tables if table.indexes]
        if indexed and rng.random() < 0.4:
            spec = rng.choice(indexed)
            victim = rng.choice(spec.indexes)
            remaining = tuple(
                index for index in spec.indexes if index.name != victim.name
            )
            self._swap_table(replace(spec, indexes=remaining))
            return DropIndexOp(spec.name, victim.name)
        spec = rng.choice(self.tables)
        index = self._make_index(
            spec.name, self._index_columns(spec.columns)
        )
        self._swap_table(replace(spec, indexes=spec.indexes + (index,)))
        return CreateIndexOp(spec.name, index)

    def _swap_table(self, spec: TableSpec) -> None:
        self.tables = tuple(
            spec if table.name == spec.name else table
            for table in self.tables
        )

    def _drop_create(self) -> DropCreateOp:
        rng = self.rng
        spec = rng.choice(self.tables)
        # Fresh index generation: names must not collide with the ones
        # dropped alongside the old table.
        indexes = tuple(
            self._make_index(spec.name, index.columns)
            for index in spec.indexes
        )
        spec = replace(spec, indexes=indexes)
        self._next_id[spec.name] = 1
        rows = tuple(self._make_row(spec) for _ in range(rng.randint(0, 4)))
        # Update the registry so later queries and DML see the new spec.
        self.tables = tuple(
            spec if table.name == spec.name else table
            for table in self.tables
        )
        return DropCreateOp(spec, rows)

    # -- the case -----------------------------------------------------------

    def case(self) -> Case:
        rng = self.rng
        caps = self.caps
        self.tables = self._make_tables()
        # Drop/create ops swap refreshed specs into ``self.tables``; the
        # case's initial DDL must keep the originals.
        original_tables = self.tables
        rows: Dict[str, List[Tuple[Any, ...]]] = {}
        for table in self.tables:
            rows[table.name] = [
                self._make_row(table)
                for _ in range(rng.randint(0, caps.max_rows))
            ]
        ops: List[Op] = []
        n_ops = rng.randint(max(4, caps.min_queries + 1), caps.max_ops)
        for _ in range(n_ops):
            roll = rng.random()
            if not caps.allow_dml or roll < 0.55:
                ops.append(QueryOp(self.query()))
            elif caps.allow_drop_create and roll > 0.94:
                ops.append(self._drop_create())
            elif caps.allow_index_ddl and roll > 0.88:
                ops.append(self._index_ddl())
            else:
                ops.append(self._dml())
        while sum(isinstance(op, QueryOp) for op in ops) < caps.min_queries:
            ops.append(QueryOp(self.query()))
        return Case(
            seed=self.seed, tables=original_tables, rows=rows, ops=ops
        )
