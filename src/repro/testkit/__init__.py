"""repro.testkit: differential & metamorphic testing for the repro stack.

The paper's systems claim is that FlexRecs-style workflows compile into
SQL run by a conventional DBMS; PRs 1-3 added cache/compile fast paths
whose correctness was pinned by hand-written per-PR equivalence tests.
This package turns those scattered checks into a reusable subsystem:

* :mod:`repro.testkit.generators` — seeded random schema/data/query
  generation producing a typed AST inside a capability mask;
* :mod:`repro.testkit.dialects` — render the AST to both minidb SQL and
  sqlite SQL (the shared dialect), collecting ``?`` parameters in text
  order;
* :mod:`repro.testkit.oracle` — execute on minidb under a config sweep
  (compiled/interpreted, cold/plan-cache-warm, prepared/literal) and on
  the stdlib ``sqlite3`` oracle, comparing normalized result multisets;
* :mod:`repro.testkit.churn` — metamorphic workload driver interleaving
  DML/DDL churn with queries, recommends, searches, and cloud
  refinements, asserting every cache stays coherent with a from-scratch
  replay;
* :mod:`repro.testkit.minimize` — delta-debugging shrinker that reduces
  a failing case and writes a corpus seed plus standalone repro script.

Nothing here imports ``hypothesis``: the package is pure stdlib + repro,
so the nightly fuzz CLI (``python -m repro.testkit``) runs anywhere the
library does.
"""

from repro.testkit.churn import ChurnDriver, ChurnReport
from repro.testkit.generators import Capabilities, Case, CaseGenerator
from repro.testkit.minimize import Shrinker, shrink_case, write_repro
from repro.testkit.oracle import (
    SWEEP,
    CaseReport,
    case_fails,
    load_seed,
    run_differential,
    run_rendered,
)

__all__ = [
    "Capabilities",
    "Case",
    "CaseGenerator",
    "ChurnDriver",
    "ChurnReport",
    "SWEEP",
    "CaseReport",
    "Shrinker",
    "case_fails",
    "load_seed",
    "run_differential",
    "run_rendered",
    "shrink_case",
    "write_repro",
]
