"""Execute rendered cases on minidb and sqlite3 and compare results.

minidb runs under a **config sweep** — every query in a case is executed
under each of:

* ``compiled-cold``   — ``COMPILE_EXPRESSIONS`` on, each query once;
* ``compiled-warm``   — compiled, each query twice, so the second run
  goes through the plan cache (and through transparent re-planning when
  interleaved DML/DDL invalidated the entry);
* ``interpreted``     — ``COMPILE_EXPRESSIONS`` off;
* ``prepared``        — ``PreparedStatement`` handles, executed twice;
* ``vectorized-cold`` — batch-vectorized executor (``VECTORIZE`` on),
  each query once;
* ``vectorized-warm`` — vectorized, each query twice (plan-cache hits
  reuse the attached vector plan).

The four row-path configs pin ``VECTORIZE`` off, so every fuzzed query
is checked bit-identical across the row path, the vectorized path, and
the sqlite3 oracle.

Each sweep's outcomes are compared against one sqlite3 run of the same
case; additionally, repeated executions *within* a config must agree
(the cold-vs-warm metamorphic check).

Comparison rules (the type/NULL-aware coercion layer):

* result rows are compared as **multisets** — both engines are free to
  emit rows in any order unless the query's ORDER BY totalizes it, in
  which case the generator guarantees determinism and the multiset view
  is still sufficient;
* ``bool`` normalizes to ``int`` and ``datetime.date`` to its ISO
  string (sqlite has neither type);
* ``int``/``float`` stay distinct but compare with Python's cross-type
  ``==`` (``2 == 2.0``), absorbing affinity differences;
* floats are compared **exactly** — the generator's value domain (exact
  quarters, aggregates over plain columns) makes every float result
  bit-deterministic in both engines;
* DML outcomes compare affected-row counts; DDL only that both engines
  accepted it; errors compare by parity only (both-raise is error
  parity, not a divergence — generator bugs surface through the
  ``error_ops`` counter instead).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.testkit.dialects import (
    MINIDB,
    SQLITE,
    RenderedCase,
    RenderedScript,
    bind_value,
    render_case,
)
from repro.testkit.generators import Capabilities, Case, CaseGenerator

__all__ = [
    "MiniConfig",
    "SWEEP",
    "Outcome",
    "CaseReport",
    "DifferentialReport",
    "SCRIPT_BACKENDS",
    "register_script_backend",
    "unregister_script_backend",
    "backend_script_runner",
    "register_default_backends",
    "run_minidb",
    "run_sqlite",
    "run_rendered",
    "run_case",
    "case_fails",
    "run_differential",
    "load_seed",
]


@dataclass(frozen=True)
class MiniConfig:
    name: str
    compile_expressions: bool
    prepared: bool = False
    repeat: int = 1
    vectorize: bool = False


SWEEP: Tuple[MiniConfig, ...] = (
    MiniConfig("compiled-cold", compile_expressions=True),
    MiniConfig("compiled-warm", compile_expressions=True, repeat=2),
    MiniConfig("interpreted", compile_expressions=False),
    MiniConfig("prepared", compile_expressions=True, prepared=True,
               repeat=2),
    MiniConfig("vectorized-cold", compile_expressions=True,
               vectorize=True),
    MiniConfig("vectorized-warm", compile_expressions=True,
               vectorize=True, repeat=2),
)


# ---------------------------------------------------------------------------
# outcomes and normalization
# ---------------------------------------------------------------------------


def normalize_value(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    if hasattr(value, "isoformat") and not isinstance(value, str):
        return value.isoformat()
    return value


def _value_key(value: Any) -> Tuple[int, float, str]:
    """A total sort key over the normalized value domain (None, numbers,
    strings) that agrees across engines."""
    if value is None:
        return (0, 0.0, "")
    if isinstance(value, (int, float)):
        return (1, float(value), "")
    return (2, 0.0, str(value))


def normalize_rows(rows: Sequence[Sequence[Any]]) -> Tuple[Tuple[Any, ...], ...]:
    normalized = [
        tuple(normalize_value(value) for value in row) for row in rows
    ]
    normalized.sort(key=lambda row: tuple(_value_key(v) for v in row))
    return tuple(normalized)


@dataclass(frozen=True)
class Outcome:
    kind: str  # rows | count | ok | error
    columns: int = 0
    rows: Tuple[Tuple[Any, ...], ...] = ()
    count: int = 0
    error: str = ""

    def signature(self) -> Tuple[Any, ...]:
        if self.kind == "rows":
            return ("rows", self.columns, self.rows)
        if self.kind == "count":
            return ("count", self.count)
        # Engines word their errors differently; parity is the contract.
        return (self.kind,)

    def brief(self) -> str:
        if self.kind == "rows":
            shown = ", ".join(repr(row) for row in self.rows[:4])
            suffix = ", ..." if len(self.rows) > 4 else ""
            return f"{len(self.rows)} row(s): [{shown}{suffix}]"
        if self.kind == "count":
            return f"count={self.count}"
        if self.kind == "error":
            return f"error: {self.error}"
        return "ok"


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------


def run_minidb(
    script: RenderedScript,
    config: MiniConfig,
    transform: Optional[Callable[[str], str]] = None,
) -> Tuple[List[Outcome], List[str]]:
    """Execute a rendered script on a fresh minidb under one config.

    ``transform`` rewrites each query's SQL before execution — the hook
    the planted-bug tests use to model a broken engine.  Returns the
    per-op outcomes plus any **intra-config** divergences (a repeated
    execution disagreeing with its own first run, i.e. a stale cache).
    """
    from repro.minidb import Database
    from repro.minidb.planner import flag_overrides

    database = Database()
    # flag_overrides holds the planner's flag lock for the whole run:
    # the historical save/set/restore here was not reentrant — two
    # threads interleaving their restores could leave a global flag
    # permanently flipped for the rest of the process.
    with flag_overrides(
        compile_expressions=config.compile_expressions,
        vectorize=config.vectorize,
    ):
        for ddl in script.create:
            database.execute(ddl)
        outcomes: List[Outcome] = []
        intra: List[str] = []
        prepared_cache: Dict[str, Any] = {}
        for position, op in enumerate(script.ops):
            sql = op.sql
            if transform is not None and op.kind == "query":
                sql = transform(sql)
            repeats = config.repeat if op.kind == "query" else 1
            first: Optional[Outcome] = None
            for run in range(repeats):
                outcome = _minidb_one(
                    database, config, prepared_cache, op.kind, sql, op.params
                )
                if first is None:
                    first = outcome
                elif outcome.signature() != first.signature():
                    intra.append(
                        f"op[{position}] config={config.name} run {run + 1} "
                        f"disagrees with its first run: "
                        f"{outcome.brief()} != {first.brief()} :: {sql}"
                    )
            outcomes.append(first)  # type: ignore[arg-type]
        return outcomes, intra


def _minidb_one(
    database: Any,
    config: MiniConfig,
    prepared_cache: Dict[str, Any],
    kind: str,
    sql: str,
    params: Tuple[Any, ...],
) -> Outcome:
    bound = [bind_value(value, MINIDB) for value in params]
    try:
        if kind == "query":
            if config.prepared:
                statement = prepared_cache.get(sql)
                if statement is None:
                    statement = database.prepare(sql)
                    prepared_cache[sql] = statement
                result = statement.query(*bound)
            else:
                result = database.query(sql, bound or None)
            return Outcome(
                "rows",
                columns=len(result.columns),
                rows=normalize_rows(result.rows),
            )
        result = database.execute(sql, bound or None)
        if kind in ("insert", "update", "delete"):
            return Outcome("count", count=int(result))
        return Outcome("ok")
    except Exception as exc:  # noqa: BLE001 - error parity is the contract
        return Outcome("error", error=f"{type(exc).__name__}: {exc}")


def run_sqlite(script: RenderedScript) -> List[Outcome]:
    connection = sqlite3.connect(":memory:")
    try:
        for ddl in script.create:
            connection.execute(ddl)
        outcomes: List[Outcome] = []
        for op in script.ops:
            bound = [bind_value(value, SQLITE) for value in op.params]
            try:
                cursor = connection.execute(op.sql, bound)
                if op.kind == "query":
                    rows = cursor.fetchall()
                    columns = (
                        len(cursor.description) if cursor.description else 0
                    )
                    outcomes.append(
                        Outcome("rows", columns=columns,
                                rows=normalize_rows(rows))
                    )
                elif op.kind in ("insert", "update", "delete"):
                    outcomes.append(Outcome("count", count=cursor.rowcount))
                else:
                    outcomes.append(Outcome("ok"))
            except sqlite3.Error as exc:
                outcomes.append(
                    Outcome("error", error=f"{type(exc).__name__}: {exc}")
                )
        return outcomes
    finally:
        connection.close()


# ---------------------------------------------------------------------------
# extra execution backends (the N-backend cross-equivalence checker)
# ---------------------------------------------------------------------------

#: name -> runner executing one RenderedCase and returning per-op
#: Outcomes.  Every registered backend is executed by run_rendered in
#: addition to the minidb sweep and the sqlite3 oracle, and compared
#: with the same multiset/error-parity rules — so any driver from
#: :mod:`repro.backends` (or any DB-API engine) can join the
#: differential loop.
SCRIPT_BACKENDS: Dict[str, Callable[[RenderedCase], List[Outcome]]] = {}


def register_script_backend(
    name: str, runner: Callable[[RenderedCase], List[Outcome]]
) -> None:
    """Add an execution backend to every subsequent run_rendered call."""
    SCRIPT_BACKENDS[name] = runner


def unregister_script_backend(name: str) -> None:
    SCRIPT_BACKENDS.pop(name, None)


def backend_script_runner(
    backend_factory: Callable[[], Any],
) -> Callable[[RenderedCase], List[Outcome]]:
    """Adapt a :mod:`repro.backends` driver into a script runner.

    The factory must build a fresh, catalog-free Backend per case (the
    fuzzer's DDL creates the schema itself).  The generic-dialect script
    (``rendered.sqlite``) is executed through the driver's own
    placeholder conversion and parameter binding, so the cross-backend
    sweep exercises the production driver code path, not a test shim.
    """

    def run(rendered: RenderedCase) -> List[Outcome]:
        backend = backend_factory()
        try:
            outcomes: List[Outcome] = []
            for ddl in rendered.sqlite.create:
                backend.execute(ddl)
            for op in rendered.sqlite.ops:
                try:
                    result = backend.execute(op.sql, op.params)
                    if op.kind == "query":
                        outcomes.append(
                            Outcome(
                                "rows",
                                columns=len(result.columns),
                                rows=normalize_rows(result.rows),
                            )
                        )
                    elif op.kind in ("insert", "update", "delete"):
                        outcomes.append(
                            Outcome("count", count=result.rowcount)
                        )
                    else:
                        outcomes.append(Outcome("ok"))
                except Exception as exc:  # noqa: BLE001 - error parity
                    outcomes.append(
                        Outcome(
                            "error", error=f"{type(exc).__name__}: {exc}"
                        )
                    )
            return outcomes
        finally:
            backend.close()

    return run


def register_default_backends() -> List[str]:
    """Register the stock cross-backend set (currently: the sqlite3
    driver from repro.backends, distinct from the raw-connection
    oracle).  Returns the registered names."""
    from repro.backends.dbapi import Sqlite3Backend

    register_script_backend(
        "backend:sqlite3",
        backend_script_runner(lambda: Sqlite3Backend(catalog=None)),
    )
    return ["backend:sqlite3"]


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


@dataclass
class CaseReport:
    divergences: List[str] = field(default_factory=list)
    query_ops: int = 0
    error_ops: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def run_rendered(
    rendered: RenderedCase,
    sweep: Sequence[MiniConfig] = SWEEP,
    mini_transform: Optional[Callable[[str], str]] = None,
) -> CaseReport:
    """Run one rendered case through the full sweep vs the oracle.

    Besides the minidb config sweep, every backend in
    :data:`SCRIPT_BACKENDS` executes the case and is held to the same
    signature comparison against the sqlite3 oracle (multiset rows,
    count parity, error parity) — the N-backend equivalence check.
    """
    report = CaseReport(query_ops=rendered.query_count)
    expected = run_sqlite(rendered.sqlite)
    error_positions = {
        index for index, outcome in enumerate(expected)
        if outcome.kind == "error"
    }
    for config in sweep:
        got, intra = run_minidb(rendered.minidb, config, mini_transform)
        report.divergences.extend(intra)
        for index, (mine, theirs) in enumerate(zip(got, expected)):
            if mine.kind == "error":
                error_positions.add(index)
            if mine.signature() != theirs.signature():
                sql = rendered.minidb.ops[index].sql
                report.divergences.append(
                    f"op[{index}] config={config.name}: minidb "
                    f"{mine.brief()} != sqlite {theirs.brief()} :: {sql}"
                )
    for backend_name, runner in SCRIPT_BACKENDS.items():
        got = runner(rendered)
        for index, (mine, theirs) in enumerate(zip(got, expected)):
            if mine.kind == "error":
                error_positions.add(index)
            if mine.signature() != theirs.signature():
                sql = rendered.sqlite.ops[index].sql
                report.divergences.append(
                    f"op[{index}] backend={backend_name}: "
                    f"{mine.brief()} != sqlite {theirs.brief()} :: {sql}"
                )
    report.error_ops = len(error_positions)
    return report


def run_case(
    case: Case,
    sweep: Sequence[MiniConfig] = SWEEP,
    mini_transform: Optional[Callable[[str], str]] = None,
) -> CaseReport:
    return run_rendered(render_case(case), sweep, mini_transform)


def case_fails(
    sweep: Sequence[MiniConfig] = SWEEP,
    mini_transform: Optional[Callable[[str], str]] = None,
) -> Callable[[Case], bool]:
    """A ``fails(case) -> bool`` predicate for the shrinker."""

    def fails(case: Case) -> bool:
        return not run_case(case, sweep, mini_transform).ok

    return fails


# ---------------------------------------------------------------------------
# the fuzz loop
# ---------------------------------------------------------------------------


@dataclass
class CaseFailure:
    seed: int
    case: Case
    report: CaseReport


@dataclass
class DifferentialReport:
    cases: int = 0
    query_ops: int = 0
    error_ops: int = 0
    failures: List[CaseFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and self.error_ops == 0


def run_differential(
    min_query_ops: int = 200,
    base_seed: int = 0,
    caps: Optional[Capabilities] = None,
    sweep: Sequence[MiniConfig] = SWEEP,
    mini_transform: Optional[Callable[[str], str]] = None,
    max_cases: int = 10_000,
    stop_on_failure: bool = False,
) -> DifferentialReport:
    """Generate and check cases until ``min_query_ops`` query executions
    have been compared against the oracle (each counted once per case,
    not per sweep config)."""
    report = DifferentialReport()
    seed = base_seed
    while report.query_ops < min_query_ops and report.cases < max_cases:
        case = CaseGenerator(seed, caps).case()
        case_report = run_case(case, sweep, mini_transform)
        report.cases += 1
        report.query_ops += case_report.query_ops
        report.error_ops += case_report.error_ops
        if not case_report.ok:
            report.failures.append(CaseFailure(seed, case, case_report))
            if stop_on_failure:
                break
        seed += 1
    return report


def load_seed(path: Any) -> RenderedCase:
    """Load a corpus seed written by :func:`repro.testkit.minimize.write_repro`."""
    import json
    import pathlib

    from repro.testkit.dialects import rendered_from_dict

    data = json.loads(pathlib.Path(path).read_text())
    return rendered_from_dict(data)
