"""Shared bounded caches.

One small LRU implementation used across layers: the minidb statement and
plan caches, the search tokenizer's token-stream memo, and the data-cloud
term-statistics memo.  Deliberately dependency-free so every layer can
import it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional


class LRUCache:
    """A small bounded mapping with least-recently-used eviction."""

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("LRU cache size must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Any, value: Any) -> None:
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        if len(entries) > self.maxsize:
            entries.popitem(last=False)

    def pop(self, key: Any) -> Optional[Any]:
        return self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries
