"""Shared bounded caches.

One small LRU implementation used across layers: the minidb statement and
plan caches, the search tokenizer's token-stream memo, the data-cloud
term-statistics memo, and the service layer's scatter-gather response
cache.  Deliberately dependency-free so every layer can import it.

The cache is thread-safe: every operation (including the hit/miss
counters and the eviction that ``put`` may trigger) runs under one
internal lock, so the concurrent service layer can share a single
instance across worker threads without torn ``OrderedDict`` state.
Callers that need a larger atomic section (get-validate-put) still
serialize externally; the lock here only guarantees each individual
operation is atomic, which is all the version-counter discipline needs —
a racing duplicate ``put`` just recomputes the same value.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional


class LRUCache:
    """A small bounded mapping with least-recently-used eviction."""

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("LRU cache size must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
            entries[key] = value
            if len(entries) > self.maxsize:
                entries.popitem(last=False)

    def pop(self, key: Any) -> Optional[Any]:
        with self._lock:
            return self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries
