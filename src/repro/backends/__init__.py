"""Execution backends: run compiled FlexRecs SQL on any DB-API engine.

The paper claims recommendation workflows compile to declarative SQL
"executed by a conventional DBMS".  This package makes that literal:

- :mod:`repro.backends.dialects` — per-engine :class:`SqlDialect`
  renderers under a declarative :class:`Capabilities` mask,
- :mod:`repro.backends.base` — the :class:`Backend` protocol
  (connect / execute / introspect / load-from-minidb-snapshot),
- :mod:`repro.backends.native` — the in-process minidb driver,
- :mod:`repro.backends.dbapi` — the generic DB-API 2.0 adapter and the
  stdlib ``sqlite3`` driver,
- :mod:`repro.backends.registry` — name-keyed driver factories, open to
  any DB-API connection via ``REGISTRY.register_dbapi``.

See DESIGN.md §15 for the architecture and the how-to for adding a
driver.
"""

from repro.backends.base import Backend, BackendResult
from repro.backends.dbapi import (
    DbApiBackend,
    Sqlite3Backend,
    convert_placeholders,
)
from repro.backends.dialects import (
    DIALECTS,
    MINIDB_DIALECT,
    SQLITE_DIALECT,
    Capabilities,
    SqlDialect,
    get_dialect,
    register_dialect,
)
from repro.backends.native import MinidbBackend
from repro.backends.registry import (
    REGISTRY,
    BackendRegistry,
    create_backend,
    default_backend_name,
)

__all__ = [
    "Backend",
    "BackendResult",
    "BackendRegistry",
    "Capabilities",
    "DbApiBackend",
    "DIALECTS",
    "MinidbBackend",
    "MINIDB_DIALECT",
    "REGISTRY",
    "SqlDialect",
    "Sqlite3Backend",
    "SQLITE_DIALECT",
    "convert_placeholders",
    "create_backend",
    "default_backend_name",
    "get_dialect",
    "register_dialect",
]
