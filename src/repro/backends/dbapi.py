"""Generic DB-API 2.0 driver plus the concrete stdlib sqlite3 backend.

:class:`DbApiBackend` adapts any PEP 249 connection: it converts the
compiler's ``qmark`` placeholders to the driver's declared paramstyle
(string-literal aware), binds parameters through the dialect
(``date`` → ISO text, ``bool`` → int for untyped engines), and mirrors
the minidb catalog into the target engine with a **version-keyed
snapshot load**: each table's ``(identity, data_version)`` fingerprint
is remembered, so :meth:`sync` recreates only tables whose rows (or
schema) actually changed since the last call — repeated workflow runs
with no intervening DML copy nothing.

:class:`Sqlite3Backend` is the proof that the registry accepts a real
conventional DBMS: an in-memory (or on-disk) sqlite3 connection with
scalar UDFs registered via ``create_function`` and a fallback Python
``SQRT`` for sqlite builds without the math functions.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.backends.base import Backend, BackendResult
from repro.backends.dialects import SQLITE_DIALECT, SqlDialect
from repro.errors import BackendCapabilityError, BackendError

__all__ = ["DbApiBackend", "Sqlite3Backend", "convert_placeholders"]


def convert_placeholders(sql: str, paramstyle: str) -> str:
    """Rewrite ``?`` placeholders for the driver's declared paramstyle.

    Placeholders inside single-quoted string literals (with ``''``
    escapes) are left untouched.  Supports ``qmark`` (identity),
    ``format`` (``%s``), and ``numeric`` (``:1``, ``:2``, ...).
    """
    if paramstyle == "qmark":
        return sql
    if paramstyle not in ("format", "numeric"):
        raise BackendCapabilityError(
            f"unsupported DB-API paramstyle {paramstyle!r} "
            "(supported: qmark, format, numeric)"
        )
    out: List[str] = []
    index = 0
    position = 0
    length = len(sql)
    while position < length:
        char = sql[position]
        if char == "'":
            # Copy the string literal wholesale, honoring '' escapes.
            end = position + 1
            while end < length:
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        end += 2
                        continue
                    end += 1
                    break
                end += 1
            out.append(sql[position:end])
            position = end
            continue
        if char == "?":
            index += 1
            out.append("%s" if paramstyle == "format" else f":{index}")
        else:
            out.append(char)
        position += 1
    return "".join(out)


class DbApiBackend(Backend):
    """Execute compiled workflows on any DB-API 2.0 connection."""

    name = "dbapi"

    def __init__(
        self,
        connection: Any,
        dialect: SqlDialect = SQLITE_DIALECT,
        catalog: Optional[Any] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(dialect, catalog)
        if name is not None:
            self.name = name
        self.connection = connection
        # table name -> (Table identity, data_version) at last sync
        self._synced: Dict[str, Tuple[int, int]] = {}
        # One statement at a time per connection: DB-API drivers are not
        # uniformly thread-safe (sqlite3 is threadsafety=1), and the
        # sharded service layer runs recommends from worker threads.
        # Reentrant because sync() issues statements through execute().
        self._lock = threading.RLock()

    # -- driver protocol -----------------------------------------------------

    def _prepare(
        self, sql: str, params: Sequence[Any]
    ) -> Tuple[str, List[Any]]:
        paramstyle = self.dialect.capabilities.paramstyle
        return (
            convert_placeholders(sql, paramstyle),
            [self.dialect.bind(value) for value in params],
        )

    def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> BackendResult:
        text, bound = self._prepare(sql, params)
        with self._lock:
            cursor = self.connection.cursor()
            try:
                cursor.execute(text, bound)
                if cursor.description is not None:
                    columns = [entry[0] for entry in cursor.description]
                    rows = [tuple(row) for row in cursor.fetchall()]
                    return BackendResult(columns=columns, rows=rows)
                return BackendResult(rowcount=cursor.rowcount)
            finally:
                cursor.close()

    def executemany(
        self, sql: str, rows: Sequence[Sequence[Any]]
    ) -> None:
        paramstyle = self.dialect.capabilities.paramstyle
        text = convert_placeholders(sql, paramstyle)
        bound = [
            [self.dialect.bind(value) for value in row] for row in rows
        ]
        with self._lock:
            cursor = self.connection.cursor()
            try:
                cursor.executemany(text, bound)
            finally:
                cursor.close()

    def register_udf(
        self, name: str, function: Callable[..., Any], arity: int = 2
    ) -> None:
        raise BackendCapabilityError(
            f"backend {self.name!r} cannot register Python UDFs; "
            "subclass DbApiBackend and implement register_udf for "
            "drivers that support it (see Sqlite3Backend)"
        )

    def table_names(self) -> List[str]:
        # Introspection is driver-specific; the generic adapter reports
        # what it has mirrored (complete for catalog-backed execution).
        return sorted(self._synced)

    def close(self) -> None:
        try:
            self.connection.close()
        except Exception:  # pragma: no cover - driver-dependent teardown
            pass

    # -- snapshot load -------------------------------------------------------

    def _create_table_sql(self, schema: Any) -> str:
        parts = []
        for column in schema.columns:
            spec = f"{column.name} {self.dialect.type_name(column.dtype)}"
            if not column.nullable:
                spec += " NOT NULL"
            parts.append(spec)
        if schema.primary_key:
            parts.append(f"PRIMARY KEY ({', '.join(schema.primary_key)})")
        for unique in schema.unique_keys:
            parts.append(f"UNIQUE ({', '.join(unique)})")
        return f"CREATE TABLE {schema.name} ({', '.join(parts)})"

    def _load_table(self, table: Any) -> None:
        schema = table.schema
        self.execute(f"DROP TABLE IF EXISTS {schema.name}")
        self.execute(self._create_table_sql(schema))
        placeholders = ", ".join("?" for _ in schema.columns)
        names = ", ".join(schema.column_names)
        insert = f"INSERT INTO {schema.name} ({names}) VALUES ({placeholders})"
        rows = list(table.rows())
        if rows:
            self.executemany(insert, rows)

    def sync(self) -> None:
        """Mirror the catalog, recreating only stale tables."""
        if self.catalog is None:
            raise BackendError(
                f"backend {self.name!r} has no catalog to sync from"
            )
        with self._lock:
            live: Dict[str, Tuple[int, int]] = {}
            for table_name in self.catalog.table_names():
                table = self.catalog.table(table_name)
                key = table.name.lower()
                live[key] = (id(table), table.data_version)
                if self._synced.get(key) != live[key]:
                    self._load_table(table)
            for key in list(self._synced):
                if key not in live:
                    self.execute(f"DROP TABLE IF EXISTS {key}")
            self._synced = live
            commit = getattr(self.connection, "commit", None)
            if commit is not None:
                commit()


class Sqlite3Backend(DbApiBackend):
    """The stdlib ``sqlite3`` driver: a real conventional DBMS."""

    name = "sqlite3"

    def __init__(
        self,
        catalog: Optional[Any] = None,
        path: str = ":memory:",
        dialect: SqlDialect = SQLITE_DIALECT,
    ) -> None:
        import sqlite3

        # check_same_thread=False: the service layer executes recommends
        # from worker threads; DbApiBackend's lock serializes access.
        connection = sqlite3.connect(path, check_same_thread=False)
        super().__init__(connection, dialect, catalog, name=self.name)
        self._udfs: Dict[str, Callable[..., Any]] = {}
        self._ensure_sqrt()

    def _ensure_sqrt(self) -> None:
        # sqlite builds without SQLITE_ENABLE_MATH_FUNCTIONS lack sqrt;
        # compiled vector measures need it, so fall back to Python.
        cursor = self.connection.cursor()
        try:
            cursor.execute("SELECT sqrt(4.0)")
            have_builtin = cursor.fetchone()[0] == 2.0
        except Exception:
            have_builtin = False
        finally:
            cursor.close()
        if not have_builtin:
            self._create_function(
                "sqrt",
                1,
                lambda value: None if value is None else math.sqrt(value),
            )

    def _create_function(
        self, name: str, arity: int, function: Callable[..., Any]
    ) -> None:
        try:
            self.connection.create_function(
                name, arity, function, deterministic=True
            )
        except TypeError:  # pragma: no cover - very old sqlite3 modules
            self.connection.create_function(name, arity, function)

    def register_udf(
        self, name: str, function: Callable[..., Any], arity: int = 2
    ) -> None:
        with self._lock:
            key = name.lower()
            if self._udfs.get(key) is function:
                return
            self._create_function(name, arity, function)
            self._udfs[key] = function

    def table_names(self) -> List[str]:
        cursor = self.connection.cursor()
        try:
            cursor.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
            return sorted(row[0] for row in cursor.fetchall())
        finally:
            cursor.close()
