"""The backend registry: name -> driver factory, open to any DB-API.

Mirrors the dialect-registry pattern: drivers self-describe by name,
``create_backend`` instantiates one bound to a catalog database, and
applications (or the ``REPRO_BACKEND`` environment toggle) select by
name without importing driver modules.  Third-party DB-API drivers
register with :meth:`BackendRegistry.register_dbapi` — a connection
factory plus a dialect is all a new engine needs.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from repro.backends.base import Backend
from repro.backends.dbapi import DbApiBackend, Sqlite3Backend
from repro.backends.dialects import SqlDialect, get_dialect
from repro.backends.native import MinidbBackend
from repro.errors import BackendError

__all__ = [
    "BackendRegistry",
    "REGISTRY",
    "create_backend",
    "default_backend_name",
]

#: factory signature: (catalog) -> Backend
BackendFactory = Callable[[Optional[Any]], Backend]


class BackendRegistry:
    """Named factories for execution backends."""

    def __init__(self) -> None:
        self._factories: Dict[str, BackendFactory] = {}

    def register(
        self, name: str, factory: BackendFactory
    ) -> BackendFactory:
        """Register (or replace) a backend factory under ``name``."""
        self._factories[name.lower()] = factory
        return factory

    def register_dbapi(
        self,
        name: str,
        connect: Callable[[], Any],
        dialect: Any,
    ) -> None:
        """Register any DB-API 2.0 driver by connection factory.

        ``dialect`` is a :class:`SqlDialect` instance or registered
        dialect name; the factory wraps each fresh connection in a
        :class:`DbApiBackend` carrying that dialect's capability mask.
        """
        resolved: SqlDialect = get_dialect(dialect)

        def factory(catalog: Optional[Any]) -> Backend:
            return DbApiBackend(
                connect(), resolved, catalog=catalog, name=name.lower()
            )

        self.register(name, factory)

    def create(self, name: str, catalog: Optional[Any] = None) -> Backend:
        try:
            factory = self._factories[name.lower()]
        except KeyError:
            raise BackendError(
                f"unknown backend {name!r}; registered: {self.names()}"
            ) from None
        return factory(catalog)

    def names(self) -> List[str]:
        return sorted(self._factories)

    def is_registered(self, name: str) -> bool:
        return name.lower() in self._factories


#: process-wide default registry with the two built-in drivers
REGISTRY = BackendRegistry()
REGISTRY.register("minidb", lambda catalog: MinidbBackend(catalog))
REGISTRY.register("sqlite3", lambda catalog: Sqlite3Backend(catalog))


def create_backend(name: str, catalog: Optional[Any] = None) -> Backend:
    """Instantiate a registered backend bound to ``catalog``."""
    return REGISTRY.create(name, catalog)


def default_backend_name() -> str:
    """The backend the service facade routes through by default.

    ``REPRO_BACKEND`` selects it (the CI matrix sets ``sqlite3`` on one
    leg); unset or empty means the in-process minidb engine.
    """
    return os.environ.get("REPRO_BACKEND", "").strip().lower() or "minidb"
