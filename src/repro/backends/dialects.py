"""SQL dialects and the per-backend capability mask.

A :class:`SqlDialect` is the *rendering* half of a backend: it knows how
to spell literals, casts, and function names for one SQL engine, and it
carries a :class:`Capabilities` mask describing what the engine can and
cannot do.  The FlexRecs compiler (:mod:`repro.core.compiler`) is
parameterized by a dialect, so the same workflow tree lowers to
engine-appropriate SQL text for minidb, sqlite3, or any registered
DB-API backend — the paper's "executed by a conventional DBMS" made
literal.

This generalizes :mod:`repro.testkit.dialects` (which renders the
fuzzer's query AST for the minidb-vs-sqlite oracle) into a reusable
layer: the handful of genuine engine differences live in one declarative
mask instead of being re-derived per renderer.

Known dialect differences captured here:

==============================  =======================  ====================
construct                       minidb                   sqlite
==============================  =======================  ====================
float cast                      ``CAST_FLOAT(x)``        ``CAST(x AS REAL)``
LEAST / GREATEST                ``LEAST`` / ``GREATEST`` ``MIN`` / ``MAX``
integer division                true division            truncates (needs
                                                         ``* 1.0`` promotion)
date literal                    ``DATE '2008-01-05'``    ``'2008-01-05'``
boolean literal                 ``TRUE`` / ``FALSE``     ``TRUE`` / ``FALSE``
                                (typed)                  (stored as 1 / 0)
bound date parameter            ``datetime.date``        ISO string
bound bool parameter            ``bool``                 ``int``
CREATE INDEX                    ``... USING <kind>``     no ``USING`` clause
==============================  =======================  ====================

Adding a dialect for a new DB-API driver is declarative: construct a
``SqlDialect`` with the right mask and :func:`register_dialect` it (see
DESIGN.md §15 for the walk-through).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.errors import BackendCapabilityError
from repro.minidb.types import DataType

__all__ = [
    "Capabilities",
    "SqlDialect",
    "MINIDB_DIALECT",
    "SQLITE_DIALECT",
    "DIALECTS",
    "register_dialect",
    "get_dialect",
]


@dataclass(frozen=True)
class Capabilities:
    """What one SQL engine supports, as consumed by the renderers.

    The mask is deliberately coarse: each flag answers one question a
    renderer (or the testkit's cross-backend checker) actually asks.
    """

    #: DB-API paramstyle the driver's binding layer expects; rendered SQL
    #: always uses ``?`` and is converted at execute time.
    paramstyle: str = "qmark"
    #: identifier quote character (identifiers in this repo are plain
    #: ``[A-Za-z_][A-Za-z0-9_]*`` and never need quoting; the mask keeps
    #: the character so a driver for a reserved-word-happy engine can)
    quote_char: str = '"'
    #: query results carry real ``datetime.date`` / ``bool`` values
    #: (False: dates come back as ISO strings, booleans as 0/1 ints)
    typed_dates: bool = True
    typed_booleans: bool = True
    #: ``/`` over two INTEGER operands performs true (float) division
    #: (False: the renderer must promote with ``* 1.0``)
    float_division: bool = True
    #: columns functionally dependent on the GROUP BY key may appear
    #: bare in the select list (minidb and sqlite allow it; a strict
    #: engine would need the renderer to wrap them in MIN())
    bare_group_by_columns: bool = True
    #: NULLs sort lowest — first under ASC, last under DESC (both our
    #: engines agree; a NULLS-LAST engine would need an emulation CASE)
    nulls_low: bool = True
    #: Python scalar UDFs can be registered and called from SQL
    supports_udfs: bool = True
    #: raw SQL strings (SqlSource bodies, Select predicates) may be
    #: embedded verbatim — they are the workflow author's responsibility
    #: to keep portable, so a dialect can refuse them outright
    sql_passthrough: bool = True
    #: CREATE INDEX accepts a trailing ``USING <kind>`` clause
    index_using_clause: bool = False
    #: canonical function name -> this engine's spelling; names absent
    #: from the map render as their uppercase canonical spelling
    function_names: Mapping[str, str] = field(default_factory=dict)
    #: canonical scalar functions known *not* to exist on this engine
    #: (requesting one raises BackendCapabilityError at render time)
    missing_functions: FrozenSet[str] = frozenset()


#: minidb column type -> SQL type name, per dialect name.  sqlite's
#: affinity rules make these storage-faithful: REAL keeps our floats,
#: TEXT keeps ISO date strings, INTEGER keeps 0/1 booleans.
_TYPE_NAMES: Dict[str, Dict[DataType, str]] = {
    "minidb": {
        DataType.INTEGER: "INTEGER",
        DataType.FLOAT: "FLOAT",
        DataType.TEXT: "TEXT",
        DataType.BOOLEAN: "BOOLEAN",
        DataType.DATE: "DATE",
    },
    "generic": {
        DataType.INTEGER: "INTEGER",
        DataType.FLOAT: "REAL",
        DataType.TEXT: "TEXT",
        DataType.BOOLEAN: "INTEGER",
        DataType.DATE: "TEXT",
    },
}


class SqlDialect:
    """Rendering helpers for one engine, driven by its capability mask."""

    def __init__(
        self,
        name: str,
        capabilities: Capabilities,
        cast_float_template: str = "CAST({expr} AS REAL)",
        type_names: Optional[Mapping[DataType, str]] = None,
    ) -> None:
        self.name = name
        self.capabilities = capabilities
        self._cast_float_template = cast_float_template
        self._type_names = dict(
            type_names if type_names is not None else _TYPE_NAMES["generic"]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SqlDialect {self.name!r}>"

    # -- identifiers and types ---------------------------------------------

    def quote(self, identifier: str) -> str:
        quote = self.capabilities.quote_char
        return f"{quote}{identifier}{quote}"

    def type_name(self, dtype: DataType) -> str:
        return self._type_names[dtype]

    # -- literals and parameters -------------------------------------------

    def literal(self, value: Any) -> str:
        """Render a Python value as a SQL literal for this engine."""
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            if self.capabilities.typed_booleans:
                return "TRUE" if value else "FALSE"
            return "1" if value else "0"
        if isinstance(value, datetime.date):
            if self.capabilities.typed_dates:
                return f"DATE '{value.isoformat()}'"
            return f"'{value.isoformat()}'"
        if isinstance(value, float):
            return repr(value)
        if isinstance(value, int):
            return str(value)
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        raise BackendCapabilityError(
            f"dialect {self.name!r} cannot render literal {value!r}"
        )

    def bind(self, value: Any) -> Any:
        """Convert a parameter for this engine's driver binding layer."""
        if isinstance(value, bool) and not self.capabilities.typed_booleans:
            return int(value)
        if (
            isinstance(value, datetime.date)
            and not isinstance(value, datetime.datetime)
            and not self.capabilities.typed_dates
        ):
            return value.isoformat()
        return value

    # -- expressions ---------------------------------------------------------

    def cast_float(self, expr: str) -> str:
        return self._cast_float_template.format(expr=expr)

    def func(self, canonical: str, *args: str) -> str:
        """Render a scalar function call by its canonical name."""
        key = canonical.lower()
        if key in self.capabilities.missing_functions:
            raise BackendCapabilityError(
                f"dialect {self.name!r} has no {canonical.upper()} function"
            )
        name = self.capabilities.function_names.get(key, canonical.upper())
        return f"{name}({', '.join(args)})"

    def true_div(self, numerator: str, denominator: str) -> str:
        """A division that is true (float) division even over integers."""
        if self.capabilities.float_division:
            return f"({numerator} / {denominator})"
        return f"({numerator} * 1.0 / {denominator})"

    def require_passthrough(self, what: str) -> None:
        """Raise unless raw SQL fragments may be embedded verbatim."""
        if not self.capabilities.sql_passthrough:
            raise BackendCapabilityError(
                f"dialect {self.name!r} does not accept raw SQL "
                f"passthrough ({what})"
            )


MINIDB_DIALECT = SqlDialect(
    "minidb",
    Capabilities(
        typed_dates=True,
        typed_booleans=True,
        float_division=True,
        index_using_clause=True,
    ),
    cast_float_template="CAST_FLOAT({expr})",
    type_names=_TYPE_NAMES["minidb"],
)

SQLITE_DIALECT = SqlDialect(
    "sqlite",
    Capabilities(
        typed_dates=False,
        typed_booleans=False,
        float_division=False,
        function_names={"least": "MIN", "greatest": "MAX"},
    ),
    cast_float_template="CAST({expr} AS REAL)",
    type_names=_TYPE_NAMES["generic"],
)


DIALECTS: Dict[str, SqlDialect] = {}


def register_dialect(dialect: SqlDialect) -> SqlDialect:
    """Make a dialect resolvable by name (last registration wins)."""
    DIALECTS[dialect.name] = dialect
    return dialect


def get_dialect(name_or_dialect: Any) -> SqlDialect:
    """Resolve a dialect instance or registered name to an instance."""
    if isinstance(name_or_dialect, SqlDialect):
        return name_or_dialect
    try:
        return DIALECTS[name_or_dialect]
    except KeyError:
        raise BackendCapabilityError(
            f"unknown SQL dialect {name_or_dialect!r}; "
            f"registered: {sorted(DIALECTS)}"
        ) from None


register_dialect(MINIDB_DIALECT)
register_dialect(SQLITE_DIALECT)
