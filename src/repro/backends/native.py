"""The in-process minidb backend — executes directly on the catalog.

This is the identity driver: the catalog *is* the engine, so ``sync``
is a no-op and UDF registration goes straight to the catalog's
:class:`~repro.minidb.functions.FunctionRegistry` (which is itself a
same-object-idempotent registry, so repeated workflow runs do not churn
its version counter).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.backends.base import Backend, BackendResult
from repro.backends.dialects import MINIDB_DIALECT
from repro.errors import BackendError

__all__ = ["MinidbBackend"]


class MinidbBackend(Backend):
    """Execute compiled workflows on the minidb engine itself."""

    name = "minidb"

    def __init__(self, catalog: Optional[Any] = None) -> None:
        if catalog is None:
            from repro.minidb.catalog import Database

            catalog = Database()
        super().__init__(MINIDB_DIALECT, catalog)

    def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> BackendResult:
        result = self.catalog.execute(sql, params=list(params) or None)
        from repro.minidb.executor import ResultSet

        if isinstance(result, ResultSet):
            return BackendResult(
                columns=list(result.columns),
                rows=[tuple(row) for row in result.rows],
            )
        if isinstance(result, int):
            return BackendResult(rowcount=result)
        return BackendResult()

    def register_udf(
        self, name: str, function: Callable[..., Any], arity: int = 2
    ) -> None:
        self.catalog.functions.register_scalar(name, function, arity=arity)

    def table_names(self) -> List[str]:
        if self.catalog is None:
            raise BackendError("minidb backend has no catalog")
        return list(self.catalog.table_names())
