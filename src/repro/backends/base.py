"""The backend protocol: connect, execute, introspect, load snapshots.

A :class:`Backend` is one place a compiled FlexRecs workflow can run.
Every backend pairs a *driver* (something that executes SQL text) with a
:class:`~repro.backends.dialects.SqlDialect` (how to render that text),
and optionally tracks a minidb :class:`~repro.minidb.catalog.Database`
as its **catalog** — the semantic source of truth that workflows are
validated against and whose data the backend mirrors.

``execute_workflow`` is the shared orchestration: render the workflow
for this backend's dialect (memoized per dialect on the workflow),
register any comparator UDFs the compilation needs, bring the mirror up
to date (:meth:`sync`, version-keyed so unchanged tables are never
recopied), execute, and wrap the rows as a
:class:`~repro.core.workflow.Recommendation`.  The whole pipeline is
observable through ``repro.obs``: a ``backend.run`` span plus
``backend.render_ms`` / ``backend.sync_ms`` / ``backend.execute_ms``
histograms, a ``backend.rows`` histogram, and per-backend query
counters (``backend.<name>.queries``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import BackendError
from repro.backends.dialects import SqlDialect
from repro.obs import COUNT_EDGES, OBS

__all__ = ["BackendResult", "Backend"]


@dataclass
class BackendResult:
    """Uniform result shape across drivers.

    ``columns``/``rows`` are set for row-returning statements; DML
    reports ``rowcount`` (βˆ’1 when the driver cannot tell).
    """

    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    rowcount: int = -1

    @property
    def is_rows(self) -> bool:
        return bool(self.columns)


class Backend:
    """Abstract execution backend bound to an optional minidb catalog."""

    #: registry key; concrete drivers override
    name: str = "abstract"

    def __init__(
        self, dialect: SqlDialect, catalog: Optional[Any] = None
    ) -> None:
        self.dialect = dialect
        #: the minidb Database whose schema/data this backend executes
        #: against (None for standalone script execution, e.g. the
        #: testkit's cross-backend checker)
        self.catalog = catalog

    # -- driver protocol -----------------------------------------------------

    def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> BackendResult:
        """Execute one statement; parameters use ``?`` placeholders."""
        raise NotImplementedError

    def executemany(
        self, sql: str, rows: Sequence[Sequence[Any]]
    ) -> None:
        for row in rows:
            self.execute(sql, row)

    def register_udf(
        self, name: str, function: Callable[..., Any], arity: int = 2
    ) -> None:
        """Register a scalar UDF callable from this backend's SQL."""
        raise NotImplementedError

    def table_names(self) -> List[str]:
        """Introspect: tables currently present on the backend."""
        raise NotImplementedError

    def sync(self) -> None:
        """Bring the backend's data mirror up to date with the catalog.

        Version-keyed: implementations must be a no-op when nothing
        changed since the last call.  Backends that execute directly
        against the catalog (minidb) keep the default no-op.
        """

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release driver resources (connections, temp storage)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- workflow execution ---------------------------------------------------

    def execute_workflow(self, workflow: Any) -> Any:
        """Render a FlexRecs workflow for this dialect and execute it."""
        from repro.core.workflow import Recommendation

        if self.catalog is None:
            raise BackendError(
                f"backend {self.name!r} has no catalog database to "
                "validate and render workflows against"
            )
        started = time.perf_counter()
        compiled = workflow.compiled_for(self.catalog, self.dialect)
        render_ms = (time.perf_counter() - started) * 1000.0
        for udf_name, function in compiled.udf_impls:
            self.register_udf(udf_name, function, arity=2)
        sync_started = time.perf_counter()
        self.sync()
        sync_ms = (time.perf_counter() - sync_started) * 1000.0
        execute_started = time.perf_counter()
        result = self.execute(compiled.sql, compiled.params)
        execute_ms = (time.perf_counter() - execute_started) * 1000.0
        rows = [dict(zip(result.columns, row)) for row in result.rows]
        if OBS.enabled:
            OBS.tracer.record(
                "backend.run",
                render_ms + sync_ms + execute_ms,
                attrs={
                    "backend": self.name,
                    "dialect": self.dialect.name,
                    "workflow": workflow.name,
                    "rows": len(rows),
                },
            )
            OBS.metrics.inc(f"backend.{self.name}.queries")
            OBS.metrics.observe("backend.render_ms", render_ms)
            OBS.metrics.observe("backend.sync_ms", sync_ms)
            OBS.metrics.observe("backend.execute_ms", execute_ms)
            OBS.metrics.observe(
                "backend.rows", len(rows), edges=COUNT_EDGES
            )
        return Recommendation(columns=list(result.columns), rows=rows)
