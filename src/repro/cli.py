"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``      — a condensed tour (search + cloud + recommendations);
* ``generate``  — build a synthetic university and save it to a directory;
* ``stats``     — site statistics with the paper's numbers alongside;
* ``search``    — keyword search with a course cloud, optional refinement;
* ``recommend`` — run a FlexRecs strategy (any execution path);
* ``sql``       — run a SQL statement against the database (with
  ``--explain`` / ``--analyze`` / ``--profile`` to see the plan).

Every command accepts either ``--load DIR`` (a database saved by
``generate``) or ``--scale``/``--seed`` to generate one on the fly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.clouds.render import render_text
from repro.courserank.app import CourseRank
from repro.datagen import SCALES, generate_university
from repro.evalkit.reports import site_scale_report
from repro.minidb.catalog import Database
from repro.minidb.executor import ResultSet
from repro.minidb.persist import load_database, save_database


def _add_db_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="generation scale when not loading (default: small)",
    )
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument(
        "--load",
        metavar="DIR",
        help="load a database saved by 'generate' instead of generating",
    )


def _open_database(args: argparse.Namespace) -> Database:
    if args.load:
        return load_database(args.load)
    print(
        f"generating scale={args.scale} seed={args.seed} ...",
        file=sys.stderr,
    )
    return generate_university(scale=args.scale, seed=args.seed)


def _print_result(result: ResultSet, max_rows: int) -> None:
    print(result.pretty(max_rows=max_rows))
    print(f"({len(result)} rows)")


def cmd_demo(args: argparse.Namespace) -> int:
    app = CourseRank(_open_database(args))
    stats = app.site_statistics()
    print(
        f"university: {stats['courses']} courses, {stats['students']} "
        f"students, {stats['comments']} comments, {stats['ratings']} ratings"
    )
    result, cloud = app.search_courses(args.query)
    print(f"\nsearch {args.query!r}: {len(result)} courses")
    print(render_text(cloud, columns=4))
    for row in app.cloudsearch.resolve_courses(result, limit=5):
        print(f"  [{row['score']:.2f}] {row['Title']} ({row['Department']})")
    suid = app.db.query(
        "SELECT SuID FROM Comments WHERE Rating IS NOT NULL "
        "GROUP BY SuID HAVING COUNT(*) >= 3 ORDER BY SuID LIMIT 1"
    ).scalar()
    print(f"\ncollaborative filtering for student {suid}:")
    for row in app.recommendations.courses_for_student(suid, top_k=5).rows:
        print(f"  [{row['score']:.2f}] {row['Title']}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    database = generate_university(scale=args.scale, seed=args.seed)
    save_database(database, args.out)
    print(f"saved {args.scale} university (seed {args.seed}) to {args.out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    app = CourseRank(_open_database(args))
    print(f"{'statistic':>14} | {'paper':>8} | {'measured':>8}")
    for row in site_scale_report(app):
        print(
            f"{row['statistic']:>14} | {row['paper']:>8} | {row['measured']:>8}"
        )
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    app = CourseRank(_open_database(args))
    session = app.search_session(args.query)
    print(f"{args.query!r}: {len(session.result)} matching courses")
    print(render_text(session.cloud, columns=4))
    for term in args.refine or []:
        step = session.refine(term)
        print(f"\nrefined with {term!r}: {len(step.result)} courses")
        print(render_text(step.cloud, columns=4))
    for row in app.cloudsearch.resolve_courses(
        session.result, limit=args.top, with_snippets=True
    ):
        print(f"  [{row['score']:.2f}] {row['Title']} ({row['Department']})")
        if row.get("snippet"):
            print(f"      {row['snippet']}")
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    app = CourseRank(_open_database(args))
    params = {}
    if args.student is not None:
        params["student_id"] = args.student
    if args.course is not None:
        params["course_id"] = args.course
    params["top_k"] = args.top
    recommendation = app.recommendations.run(
        args.strategy, path=args.path, **params
    )
    for row in recommendation.rows:
        label = row.get("Title") or row.get("Name") or row.get("Term")
        score = row.get("score")
        print(f"  [{score:.3f}] {label}")
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    database = _open_database(args)
    if args.explain:
        print(database.explain(args.statement))
        return 0
    if args.analyze:
        report = database.analyze(args.statement)
        print(report.text)
        print()
        _print_result(report.result, args.max_rows)
        return 0
    if args.profile:
        result, report = database.profile(args.statement)
        print(report)
        print()
        _print_result(result, args.max_rows)
        return 0
    outcome = database.execute(args.statement)
    if isinstance(outcome, ResultSet):
        _print_result(outcome, args.max_rows)
    elif outcome is not None:
        print(f"{outcome} rows affected")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CourseRank reproduction (CIDR 2009) command line",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="condensed feature tour")
    _add_db_options(demo)
    demo.add_argument("--query", default="american")
    demo.set_defaults(handler=cmd_demo)

    generate = commands.add_parser(
        "generate", help="generate a university and save it"
    )
    generate.add_argument("--scale", default="small", choices=sorted(SCALES))
    generate.add_argument("--seed", type=int, default=2008)
    generate.add_argument("--out", required=True, metavar="DIR")
    generate.set_defaults(handler=cmd_generate)

    stats = commands.add_parser("stats", help="site statistics vs the paper")
    _add_db_options(stats)
    stats.set_defaults(handler=cmd_stats)

    search = commands.add_parser("search", help="search with a course cloud")
    _add_db_options(search)
    search.add_argument("query")
    search.add_argument(
        "--refine", action="append", metavar="TERM",
        help="click a cloud term (repeatable)",
    )
    search.add_argument("--top", type=int, default=10)
    search.set_defaults(handler=cmd_search)

    recommend = commands.add_parser("recommend", help="run a FlexRecs strategy")
    _add_db_options(recommend)
    recommend.add_argument("--strategy", default="collaborative_filtering")
    recommend.add_argument("--student", type=int)
    recommend.add_argument("--course", type=int)
    recommend.add_argument("--top", type=int, default=10)
    recommend.add_argument(
        "--path", choices=("direct", "sql", "staged"), default=None
    )
    recommend.set_defaults(handler=cmd_recommend)

    sql = commands.add_parser("sql", help="run a SQL statement")
    _add_db_options(sql)
    sql.add_argument("statement")
    sql.add_argument("--explain", action="store_true")
    sql.add_argument("--analyze", action="store_true")
    sql.add_argument("--profile", action="store_true")
    sql.add_argument("--max-rows", type=int, default=20)
    sql.set_defaults(handler=cmd_sql)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
