"""Workflow objects: validation and the two execution paths.

A :class:`Workflow` wraps an operator tree.  ``validate()`` type-checks
the tree against a database's catalog (column existence, comparator
attribute availability, aggregate names).  ``run(db)`` executes directly;
``run_sql(db)`` compiles to SQL and executes that through the minidb SQL
front end — the paper's deployment model.  Both return a
:class:`Recommendation` holding dict-rows.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CompilationError, WorkflowValidationError
from repro.core.library import Comparator
from repro.core.operators import (
    Extend,
    Join,
    Operator,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
)
from repro.minidb.catalog import Database


@dataclass
class RecommendStats:
    """Observability record for one recommend-operator execution.

    Counts describe the *pair* space: ``candidates`` is how many
    (target, reference) pairs survived pruning and were considered,
    ``pruned`` how many the key-overlap postings map skipped outright,
    and ``scored`` how many produced a non-NULL pair score.
    ``cache_hits``/``cache_misses`` count extend-vector cache lookups
    made while materializing this operator's inputs.
    """

    comparator: str
    aggregate: str
    targets: int = 0
    references: int = 0
    candidates: int = 0
    pruned: int = 0
    scored: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_ms: float = 0.0


@dataclass
class Recommendation:
    """Materialized workflow output."""

    columns: List[str]
    rows: List[Dict[str, Any]]
    #: per-recommend-operator execution stats (direct path only; the
    #: compiled-SQL path leaves this empty)
    stats: List[RecommendStats] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.rows)

    def column(self, name: str) -> List[Any]:
        lowered = name.lower()
        key = next(
            (column for column in self.columns if column.lower() == lowered), None
        )
        if key is None:
            raise WorkflowValidationError(f"no column {name!r} in recommendation")
        return [row[key] for row in self.rows]

    def top(self, k: int) -> List[Dict[str, Any]]:
        return self.rows[:k]

    def as_tuples(self, *names: str) -> List[tuple]:
        return [tuple(row[name] for name in names) for row in self.rows]


class Workflow:
    """A named, validated recommendation strategy."""

    def __init__(
        self,
        root: Operator,
        name: str = "workflow",
        direct_only: bool = False,
    ) -> None:
        self.root = root
        self.name = name
        #: workflows whose operators read non-relational state (e.g. the
        #: graph ranker) cannot compile to SQL; the service layer routes
        #: them to the direct executor regardless of the configured path.
        self.direct_only = direct_only
        # Memoized (validate + compile) artifacts keyed by dialect name;
        # see compiled_for.  Entries hold a weakref so caching never pins
        # a Database.
        self._compiled: Dict[str, Tuple[Any, int, int, Any]] = {}

    # -- validation --------------------------------------------------------

    def validate(self, database: Database) -> List[str]:
        """Validate the tree; returns the output columns.

        Raises :class:`WorkflowValidationError` on structural problems:
        unknown columns, comparator attributes that neither the columns
        nor the extend metadata provide, bad aggregates, cycles cannot
        occur (operators are immutable trees).
        """
        columns = self.root.output_columns(database)
        self._validate_node(self.root, database)
        return columns

    def _validate_node(self, node: Operator, database: Database) -> None:
        for child in node.children():
            self._validate_node(child, database)
        node.output_columns(database)  # raises on unknown columns
        if isinstance(node, Recommend):
            self._validate_recommend(node, database)

    def _validate_recommend(self, node: Recommend, database: Database) -> None:
        comparator = node.comparator
        target_columns = {
            c.lower() for c in node.target.output_columns(database)
        }
        reference_columns = {
            c.lower() for c in node.reference.output_columns(database)
        }
        target_attrs = target_columns | {
            info.attribute.lower()
            for info in node.target.extend_infos(database)
        }
        reference_attrs = reference_columns | {
            info.attribute.lower()
            for info in node.reference.extend_infos(database)
        }
        if comparator.kind in ("scalar", "udf"):
            needed_target = comparator.target_attribute.lower()
            needed_reference = comparator.reference_attribute.lower()
            if needed_target not in target_columns:
                raise WorkflowValidationError(
                    f"comparator needs target column "
                    f"{comparator.target_attribute!r}"
                )
            if needed_reference not in reference_columns:
                raise WorkflowValidationError(
                    f"comparator needs reference column "
                    f"{comparator.reference_attribute!r}"
                )
        elif comparator.kind in ("vector", "set"):
            if comparator.target_attribute.lower() not in target_attrs:
                raise WorkflowValidationError(
                    f"comparator needs target attribute "
                    f"{comparator.target_attribute!r} (add an Extend)"
                )
            if comparator.reference_attribute.lower() not in reference_attrs:
                raise WorkflowValidationError(
                    f"comparator needs reference attribute "
                    f"{comparator.reference_attribute!r} (add an Extend)"
                )
        elif comparator.kind == "lookup":
            if comparator.target_attribute.lower() not in target_columns:
                raise WorkflowValidationError(
                    f"lookup comparator needs target column "
                    f"{comparator.target_attribute!r}"
                )
            if comparator.reference_attribute.lower() not in reference_attrs:
                raise WorkflowValidationError(
                    f"lookup comparator needs reference vector attribute "
                    f"{comparator.reference_attribute!r} (add an Extend)"
                )
        else:
            raise WorkflowValidationError(
                f"unknown comparator kind {comparator.kind!r}"
            )
        if node.exclude_self is not None:
            target_column, reference_column = node.exclude_self
            if target_column.lower() not in target_columns:
                raise WorkflowValidationError(
                    f"exclude_self target column {target_column!r} unknown"
                )
            if reference_column.lower() not in reference_columns:
                raise WorkflowValidationError(
                    f"exclude_self reference column {reference_column!r} unknown"
                )

    # -- execution -----------------------------------------------------------

    def run(self, database: Database) -> Recommendation:
        """Direct in-memory evaluation (the reference semantics)."""
        from repro.core.executor import execute_workflow

        self.validate(database)
        return execute_workflow(self, database)

    def compiled_for(
        self, database: Database, dialect: Optional[Any] = None
    ) -> Any:
        """Validate + compile once per (database, schema, functions,
        dialect) state.

        The compiler emits deterministic SQL (its alias counter restarts
        per compilation), so the memoized text also keys straight into the
        database's statement and plan caches: a repeated ``run_sql`` skips
        validation, compilation, parsing, and planning entirely.  The
        version vector is captured *after* compiling because a first
        compile may register comparator UDFs and bump the function
        registry's version.  Each SQL dialect gets its own memo slot, so
        a workflow alternating between backends stays warm on both.
        """
        from repro.backends.dialects import MINIDB_DIALECT, get_dialect
        from repro.core.compiler import compile_workflow

        if self.direct_only:
            raise CompilationError(
                f"workflow {self.name!r} is direct-only and has no SQL form"
            )
        resolved = MINIDB_DIALECT if dialect is None else get_dialect(dialect)
        cached = self._compiled.get(resolved.name)
        if cached is not None:
            db_ref, epoch, functions_version, compiled = cached
            if (
                db_ref() is database
                and epoch == database.schema_epoch
                and functions_version == database.functions.version
            ):
                return compiled
        self.validate(database)
        compiled = compile_workflow(self, database, dialect=resolved)
        self._compiled[resolved.name] = (
            weakref.ref(database),
            database.schema_epoch,
            database.functions.version,
            compiled,
        )
        return compiled

    # Backwards-compatible private spelling used by older call sites.
    _compiled_for = compiled_for

    def run_sql(self, database: Database) -> Recommendation:
        """Compile to SQL and execute through the minidb SQL engine."""
        compiled = self.compiled_for(database)
        result = database.query(compiled.sql)
        rows = [dict(zip(result.columns, row)) for row in result.rows]
        return Recommendation(columns=list(result.columns), rows=rows)

    def run_backend(self, backend: Any) -> Recommendation:
        """Render for ``backend``'s dialect and execute on its engine.

        The backend's catalog database is the semantic authority; for
        external engines (sqlite3, any registered DB-API driver) the
        backend first syncs its data mirror, so the same workflow object
        runs unchanged on either side.
        """
        return backend.execute_workflow(self)

    def to_sql(
        self, database: Database, dialect: Optional[Any] = None
    ) -> str:
        """The SQL this workflow compiles to (for inspection/EXPLAIN)."""
        return self.compiled_for(database, dialect).sql

    def explain(self) -> str:
        """Render the operator tree."""
        return self.root.render_tree()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Workflow {self.name!r}>"
