"""A textual language for FlexRecs workflows.

The paper: "a given recommendation approach can be expressed
*declaratively* as a high-level workflow over structured data" and the
FlexRecs tool "lets the administrator quickly define recommendation
strategies".  This module gives that administrator a concrete textual
syntax, parsed into the same operator trees the Python API builds.

A workflow is a pipeline of stages separated by ``|``; predicates and raw
SQL live in ``[...]`` brackets so they stay free-form:

    source Courses
    | recommend against (
        source Students
        | extend ratings from Comments key SuID = SuID map CourseID value Rating
        | filter [SuID = 444]
      ) using vector_lookup(CourseID, ratings) key CourseID agg avg top 10

Stages:

    source <table>
    sql [ SELECT ... ]
    filter [ <predicate> ]
    project [distinct] <col>, <col>, ...
    extend <attr> from <table> key <childcol> = <sourcecol>
           [map <col>] value <col>
    topk <k> by <col> [asc]
    recommend against ( <pipeline> )
              using <comparator>(<target_attr>, <reference_attr> [, k=v ...])
              key <target_key> [agg <name>] [score <col>] [top <k>]
              [exclude <target_col> = <reference_col>]

Comparators come from the library registry (``text_jaccard``,
``inverse_euclidean``, ``pearson``, ``numeric_closeness``, ...).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FlexRecsError
from repro.core.library import make_comparator
from repro.core.operators import (
    Operator,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
    extend,
)
from repro.core.workflow import Workflow

_TOKEN = re.compile(
    r"""
    \s*(
        \[[^\]]*\]          # bracketed raw text
      | [A-Za-z_][A-Za-z0-9_]*
      | [0-9]+(\.[0-9]+)?
      | \|
      | \(
      | \)
      | ,
      | =
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "source", "sql", "filter", "project", "distinct", "extend", "from",
    "key", "map", "value", "topk", "by", "asc", "recommend", "against",
    "using", "agg", "score", "top", "exclude",
}


class _Tokens:
    def __init__(self, text: str) -> None:
        self.items: List[str] = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise FlexRecsError(
                    f"cannot tokenize workflow near {remainder[:25]!r}"
                )
            self.items.append(match.group(1))
            position = match.end()
        self.position = 0

    def peek(self) -> Optional[str]:
        if self.position < len(self.items):
            return self.items[self.position]
        return None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise FlexRecsError("unexpected end of workflow text")
        self.position += 1
        return token

    def accept(self, literal: str) -> bool:
        if self.peek() is not None and self.peek().lower() == literal:
            self.advance()
            return True
        return False

    def expect(self, literal: str) -> None:
        token = self.advance()
        if token.lower() != literal:
            raise FlexRecsError(f"expected {literal!r}, found {token!r}")

    def identifier(self, what: str = "identifier") -> str:
        token = self.advance()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            raise FlexRecsError(f"expected {what}, found {token!r}")
        return token

    def integer(self, what: str = "integer") -> int:
        token = self.advance()
        if not token.isdigit():
            raise FlexRecsError(f"expected {what}, found {token!r}")
        return int(token)

    def bracketed(self, what: str = "bracketed text") -> str:
        token = self.advance()
        if not (token.startswith("[") and token.endswith("]")):
            raise FlexRecsError(f"expected [{what}], found {token!r}")
        inner = token[1:-1].strip()
        if not inner:
            raise FlexRecsError(f"{what} must be non-empty")
        return inner


def parse_workflow(text: str, name: str = "dsl-workflow") -> Workflow:
    """Parse workflow text into a :class:`Workflow`."""
    tokens = _Tokens(text)
    root = _parse_pipeline(tokens)
    if tokens.peek() is not None:
        raise FlexRecsError(
            f"trailing workflow text near {tokens.peek()!r}"
        )
    return Workflow(root, name=name)


def _parse_pipeline(tokens: _Tokens) -> Operator:
    node = _parse_stage(tokens, upstream=None)
    while tokens.accept("|"):
        node = _parse_stage(tokens, upstream=node)
    return node


def _parse_stage(tokens: _Tokens, upstream: Optional[Operator]) -> Operator:
    token = tokens.peek()
    if token is None:
        raise FlexRecsError("empty workflow stage")
    lowered = token.lower()
    if lowered == "(" and upstream is None:
        tokens.advance()
        inner = _parse_pipeline(tokens)
        tokens.expect(")")
        return inner
    if lowered == "source":
        _require_head(upstream, "source")
        tokens.advance()
        return Source(tokens.identifier("table name"))
    if lowered == "sql":
        _require_head(upstream, "sql")
        tokens.advance()
        return SqlSource(tokens.bracketed("SQL text"))
    if lowered == "filter":
        tokens.advance()
        return Select(_require_input(upstream, "filter"), tokens.bracketed("predicate"))
    if lowered == "project":
        tokens.advance()
        distinct = tokens.accept("distinct")
        columns = [tokens.identifier("column")]
        while tokens.accept(","):
            columns.append(tokens.identifier("column"))
        return Project(
            _require_input(upstream, "project"), tuple(columns), distinct=distinct
        )
    if lowered == "extend":
        tokens.advance()
        attribute = tokens.identifier("attribute name")
        tokens.expect("from")
        source_table = tokens.identifier("source table")
        tokens.expect("key")
        key_column = tokens.identifier("child key column")
        tokens.expect("=")
        source_key = tokens.identifier("source key column")
        map_column = None
        if tokens.accept("map"):
            map_column = tokens.identifier("map column")
        tokens.expect("value")
        value_column = tokens.identifier("value column")
        return extend(
            _require_input(upstream, "extend"),
            attribute=attribute,
            source_table=source_table,
            source_key=source_key,
            key_column=key_column,
            value_column=value_column,
            map_column=map_column,
        )
    if lowered == "topk":
        tokens.advance()
        k = tokens.integer("k")
        tokens.expect("by")
        by_column = tokens.identifier("column")
        descending = not tokens.accept("asc")
        return TopK(
            _require_input(upstream, "topk"), k, by_column, descending=descending
        )
    if lowered == "recommend":
        tokens.advance()
        return _parse_recommend(tokens, _require_input(upstream, "recommend"))
    raise FlexRecsError(f"unknown workflow stage {token!r}")


def _require_head(upstream: Optional[Operator], stage: str) -> None:
    if upstream is not None:
        raise FlexRecsError(f"{stage} must start a pipeline, not continue one")


def _require_input(upstream: Optional[Operator], stage: str) -> Operator:
    if upstream is None:
        raise FlexRecsError(
            f"{stage} needs an upstream stage (start with 'source <table>')"
        )
    return upstream


def _parse_recommend(tokens: _Tokens, target: Operator) -> Recommend:
    tokens.expect("against")
    tokens.expect("(")
    reference = _parse_pipeline(tokens)
    tokens.expect(")")
    tokens.expect("using")
    comparator_name = tokens.identifier("comparator name")
    tokens.expect("(")
    target_attr = tokens.identifier("target attribute")
    tokens.expect(",")
    reference_attr = tokens.identifier("reference attribute")
    params: Dict[str, Any] = {}
    while tokens.accept(","):
        key = tokens.identifier("parameter name")
        tokens.expect("=")
        params[key] = _parse_number(tokens.advance())
    tokens.expect(")")
    tokens.expect("key")
    target_key = tokens.identifier("target key column")
    aggregate = "max"
    score_column = "score"
    top_k = None
    exclude_self: Optional[Tuple[str, str]] = None
    while True:
        if tokens.accept("agg"):
            aggregate = tokens.identifier("aggregate name").lower()
        elif tokens.accept("score"):
            score_column = tokens.identifier("score column")
        elif tokens.accept("top"):
            top_k = tokens.integer("top k")
        elif tokens.accept("exclude"):
            left = tokens.identifier("target column")
            tokens.expect("=")
            right = tokens.identifier("reference column")
            exclude_self = (left, right)
        else:
            break
    comparator = make_comparator(
        comparator_name, target_attr, reference_attr, **params
    )
    return Recommend(
        target=target,
        reference=reference,
        comparator=comparator,
        target_key=target_key,
        aggregate=aggregate,
        score_column=score_column,
        top_k=top_k,
        exclude_self=exclude_self,
    )


def _parse_number(token: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise FlexRecsError(
            f"comparator parameters must be numeric, got {token!r}"
        ) from None
