"""Prebuilt recommendation strategies over the CourseRank schema.

These are the workflows of the paper's Figure 5 plus the variants the
text motivates ("recommendations based on people with similar grades",
"recommended majors", "recommended quarters in which to take a course").
Each function returns a :class:`~repro.core.workflow.Workflow` that runs
on both execution paths.

The CourseRank schema relations referenced here (see
:mod:`repro.courserank.schema`)::

    Courses(CourseID, DepID, Title, Description, Units, Url)
    Students(SuID, Name, Class, Major, GPA)
    Comments(SuID, CourseID, Year, Term, Text, Rating, CommentDate)
    Enrollments(SuID, CourseID, Year, Term, Grade)
    Departments(DepID, Name)
    Offerings(CourseID, Year, Term)
"""

from __future__ import annotations

from typing import Optional

from repro.core.library import (
    CommonCount,
    EqualityMatch,
    InverseEuclidean,
    NumericCloseness,
    PearsonCorrelation,
    SetJaccard,
    SetOverlap,
    TextJaccard,
    VectorLookup,
)
from repro.core.operators import (
    Extend,
    Join,
    Operator,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
    extend,
)
from repro.core.workflow import Workflow


def _students_with_ratings() -> Operator:
    """Students extended with their rating vector {CourseID: Rating}.

    This is the ε (extend) operator of Figure 5(b): "view the set of
    ratings for each student as another attribute of the student".
    """
    return extend(
        Source("Students"),
        attribute="ratings",
        source_table="Comments",
        source_key="SuID",
        key_column="SuID",
        value_column="Rating",
        map_column="CourseID",
    )


def related_courses(
    course_id: int,
    top_k: int = 10,
    offered_year: Optional[int] = None,
) -> Workflow:
    """Figure 5(a): courses with titles similar to the given course.

    ``offered_year`` reproduces the figure's "courses for 2008" filter by
    restricting targets to courses offered that year.
    """
    if offered_year is not None:
        target: Operator = SqlSource(
            "SELECT DISTINCT c.CourseID, c.DepID, c.Title, c.Description, "
            "c.Units, c.Url FROM Courses c JOIN Offerings o "
            f"ON c.CourseID = o.CourseID WHERE o.Year = {offered_year}"
        )
    else:
        target = Source("Courses")
    reference = Select(Source("Courses"), f"CourseID = {course_id}")
    root = Recommend(
        target=target,
        reference=reference,
        comparator=TextJaccard("Title", "Title"),
        target_key="CourseID",
        aggregate="max",
        score_column="score",
        top_k=top_k,
        exclude_self=("CourseID", "CourseID"),
    )
    return Workflow(root, name=f"related_courses({course_id})")


def collaborative_filtering(
    student_id: int,
    similar_students: int = 20,
    top_k: int = 10,
) -> Workflow:
    """Figure 5(b): two stacked recommend operators.

    The lower triangle finds students similar to the target student by
    the inverse Euclidean distance of their rating vectors; the upper
    triangle scores each course by the average rating those similar
    students gave it.
    """
    everyone = _students_with_ratings()
    me = Select(_students_with_ratings(), f"SuID = {student_id}")
    similar = Recommend(
        target=everyone,
        reference=me,
        comparator=InverseEuclidean("ratings", "ratings"),
        target_key="SuID",
        aggregate="max",
        score_column="sim",
        top_k=similar_students,
        exclude_self=("SuID", "SuID"),
    )
    root = Recommend(
        target=Source("Courses"),
        reference=similar,
        comparator=VectorLookup("CourseID", "ratings"),
        target_key="CourseID",
        aggregate="avg",
        score_column="score",
        top_k=top_k,
    )
    return Workflow(root, name=f"collaborative_filtering({student_id})")


def collaborative_filtering_fresh(
    student_id: int,
    similar_students: int = 20,
    top_k: int = 10,
) -> Workflow:
    """Figure 5(b) restricted to courses the student has *not* taken.

    The already-taken filter runs inside the engine (a ``NOT IN``
    subquery on the target relation) instead of post-processing — "if a
    course A has as a prerequisite a course B, then A should not be
    recommended independently" is the same in-engine filtering idea.
    """
    untaken = SqlSource(
        "SELECT CourseID, DepID, Title, Description, Units, Url "
        "FROM Courses WHERE CourseID NOT IN "
        f"(SELECT CourseID FROM Enrollments WHERE SuID = {student_id})"
    )
    me = Select(_students_with_ratings(), f"SuID = {student_id}")
    similar = Recommend(
        target=_students_with_ratings(),
        reference=me,
        comparator=InverseEuclidean("ratings", "ratings"),
        target_key="SuID",
        aggregate="max",
        score_column="sim",
        top_k=similar_students,
        exclude_self=("SuID", "SuID"),
    )
    root = Recommend(
        target=untaken,
        reference=similar,
        comparator=VectorLookup("CourseID", "ratings"),
        target_key="CourseID",
        aggregate="avg",
        score_column="score",
        top_k=top_k,
    )
    return Workflow(root, name=f"collaborative_filtering_fresh({student_id})")


def similar_grade_students(
    student_id: int,
    top_k: int = 20,
    scale: float = 0.5,
) -> Workflow:
    """Students with a GPA close to the target student's.

    The paper: "a student may want to base her recommendations on people
    with similar grades, as opposed to with similar tastes."  The
    comparator compiles to pure SQL arithmetic (no UDF needed).
    """
    reference = Select(Source("Students"), f"SuID = {student_id}")
    root = Recommend(
        target=Source("Students"),
        reference=reference,
        comparator=NumericCloseness("GPA", "GPA", scale=scale),
        target_key="SuID",
        aggregate="max",
        score_column="score",
        top_k=top_k,
        exclude_self=("SuID", "SuID"),
    )
    return Workflow(root, name=f"similar_grade_students({student_id})")


def grade_based_filtering(
    student_id: int,
    similar_students: int = 20,
    top_k: int = 10,
    scale: float = 0.5,
) -> Workflow:
    """CF variant seeded by grade-similar students instead of taste."""
    me = Select(Source("Students"), f"SuID = {student_id}")
    peers = Recommend(
        target=_students_with_ratings(),
        reference=me,
        comparator=NumericCloseness("GPA", "GPA", scale=scale),
        target_key="SuID",
        aggregate="max",
        score_column="sim",
        top_k=similar_students,
        exclude_self=("SuID", "SuID"),
    )
    root = Recommend(
        target=Source("Courses"),
        reference=peers,
        comparator=VectorLookup("CourseID", "ratings"),
        target_key="CourseID",
        aggregate="avg",
        score_column="score",
        top_k=top_k,
    )
    return Workflow(root, name=f"grade_based_filtering({student_id})")


def similar_students_pearson(
    student_id: int,
    top_k: int = 20,
) -> Workflow:
    """Taste neighbours by Pearson correlation of rating vectors."""
    me = Select(_students_with_ratings(), f"SuID = {student_id}")
    root = Recommend(
        target=_students_with_ratings(),
        reference=me,
        comparator=PearsonCorrelation("ratings", "ratings"),
        target_key="SuID",
        aggregate="max",
        score_column="score",
        top_k=top_k,
        exclude_self=("SuID", "SuID"),
    )
    return Workflow(root, name=f"similar_students_pearson({student_id})")


def recommended_majors(
    student_id: int,
    top_k: int = 5,
) -> Workflow:
    """Recommend a major from the courses a student has taken.

    "Maybe a student is not looking for a course, but is looking for a
    major that suits the courses she has taken."  Departments are scored
    by the overlap coefficient between their course set and the student's
    taken-course set.
    """
    departments = extend(
        Source("Departments"),
        attribute="dep_courses",
        source_table="Courses",
        source_key="DepID",
        key_column="DepID",
        value_column="CourseID",
    )
    me = Select(
        extend(
            Source("Students"),
            attribute="taken",
            source_table="Enrollments",
            source_key="SuID",
            key_column="SuID",
            value_column="CourseID",
        ),
        f"SuID = {student_id}",
    )
    root = Recommend(
        target=departments,
        reference=me,
        comparator=SetOverlap("dep_courses", "taken"),
        target_key="DepID",
        aggregate="max",
        score_column="score",
        top_k=top_k,
    )
    return Workflow(root, name=f"recommended_majors({student_id})")


def recommended_quarters(
    course_id: int,
    top_k: int = 4,
) -> Workflow:
    """Which quarter to take a course in, by enrollment evidence.

    "Trying to figure out what is the best quarter to take a calculus
    course this year."  Terms are scored by how many students took the
    course in that term (sum of equality matches against enrollment
    records).
    """
    terms = SqlSource("SELECT DISTINCT Term FROM Offerings")
    evidence = Select(Source("Enrollments"), f"CourseID = {course_id}")
    root = Recommend(
        target=terms,
        reference=evidence,
        comparator=EqualityMatch("Term", "Term"),
        target_key="Term",
        aggregate="sum",
        score_column="score",
        top_k=top_k,
    )
    return Workflow(root, name=f"recommended_quarters({course_id})")


def courses_taken_together(
    course_id: int,
    top_k: int = 10,
) -> Workflow:
    """Courses most often co-taken with the given course.

    A classic "people who took X also took Y", expressed as a set
    comparator: courses extended with their student sets, compared by
    intersection size to the given course's student set.
    """
    courses_with_students = extend(
        Source("Courses"),
        attribute="takers",
        source_table="Enrollments",
        source_key="CourseID",
        key_column="CourseID",
        value_column="SuID",
    )
    this_course = Select(
        extend(
            Source("Courses"),
            attribute="takers",
            source_table="Enrollments",
            source_key="CourseID",
            key_column="CourseID",
            value_column="SuID",
        ),
        f"CourseID = {course_id}",
    )
    root = Recommend(
        target=courses_with_students,
        reference=this_course,
        comparator=CommonCount("takers", "takers"),
        target_key="CourseID",
        aggregate="max",
        score_column="score",
        top_k=top_k,
        exclude_self=("CourseID", "CourseID"),
    )
    return Workflow(root, name=f"courses_taken_together({course_id})")


def similar_audience_courses(
    course_id: int,
    top_k: int = 10,
) -> Workflow:
    """Courses whose student audience best matches the given course's.

    Like :func:`courses_taken_together` but normalized: Jaccard over the
    taker sets, so giant survey courses don't dominate just by size.
    """
    courses_with_students = extend(
        Source("Courses"),
        attribute="takers",
        source_table="Enrollments",
        source_key="CourseID",
        key_column="CourseID",
        value_column="SuID",
    )
    this_course = Select(
        extend(
            Source("Courses"),
            attribute="takers",
            source_table="Enrollments",
            source_key="CourseID",
            key_column="CourseID",
            value_column="SuID",
        ),
        f"CourseID = {course_id}",
    )
    root = Recommend(
        target=courses_with_students,
        reference=this_course,
        comparator=SetJaccard("takers", "takers"),
        target_key="CourseID",
        aggregate="max",
        score_column="score",
        top_k=top_k,
        exclude_self=("CourseID", "CourseID"),
    )
    return Workflow(root, name=f"similar_audience_courses({course_id})")


def graph_rank_courses(
    student_id: int,
    top_k: int = 10,
    damping: float = 0.85,
    epsilon: float = 1e-12,
    max_iters: int = 250,
    preference_weight: float = 0.3,
) -> Workflow:
    """Courses ranked by the student's FolkRank differential.

    Seeds the preference-biased walk at the student's user node and
    reads off the baseline-subtracted course ranking — recommendations
    driven by the whole tripartite graph (enrollments, comments, course
    text) rather than one pairwise comparator.  Direct-only: the graph
    lives outside the relational algebra, so there is no SQL form.
    """
    from repro.core.operators import GraphRecommend

    root = GraphRecommend(
        preference=(("user", student_id),),
        top_k=top_k,
        damping=damping,
        epsilon=epsilon,
        max_iters=max_iters,
        preference_weight=preference_weight,
    )
    return Workflow(
        root, name=f"graph_rank_courses({student_id})", direct_only=True
    )


def similar_by_folkrank(
    course_id: int,
    top_k: int = 10,
    damping: float = 0.85,
    epsilon: float = 1e-12,
    max_iters: int = 250,
    preference_weight: float = 0.3,
) -> Workflow:
    """Courses most lifted by seeding the walk at the given course.

    The differential cancels global popularity, so the answer is "what
    this course specifically pulls up" — its graph neighborhood through
    shared students, commenters, and vocabulary.  The seed course itself
    is excluded.  Direct-only, like :func:`graph_rank_courses`.
    """
    from repro.core.operators import GraphRecommend

    root = GraphRecommend(
        preference=(("course", course_id),),
        top_k=top_k,
        exclude_seed=True,
        damping=damping,
        epsilon=epsilon,
        max_iters=max_iters,
        preference_weight=preference_weight,
    )
    return Workflow(
        root, name=f"similar_by_folkrank({course_id})", direct_only=True
    )
