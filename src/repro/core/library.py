"""The FlexRecs comparator library.

A :class:`Comparator` scores a (target tuple, reference tuple) pair.  Each
comparator supports both execution paths:

* **direct** — :meth:`Comparator.score` evaluates in Python over row
  dicts (including set-valued attributes attached by the extend operator);
* **compiled** — a SQL descriptor consumed by
  :mod:`repro.core.compiler`.  ``kind`` selects the compilation scheme:

  - ``scalar`` — inlined arithmetic/CASE SQL over two scalar columns
    (the paper: "when possible, library functions are compiled into the
    SQL statements themselves");
  - ``udf``    — a registered scalar function called from the generated
    SQL ("in other cases we can rely on external functions that are
    called by the SQL statements");
  - ``vector`` — pairwise measure over extend-attached rating vectors,
    compiled to a co-rated join + GROUP BY with the measure expressed in
    SQL aggregates;
  - ``set``    — measure over extend-attached value sets, compiled to an
    intersection join plus per-key size subqueries;
  - ``lookup`` — the reference tuples' vector is probed with a target
    column (Figure 5(b)'s upper recommend: a course's score is the
    average rating given by the similar students).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.backends.dialects import MINIDB_DIALECT, SqlDialect
from repro.errors import FlexRecsError
from repro.core import similarity


def _get(row: Mapping[str, Any], attribute: str) -> Any:
    try:
        return row[attribute]
    except KeyError:
        # Case-insensitive fallback: schemas use CamelCase (CourseID), and
        # strategy authors shouldn't have to match it exactly.
        lowered = attribute.lower()
        for key, value in row.items():
            if key.lower() == lowered:
                return value
        raise FlexRecsError(
            f"tuple has no attribute {attribute!r}; available: {sorted(row)}"
        ) from None


class Comparator:
    """Base class; concrete comparators set ``kind`` and implement score."""

    kind: str = "abstract"
    name: str = "comparator"

    #: True when a (target, reference) pair whose extend attributes share
    #: no key can only ever score NULL.  The direct executor uses this to
    #: prune the cross product down to overlapping candidates — a subclass
    #: whose ``measure`` can score disjoint attributes must set it False.
    requires_overlap: bool = False

    def score(
        self, target_row: Mapping[str, Any], reference_row: Mapping[str, Any]
    ) -> Optional[float]:
        raise NotImplementedError

    def pair_function(self) -> Optional[Callable[[Any, Any], Optional[float]]]:
        """A ``(target_value, reference_value) -> score`` fast form.

        The direct executor resolves the attribute names once per
        recommend and feeds raw values to this function instead of
        calling :meth:`score` per pair.  Returns ``None`` when no fast
        form exists (the executor falls back to ``score``); a subclass
        that overrides ``score`` must override this too (or return
        ``None``) so the fast path cannot bypass its semantics.
        """
        return None

    #: attribute names this comparator reads from target / reference tuples
    target_attribute: str = ""
    reference_attribute: str = ""

    def describe(self) -> str:
        return (
            f"{self.name}(target.{self.target_attribute}, "
            f"reference.{self.reference_attribute})"
        )


# ---------------------------------------------------------------------------
# scalar (SQL-inlinable) comparators
# ---------------------------------------------------------------------------


class EqualityMatch(Comparator):
    """1.0 when the two attributes are equal, 0.0 otherwise."""

    kind = "scalar"
    name = "equality_match"

    def __init__(self, target_attribute: str, reference_attribute: str) -> None:
        self.target_attribute = target_attribute
        self.reference_attribute = reference_attribute

    def score(self, target_row, reference_row):
        return similarity.equality_match(
            _get(target_row, self.target_attribute),
            _get(reference_row, self.reference_attribute),
        )

    def pair_function(self):
        return similarity.equality_match

    def inline_sql(
        self,
        target_ref: str,
        reference_ref: str,
        dialect: SqlDialect = MINIDB_DIALECT,
    ) -> str:
        return (
            f"CASE WHEN {target_ref} IS NULL THEN NULL "
            f"WHEN {reference_ref} IS NULL THEN NULL "
            f"WHEN {target_ref} = {reference_ref} THEN 1.0 ELSE 0.0 END"
        )


class NumericCloseness(Comparator):
    """1 / (1 + |a - b| / scale) over two numeric attributes.

    "Recommendations based on people with similar grades" compiles to
    plain arithmetic in the generated SQL.
    """

    kind = "scalar"
    name = "numeric_closeness"

    def __init__(
        self,
        target_attribute: str,
        reference_attribute: str,
        scale: float = 1.0,
    ) -> None:
        if scale <= 0:
            raise FlexRecsError("scale must be positive")
        self.target_attribute = target_attribute
        self.reference_attribute = reference_attribute
        # Kept float so the inlined SQL literal divides as a float even
        # on engines whose integer division truncates.
        self.scale = float(scale)

    def score(self, target_row, reference_row):
        return similarity.numeric_closeness(
            _get(target_row, self.target_attribute),
            _get(reference_row, self.reference_attribute),
            scale=self.scale,
        )

    def pair_function(self):
        scale = self.scale

        def closeness(left, right):
            return similarity.numeric_closeness(left, right, scale=scale)

        return closeness

    def inline_sql(
        self,
        target_ref: str,
        reference_ref: str,
        dialect: SqlDialect = MINIDB_DIALECT,
    ) -> str:
        # ABS(a - b) may be integer-typed, but the outer division's left
        # operand is the float literal 1.0, so no dialect promotion is
        # needed even on truncating-division engines.
        return (
            f"1.0 / (1.0 + ABS({target_ref} - {reference_ref}) / {self.scale!r})"
        )


# ---------------------------------------------------------------------------
# UDF comparators (external functions called from the SQL)
# ---------------------------------------------------------------------------


class TextJaccard(Comparator):
    """Jaccard similarity of word-token sets of two text attributes.

    Figure 5(a)'s "courses with titles similar to ..." comparator.
    """

    kind = "udf"
    name = "text_jaccard"
    udf_name = "frx_text_jaccard"
    udf = staticmethod(similarity.text_jaccard)

    def __init__(self, target_attribute: str, reference_attribute: str) -> None:
        self.target_attribute = target_attribute
        self.reference_attribute = reference_attribute

    def score(self, target_row, reference_row):
        return similarity.text_jaccard(
            _get(target_row, self.target_attribute),
            _get(reference_row, self.reference_attribute),
        )

    def pair_function(self):
        return similarity.text_jaccard


class LevenshteinSimilarity(Comparator):
    """Normalized edit-distance similarity of two text attributes."""

    kind = "udf"
    name = "levenshtein_similarity"
    udf_name = "frx_levenshtein_similarity"
    udf = staticmethod(similarity.levenshtein_similarity)

    def __init__(self, target_attribute: str, reference_attribute: str) -> None:
        self.target_attribute = target_attribute
        self.reference_attribute = reference_attribute

    def score(self, target_row, reference_row):
        return similarity.levenshtein_similarity(
            _get(target_row, self.target_attribute),
            _get(reference_row, self.reference_attribute),
        )

    def pair_function(self):
        return similarity.levenshtein_similarity


# ---------------------------------------------------------------------------
# vector comparators (over extend-attached {key: value} attributes)
# ---------------------------------------------------------------------------


class _VectorComparator(Comparator):
    kind = "vector"
    # Every library vector measure operates over co-rated keys only and
    # returns None without overlap, so disjoint pairs are prunable.
    requires_overlap = True
    measure: Callable = None  # type: ignore[assignment]

    def __init__(self, target_attribute: str, reference_attribute: str) -> None:
        self.target_attribute = target_attribute
        self.reference_attribute = reference_attribute

    def score(self, target_row, reference_row):
        left = _get(target_row, self.target_attribute)
        right = _get(reference_row, self.reference_attribute)
        if not isinstance(left, Mapping) or not isinstance(right, Mapping):
            raise FlexRecsError(
                f"{self.name} requires vector (extend-map) attributes; "
                f"got {type(left).__name__} and {type(right).__name__}"
            )
        return type(self).measure(left, right)

    def pair_sql(
        self,
        target_value: str,
        reference_value: str,
        dialect: SqlDialect = MINIDB_DIALECT,
    ) -> str:
        """SQL aggregate expression over the co-rated join.

        ``target_value`` / ``reference_value`` are column references of
        the two sides' value columns inside a GROUP BY (tkey, rkey) query.
        The expression is rendered for ``dialect`` (float casts and
        LEAST/GREATEST spellings differ across engines).
        """
        raise NotImplementedError


class InverseEuclidean(_VectorComparator):
    """1 / (1 + Euclidean distance) over co-rated keys — Figure 5(b)."""

    name = "inverse_euclidean"
    measure = staticmethod(similarity.inverse_euclidean)

    def pair_sql(
        self,
        target_value: str,
        reference_value: str,
        dialect: SqlDialect = MINIDB_DIALECT,
    ) -> str:
        difference = f"({target_value} - {reference_value})"
        return f"1.0 / (1.0 + SQRT(SUM({difference} * {difference})))"


class PearsonCorrelation(_VectorComparator):
    """Pearson correlation over co-rated keys, NULL-guarded in SQL."""

    name = "pearson"
    measure = staticmethod(similarity.pearson)

    def pair_sql(
        self,
        target_value: str,
        reference_value: str,
        dialect: SqlDialect = MINIDB_DIALECT,
    ) -> str:
        tv, rv = target_value, reference_value
        n = dialect.cast_float("COUNT(*)")
        var_x = f"({n} * SUM({tv} * {tv}) - SUM({tv}) * SUM({tv}))"
        var_y = f"({n} * SUM({rv} * {rv}) - SUM({rv}) * SUM({rv}))"
        covariance = f"({n} * SUM({tv} * {rv}) - SUM({tv}) * SUM({rv}))"
        guard_x = dialect.func("greatest", var_x, "0.0")
        guard_y = dialect.func("greatest", var_y, "0.0")
        return (
            f"{covariance} / NULLIF(SQRT({guard_x}) * "
            f"SQRT({guard_y}), 0.0)"
        )


class CosineVector(_VectorComparator):
    """Cosine over co-rated keys (norms restricted to the overlap)."""

    name = "cosine"
    measure = staticmethod(similarity.cosine)

    def pair_sql(
        self,
        target_value: str,
        reference_value: str,
        dialect: SqlDialect = MINIDB_DIALECT,
    ) -> str:
        tv, rv = target_value, reference_value
        return (
            f"SUM({tv} * {rv}) / NULLIF(SQRT(SUM({tv} * {tv})) * "
            f"SQRT(SUM({rv} * {rv})), 0.0)"
        )


# ---------------------------------------------------------------------------
# set comparators (over extend-attached value-set attributes)
# ---------------------------------------------------------------------------


class _SetComparator(Comparator):
    kind = "set"
    # The library set measures score disjoint sets NULL (the compiled
    # intersection join produces no row), so disjoint pairs are prunable.
    requires_overlap = True
    measure: Callable = None  # type: ignore[assignment]

    def __init__(self, target_attribute: str, reference_attribute: str) -> None:
        self.target_attribute = target_attribute
        self.reference_attribute = reference_attribute

    def score(self, target_row, reference_row):
        left = _get(target_row, self.target_attribute)
        right = _get(reference_row, self.reference_attribute)
        if isinstance(left, Mapping) or isinstance(right, Mapping):
            raise FlexRecsError(
                f"{self.name} requires set attributes, not vectors"
            )
        return type(self).measure(frozenset(left), frozenset(right))

    def set_sql(
        self,
        common: str,
        target_size: str,
        reference_size: str,
        dialect: SqlDialect = MINIDB_DIALECT,
    ) -> str:
        """SQL for the score given intersection count and set sizes."""
        raise NotImplementedError


class SetJaccard(_SetComparator):
    """Jaccard over value sets.

    Pairs with an empty intersection score NULL (no evidence) on *both*
    paths — the compiled intersection join simply produces no row, and the
    direct path mirrors that so rankings agree.
    """

    name = "set_jaccard"

    @staticmethod
    def measure(left, right):
        value = similarity.jaccard(left, right)
        if value is None or value == 0.0:
            return None
        return value

    def set_sql(self, common, target_size, reference_size, dialect=MINIDB_DIALECT):
        return (
            f"{dialect.cast_float(common)} / "
            f"({target_size} + {reference_size} - {common})"
        )


class SetOverlap(_SetComparator):
    """Overlap coefficient |A∩B| / min(|A|,|B|); NULL without overlap."""

    name = "set_overlap"

    @staticmethod
    def measure(left, right):
        value = similarity.overlap_coefficient(left, right)
        if value is None or value == 0.0:
            return None
        return value

    def set_sql(self, common, target_size, reference_size, dialect=MINIDB_DIALECT):
        least = dialect.func("least", target_size, reference_size)
        return f"{dialect.cast_float(common)} / {least}"


class CommonCount(_SetComparator):
    """Plain intersection size; NULL without overlap."""

    name = "common_count"
    measure = staticmethod(similarity.common_count)

    def set_sql(self, common, target_size, reference_size, dialect=MINIDB_DIALECT):
        return dialect.cast_float(common)


# ---------------------------------------------------------------------------
# lookup comparator
# ---------------------------------------------------------------------------


class VectorLookup(Comparator):
    """Probe the reference tuple's vector with a target column.

    Figure 5(b) upper recommend: target = courses, reference = similar
    students extended with their rating vectors; a course's pair score
    against a student is that student's rating of the course (absent →
    NULL, skipped by the AVG aggregation).
    """

    kind = "lookup"
    name = "vector_lookup"
    # A reference whose vector lacks the probed key scores None by
    # definition, so references can be pruned to the key's holders.
    requires_overlap = True

    def __init__(self, target_attribute: str, reference_attribute: str) -> None:
        self.target_attribute = target_attribute  # scalar key on target
        self.reference_attribute = reference_attribute  # vector on reference

    def score(self, target_row, reference_row):
        vector = _get(reference_row, self.reference_attribute)
        if not isinstance(vector, Mapping):
            raise FlexRecsError(
                f"{self.name} requires a vector reference attribute"
            )
        value = vector.get(_get(target_row, self.target_attribute))
        return None if value is None else float(value)


COMPARATORS: Dict[str, type] = {
    cls.name: cls
    for cls in (
        EqualityMatch,
        NumericCloseness,
        TextJaccard,
        LevenshteinSimilarity,
        InverseEuclidean,
        PearsonCorrelation,
        CosineVector,
        SetJaccard,
        SetOverlap,
        CommonCount,
        VectorLookup,
    )
}


def make_comparator(name: str, *args, **kwargs) -> Comparator:
    """Instantiate a comparator from the library by name."""
    try:
        cls = COMPARATORS[name]
    except KeyError:
        raise FlexRecsError(
            f"unknown comparator {name!r}; available: {sorted(COMPARATORS)}"
        ) from None
    return cls(*args, **kwargs)
