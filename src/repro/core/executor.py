"""Direct (in-memory) evaluation of FlexRecs workflows.

This is the reference semantics: tuples are dicts, extend attributes are
real Python sets/dicts on those tuples, and the recommend operator loops
over (target, reference) pairs calling the comparator.  The compiled-SQL
path (:mod:`repro.core.compiler`) must produce rank-identical output; the
property tests in ``tests/core/test_dual_path.py`` enforce that.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ExecutionError, FlexRecsError, WorkflowValidationError
from repro.core import similarity
from repro.core.extendcache import extend_vectors, stats_of
from repro.core.library import _get
from repro.core.operators import (
    Extend,
    GraphRecommend,
    Join,
    MaterializedSource,
    Operator,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
)
from repro.core.workflow import Recommendation, RecommendStats, Workflow
from repro.minidb.catalog import Database
from repro.minidb.sql.parser import parse_expression
from repro.minidb.types import sort_key
from repro.obs import COUNT_EDGES, OBS

#: Kill-switch for the recommend fast path (extend-vector cache, candidate
#: pruning, stats-aware measures, bounded-heap top-k).  ``False`` restores
#: the naive pre-fast-path pipeline — the benchmarks flip it to measure
#: the cold baseline, and the property tests flip it to prove the two
#: pipelines emit tuple-for-tuple identical recommendations.
FAST_RECOMMEND = True

#: library measures with a combined single-pass, stats-consuming variant;
#: keyed by the measure *function* so a subclass with a custom measure can
#: never be routed to the wrong math.
_STATS_MEASURES = {
    similarity.pearson: similarity.pearson_with_stats,
    similarity.cosine: similarity.cosine_with_stats,
}


class _Relation:
    """Intermediate result: columns plus dict-rows (with extend attrs)."""

    def __init__(self, columns: List[str], rows: List[Dict[str, Any]]) -> None:
        self.columns = columns
        self.rows = rows


def execute_workflow(workflow: Workflow, database: Database) -> Recommendation:
    """Evaluate a (validated) workflow directly."""
    executor = _Executor(database)
    relation = executor.evaluate(workflow.root)
    # Strip extend attributes from the output rows: the public result is
    # relational, matching what the compiled SQL path returns.
    visible = relation.columns
    rows = [{column: row[column] for column in visible} for row in relation.rows]
    return Recommendation(
        columns=list(visible), rows=rows, stats=executor.recommend_stats
    )


def execute_workflow_on(workflow: Workflow, backend: Any) -> Recommendation:
    """Execute a workflow on a named or instantiated execution backend.

    ``backend`` is a :class:`repro.backends.Backend` or a registered
    backend name (``"minidb"``, ``"sqlite3"``, ...), in which case a
    fresh driver is created bound to the workflow-owning catalog the
    caller passes separately via :meth:`Workflow.run_backend`.  The
    compiled path renders for the backend's dialect, so recommend /
    extend / filter / blend operators run as SQL on the target engine
    instead of being interpreted row by row here.
    """
    return backend.execute_workflow(workflow)


class _Executor:
    def __init__(self, database: Database) -> None:
        self.database = database
        self._condition_cache: Dict[str, Any] = {}
        self.recommend_stats: List[RecommendStats] = []
        self._extend_hits = 0
        self._extend_misses = 0

    # -- dispatch -----------------------------------------------------------

    def evaluate(self, node: Operator) -> _Relation:
        if isinstance(node, Source):
            return self._eval_source(node)
        if isinstance(node, MaterializedSource):
            table = self.database.table(node.table)
            columns = [name for name, _dtype in node.schema_pairs]
            rows = [dict(zip(columns, row)) for row in table.rows()]
            return _Relation(columns, rows)
        if isinstance(node, SqlSource):
            return self._eval_sql_source(node)
        if isinstance(node, Select):
            return self._eval_select(node)
        if isinstance(node, Project):
            return self._eval_project(node)
        if isinstance(node, Join):
            return self._eval_join(node)
        if isinstance(node, Extend):
            return self._eval_extend(node)
        if isinstance(node, Recommend):
            return self._eval_recommend(node)
        if isinstance(node, GraphRecommend):
            return self._eval_graph_recommend(node)
        if isinstance(node, TopK):
            return self._eval_topk(node)
        raise FlexRecsError(f"unknown operator {type(node).__name__}")

    # -- leaves ----------------------------------------------------------

    def _eval_source(self, node: Source) -> _Relation:
        table = self.database.table(node.table)
        columns = list(table.schema.column_names)
        rows = [dict(zip(columns, row)) for row in table.rows()]
        return _Relation(columns, rows)

    def _eval_sql_source(self, node: SqlSource) -> _Relation:
        result = self.database.query(node.sql)
        rows = [dict(zip(result.columns, row)) for row in result.rows]
        return _Relation(list(result.columns), rows)

    def _eval_graph_recommend(self, node: GraphRecommend) -> _Relation:
        from repro.graphrank.engine import GraphRankEngine

        engine = GraphRankEngine.for_database(self.database)
        ranked = engine.rank_courses(
            node.preference,
            top_k=node.top_k,
            exclude_seed=node.exclude_seed,
            damping=node.damping,
            epsilon=node.epsilon,
            max_iters=node.max_iters,
            preference_weight=node.preference_weight,
        )
        table = self.database.table("Courses")
        columns = list(table.schema.column_names)
        key_column = next(
            (c for c in columns if c.lower() == "courseid"), None
        )
        if key_column is None:
            raise FlexRecsError("GraphRecommend needs a Courses.CourseID column")
        key_index = columns.index(key_column)
        by_id = {row[key_index]: row for row in table.rows()}
        out_rows: List[Dict[str, Any]] = []
        for course_id, score in ranked:
            course = by_id.get(course_id)
            if course is None:
                continue
            row = dict(zip(columns, course))
            row[node.score_column] = score
            out_rows.append(row)
        return _Relation(columns + [node.score_column], out_rows)

    # -- unary relational operators -------------------------------------------

    def _eval_select(self, node: Select) -> _Relation:
        child = self.evaluate(node.child)
        predicate = self._condition(node.condition)
        kept = []
        for row in child.rows:
            env = self._env(row)
            if predicate.evaluate(env) is True:
                kept.append(row)
        return _Relation(child.columns, kept)

    def _eval_project(self, node: Project) -> _Relation:
        child = self.evaluate(node.child)
        columns = node.output_columns(self.database)
        attr_names = [
            info.attribute
            for info in node.extend_infos(self.database)
        ]
        rows = []
        seen = set() if node.distinct else None
        for row in child.rows:
            projected = {column: _get(row, column) for column in columns}
            if seen is not None:
                key = tuple(_freeze(projected[column]) for column in columns)
                if key in seen:
                    continue
                seen.add(key)
            for attribute in attr_names:
                projected[attribute] = row[attribute]
            rows.append(projected)
        return _Relation(columns, rows)

    def _eval_topk(self, node: TopK) -> _Relation:
        child = self.evaluate(node.child)
        by = _resolve_column(child.columns, node.by_column)
        rows = sorted(
            child.rows,
            key=lambda row: (sort_key(row[by]),),
            reverse=node.descending,
        )
        return _Relation(child.columns, rows[: node.k])

    # -- join ------------------------------------------------------------

    def _eval_join(self, node: Join) -> _Relation:
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        columns = node.output_columns(self.database)
        left_on = _resolve_column(left.columns, node.left_on)
        right_on = _resolve_column(right.columns, node.right_on)
        buckets: Dict[Any, List[Dict[str, Any]]] = {}
        for row in right.rows:
            key = row[right_on]
            if key is None:
                continue
            buckets.setdefault(key, []).append(row)
        rows = []
        for left_row in left.rows:
            key = left_row[left_on]
            if key is None:
                continue
            for right_row in buckets.get(key, ()):
                merged = dict(left_row)
                merged.update(right_row)
                rows.append(merged)
        return _Relation(columns, rows)

    # -- extend ------------------------------------------------------------

    def _eval_extend(self, node: Extend) -> _Relation:
        child = self.evaluate(node.child)
        info = node.info
        if FAST_RECOMMEND:
            # Cached, version-keyed materialization (with per-vector stats
            # attached); a write to the source table makes the entry's key
            # unreachable, so stale reads are impossible by construction.
            grouped, was_hit = extend_vectors(self.database, info)
            if was_hit:
                self._extend_hits += 1
            else:
                self._extend_misses += 1
        else:
            table = self.database.table(info.source_table)
            schema = table.schema
            key_position = schema.column_position(info.source_key)
            value_position = schema.column_position(info.value_column)
            map_position = (
                schema.column_position(info.map_column)
                if info.map_column is not None
                else None
            )
            grouped = {}
            for row in table.rows():
                key = row[key_position]
                value = row[value_position]
                if key is None or value is None:
                    continue
                if map_position is not None:
                    map_key = row[map_position]
                    if map_key is None:
                        continue
                    grouped.setdefault(key, {})[map_key] = value
                else:
                    grouped.setdefault(key, set()).add(value)
        empty: Any = {} if info.is_vector else set()
        key_column = _resolve_column(child.columns, info.key_column)
        rows = []
        for row in child.rows:
            extended = dict(row)
            extended[info.attribute] = grouped.get(row[key_column], empty)
            rows.append(extended)
        return _Relation(child.columns, rows)

    # -- recommend -----------------------------------------------------------

    def _eval_recommend(self, node: Recommend) -> _Relation:
        started = time.perf_counter()
        hits_before = self._extend_hits
        misses_before = self._extend_misses
        target = self.evaluate(node.target)
        reference = self.evaluate(node.reference)
        columns = node.output_columns(self.database)
        key = _resolve_column(target.columns, node.target_key)
        exclude = None
        if node.exclude_self is not None:
            exclude = (
                _resolve_column(target.columns, node.exclude_self[0]),
                _resolve_column(reference.columns, node.exclude_self[1]),
            )
        stats = RecommendStats(
            comparator=node.comparator.describe(),
            aggregate=node.aggregate,
            targets=len(target.rows),
            references=len(reference.rows),
        )
        if FAST_RECOMMEND:
            scored = self._score_fast(node, target, reference, exclude, stats)
        else:
            scored = self._score_naive(node, target, reference, exclude, stats)

        def order(row: Dict[str, Any]):
            return (-row[node.score_column], sort_key(row[key]))

        if FAST_RECOMMEND and node.top_k is not None and node.top_k < len(scored):
            # heapq.nsmallest(k, it, key=f) is documented equivalent to
            # sorted(it, key=f)[:k] (both stable), so the bounded heap
            # returns exactly the slice the full sort would.
            scored = heapq.nsmallest(node.top_k, scored, key=order)
        else:
            scored.sort(key=order)
            if node.top_k is not None:
                scored = scored[: node.top_k]
        stats.cache_hits = self._extend_hits - hits_before
        stats.cache_misses = self._extend_misses - misses_before
        stats.elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.recommend_stats.append(stats)
        if OBS.enabled:
            # The spans/metrics are views over the finished RecommendStats
            # record — one measurement site, two surfaces.
            OBS.tracer.record(
                "flexrecs.recommend",
                stats.elapsed_ms,
                attrs={
                    "comparator": stats.comparator,
                    "targets": stats.targets,
                    "references": stats.references,
                    "pruned": stats.pruned,
                    "cache_hits": stats.cache_hits,
                },
            )
            OBS.metrics.inc("flexrecs.recommend.count")
            OBS.metrics.inc("flexrecs.recommend.cache_hits", stats.cache_hits)
            OBS.metrics.inc(
                "flexrecs.recommend.cache_misses", stats.cache_misses
            )
            OBS.metrics.observe("flexrecs.recommend.ms", stats.elapsed_ms)
            OBS.metrics.observe(
                "flexrecs.recommend.pruned", stats.pruned, edges=COUNT_EDGES
            )
        return _Relation(columns, scored)

    def _score_naive(self, node, target, reference, exclude, stats) -> List[Dict[str, Any]]:
        """Reference scoring: full pairwise comparator calls, no cache."""
        comparator = node.comparator
        n_reference = len(reference.rows)
        scored: List[Dict[str, Any]] = []
        for target_row in target.rows:
            pair_scores: List[float] = []
            for reference_row in reference.rows:
                if exclude is not None:
                    left = target_row[exclude[0]]
                    right = reference_row[exclude[1]]
                    if left is not None and left == right:
                        continue
                value = comparator.score(target_row, reference_row)
                if value is not None:
                    pair_scores.append(value)
            stats.candidates += n_reference
            stats.scored += len(pair_scores)
            if not pair_scores:
                continue
            out = dict(target_row)
            out[node.score_column] = _aggregate(node.aggregate, pair_scores)
            scored.append(out)
        return scored

    def _score_fast(self, node, target, reference, exclude, stats) -> List[Dict[str, Any]]:
        """Dispatch to a pruned/hoisted scorer; falls back per comparator.

        Every branch produces the same pair scores, aggregated in the
        same (reference-row) order, as :meth:`_score_naive` — the
        property tests in ``tests/core/test_fast_recommend.py`` assert
        tuple-for-tuple equality.
        """
        comparator = node.comparator
        if not target.rows or not reference.rows:
            return []
        if comparator.requires_overlap:
            if comparator.kind in ("vector", "set"):
                return self._score_overlap(node, target, reference, exclude, stats)
            if comparator.kind == "lookup":
                return self._score_lookup(node, target, reference, exclude, stats)
        return self._score_pairwise(node, target, reference, exclude, stats)

    def _score_pairwise(self, node, target, reference, exclude, stats) -> List[Dict[str, Any]]:
        """Scalar/udf (and custom) comparators: nothing is prunable, but
        attribute resolution and value extraction hoist out of the O(n·m)
        pair loop when the comparator exposes a ``pair_function``."""
        comparator = node.comparator
        pair = comparator.pair_function()
        n_reference = len(reference.rows)
        scored: List[Dict[str, Any]] = []
        if pair is not None:
            target_key = _attr_key(target.rows[0], comparator.target_attribute)
            reference_key = _attr_key(
                reference.rows[0], comparator.reference_attribute
            )
            reference_values = [row[reference_key] for row in reference.rows]
        for target_row in target.rows:
            exclude_left = target_row[exclude[0]] if exclude is not None else None
            pair_scores: List[float] = []
            if pair is not None:
                target_value = target_row[target_key]
                for index, reference_row in enumerate(reference.rows):
                    if exclude_left is not None and (
                        exclude_left == reference_row[exclude[1]]
                    ):
                        continue
                    value = pair(target_value, reference_values[index])
                    if value is not None:
                        pair_scores.append(value)
            else:
                for reference_row in reference.rows:
                    if exclude_left is not None and (
                        exclude_left == reference_row[exclude[1]]
                    ):
                        continue
                    value = comparator.score(target_row, reference_row)
                    if value is not None:
                        pair_scores.append(value)
            stats.candidates += n_reference
            stats.scored += len(pair_scores)
            if not pair_scores:
                continue
            out = dict(target_row)
            out[node.score_column] = _aggregate(node.aggregate, pair_scores)
            scored.append(out)
        return scored

    def _score_overlap(self, node, target, reference, exclude, stats) -> List[Dict[str, Any]]:
        """Vector/set comparators: postings-map candidate pruning.

        Sound because ``requires_overlap`` guarantees the measure scores
        ``None`` for pairs sharing no key/element — pruned pairs would
        have contributed nothing to any aggregate (including count).
        Candidates are visited in reference-row order so float
        aggregation (sum/avg) adds in the naive path's order.
        """
        comparator = node.comparator
        is_vector = comparator.kind == "vector"
        measure = type(comparator).measure
        stats_measure = _STATS_MEASURES.get(measure) if is_vector else None
        target_key = _attr_key(target.rows[0], comparator.target_attribute)
        reference_key = _attr_key(
            reference.rows[0], comparator.reference_attribute
        )
        reference_rows = reference.rows
        n_reference = len(reference_rows)
        first_target_value = target.rows[0][target_key]
        reference_values: List[Any] = []
        for row in reference_rows:
            value = row[reference_key]
            if is_vector:
                if not isinstance(value, Mapping):
                    raise FlexRecsError(
                        f"{comparator.name} requires vector (extend-map) "
                        f"attributes; got {type(first_target_value).__name__} "
                        f"and {type(value).__name__}"
                    )
                reference_values.append(value)
            else:
                if isinstance(value, Mapping):
                    raise FlexRecsError(
                        f"{comparator.name} requires set attributes, "
                        f"not vectors"
                    )
                reference_values.append(frozenset(value))
        postings: Dict[Any, List[int]] = {}
        for index, value in enumerate(reference_values):
            for element in value:
                bucket = postings.get(element)
                if bucket is None:
                    postings[element] = [index]
                else:
                    bucket.append(index)
        scored: List[Dict[str, Any]] = []
        for target_row in target.rows:
            target_value = target_row[target_key]
            if is_vector:
                if not isinstance(target_value, Mapping):
                    raise FlexRecsError(
                        f"{comparator.name} requires vector (extend-map) "
                        f"attributes; got {type(target_value).__name__} "
                        f"and {type(reference_values[0]).__name__}"
                    )
            elif isinstance(target_value, Mapping):
                raise FlexRecsError(
                    f"{comparator.name} requires set attributes, not vectors"
                )
            candidate_ids: set = set()
            for element in target_value:
                bucket = postings.get(element)
                if bucket is not None:
                    candidate_ids.update(bucket)
            stats.candidates += len(candidate_ids)
            stats.pruned += n_reference - len(candidate_ids)
            if not candidate_ids:
                continue
            exclude_left = target_row[exclude[0]] if exclude is not None else None
            if is_vector:
                target_stats = stats_of(target_value)
            else:
                frozen_target = frozenset(target_value)
            pair_scores: List[float] = []
            for index in sorted(candidate_ids):
                if exclude_left is not None and (
                    exclude_left == reference_rows[index][exclude[1]]
                ):
                    continue
                reference_value = reference_values[index]
                if not is_vector:
                    value = measure(frozen_target, reference_value)
                elif stats_measure is not None:
                    value = stats_measure(
                        target_value,
                        reference_value,
                        target_stats,
                        stats_of(reference_value),
                    )
                else:
                    value = measure(target_value, reference_value)
                if value is not None:
                    pair_scores.append(value)
            stats.scored += len(pair_scores)
            if not pair_scores:
                continue
            out = dict(target_row)
            out[node.score_column] = _aggregate(node.aggregate, pair_scores)
            scored.append(out)
        return scored

    def _score_lookup(self, node, target, reference, exclude, stats) -> List[Dict[str, Any]]:
        """Lookup comparator: prune references to the probed key's holders.

        A reference whose vector lacks the probe key scores ``None``
        (``vector.get`` misses), so only the postings bucket for the
        target's key value can contribute pair scores.
        """
        comparator = node.comparator
        target_key = _attr_key(target.rows[0], comparator.target_attribute)
        reference_key = _attr_key(
            reference.rows[0], comparator.reference_attribute
        )
        reference_rows = reference.rows
        n_reference = len(reference_rows)
        reference_vectors: List[Mapping[Any, Any]] = []
        for row in reference_rows:
            vector = row[reference_key]
            if not isinstance(vector, Mapping):
                raise FlexRecsError(
                    f"{comparator.name} requires a vector reference attribute"
                )
            reference_vectors.append(vector)
        postings: Dict[Any, List[int]] = {}
        for index, vector in enumerate(reference_vectors):
            for element in vector:
                bucket = postings.get(element)
                if bucket is None:
                    postings[element] = [index]
                else:
                    bucket.append(index)
        scored: List[Dict[str, Any]] = []
        for target_row in target.rows:
            probe = target_row[target_key]
            bucket = postings.get(probe) if probe is not None else None
            count = len(bucket) if bucket is not None else 0
            stats.candidates += count
            stats.pruned += n_reference - count
            if not bucket:
                continue
            exclude_left = target_row[exclude[0]] if exclude is not None else None
            pair_scores: List[float] = []
            # buckets are built in reference-row order already
            for index in bucket:
                if exclude_left is not None and (
                    exclude_left == reference_rows[index][exclude[1]]
                ):
                    continue
                pair_scores.append(float(reference_vectors[index][probe]))
            stats.scored += len(pair_scores)
            if not pair_scores:
                continue
            out = dict(target_row)
            out[node.score_column] = _aggregate(node.aggregate, pair_scores)
            scored.append(out)
        return scored

    # -- helpers -----------------------------------------------------------

    def _condition(self, text: str):
        expression = self._condition_cache.get(text)
        if expression is None:
            expression = parse_expression(text)
            self._condition_cache[text] = expression
        return expression

    def _env(self, row: Mapping[str, Any]) -> Dict[str, Any]:
        env: Dict[str, Any] = {"__functions__": self.database.functions}
        for column, value in row.items():
            env[column.lower()] = value
        return env


def _aggregate(name: str, values: List[float]):
    if name == "max":
        return max(values)
    if name == "min":
        return min(values)
    if name == "sum":
        return sum(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "count":
        return len(values)
    raise ExecutionError(f"unknown aggregate {name!r}")  # pragma: no cover


def _attr_key(row: Mapping[str, Any], attribute: str) -> str:
    """The actual dict key holding ``attribute`` in this relation's rows.

    All rows of a relation share one key set, so resolving once against
    the first row replaces a per-pair ``_get`` call with a plain dict
    lookup.  Mirrors ``_get``'s case-insensitive fallback and error.
    """
    if attribute in row:
        return attribute
    lowered = attribute.lower()
    for key in row:
        if key.lower() == lowered:
            return key
    raise FlexRecsError(
        f"tuple has no attribute {attribute!r}; available: {sorted(row)}"
    )


def _resolve_column(columns: List[str], name: str) -> str:
    lowered = name.lower()
    for column in columns:
        if column.lower() == lowered:
            return column
    raise WorkflowValidationError(
        f"unknown column {name!r}; available: {columns}"
    )


def _freeze(value: Any):
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    if isinstance(value, set):
        return frozenset(value)
    return value
