"""Direct (in-memory) evaluation of FlexRecs workflows.

This is the reference semantics: tuples are dicts, extend attributes are
real Python sets/dicts on those tuples, and the recommend operator loops
over (target, reference) pairs calling the comparator.  The compiled-SQL
path (:mod:`repro.core.compiler`) must produce rank-identical output; the
property tests in ``tests/core/test_dual_path.py`` enforce that.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ExecutionError, FlexRecsError, WorkflowValidationError
from repro.core.library import _get
from repro.core.operators import (
    Extend,
    Join,
    MaterializedSource,
    Operator,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
)
from repro.core.workflow import Recommendation, Workflow
from repro.minidb.catalog import Database
from repro.minidb.sql.parser import parse_expression
from repro.minidb.types import sort_key


class _Relation:
    """Intermediate result: columns plus dict-rows (with extend attrs)."""

    def __init__(self, columns: List[str], rows: List[Dict[str, Any]]) -> None:
        self.columns = columns
        self.rows = rows


def execute_workflow(workflow: Workflow, database: Database) -> Recommendation:
    """Evaluate a (validated) workflow directly."""
    relation = _Executor(database).evaluate(workflow.root)
    # Strip extend attributes from the output rows: the public result is
    # relational, matching what the compiled SQL path returns.
    visible = relation.columns
    rows = [{column: row[column] for column in visible} for row in relation.rows]
    return Recommendation(columns=list(visible), rows=rows)


class _Executor:
    def __init__(self, database: Database) -> None:
        self.database = database
        self._condition_cache: Dict[str, Any] = {}

    # -- dispatch -----------------------------------------------------------

    def evaluate(self, node: Operator) -> _Relation:
        if isinstance(node, Source):
            return self._eval_source(node)
        if isinstance(node, MaterializedSource):
            table = self.database.table(node.table)
            columns = [name for name, _dtype in node.schema_pairs]
            rows = [dict(zip(columns, row)) for row in table.rows()]
            return _Relation(columns, rows)
        if isinstance(node, SqlSource):
            return self._eval_sql_source(node)
        if isinstance(node, Select):
            return self._eval_select(node)
        if isinstance(node, Project):
            return self._eval_project(node)
        if isinstance(node, Join):
            return self._eval_join(node)
        if isinstance(node, Extend):
            return self._eval_extend(node)
        if isinstance(node, Recommend):
            return self._eval_recommend(node)
        if isinstance(node, TopK):
            return self._eval_topk(node)
        raise FlexRecsError(f"unknown operator {type(node).__name__}")

    # -- leaves ----------------------------------------------------------

    def _eval_source(self, node: Source) -> _Relation:
        table = self.database.table(node.table)
        columns = list(table.schema.column_names)
        rows = [dict(zip(columns, row)) for row in table.rows()]
        return _Relation(columns, rows)

    def _eval_sql_source(self, node: SqlSource) -> _Relation:
        result = self.database.query(node.sql)
        rows = [dict(zip(result.columns, row)) for row in result.rows]
        return _Relation(list(result.columns), rows)

    # -- unary relational operators -------------------------------------------

    def _eval_select(self, node: Select) -> _Relation:
        child = self.evaluate(node.child)
        predicate = self._condition(node.condition)
        kept = []
        for row in child.rows:
            env = self._env(row)
            if predicate.evaluate(env) is True:
                kept.append(row)
        return _Relation(child.columns, kept)

    def _eval_project(self, node: Project) -> _Relation:
        child = self.evaluate(node.child)
        columns = node.output_columns(self.database)
        attr_names = [
            info.attribute
            for info in node.extend_infos(self.database)
        ]
        rows = []
        seen = set() if node.distinct else None
        for row in child.rows:
            projected = {column: _get(row, column) for column in columns}
            if seen is not None:
                key = tuple(_freeze(projected[column]) for column in columns)
                if key in seen:
                    continue
                seen.add(key)
            for attribute in attr_names:
                projected[attribute] = row[attribute]
            rows.append(projected)
        return _Relation(columns, rows)

    def _eval_topk(self, node: TopK) -> _Relation:
        child = self.evaluate(node.child)
        by = _resolve_column(child.columns, node.by_column)
        rows = sorted(
            child.rows,
            key=lambda row: (sort_key(row[by]),),
            reverse=node.descending,
        )
        return _Relation(child.columns, rows[: node.k])

    # -- join ------------------------------------------------------------

    def _eval_join(self, node: Join) -> _Relation:
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        columns = node.output_columns(self.database)
        left_on = _resolve_column(left.columns, node.left_on)
        right_on = _resolve_column(right.columns, node.right_on)
        buckets: Dict[Any, List[Dict[str, Any]]] = {}
        for row in right.rows:
            key = row[right_on]
            if key is None:
                continue
            buckets.setdefault(key, []).append(row)
        rows = []
        for left_row in left.rows:
            key = left_row[left_on]
            if key is None:
                continue
            for right_row in buckets.get(key, ()):
                merged = dict(left_row)
                merged.update(right_row)
                rows.append(merged)
        return _Relation(columns, rows)

    # -- extend ------------------------------------------------------------

    def _eval_extend(self, node: Extend) -> _Relation:
        child = self.evaluate(node.child)
        info = node.info
        table = self.database.table(info.source_table)
        schema = table.schema
        key_position = schema.column_position(info.source_key)
        value_position = schema.column_position(info.value_column)
        map_position = (
            schema.column_position(info.map_column)
            if info.map_column is not None
            else None
        )
        grouped: Dict[Any, Any] = {}
        for row in table.rows():
            key = row[key_position]
            value = row[value_position]
            if key is None or value is None:
                continue
            if map_position is not None:
                map_key = row[map_position]
                if map_key is None:
                    continue
                grouped.setdefault(key, {})[map_key] = value
            else:
                grouped.setdefault(key, set()).add(value)
        empty: Any = {} if info.is_vector else set()
        key_column = _resolve_column(child.columns, info.key_column)
        rows = []
        for row in child.rows:
            extended = dict(row)
            extended[info.attribute] = grouped.get(row[key_column], empty)
            rows.append(extended)
        return _Relation(child.columns, rows)

    # -- recommend -----------------------------------------------------------

    def _eval_recommend(self, node: Recommend) -> _Relation:
        target = self.evaluate(node.target)
        reference = self.evaluate(node.reference)
        columns = node.output_columns(self.database)
        key = _resolve_column(target.columns, node.target_key)
        exclude = None
        if node.exclude_self is not None:
            exclude = (
                _resolve_column(target.columns, node.exclude_self[0]),
                _resolve_column(reference.columns, node.exclude_self[1]),
            )
        comparator = node.comparator
        scored: List[Dict[str, Any]] = []
        for target_row in target.rows:
            pair_scores: List[float] = []
            for reference_row in reference.rows:
                if exclude is not None:
                    left = target_row[exclude[0]]
                    right = reference_row[exclude[1]]
                    if left is not None and left == right:
                        continue
                value = comparator.score(target_row, reference_row)
                if value is not None:
                    pair_scores.append(value)
            if not pair_scores:
                continue
            out = dict(target_row)
            out[node.score_column] = _aggregate(node.aggregate, pair_scores)
            scored.append(out)
        scored.sort(
            key=lambda row: (
                -row[node.score_column],
                sort_key(row[key]),
            )
        )
        if node.top_k is not None:
            scored = scored[: node.top_k]
        return _Relation(columns, scored)

    # -- helpers -----------------------------------------------------------

    def _condition(self, text: str):
        expression = self._condition_cache.get(text)
        if expression is None:
            expression = parse_expression(text)
            self._condition_cache[text] = expression
        return expression

    def _env(self, row: Mapping[str, Any]) -> Dict[str, Any]:
        env: Dict[str, Any] = {"__functions__": self.database.functions}
        for column, value in row.items():
            env[column.lower()] = value
        return env


def _aggregate(name: str, values: List[float]):
    if name == "max":
        return max(values)
    if name == "min":
        return min(values)
    if name == "sum":
        return sum(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "count":
        return len(values)
    raise ExecutionError(f"unknown aggregate {name!r}")  # pragma: no cover


def _resolve_column(columns: List[str], name: str) -> str:
    lowered = name.lower()
    for column in columns:
        if column.lower() == lowered:
            return column
    raise WorkflowValidationError(
        f"unknown column {name!r}; available: {columns}"
    )


def _freeze(value: Any):
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    if isinstance(value, set):
        return frozenset(value)
    return value
