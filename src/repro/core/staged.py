"""Staged compilation: a workflow as a *sequence of SQL calls*.

The paper: "The engine executes a workflow by 'compiling' it into a
sequence of SQL calls, which are executed by a conventional DBMS."
:mod:`repro.core.compiler` produces one nested statement; this module
produces the literal sequence: every **recommend** operator becomes a
stage materialized into a temporary table (``CREATE TABLE`` +
``INSERT INTO ... SELECT``), and downstream operators read the staged
table.  The P2 benchmark compares the two forms.

Staging requires column *types* for the temp-table DDL;
:func:`operator_schema` derives them from the catalog through the
operator tree (SqlSource types are probed by sampling).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CompilationError
from repro.core.compiler import _Compiler
from repro.core.operators import (
    Extend,
    Join,
    MaterializedSource,
    Operator,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
)
from repro.core.workflow import Recommendation, Workflow
from repro.minidb.catalog import Database
from repro.minidb.types import DataType, infer_type

Schema = List[Tuple[str, DataType]]


def operator_schema(node: Operator, database: Database) -> Schema:
    """Column (name, type) pairs of an operator's output."""
    if isinstance(node, Source):
        table = database.table(node.table)
        return [(column.name, column.dtype) for column in table.schema.columns]
    if isinstance(node, MaterializedSource):
        return list(node.schema_pairs)
    if isinstance(node, SqlSource):
        return _probe_sql_schema(node, database)
    if isinstance(node, (Select, TopK, Extend)):
        return operator_schema(node.children()[0], database)
    if isinstance(node, Project):
        child = {
            name.lower(): dtype
            for name, dtype in operator_schema(node.child, database)
        }
        return [
            (name, child[name.lower()])
            for name in node.output_columns(database)
        ]
    if isinstance(node, Join):
        return operator_schema(node.left, database) + operator_schema(
            node.right, database
        )
    if isinstance(node, Recommend):
        score_type = (
            DataType.INTEGER if node.aggregate == "count" else DataType.FLOAT
        )
        return operator_schema(node.target, database) + [
            (node.score_column, score_type)
        ]
    raise CompilationError(f"cannot derive a schema for {type(node).__name__}")


def _probe_sql_schema(node: SqlSource, database: Database) -> Schema:
    """Infer a SqlSource's column types by sampling a few rows.

    Columns that are NULL in every sampled row fall back to TEXT.
    """
    result = database.query(f"SELECT * FROM ({node.sql}) AS __probe LIMIT 5")
    schema: Schema = []
    for position, name in enumerate(result.columns):
        dtype: Optional[DataType] = None
        for row in result.rows:
            dtype = infer_type(row[position])
            if dtype is not None:
                break
        schema.append((name, dtype or DataType.TEXT))
    return schema


@dataclass
class StagedWorkflow:
    """The compilation artifact: DDL/DML stages plus the final SELECT."""

    stages: List[str]  # CREATE TABLE / INSERT INTO ... SELECT, in order
    final_select: str
    temp_tables: List[str]
    udfs: Tuple[str, ...] = ()

    @property
    def statement_count(self) -> int:
        return len(self.stages) + 1

    def run(self, database: Database) -> Recommendation:
        """Execute the sequence; temp tables are dropped afterwards."""
        try:
            for statement in self.stages:
                database.execute(statement)
            result = database.query(self.final_select)
            rows = [dict(zip(result.columns, row)) for row in result.rows]
            return Recommendation(columns=list(result.columns), rows=rows)
        finally:
            for table_name in reversed(self.temp_tables):
                database.drop_table(table_name, if_exists=True)

    def script(self) -> str:
        """The whole sequence as a SQL script (for inspection)."""
        return ";\n".join(self.stages + [self.final_select]) + ";"


def compile_workflow_staged(
    workflow: Workflow, database: Database
) -> StagedWorkflow:
    """Compile a validated workflow into the staged (temp-table) form."""
    workflow.validate(database)
    compiler = _StagedCompiler(database)
    rewritten = compiler.stage_tree(workflow.root)
    final_select = compiler.inner.compile(rewritten)
    return StagedWorkflow(
        stages=compiler.stages,
        final_select=final_select,
        temp_tables=compiler.temp_tables,
        udfs=tuple(compiler.inner.udfs),
    )


def run_staged(workflow: Workflow, database: Database) -> Recommendation:
    """Convenience: compile to the staged form and execute it."""
    return compile_workflow_staged(workflow, database).run(database)


class _StagedCompiler:
    def __init__(self, database: Database) -> None:
        self.database = database
        self.inner = _Compiler(database)
        self.stages: List[str] = []
        self.temp_tables: List[str] = []
        self._counter = 0

    def stage_tree(self, node: Operator) -> Operator:
        """Rewrite the tree: each Recommend becomes a staged temp table."""
        rewritten = self._rewrite_children(node)
        if isinstance(rewritten, Recommend):
            return self._materialize(rewritten)
        return rewritten

    def _rewrite_children(self, node: Operator) -> Operator:
        if isinstance(node, (Source, SqlSource, MaterializedSource)):
            return node
        if isinstance(node, (Select, Project, TopK, Extend)):
            return dataclasses.replace(node, child=self.stage_tree(node.child))
        if isinstance(node, Join):
            return dataclasses.replace(
                node,
                left=self.stage_tree(node.left),
                right=self.stage_tree(node.right),
            )
        if isinstance(node, Recommend):
            return dataclasses.replace(
                node,
                target=self.stage_tree(node.target),
                reference=self.stage_tree(node.reference),
            )
        raise CompilationError(f"cannot stage {type(node).__name__}")

    def _materialize(self, node: Recommend) -> Operator:
        """Emit CREATE TABLE + INSERT ... SELECT; return a source over it."""
        self._counter += 1
        table_name = f"__frx_stage_{self._counter}"
        schema = operator_schema(node, self.database)
        column_ddl = ", ".join(f"{name} {dtype.value}" for name, dtype in schema)
        select_sql = self.inner.compile(node)
        self.stages.append(f"CREATE TABLE {table_name} ({column_ddl})")
        self.stages.append(f"INSERT INTO {table_name} {select_sql}")
        self.temp_tables.append(table_name)
        # Downstream operators read the staged table; extend metadata on
        # the target side (e.g. rating vectors on similar students) is
        # re-attached so a stacked recommend still finds it.
        replacement: Operator = MaterializedSource(table_name, tuple(schema))
        for info in node.extend_infos(self.database):
            replacement = Extend(replacement, info)
        return replacement
