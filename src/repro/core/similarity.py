"""Similarity measures used by the FlexRecs recommend operator.

The paper: *"The operator may call upon functions in a library that
implement common tasks for recommendations, such as computing the Jaccard
or Pearson similarity of two sets of objects."*

All functions return ``None`` (SQL NULL) when a similarity is undefined
(empty overlap, zero variance, ...) so the direct execution path and the
compiled-SQL path agree exactly: NULL pair scores are skipped by AVG/MAX
aggregation in both worlds.

Vector arguments are mappings (e.g. ``{course_id: rating}``); set
arguments are Python sets.  Pairwise vector measures operate over the
*co-rated* keys only — the standard convention for collaborative
filtering, and the one the compiled SQL joins reproduce.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, Hashable, Mapping, NamedTuple, Optional, Sequence

from repro.caching import LRUCache


def jaccard(left: AbstractSet, right: AbstractSet) -> Optional[float]:
    """|A ∩ B| / |A ∪ B|; None when both sets are empty."""
    if not left and not right:
        return None
    intersection = len(left & right)
    union = len(left) + len(right) - intersection
    return intersection / union


def overlap_coefficient(left: AbstractSet, right: AbstractSet) -> Optional[float]:
    """|A ∩ B| / min(|A|, |B|); None when either set is empty."""
    if not left or not right:
        return None
    return len(left & right) / min(len(left), len(right))


def common_count(left: AbstractSet, right: AbstractSet) -> Optional[float]:
    """|A ∩ B| as a float score; None when there is no overlap."""
    intersection = len(left & right)
    return float(intersection) if intersection else None


class VectorStats(NamedTuple):
    """Whole-vector aggregates precomputed once per cached extend vector.

    ``total`` and ``sum_squares`` accumulate in the vector's iteration
    order with the same operations (``+=`` / ``v * v``) the pairwise
    measures use, so substituting them for an on-the-fly sum is
    bit-identical whenever the co-rated keys cover the whole vector.
    """

    count: int
    total: float
    sum_squares: float
    norm: float
    mean: float


def vector_stats(vector: Mapping[Hashable, float]) -> VectorStats:
    """Single-pass :class:`VectorStats` for one ``{key: value}`` vector."""
    total = 0
    sum_squares = 0
    for value in vector.values():
        total += value
        sum_squares += value * value
    count = len(vector)
    return VectorStats(
        count=count,
        total=total,
        sum_squares=sum_squares,
        norm=math.sqrt(sum_squares),
        mean=total / count if count else 0.0,
    )


def _corated(
    left: Mapping[Hashable, float], right: Mapping[Hashable, float]
) -> Sequence[Hashable]:
    if not left or not right:
        return ()
    if len(left) > len(right):
        left, right = right, left
    # Disjoint vectors are the common case once candidate pruning is off
    # (and the reason it is sound): bail before building a list.  Iterate
    # the smaller side; membership tests hit the bigger side's hash.
    if right.keys().isdisjoint(left):
        return ()
    return [key for key in left if key in right]


def inverse_euclidean(
    left: Mapping[Hashable, float], right: Mapping[Hashable, float]
) -> Optional[float]:
    """1 / (1 + Euclidean distance) over co-rated keys.

    The comparator of the paper's Figure 5(b) lower recommend operator
    ("similarity between students is computed by taking the inverse
    Euclidean distance of their ratings").  None without co-rated keys.
    """
    keys = _corated(left, right)
    if not keys:
        return None
    total = 0
    for key in keys:
        difference = left[key] - right[key]
        total += difference * difference
    return 1.0 / (1.0 + math.sqrt(total))


def pearson(
    left: Mapping[Hashable, float], right: Mapping[Hashable, float]
) -> Optional[float]:
    """Pearson correlation over co-rated keys.

    None when fewer than two co-rated keys or when either side has zero
    variance — exactly the cases where the compiled SQL's NULLIF guards
    produce NULL.
    """
    return pearson_with_stats(left, right)


def pearson_with_stats(
    left: Mapping[Hashable, float],
    right: Mapping[Hashable, float],
    left_stats: Optional[VectorStats] = None,
    right_stats: Optional[VectorStats] = None,
) -> Optional[float]:
    """Pearson over co-rated keys in one combined pass.

    All five sums accumulate during a single walk of the co-rated keys
    (the separate-comprehension version walked them six times).  When the
    overlap covers the *iterated* (smaller) side entirely and that side's
    :class:`VectorStats` are supplied, its sum/sum-of-squares come from
    the stats instead of the loop — same additions in the same order, so
    the result is bit-identical either way.
    """
    keys = _corated(left, right)
    n = len(keys)
    if n < 2:
        return None
    swapped = len(left) > len(right)
    small = right if swapped else left
    small_stats = right_stats if swapped else left_stats
    use_stats = small_stats is not None and n == len(small)
    sum_x = sum_y = sum_xy = sum_xx = sum_yy = 0
    if use_stats:
        if swapped:
            sum_y, sum_yy = small_stats.total, small_stats.sum_squares
            for key in keys:
                x = left[key]
                sum_x += x
                sum_xx += x * x
                sum_xy += x * right[key]
        else:
            sum_x, sum_xx = small_stats.total, small_stats.sum_squares
            for key in keys:
                y = right[key]
                sum_y += y
                sum_yy += y * y
                sum_xy += left[key] * y
    else:
        for key in keys:
            x = left[key]
            y = right[key]
            sum_x += x
            sum_y += y
            sum_xy += x * y
            sum_xx += x * x
            sum_yy += y * y
    var_x = n * sum_xx - sum_x * sum_x
    var_y = n * sum_yy - sum_y * sum_y
    if var_x <= 0 or var_y <= 0:
        return None
    return (n * sum_xy - sum_x * sum_y) / (math.sqrt(var_x) * math.sqrt(var_y))


def cosine(
    left: Mapping[Hashable, float], right: Mapping[Hashable, float]
) -> Optional[float]:
    """Cosine similarity over co-rated keys (norms over the overlap).

    Using overlap-restricted norms keeps the measure computable from the
    same co-rated join the other vector measures compile to.
    """
    return cosine_with_stats(left, right)


def cosine_with_stats(
    left: Mapping[Hashable, float],
    right: Mapping[Hashable, float],
    left_stats: Optional[VectorStats] = None,
    right_stats: Optional[VectorStats] = None,
) -> Optional[float]:
    """Cosine over co-rated keys in one combined pass.

    Norms stay overlap-restricted (the compiled SQL computes them the
    same way), so precomputed stats only substitute for a side whose
    keys the overlap covers completely — see :func:`pearson_with_stats`
    for why that substitution is bit-identical.
    """
    keys = _corated(left, right)
    if not keys:
        return None
    n = len(keys)
    swapped = len(left) > len(right)
    small = right if swapped else left
    small_stats = right_stats if swapped else left_stats
    use_stats = small_stats is not None and n == len(small)
    dot = sum_xx = sum_yy = 0
    if use_stats:
        if swapped:
            sum_yy = small_stats.sum_squares
            for key in keys:
                x = left[key]
                sum_xx += x * x
                dot += x * right[key]
        else:
            sum_xx = small_stats.sum_squares
            for key in keys:
                y = right[key]
                sum_yy += y * y
                dot += left[key] * y
    else:
        for key in keys:
            x = left[key]
            y = right[key]
            dot += x * y
            sum_xx += x * x
            sum_yy += y * y
    norm_left = math.sqrt(sum_xx)
    norm_right = math.sqrt(sum_yy)
    if norm_left == 0 or norm_right == 0:
        return None
    return dot / (norm_left * norm_right)


def numeric_closeness(
    left: Optional[float], right: Optional[float], scale: float = 1.0
) -> Optional[float]:
    """1 / (1 + |a - b| / scale); None when either value is NULL.

    SQL-inlinable — compiles to arithmetic inside the generated query.
    Used e.g. for "students with similar grades" (GPA closeness).
    """
    if left is None or right is None:
        return None
    return 1.0 / (1.0 + abs(left - right) / scale)


def equality_match(left, right) -> Optional[float]:
    """1.0 when equal, 0.0 otherwise; None when either is NULL."""
    if left is None or right is None:
        return None
    return 1.0 if left == right else 0.0


#: tokenization memo: the recommend operator re-tokenizes the same
#: reference titles once per target tuple; the result is a pure function
#: of the text, so a small LRU removes the rescans.
_TOKEN_CACHE = LRUCache(maxsize=8192)


def token_set(text: Optional[str]) -> frozenset:
    """Lowercased word tokens of a string as a set (for text Jaccard)."""
    if not text:
        return frozenset()
    cached = _TOKEN_CACHE.get(text)
    if cached is not None:
        return cached
    tokens = frozenset(
        token for token in _split_words(text.lower()) if len(token) >= 2
    )
    _TOKEN_CACHE.put(text, tokens)
    return tokens


def _split_words(text: str):
    word = []
    for char in text:
        if char.isalnum():
            word.append(char)
        elif word:
            yield "".join(word)
            word = []
    if word:
        yield "".join(word)


def text_jaccard(left: Optional[str], right: Optional[str]) -> Optional[float]:
    """Jaccard similarity of the word-token sets of two strings.

    The comparator of Figure 5(a): "find courses with titles similar to
    the indicated course".  None when either string is NULL/empty.
    """
    left_tokens = token_set(left)
    right_tokens = token_set(right)
    if not left_tokens or not right_tokens:
        return None
    return jaccard(left_tokens, right_tokens)


def levenshtein(left: str, right: str) -> int:
    """Classic edit distance (insert/delete/substitute, all cost 1)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for row, left_char in enumerate(left, start=1):
        current = [row]
        for column, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current.append(
                min(
                    previous[column] + 1,  # delete
                    current[column - 1] + 1,  # insert
                    previous[column - 1] + cost,  # substitute
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(
    left: Optional[str], right: Optional[str]
) -> Optional[float]:
    """1 - edit_distance / max_length, case-insensitive; None on NULLs."""
    if left is None or right is None:
        return None
    left_lower = left.lower()
    right_lower = right.lower()
    longest = max(len(left_lower), len(right_lower))
    if longest == 0:
        return None
    return 1.0 - levenshtein(left_lower, right_lower) / longest
