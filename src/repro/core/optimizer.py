"""Workflow optimization (Section 3.2's open question, answered).

"How can we optimize the execution of workflows?" — with classical
algebraic rewrites adapted to the FlexRecs operators.  All rules preserve
the workflow's output exactly (tested by running optimized and
unoptimized trees side by side):

1. **Select merge** — σ_p1(σ_p2(R)) → σ_(p1 AND p2)(R): one pass instead
   of two.
2. **Select below Extend** — σ_p(ε(R)) → ε(σ_p(R)): extend attributes
   are not visible to SQL predicates, so the filter can run before the
   (expensive) vector/set attachment.
3. **Select below Project** — σ_p(π_c(R)) → π_c(σ_p(R)) when every
   column p references survives the projection.
4. **Select into Recommend target** — σ_p(recommend(T, R)) →
   recommend(σ_p(T), R) when p references only target columns (not the
   score): each target is scored independently, so filtering first skips
   scoring discarded tuples entirely.  This is the big win for stacked
   workflows.
5. **TopK fusion** — topk_k-by-score(recommend(...)) folds into the
   recommend operator's own ``top_k`` (which the compiler turns into
   ORDER BY ... LIMIT in the same statement).

``optimize`` returns a new Workflow; the original is never mutated
(operators are frozen dataclasses).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set

from repro.core.operators import (
    Extend,
    Join,
    MaterializedSource,
    Operator,
    Project,
    Recommend,
    Select,
    Source,
    SqlSource,
    TopK,
)
from repro.caching import LRUCache
from repro.core.workflow import Workflow
from repro.minidb.catalog import Database
from repro.minidb.sql.parser import parse_expression


def optimize(workflow: Workflow, database: Database) -> Workflow:
    """Apply the rewrite rules bottom-up until a fixpoint."""
    root = workflow.root
    while True:
        rewritten = _rewrite(root, database)
        if rewritten is root:
            break
        root = rewritten
    return Workflow(root, name=f"{workflow.name} (optimized)")


#: pure function of the predicate text, and the fixpoint loop re-asks for
#: the same conditions every pass — memoize the parse.
_CONDITION_COLUMNS_CACHE = LRUCache(maxsize=256)


def _condition_columns(condition: str) -> Set[str]:
    """Lowercased column names a predicate string references."""
    cached = _CONDITION_COLUMNS_CACHE.get(condition)
    if cached is not None:
        return cached
    expression = parse_expression(condition)
    columns = {
        reference.split(".")[-1].lower()
        for reference in expression.columns_referenced()
    }
    _CONDITION_COLUMNS_CACHE.put(condition, columns)
    return columns


def _rewrite(node: Operator, database: Database) -> Operator:
    """One bottom-up rewriting pass; returns ``node`` itself if unchanged."""
    rebuilt = _rewrite_children(node, database)
    rewritten = _apply_rules(rebuilt, database)
    if rewritten is rebuilt and rebuilt is node:
        return node
    return rewritten


def _rewrite_children(node: Operator, database: Database) -> Operator:
    if isinstance(node, (Source, SqlSource, MaterializedSource)):
        return node
    if isinstance(node, (Select, Project, TopK, Extend)):
        child = _rewrite(node.child, database)
        if child is node.child:
            return node
        return dataclasses.replace(node, child=child)
    if isinstance(node, Join):
        left = _rewrite(node.left, database)
        right = _rewrite(node.right, database)
        if left is node.left and right is node.right:
            return node
        return dataclasses.replace(node, left=left, right=right)
    if isinstance(node, Recommend):
        target = _rewrite(node.target, database)
        reference = _rewrite(node.reference, database)
        if target is node.target and reference is node.reference:
            return node
        return dataclasses.replace(node, target=target, reference=reference)
    return node


def _apply_rules(node: Operator, database: Database) -> Operator:
    if isinstance(node, Select):
        return _rewrite_select(node, database)
    if isinstance(node, TopK):
        return _rewrite_topk(node, database)
    return node


def _rewrite_select(node: Select, database: Database) -> Operator:
    child = node.child
    # Rule 1: merge adjacent selects.
    if isinstance(child, Select):
        merged = Select(
            child.child, f"({child.condition}) AND ({node.condition})"
        )
        return _rewrite_select(merged, database)
    # Rule 2: push below extend (predicates never see extend attributes).
    if isinstance(child, Extend):
        pushed = Extend(
            _apply_rules(Select(child.child, node.condition), database),
            child.info,
        )
        return pushed
    # Rule 3: push below project when the predicate's columns survive.
    if isinstance(child, Project):
        kept = {column.lower() for column in child.columns}
        if _condition_columns(node.condition) <= kept and not child.distinct:
            return Project(
                _apply_rules(Select(child.child, node.condition), database),
                child.columns,
                distinct=child.distinct,
            )
    # Rule 4: push into the recommend target when only target columns
    # (not the score) are referenced.
    if isinstance(child, Recommend):
        target_columns = {
            column.lower()
            for column in child.target.output_columns(database)
        }
        referenced = _condition_columns(node.condition)
        if (
            referenced <= target_columns
            and child.score_column.lower() not in referenced
            # top_k truncates *after* scoring; filtering first would
            # change which rows the cut keeps unless no cut exists.
            and child.top_k is None
        ):
            return dataclasses.replace(
                child,
                target=_apply_rules(
                    Select(child.target, node.condition), database
                ),
            )
    return node


def _rewrite_topk(node: TopK, database: Database) -> Operator:
    child = node.child
    # Rule 5: fold TopK-by-score into the recommend operator.
    if (
        isinstance(child, Recommend)
        and node.descending
        and node.by_column.lower() == child.score_column.lower()
    ):
        limit = node.k if child.top_k is None else min(node.k, child.top_k)
        return dataclasses.replace(child, top_k=limit)
    return node


def describe_rewrites(
    workflow: Workflow, database: Database
) -> List[str]:
    """Human-readable before/after trees (for EXPLAIN-style output)."""
    optimized = optimize(workflow, database)
    return [
        "before:",
        *("  " + line for line in workflow.explain().splitlines()),
        "after:",
        *("  " + line for line in optimized.explain().splitlines()),
    ]
